#!/usr/bin/env bash
# Tier-1 verification wrapper: configure, build, run the full test suite,
# then rebuild the kernel-equivalence tests under ASan/UBSan and run them
# once, and finally rebuild the vmpi engine and fault-injection tests under
# ThreadSanitizer and run them in both host execution modes (bounded
# executor and HPRS_THREAD_PER_RANK).  This is the gate a change must pass
# before merging.
#
# A final bench-smoke tier reruns the table 5/7/8 + fault benches at
# reduced size and diffs their run summaries against bench/golden/
# (scripts/bench_smoke.sh) -- the same regression gate CI applies.
#
# Usage: scripts/check.sh [--no-sanitizers] [--no-bench-smoke]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
run_sanitizers=1
run_bench_smoke=1
for arg in "$@"; do
  case "$arg" in
    --no-sanitizers) run_sanitizers=0 ;;
    --no-bench-smoke) run_bench_smoke=0 ;;
    *) echo "check.sh: unknown option $arg" >&2; exit 2 ;;
  esac
done

echo "== tier 1: build + full test suite =="
cmake -S "$repo" -B "$repo/build" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

if [[ "$run_sanitizers" == "1" ]]; then
  echo "== tier 1b: fast-path equivalence under ASan/UBSan =="
  cmake -S "$repo" -B "$repo/build-asan" \
    -DCMAKE_BUILD_TYPE=Release \
    -DHPRS_ENABLE_SANITIZERS=ON \
    -DHPRS_BUILD_BENCH=OFF \
    -DHPRS_BUILD_EXAMPLES=OFF
  cmake --build "$repo/build-asan" -j "$jobs" --target \
    linalg_blocked_test morph_sad_cache_test fastpath_equivalence_test
  for t in linalg_blocked_test morph_sad_cache_test fastpath_equivalence_test; do
    "$repo/build-asan/tests/$t"
  done

  echo "== tier 1c: vmpi engine + resilience under TSan, both execution modes =="
  vmpi_tests=(vmpi_engine_test vmpi_collectives_test vmpi_engine_stress_test
              vmpi_fault_test vmpi_split_test sched_resilience_test
              sched_snapshot_test serve_service_test)
  cmake -S "$repo" -B "$repo/build-tsan" \
    -DCMAKE_BUILD_TYPE=Release \
    -DHPRS_ENABLE_TSAN=ON \
    -DHPRS_BUILD_BENCH=OFF \
    -DHPRS_BUILD_EXAMPLES=OFF
  cmake --build "$repo/build-tsan" -j "$jobs" --target "${vmpi_tests[@]}"
  for t in "${vmpi_tests[@]}"; do
    # Smaller stress world under TSan: thread-per-rank mode instruments
    # every rank thread, so full 192-rank runs are disproportionately slow.
    HPRS_STRESS_RANKS=64 "$repo/build-tsan/tests/$t"
    HPRS_STRESS_RANKS=64 HPRS_THREAD_PER_RANK=1 "$repo/build-tsan/tests/$t"
  done

  echo "== tier 1e: threaded kernels under TSan (HPRS_KERNEL_THREADS=4) =="
  # The tile-graph suite rides along: the streamed tiled driver and the
  # mixed-precision tile kernels must stay race-free at 4 kernel threads.
  kernel_tests=(linalg_thread_pool_test linalg_blocked_test
                morph_sad_cache_test linalg_tile_graph_test
                fastpath_equivalence_test)
  cmake --build "$repo/build-tsan" -j "$jobs" --target "${kernel_tests[@]}"
  for t in "${kernel_tests[@]}"; do
    HPRS_KERNEL_THREADS=4 "$repo/build-tsan/tests/$t"
  done
fi

if [[ "$run_bench_smoke" == "1" ]]; then
  echo "== tier 1d: bench-smoke vs bench/golden/ =="
  BUILD_DIR="$repo/build" "$repo/scripts/bench_smoke.sh"
fi

echo "check.sh: all green"
