#!/usr/bin/env bash
# Tier-1 verification wrapper: configure, build, run the full test suite,
# then rebuild the kernel-equivalence tests under ASan/UBSan and run them
# once.  This is the gate a change must pass before merging.
#
# Usage: scripts/check.sh [--no-sanitizers]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
run_sanitizers=1
if [[ "${1:-}" == "--no-sanitizers" ]]; then
  run_sanitizers=0
fi

echo "== tier 1: build + full test suite =="
cmake -S "$repo" -B "$repo/build" -DCMAKE_BUILD_TYPE=Release
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

if [[ "$run_sanitizers" == "1" ]]; then
  echo "== tier 1b: fast-path equivalence under ASan/UBSan =="
  cmake -S "$repo" -B "$repo/build-asan" \
    -DCMAKE_BUILD_TYPE=Release \
    -DHPRS_ENABLE_SANITIZERS=ON \
    -DHPRS_BUILD_BENCH=OFF \
    -DHPRS_BUILD_EXAMPLES=OFF
  cmake --build "$repo/build-asan" -j "$jobs" --target \
    linalg_blocked_test morph_sad_cache_test fastpath_equivalence_test
  for t in linalg_blocked_test morph_sad_cache_test fastpath_equivalence_test; do
    "$repo/build-asan/tests/$t"
  done
fi

echo "check.sh: all green"
