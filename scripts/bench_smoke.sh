#!/usr/bin/env bash
# Bench-smoke regression gate: run the table 5/7/8 and fault-recovery
# benches at reduced size, emit their canonical run summaries
# (bench/bench_common.hpp --summary), and compare each against the
# checked-in golden under bench/golden/ with tools/report_diff.
#
# Virtual-time and count fields must match the goldens bit for bit (they
# are deterministic by construction); keys containing "host" are wall-clock
# measurements and are compared with loose thresholds.  This script is the
# single source of truth for the smoke sizes -- CI and local runs use the
# same flags.
#
# Usage:
#   scripts/bench_smoke.sh             # compare against bench/golden/
#   scripts/bench_smoke.sh --update    # regenerate bench/golden/ (run after
#                                      # an intentional virtual-time change,
#                                      # and commit the diff)
#
# Environment:
#   BUILD_DIR  build tree with bench/ + tools/ binaries (default: ./build)
#   OUT_DIR    where to leave the fresh summaries (default: mktemp -d)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
out="${OUT_DIR:-$(mktemp -d)}"
golden="$repo/bench/golden"
update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
fi

# One entry per gated bench: name, binary, and the reduced-size flags.
# Table 8 partitions by rows across up to 256 ranks, so it keeps >= 256
# rows and trims the other axes instead.
declare -A bench_cmd=(
  [table5]="bench/bench_table5_exec_times --rows 48 --cols 48 --replication 8"
  [table7]="bench/bench_table7_imbalance --rows 48 --cols 48 --replication 8"
  [table8]="bench/bench_table8_thunderhead --rows 256 --cols 16 --replication 4"
  [fault]="bench/bench_fault_recovery --rows 48 --cols 48 --replication 8"
  [sched]="bench/bench_sched_throughput --rows 48 --cols 48 --replication 8"
)

status=0
for name in table5 table7 table8 fault sched; do
  cmd=(${bench_cmd[$name]})
  bin="$build/${cmd[0]}"
  if [[ ! -x "$bin" ]]; then
    echo "bench_smoke: missing $bin (build with -DHPRS_BUILD_BENCH=ON)" >&2
    exit 2
  fi
  echo "== bench_smoke: $name =="
  "$bin" "${cmd[@]:1}" --summary "$out/$name.json" > "$out/$name.txt"

  if [[ "$update" == "1" ]]; then
    mkdir -p "$golden"
    cp "$out/$name.json" "$golden/$name.json"
    echo "updated $golden/$name.json"
  elif ! "$build/tools/report_diff" "$golden/$name.json" "$out/$name.json"; then
    status=1
  fi
done

if [[ "$update" == "1" ]]; then
  echo "bench_smoke: goldens regenerated under bench/golden/ -- review and commit"
elif [[ "$status" == "0" ]]; then
  echo "bench_smoke: all summaries match bench/golden/"
else
  echo "bench_smoke: MISMATCH -- see report_diff output above." >&2
  echo "If the virtual-time change is intentional, regenerate with" >&2
  echo "  scripts/bench_smoke.sh --update" >&2
fi
exit "$status"
