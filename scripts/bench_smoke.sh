#!/usr/bin/env bash
# Bench-smoke regression gate: run the table 5/6/7/8 and fault-recovery
# benches at reduced size, emit their canonical run summaries
# (bench/bench_common.hpp --summary), and compare each against the
# checked-in golden under bench/golden/ with tools/report_diff.
#
# Virtual-time and count fields must match the goldens bit for bit (they
# are deterministic by construction); keys containing "host" are wall-clock
# measurements and are compared with loose thresholds.  This script is the
# single source of truth for the smoke sizes -- CI and local runs use the
# same flags.
#
# The counter-plane gate runs the bench_sched_throughput snapshot cell
# (vmpi::Options::snapshot, obs/snapshot.hpp) in BOTH executor modes and
# diffs the full snapshot timeline against bench/golden/snapshots_sched.json
# with report_diff --timeline: every mid-run sample of every stable pvar
# must match character for character, so a counter that drifts mid-run and
# drifts back by the end is still caught and localized in virtual time.
#
# Usage:
#   scripts/bench_smoke.sh                       # full gate
#   scripts/bench_smoke.sh --only summaries      # summary + artifact gates
#   scripts/bench_smoke.sh --only counter-plane  # snapshot-timeline gate
#   scripts/bench_smoke.sh --update              # regenerate bench/golden/
#                                                # (after an intentional
#                                                # virtual-time change;
#                                                # commit the diff)
#
# Environment:
#   BUILD_DIR  build tree with bench/ + tools/ binaries (default: ./build)
#   OUT_DIR    where to leave the fresh summaries (default: mktemp -d)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
out="${OUT_DIR:-$(mktemp -d)}"
golden="$repo/bench/golden"
update=0
only="all"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --update) update=1; shift ;;
    --only)
      only="${2:?bench_smoke: --only needs summaries|counter-plane}"
      shift 2 ;;
    *)
      echo "bench_smoke: unknown argument $1" >&2
      echo "usage: bench_smoke.sh [--update] [--only summaries|counter-plane]" >&2
      exit 2 ;;
  esac
done
case "$only" in
  all|summaries|counter-plane) ;;
  *) echo "bench_smoke: --only must be summaries or counter-plane" >&2
     exit 2 ;;
esac

status=0

need_bin() {
  if [[ ! -x "$1" ]]; then
    echo "bench_smoke: missing $1 (build with -DHPRS_BUILD_BENCH=ON)" >&2
    exit 2
  fi
}

# Every committed perf artifact must carry the _metadata header (hardware
# threads, HPRS_KERNEL_THREADS, oversubscription warning) so the recording
# conditions travel with the numbers.  Structural: values are host-specific.
require_metadata() {
  local label="$1" file="$2" key
  if [[ ! -f "$file" ]]; then
    echo "bench_smoke: $label: missing artifact $file" >&2
    status=1
    return 0
  fi
  for key in '"_metadata"' '"hw_threads"' '"kernel_threads"' '"oversubscribed"'; do
    if ! grep -q "$key" "$file"; then
      echo "bench_smoke: $label: $file lacks $key in its _metadata header" >&2
      status=1
      return 0
    fi
  done
}

for artifact in "$repo"/BENCH_*.json; do
  require_metadata "committed $(basename "$artifact")" "$artifact"
done

# --- Summary gates ----------------------------------------------------
# One entry per gated bench: name, binary, and the reduced-size flags.
# Table 8 partitions by rows across up to 256 ranks, so it keeps >= 256
# rows and trims the other axes instead.
declare -A bench_cmd=(
  [table5]="bench/bench_table5_exec_times --rows 48 --cols 48 --replication 8"
  [table6]="bench/bench_table6_breakdown --rows 48 --cols 48 --replication 8"
  [table7]="bench/bench_table7_imbalance --rows 48 --cols 48 --replication 8"
  [table8]="bench/bench_table8_thunderhead --rows 256 --cols 16 --replication 4"
  [fault]="bench/bench_fault_recovery --rows 48 --cols 48 --replication 8"
  [sched]="bench/bench_sched_throughput --rows 48 --cols 48 --replication 8"
  [resilience]="bench/bench_sched_resilience --rows 48 --cols 48 --replication 8"
  [serve]="bench/bench_serve_traffic --rows 48 --cols 48 --replication 8 --jobs 48 --duration 30"
)

if [[ "$only" == "all" || "$only" == "summaries" ]]; then
  for name in table5 table6 table7 table8 fault sched resilience serve; do
    cmd=(${bench_cmd[$name]})
    bin="$build/${cmd[0]}"
    need_bin "$bin"
    echo "== bench_smoke: $name =="
    extra=()
    if [[ "$name" == "table8" ]]; then
      # The same run doubles as the BENCH_engine.json structural gate below.
      extra=(--json "$out/engine.json")
    elif [[ "$name" == "table6" ]]; then
      # The same run doubles as the BENCH_stream.json structural gate below.
      extra=(--json "$out/stream.json")
    elif [[ "$name" == "resilience" ]]; then
      # The same run doubles as the BENCH_resilience.json structural gate below.
      extra=(--json "$out/resilience_cells.json")
    elif [[ "$name" == "serve" ]]; then
      # The same run doubles as the BENCH_serve.json structural gate below.
      extra=(--json "$out/serve_cells.json")
    fi
    "$bin" "${cmd[@]:1}" "${extra[@]}" --summary "$out/$name.json" > "$out/$name.txt"

    if [[ "$update" == "1" ]]; then
      mkdir -p "$golden"
      cp "$out/$name.json" "$golden/$name.json"
      echo "updated $golden/$name.json"
    elif ! "$build/tools/report_diff" "$golden/$name.json" "$out/$name.json"; then
      status=1
    fi
  done

  # --- Perf-artifact structural gates ---------------------------------
  # BENCH_kernels.json / BENCH_engine.json at the repo root are measured on
  # a quiet machine at full size; their *values* are host wall time and
  # cannot be bit-gated.  The smoke runs the same benches small and checks
  # that the artifact KEY SETS still match -- a renamed/added/removed
  # benchmark or table cell must come with a regenerated artifact.
  json_keys() {
    sed -n 's/^  "\([^"]*\)".*/\1/p' "$1" | sort
  }
  gate_keys() {
    local name="$1" committed="$2" fresh="$3"
    require_metadata "fresh $name" "$fresh"
    if [[ "$update" == "1" ]]; then
      return 0  # root artifacts are regenerated by hand at full size
    fi
    if [[ ! -f "$committed" ]]; then
      echo "bench_smoke: missing committed artifact $committed" >&2
      status=1
      return 0
    fi
    if ! diff <(json_keys "$committed") <(json_keys "$fresh") >/dev/null; then
      echo "bench_smoke: $name artifact key set drifted from $committed" >&2
      diff <(json_keys "$committed") <(json_keys "$fresh") >&2 || true
      echo "Regenerate the root artifact at full size and commit it." >&2
      status=1
    else
      echo "== bench_smoke: $name artifact keys match $(basename "$committed") =="
    fi
  }

  echo "== bench_smoke: kernels (artifact key gate) =="
  "$build/bench/bench_kernels" --benchmark_min_time=0.02 \
    --json "$out/kernels.json" > "$out/kernels.txt" 2>&1
  gate_keys kernels "$repo/BENCH_kernels.json" "$out/kernels.json"

  gate_keys engine "$repo/BENCH_engine.json" "$out/engine.json"

  gate_keys stream "$repo/BENCH_stream.json" "$out/stream.json"

  gate_keys resilience "$repo/BENCH_resilience.json" "$out/resilience_cells.json"

  gate_keys serve "$repo/BENCH_serve.json" "$out/serve_cells.json"
fi

# --- Counter-plane gate -----------------------------------------------
# The snapshot cell is one fully-heterogeneous hetero-policy stream with
# the per-group + dispatcher pvar snapshot service on.  The Perfetto trace
# of the executor-mode run is left in $OUT_DIR for CI to upload on failure.
if [[ "$only" == "all" || "$only" == "counter-plane" ]]; then
  snap_bin="$build/bench/bench_sched_throughput"
  need_bin "$snap_bin"
  snap_flags=(--rows 48 --cols 48 --replication 8
              --jobs 16 --snapshot-interval 1.0 --snapshots-only)
  echo "== bench_smoke: counter-plane (executor) =="
  "$snap_bin" "${snap_flags[@]}" \
    --snapshots "$out/snapshots_sched.json" \
    --trace "$out/snapshots_sched_trace.json" > "$out/counter_plane.txt"
  echo "== bench_smoke: counter-plane (thread-per-rank) =="
  HPRS_THREAD_PER_RANK=1 "$snap_bin" "${snap_flags[@]}" \
    --snapshots "$out/snapshots_sched_tpr.json" >> "$out/counter_plane.txt"

  if [[ "$update" == "1" ]]; then
    mkdir -p "$golden"
    cp "$out/snapshots_sched.json" "$golden/snapshots_sched.json"
    echo "updated $golden/snapshots_sched.json"
    if ! cmp -s "$out/snapshots_sched.json" "$out/snapshots_sched_tpr.json"; then
      echo "bench_smoke: executor-mode timelines DIVERGE -- not committing" >&2
      exit 1
    fi
  else
    # --timeline must follow the positionals: CliArgs would otherwise eat
    # the golden path as the flag's value.
    if ! "$build/tools/report_diff" "$golden/snapshots_sched.json" \
        "$out/snapshots_sched.json" --timeline; then
      status=1
    fi
    if ! "$build/tools/report_diff" "$golden/snapshots_sched.json" \
        "$out/snapshots_sched_tpr.json" --timeline; then
      echo "bench_smoke: thread-per-rank timeline diverged" >&2
      status=1
    fi
  fi
fi

if [[ "$update" == "1" ]]; then
  echo "bench_smoke: goldens regenerated under bench/golden/ -- review and commit"
elif [[ "$status" == "0" ]]; then
  echo "bench_smoke: all gates match bench/golden/"
else
  echo "bench_smoke: MISMATCH -- see report_diff output above." >&2
  echo "If the virtual-time change is intentional, regenerate with" >&2
  echo "  scripts/bench_smoke.sh --update" >&2
fi
exit "$status"
