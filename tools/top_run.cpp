// top_run: textual "top"-style view over the counter plane of a long
// scheduler run (obs/snapshot.hpp).  Two modes:
//
//   top_run --jobs 24 --policy hetero --network fully-heterogeneous
//       runs a mixed multi-job stream with the snapshot service enabled
//       and renders the live counter plane it produced: one line per
//       dispatcher sample (queue depth, running gangs, free workers,
//       retries, control-plane bytes in flight) followed by a per-scope
//       rate table (collectives/s, p2p bytes/s, flops/s per job).
//
//   top_run --replay snapshots.json
//       renders a previously exported timeline instead of running one --
//       the replay of a CI artifact or a bench_smoke golden.
//
// --out writes the timeline as flat JSON (the snapshot-diff gate's input;
// see tools/report_diff --timeline), --csv as long-form CSV.  The rendered
// virtual-time series is deterministic in the workload; only host wording
// like sample counts per second would vary, and none is printed.
//
//   top_run --jobs 12 --resilient --crash 3@0.05 --interval 0.02
//
// --trace steady|diurnal|bursty|tenant-mix serves a seeded traffic trace
// (serve/traffic.hpp) with batching on instead of the plain cycle stream;
// the dispatcher then emits "tenant:<name>" scopes and the render adds a
// per-tenant service table (ready/running/riders/in-flight ranks, quota
// rejections, batched fan-outs).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "hsi/scene.hpp"
#include "obs/report_diff.hpp"
#include "obs/snapshot.hpp"
#include "sched/scheduler.hpp"
#include "serve/traffic.hpp"
#include "simnet/platform.hpp"

namespace {

using namespace hprs;

bool make_platform(const std::string& name, std::size_t cpus,
                   std::size_t accels, simnet::Platform& out) {
  if (name == "fully-heterogeneous") {
    out = simnet::fully_heterogeneous();
  } else if (name == "fully-homogeneous") {
    out = simnet::fully_homogeneous();
  } else if (name == "partially-heterogeneous") {
    out = simnet::partially_heterogeneous();
  } else if (name == "partially-homogeneous") {
    out = simnet::partially_homogeneous();
  } else if (name == "thunderhead") {
    out = simnet::thunderhead(cpus);
  } else if (name == "accelerated-now") {
    out = simnet::accelerated_now(cpus, accels);
  } else {
    return false;
  }
  return true;
}

bool parse_crashes(const std::string& text, vmpi::FaultPlan& plan) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(pos, comma - pos);
    const std::size_t at = entry.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= entry.size()) {
      return false;
    }
    try {
      plan.crashes.push_back(
          {std::stoi(entry.substr(0, at)), std::stod(entry.substr(at + 1))});
    } catch (const std::exception&) {
      return false;
    }
    pos = comma + 1;
  }
  return !plan.crashes.empty();
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << text;
  return f.good();
}

double pvar_value(const obs::PvarSet& set, const std::string& name) {
  for (const obs::Pvar& var : set.sorted()) {
    if (var.name != name) continue;
    return var.cls == obs::PvarClass::kCounter
               ? static_cast<double>(var.count)
               : var.value;
  }
  return 0.0;
}

/// One dispatcher sample per line: the "live" view of the control plane.
void render_dispatcher(const obs::SnapshotTimeline& timeline) {
  bool header = false;
  for (const obs::SnapshotSample& s : timeline.samples()) {
    if (s.scope != "dispatcher") continue;
    if (!header) {
      std::printf("%10s %6s %6s %6s %6s %6s %6s %6s %6s %10s\n", "t_s",
                  "ready", "retryq", "run", "free", "disp", "done", "retry",
                  "lost", "inflight");
      header = true;
    }
    std::printf("%10.4f %6.0f %6.0f %6.0f %6.0f %6.0f %6.0f %6.0f %6.0f "
                "%10.0f\n",
                s.t_s, pvar_value(s.pvars, "queue.ready"),
                pvar_value(s.pvars, "queue.retry"),
                pvar_value(s.pvars, "gangs.running"),
                pvar_value(s.pvars, "workers.free"),
                pvar_value(s.pvars, "jobs.dispatched"),
                pvar_value(s.pvars, "jobs.completed"),
                pvar_value(s.pvars, "jobs.retried"),
                pvar_value(s.pvars, "workers.lost"),
                pvar_value(s.pvars, "bytes.in_flight"));
  }
  if (!header) std::printf("(no dispatcher samples)\n");
}

/// Per-tenant service table from the "tenant:<name>" scopes the
/// dispatcher emits for tenanted streams (sched/scheduler.cpp): the last
/// sample's live levels plus the cumulative counters.
void render_tenants(const obs::SnapshotTimeline& timeline) {
  std::map<std::string, const obs::SnapshotSample*> tenants;
  for (const obs::SnapshotSample& s : timeline.samples()) {
    if (s.scope.rfind("tenant:", 0) != 0) continue;
    const obs::SnapshotSample*& last = tenants[s.scope.substr(7)];
    if (last == nullptr || s.seq > last->seq) last = &s;
  }
  if (tenants.empty()) return;
  std::printf("\n%-16s %6s %6s %6s %8s %6s %8s %8s\n", "tenant", "ready",
              "run", "ride", "inflight", "done", "quota_rej", "batched");
  for (const auto& [name, s] : tenants) {
    std::printf("%-16s %6.0f %6.0f %6.0f %8.0f %6.0f %9.0f %8.0f\n",
                name.c_str(), pvar_value(s->pvars, "jobs.ready"),
                pvar_value(s->pvars, "gangs.running"),
                pvar_value(s->pvars, "jobs.riders"),
                pvar_value(s->pvars, "ranks.inflight"),
                pvar_value(s->pvars, "jobs.completed"),
                pvar_value(s->pvars, "jobs.rejected_quota"),
                pvar_value(s->pvars, "jobs.batched"));
  }
}

/// Per-scope rate table over each scope's first..last sample window.
void render_rates(const obs::SnapshotTimeline& timeline) {
  struct Window {
    const obs::SnapshotSample* first = nullptr;
    const obs::SnapshotSample* last = nullptr;
    std::size_t samples = 0;
  };
  std::map<std::string, Window> scopes;
  for (const obs::SnapshotSample& s : timeline.samples()) {
    Window& w = scopes[s.scope];
    if (w.first == nullptr || s.seq < w.first->seq) w.first = &s;
    if (w.last == nullptr || s.seq > w.last->seq) w.last = &s;
    ++w.samples;
  }
  std::printf("\n%-28s %5s %9s %11s %11s %11s\n", "scope", "n", "span_s",
              "colls/s", "p2p_MB/s", "Mflops/s");
  for (const auto& [scope, w] : scopes) {
    // Control-plane scopes carry no wire/flop counters.
    if (scope == "dispatcher" || scope.rfind("tenant:", 0) == 0) continue;
    const double dt = w.last->t_s - w.first->t_s;
    const auto rate = [&](const std::string& name, double scale) {
      if (dt <= 0.0) return 0.0;
      return (pvar_value(w.last->pvars, name) -
              pvar_value(w.first->pvars, name)) *
             scale / dt;
    };
    double colls = 0.0;
    for (const char* kind :
         {"barrier", "bcast", "gather", "scatter", "exchange"}) {
      colls += rate(std::string("collectives.") + kind, 1.0);
    }
    const double bytes = rate("collective_wire_bytes.bcast", 1.0) +
                         rate("collective_wire_bytes.gather", 1.0) +
                         rate("collective_wire_bytes.scatter", 1.0) +
                         rate("collective_wire_bytes.exchange", 1.0) +
                         rate("p2p.wire_bytes", 1.0);
    std::printf("%-28s %5zu %9.4f %11.1f %11.3f %11.1f\n", scope.c_str(),
                w.samples, dt, colls, bytes / 1e6,
                rate("ranks.flops", 1e-6));
  }
}

void render(const obs::SnapshotTimeline& timeline) {
  double t0 = 0.0;
  double t1 = 0.0;
  std::map<std::string, int, std::less<>> scopes;
  for (const obs::SnapshotSample& s : timeline.samples()) {
    if (scopes.empty()) t0 = t1 = s.t_s;
    t0 = std::min(t0, s.t_s);
    t1 = std::max(t1, s.t_s);
    ++scopes[s.scope];
  }
  std::printf("counter plane: %zu samples over %zu scopes, t in "
              "[%.4f, %.4f] s\n\n",
              timeline.size(), scopes.size(), t0, t1);
  render_dispatcher(timeline);
  render_tenants(timeline);
  render_rates(timeline);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"replay", "out", "csv", "interval", "jobs", "gap",
                      "policy", "network", "cpus", "accels", "rows", "cols",
                      "bands", "seed", "replication", "targets", "classes",
                      "iters", "radius", "resilient", "checkpoint", "crash",
                      "trace", "duration"});

  obs::SnapshotTimeline timeline;
  const std::string replay_path = args.get("replay", "");
  if (!replay_path.empty()) {
    std::ifstream f(replay_path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "top_run: cannot open %s\n", replay_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << f.rdbuf();
    std::map<std::string, std::string> flat;
    std::string error;
    if (!obs::parse_flat_json(text.str(), flat, error) ||
        !obs::timeline_from_flat(flat, timeline, error)) {
      std::fprintf(stderr, "top_run: %s: %s\n", replay_path.c_str(),
                   error.c_str());
      return 2;
    }
  } else {
    simnet::Platform platform = simnet::fully_heterogeneous();
    if (!make_platform(args.get("network", "fully-heterogeneous"),
                       static_cast<std::size_t>(args.get_int("cpus", 16)),
                       static_cast<std::size_t>(args.get_int("accels", 2)),
                       platform)) {
      std::fprintf(stderr,
                   "top_run: unknown --network (want fully-heterogeneous, "
                   "fully-homogeneous, partially-heterogeneous, "
                   "partially-homogeneous, thunderhead, accelerated-now)\n");
      return 2;
    }
    hsi::SceneConfig scene_cfg;
    scene_cfg.rows = static_cast<std::size_t>(args.get_int("rows", 96));
    scene_cfg.cols = static_cast<std::size_t>(args.get_int("cols", 96));
    scene_cfg.bands = static_cast<std::size_t>(args.get_int("bands", 224));
    scene_cfg.seed =
        static_cast<std::uint64_t>(args.get_int("seed", 20010916));
    const auto scene = hsi::generate_wtc_scene(scene_cfg);

    sched::SchedulerConfig sched_cfg;
    try {
      sched_cfg.policy = sched::parse_policy(args.get("policy", "hetero"));
    } catch (const Error& e) {
      std::fprintf(stderr, "top_run: %s\n", e.what());
      return 2;
    }
    vmpi::FaultPlan fault_plan;
    const std::string crash_spec = args.get("crash", "");
    if (!crash_spec.empty() && !parse_crashes(crash_spec, fault_plan)) {
      std::fprintf(stderr, "top_run: bad --crash (want <rank>@<time>[,...])\n");
      return 2;
    }
    if (args.get_bool("resilient", false) || !fault_plan.crashes.empty()) {
      sched_cfg.resilience.enabled = true;
      sched_cfg.resilience.checkpoint_interval_s =
          args.get_double("checkpoint", 0.01);
    }

    const int pool = static_cast<int>(platform.size()) - 1;
    std::vector<sched::JobSpec> stream;
    const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 12));
    const std::string trace_name = args.get("trace", "");
    if (!trace_name.empty()) {
      serve::TraceConfig trace_cfg;
      try {
        trace_cfg = serve::preset_trace(trace_name);
      } catch (const Error& e) {
        std::fprintf(stderr, "top_run: %s\n", e.what());
        return 2;
      }
      trace_cfg.jobs = jobs;
      trace_cfg.duration_s = args.get_double("duration", 0.1);
      trace_cfg.seed =
          static_cast<std::uint64_t>(args.get_int("seed", 20010916));
      for (serve::TenantProfile& tenant : trace_cfg.tenants) {
        tenant.targets = static_cast<std::size_t>(args.get_int("targets", 8));
        tenant.classes = static_cast<std::size_t>(args.get_int("classes", 5));
        tenant.max_ranks = std::min(tenant.max_ranks, pool);
        tenant.min_ranks = std::min(tenant.min_ranks, tenant.max_ranks);
        tenant.replication =
            static_cast<std::size_t>(args.get_int("replication", 8));
      }
      stream = serve::generate_trace(trace_cfg);
      // Compute-once batching is a base-dispatcher feature; the retry
      // control plane cannot host riders, so a resilient trace run serves
      // every request solo.
      sched_cfg.batch_shared_keys = !sched_cfg.resilience.enabled;
    } else {
      constexpr sched::JobAlgorithm kCycle[] = {
          sched::JobAlgorithm::kAtdca, sched::JobAlgorithm::kPct,
          sched::JobAlgorithm::kPpi, sched::JobAlgorithm::kUfcls,
          sched::JobAlgorithm::kMorph};
      const double gap = args.get_double("gap", 0.005);
      for (std::size_t k = 0; k < jobs; ++k) {
        sched::JobSpec spec;
        spec.id = k + 1;
        spec.algorithm = kCycle[k % 5];
        spec.arrival_s = gap * static_cast<double>(k);
        spec.ranks = std::min(pool, 2 + static_cast<int>(k % 3));
        spec.targets = static_cast<std::size_t>(args.get_int("targets", 8));
        spec.classes = static_cast<std::size_t>(args.get_int("classes", 5));
        spec.iterations = static_cast<std::size_t>(args.get_int("iters", 2));
        spec.kernel_radius =
            static_cast<std::size_t>(args.get_int("radius", 1));
        spec.replication =
            static_cast<std::size_t>(args.get_int("replication", 8));
        stream.push_back(spec);
      }
    }

    vmpi::Options options;
    options.snapshot.enabled = true;
    options.snapshot.interval_s = args.get_double("interval", 0.05);
    const auto result =
        sched::run_schedule(platform, scene.cube, stream, sched_cfg, options);
    timeline = result.report.snapshots;
    std::printf("%zu jobs on %s (%zu ranks), policy %s: makespan %.4f s\n",
                jobs, platform.name().c_str(), platform.size(),
                sched::to_string(result.policy), result.makespan_s);
  }

  render(timeline);

  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    if (!write_file(out_path, obs::snapshot_timeline_json(timeline))) {
      std::fprintf(stderr, "top_run: failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("\ntimeline json: %s\n", out_path.c_str());
  }
  const std::string csv_path = args.get("csv", "");
  if (!csv_path.empty()) {
    if (!write_file(csv_path, obs::snapshot_timeline_csv(timeline))) {
      std::fprintf(stderr, "top_run: failed to write %s\n", csv_path.c_str());
      return 1;
    }
    std::printf("timeline csv: %s\n", csv_path.c_str());
  }
  return 0;
}
