// trace_run: run one algorithm with virtual-time tracing and the host-time
// profiler enabled, and export the combined timeline as Chrome trace-event
// JSON (open in chrome://tracing or https://ui.perfetto.dev).
//
//   trace_run --alg ATDCA --network fully-heterogeneous --out trace.json
//   trace_run --alg MORPH --network thunderhead --cpus 64 --gantt
//   trace_run --alg PCT --network accelerated-now --cpus 2 --accels 2 \
//       --stream --out overlap.json
//   trace_run --sched --jobs 6 --policy hetero --out sched.json
//
// --stream turns on the per-tile streamed driver (RunnerConfig::tile_stream);
// with tracing on, each rank's "stage pipe" lane then shows the tile copies
// overlapping its compute lane -- the comm/compute-overlap picture, best
// viewed on an accelerated-now gang.
//
// --out writes the Chrome trace; --csv writes the raw per-rank interval CSV
// (vmpi/trace.hpp); --gantt prints the ASCII Gantt chart to stdout.  The
// virtual timeline is deterministic in the scene/seed; the host timeline
// (pid 1) varies run to run by construction.
//
// --sched traces a multi-job schedule instead of one solo run: a mixed
// round-robin stream of --jobs analyses goes through sched::run_schedule
// and every job gets its own named track group ("job:<id>/<ALG>") in the
// exported trace.
//
// --resilient runs the schedule under the checkpoint/retry control plane
// (sched/resilience.hpp): each dispatch attempt becomes its own track
// group ("job:<id>/<ALG>#<attempt>") with "checkpoint" and "restart"
// instants on the job lane.  --checkpoint <s> sets the commit cadence and
// --crash <rank>@<t>[,<rank>@<t>...] injects fail-stop rank crashes, e.g.
//
//   trace_run --sched --resilient --checkpoint 0.01 --crash 2@0.05
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/runner.hpp"
#include "hsi/scene.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/host_profile.hpp"
#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "simnet/platform.hpp"
#include "vmpi/trace.hpp"

namespace {

using namespace hprs;

bool parse_algorithm(const std::string& name, core::Algorithm& out) {
  for (const auto alg : {core::Algorithm::kAtdca, core::Algorithm::kUfcls,
                         core::Algorithm::kPct, core::Algorithm::kMorph}) {
    if (name == core::to_string(alg)) {
      out = alg;
      return true;
    }
  }
  return false;
}

bool make_platform(const std::string& name, std::size_t cpus,
                   std::size_t accels, simnet::Platform& out) {
  if (name == "fully-heterogeneous") {
    out = simnet::fully_heterogeneous();
  } else if (name == "fully-homogeneous") {
    out = simnet::fully_homogeneous();
  } else if (name == "partially-heterogeneous") {
    out = simnet::partially_heterogeneous();
  } else if (name == "partially-homogeneous") {
    out = simnet::partially_homogeneous();
  } else if (name == "thunderhead") {
    out = simnet::thunderhead(cpus);
  } else if (name == "accelerated-now") {
    out = simnet::accelerated_now(cpus, accels);
  } else {
    return false;
  }
  return true;
}

/// Parses "--crash <rank>@<time>[,<rank>@<time>...]" into a fault plan.
bool parse_crashes(const std::string& text, vmpi::FaultPlan& plan) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(pos, comma - pos);
    const std::size_t at = entry.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= entry.size()) {
      return false;
    }
    try {
      plan.crashes.push_back(
          {std::stoi(entry.substr(0, at)), std::stod(entry.substr(at + 1))});
    } catch (const std::exception&) {
      return false;
    }
    pos = comma + 1;
  }
  return !plan.crashes.empty();
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << text;
  return f.good();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"alg", "network", "cpus", "accels", "rows", "cols",
                      "bands", "seed", "replication", "targets", "classes",
                      "iters", "radius", "homogeneous", "stream", "out",
                      "csv", "gantt", "sched", "jobs", "policy", "resilient",
                      "checkpoint", "crash"});

  core::Algorithm alg = core::Algorithm::kAtdca;
  if (!parse_algorithm(args.get("alg", "ATDCA"), alg)) {
    std::fprintf(stderr,
                 "trace_run: unknown --alg (want ATDCA, UFCLS, PCT, MORPH)\n");
    return 2;
  }
  simnet::Platform platform = simnet::fully_heterogeneous();
  if (!make_platform(args.get("network", "fully-heterogeneous"),
                     static_cast<std::size_t>(args.get_int("cpus", 16)),
                     static_cast<std::size_t>(args.get_int("accels", 2)),
                     platform)) {
    std::fprintf(stderr,
                 "trace_run: unknown --network (want fully-heterogeneous, "
                 "fully-homogeneous, partially-heterogeneous, "
                 "partially-homogeneous, thunderhead, accelerated-now)\n");
    return 2;
  }

  hsi::SceneConfig scene_cfg;
  scene_cfg.rows = static_cast<std::size_t>(args.get_int("rows", 96));
  scene_cfg.cols = static_cast<std::size_t>(args.get_int("cols", 96));
  scene_cfg.bands = static_cast<std::size_t>(args.get_int("bands", 224));
  scene_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 20010916));
  const auto scene = hsi::generate_wtc_scene(scene_cfg);

  if (args.get_bool("sched", false)) {
    sched::SchedulerConfig sched_cfg;
    try {
      sched_cfg.policy = sched::parse_policy(args.get("policy", "hetero"));
    } catch (const Error& e) {
      std::fprintf(stderr, "trace_run: %s\n", e.what());
      return 2;
    }
    const bool resilient = args.get_bool("resilient", false);
    vmpi::FaultPlan fault_plan;
    const std::string crash_spec = args.get("crash", "");
    if (!crash_spec.empty() && !parse_crashes(crash_spec, fault_plan)) {
      std::fprintf(stderr,
                   "trace_run: bad --crash (want <rank>@<time>[,...])\n");
      return 2;
    }
    if (resilient) {
      sched_cfg.resilience.enabled = true;
      sched_cfg.resilience.checkpoint_interval_s =
          args.get_double("checkpoint", 0.01);
    }
    const int pool = static_cast<int>(platform.size()) - 1;
    constexpr sched::JobAlgorithm kCycle[] = {
        sched::JobAlgorithm::kAtdca, sched::JobAlgorithm::kPct,
        sched::JobAlgorithm::kPpi, sched::JobAlgorithm::kUfcls,
        sched::JobAlgorithm::kMorph};
    std::vector<sched::JobSpec> stream;
    const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 6));
    for (std::size_t k = 0; k < jobs; ++k) {
      sched::JobSpec spec;
      spec.id = k + 1;
      spec.algorithm = kCycle[k % 5];
      spec.arrival_s = 0.005 * static_cast<double>(k);
      spec.ranks = std::min(pool, 2 + static_cast<int>(k % 3));
      spec.targets = static_cast<std::size_t>(args.get_int("targets", 8));
      spec.classes = static_cast<std::size_t>(args.get_int("classes", 5));
      spec.iterations = static_cast<std::size_t>(args.get_int("iters", 2));
      spec.kernel_radius =
          static_cast<std::size_t>(args.get_int("radius", 1));
      spec.replication =
          static_cast<std::size_t>(args.get_int("replication", 8));
      stream.push_back(spec);
    }

    vmpi::Options options;
    options.enable_trace = true;
    options.fault_plan = fault_plan;
    const obs::ScopedHostProfile profile;
    const obs::ScopedMetrics metrics;
    const auto result =
        sched::run_schedule(platform, scene.cube, stream, sched_cfg, options);

    std::printf("%-4s %-6s %9s %9s %9s %9s  members\n", "job", "alg",
                "arrive", "dispatch", "finish", "wait");
    for (const auto& record : result.records) {
      std::string members;
      for (const int m : record.members) {
        if (!members.empty()) members += ",";
        members += std::to_string(m);
      }
      if (record.rejected) {
        members = "rejected: " + record.error;
      } else if (record.state == sched::JobState::kDegraded ||
                 record.state == sched::JobState::kFailed) {
        members = std::string(sched::to_string(record.state)) + ": " +
                  record.error;
      }
      std::printf("%-4llu %-6s %9.4f %9.4f %9.4f %9.4f  %s\n",
                  static_cast<unsigned long long>(record.id),
                  sched::to_string(record.algorithm), record.arrival_s,
                  record.dispatch_s, record.finish_s, record.queue_wait_s(),
                  members.c_str());
      // The resilient control plane keeps a per-attempt history; surface
      // it whenever a job needed more than one dispatch.
      if (resilient && record.attempts.size() > 1) {
        for (const auto& attempt : record.attempts) {
          std::printf(
              "       attempt %d: [%9.4f, %9.4f] width %d ckpts %d "
              "resumed %d  %s\n",
              attempt.attempt, attempt.dispatch_s, attempt.end_s,
              attempt.width, attempt.checkpoints, attempt.resumed_seq,
              attempt.outcome.c_str());
        }
      }
    }
    if (resilient && !result.lost_ranks.empty()) {
      std::string lost;
      for (const int r : result.lost_ranks) {
        if (!lost.empty()) lost += ",";
        lost += std::to_string(r);
      }
      std::printf("lost ranks: %s (%zu degraded, %zu failed)\n", lost.c_str(),
                  result.degraded(), result.failed());
    }
    std::printf(
        "policy %s: makespan %.4f s, cluster utilization %.3f on %zu ranks\n",
        sched::to_string(result.policy), result.makespan_s,
        result.utilization, platform.size());

    const std::string trace_path = args.get("out", "");
    if (!trace_path.empty()) {
      const std::string json =
          obs::chrome_trace_json(result.report, sched::job_track_groups(result),
                                 obs::HostProfiler::instance().spans());
      if (!write_file(trace_path, json)) {
        std::fprintf(stderr, "trace_run: failed to write %s\n",
                     trace_path.c_str());
        return 1;
      }
      std::printf("chrome trace: %s (open in ui.perfetto.dev)\n",
                  trace_path.c_str());
    }
    const std::string csv_path = args.get("csv", "");
    if (!csv_path.empty()) {
      if (!write_file(csv_path, vmpi::trace_csv(result.report))) {
        std::fprintf(stderr, "trace_run: failed to write %s\n",
                     csv_path.c_str());
        return 1;
      }
      std::printf("trace csv: %s\n", csv_path.c_str());
    }
    if (args.get_bool("gantt", false)) {
      std::printf("%s", vmpi::render_gantt(result.report).c_str());
    }
    return 0;
  }

  core::RunnerConfig cfg;
  cfg.algorithm = alg;
  cfg.policy = args.get_bool("homogeneous", false)
                   ? core::PartitionPolicy::kHomogeneous
                   : core::PartitionPolicy::kHeterogeneous;
  cfg.targets = static_cast<std::size_t>(args.get_int("targets", 18));
  cfg.classes = static_cast<std::size_t>(args.get_int("classes", 14));
  cfg.morph_iterations = static_cast<std::size_t>(args.get_int("iters", 5));
  cfg.kernel_radius = static_cast<std::size_t>(args.get_int("radius", 2));
  cfg.replication =
      static_cast<std::size_t>(args.get_int("replication", 119));
  cfg.tile_stream = args.get_bool("stream", false);

  vmpi::Options options;
  options.enable_trace = true;

  const obs::ScopedHostProfile profile;
  const obs::ScopedMetrics metrics;
  const auto out = core::run_algorithm(platform, scene.cube, cfg, options);

  std::printf("total virtual time: %.3f s on %zu ranks (%s, %s)\n",
              out.report.total_time, out.report.ranks.size(),
              core::to_string(alg), platform.name().c_str());

  const std::string trace_path = args.get("out", "");
  if (!trace_path.empty()) {
    const std::string json = obs::chrome_trace_json(
        out.report, obs::HostProfiler::instance().spans());
    if (!write_file(trace_path, json)) {
      std::fprintf(stderr, "trace_run: failed to write %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::printf("chrome trace: %s (open in ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  const std::string csv_path = args.get("csv", "");
  if (!csv_path.empty()) {
    if (!write_file(csv_path, vmpi::trace_csv(out.report))) {
      std::fprintf(stderr, "trace_run: failed to write %s\n",
                   csv_path.c_str());
      return 1;
    }
    std::printf("trace csv: %s\n", csv_path.c_str());
  }
  if (args.get_bool("gantt", false)) {
    std::printf("%s", vmpi::render_gantt(out.report).c_str());
  }
  return 0;
}
