// report_diff: compare two RunSummary JSON documents (obs/run_summary.hpp)
// under the golden-gate policy of obs/report_diff.hpp.
//
//   report_diff <golden.json> <actual.json>
//       [--host-rel-tol N] [--host-abs-tol N] [--timeline]
//
// Exit status: 0 when the summaries agree, 1 on any mismatch (every
// mismatching key is printed), 2 on usage / unreadable or unparsable input.
// This is the decision procedure of the CI bench-smoke job: goldens live in
// bench/golden/ and are regenerated with scripts/bench_smoke.sh --update.
//
// --timeline treats both documents as counter-plane snapshot timelines
// (obs/snapshot.hpp): same key-by-key policy, but on mismatch the earliest
// diverging sample is localized in virtual time -- the counter that
// drifted mid-run, not just that something differed.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/cli.hpp"
#include "obs/report_diff.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool load_summary(const std::string& path,
                  std::map<std::string, std::string>& out) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "report_diff: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!hprs::obs::parse_flat_json(text, out, error)) {
    std::fprintf(stderr, "report_diff: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const hprs::CliArgs args(argc, argv,
                           {"host-rel-tol", "host-abs-tol", "timeline"});
  if (args.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: report_diff <golden.json> <actual.json> "
                 "[--host-rel-tol N] [--host-abs-tol N] [--timeline]\n");
    return 2;
  }
  const std::string& golden_path = args.positional()[0];
  const std::string& actual_path = args.positional()[1];

  std::map<std::string, std::string> golden;
  std::map<std::string, std::string> actual;
  if (!load_summary(golden_path, golden) ||
      !load_summary(actual_path, actual)) {
    return 2;
  }

  hprs::obs::DiffOptions options;
  options.host_rel_tol = args.get_double("host-rel-tol", options.host_rel_tol);
  options.host_abs_tol = args.get_double("host-abs-tol", options.host_abs_tol);

  if (args.get_bool("timeline", false)) {
    const auto result = hprs::obs::diff_timelines(golden, actual, options);
    if (result.ok()) {
      std::printf("report_diff: timeline OK (%zu keys compared)\n",
                  result.diff.keys_compared);
      return 0;
    }
    std::fprintf(stderr, "report_diff: %zu timeline mismatch(es) vs %s\n",
                 result.diff.mismatches.size(), golden_path.c_str());
    std::fprintf(stderr, "  %s\n", result.first_divergence.c_str());
    for (const auto& m : result.diff.mismatches) {
      std::fprintf(stderr, "  %s: golden=%s actual=%s (%s)\n", m.key.c_str(),
                   m.golden.c_str(), m.actual.c_str(), m.reason.c_str());
    }
    return 1;
  }

  const auto result = hprs::obs::diff_summaries(golden, actual, options);
  if (result.ok()) {
    std::printf("report_diff: OK (%zu keys compared)\n", result.keys_compared);
    return 0;
  }
  std::fprintf(stderr, "report_diff: %zu mismatch(es) vs %s\n",
               result.mismatches.size(), golden_path.c_str());
  for (const auto& m : result.mismatches) {
    std::fprintf(stderr, "  %s: golden=%s actual=%s (%s)\n", m.key.c_str(),
                 m.golden.c_str(), m.actual.c_str(), m.reason.c_str());
  }
  return 1;
}
