// Land-cover mapping workflow: classify the synthetic WTC scene with the
// purely spectral (Hetero-PCT) and spatial/spectral (Hetero-MORPH)
// classifiers, score them against the USGS-style dust/debris ground truth,
// and render the MORPH map as ASCII art.
//
//   ./landcover_mapping [--rows N] [--cols N] [--seed S] [--classes C]
//                       [--iterations I] [--radius R]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "hsi/accuracy.hpp"
#include "hsi/scene.hpp"
#include "simnet/platform.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const CliArgs args(argc, argv,
                     {"rows", "cols", "seed", "classes", "iterations",
                      "radius"});

  hsi::SceneConfig scene_cfg;
  scene_cfg.rows = static_cast<std::size_t>(args.get_int("rows", 96));
  scene_cfg.cols = static_cast<std::size_t>(args.get_int("cols", 96));
  scene_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 20010916));
  const hsi::Scene scene = hsi::generate_wtc_scene(scene_cfg);

  core::RunnerConfig cfg;
  cfg.classes = static_cast<std::size_t>(args.get_int("classes", 14));
  cfg.morph_iterations =
      static_cast<std::size_t>(args.get_int("iterations", 5));
  cfg.kernel_radius = static_cast<std::size_t>(args.get_int("radius", 2));

  const simnet::Platform platform = simnet::fully_heterogeneous();
  const auto debris = hsi::debris_materials();

  TextTable table({"Dust/debris class", "Hetero-PCT %", "Hetero-MORPH %"});
  std::vector<hsi::ClassificationScore> scores;
  core::RunnerOutput morph_out;
  for (const auto alg : {core::Algorithm::kPct, core::Algorithm::kMorph}) {
    cfg.algorithm = alg;
    auto out = core::run_algorithm(platform, scene.cube, cfg);
    scores.push_back(hsi::score_classification(out.labels, out.label_count,
                                               scene.truth, debris));
    std::printf("%s: %zu classes found, %.1f simulated s\n",
                core::display_name(alg, cfg.policy).c_str(), out.label_count,
                out.report.total_time);
    if (alg == core::Algorithm::kMorph) morph_out = std::move(out);
  }
  for (std::size_t k = 0; k < debris.size(); ++k) {
    table.add_row({hsi::to_string(debris[k]),
                   TextTable::num(scores[0].per_class_pct[k], 1),
                   TextTable::num(scores[1].per_class_pct[k], 1)});
  }
  table.add_row({"Overall", TextTable::num(scores[0].overall_pct, 1),
                 TextTable::num(scores[1].overall_pct, 1)});
  std::printf("\n%s", table.to_string().c_str());

  // ASCII rendering of the MORPH classification (one character per pixel,
  // downsampled to at most 64 columns).
  const std::size_t step =
      std::max<std::size_t>(1, scene.truth.cols / 64);
  std::printf("\nHetero-MORPH land-cover map (downsampled %zux):\n",
              step);
  static const char* kGlyphs = ".~#%*+o=@$abcdefgh";
  for (std::size_t r = 0; r < scene.truth.rows; r += step) {
    for (std::size_t c = 0; c < scene.truth.cols; c += step) {
      const auto label = morph_out.labels[r * scene.truth.cols + c];
      std::putchar(kGlyphs[label % 18]);
    }
    std::putchar('\n');
  }
  std::printf("(each glyph is one of the %zu unsupervised classes)\n",
              morph_out.label_count);
  return 0;
}
