// Quickstart: generate a synthetic WTC scene, simulate the paper's fully
// heterogeneous network of workstations, and run the heterogeneous ATDCA
// target detector on it.
//
//   ./quickstart [--rows N] [--cols N] [--targets T] [--seed S]
//
// Prints the detected targets, how well they match the ground-truth thermal
// hot spots, and the simulated timing breakdown.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "core/runner.hpp"
#include "hsi/metrics.hpp"
#include "hsi/scene.hpp"
#include "simnet/platform.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const CliArgs args(argc, argv, {"rows", "cols", "targets", "seed"});

  // 1. Synthesize the hyperspectral scene (stands in for the AVIRIS World
  //    Trade Center cube; see DESIGN.md).
  hsi::SceneConfig scene_cfg;
  scene_cfg.rows = static_cast<std::size_t>(args.get_int("rows", 96));
  scene_cfg.cols = static_cast<std::size_t>(args.get_int("cols", 96));
  scene_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 20010916));
  const hsi::Scene scene = hsi::generate_wtc_scene(scene_cfg);
  std::printf("scene: %zux%zu pixels, %zu bands, %zu thermal hot spots\n",
              scene.cube.rows(), scene.cube.cols(), scene.cube.bands(),
              scene.truth.hot_spots.size());

  // 2. Describe the parallel platform: the paper's 16-workstation fully
  //    heterogeneous network (Tables 1-2).
  const simnet::Platform platform = simnet::fully_heterogeneous();
  std::printf("platform: %s, %zu processors, %zu segments\n",
              platform.name().c_str(), platform.size(),
              platform.segment_count());

  // 3. Run Hetero-ATDCA.
  core::RunnerConfig cfg;
  cfg.algorithm = core::Algorithm::kAtdca;
  cfg.policy = core::PartitionPolicy::kHeterogeneous;
  cfg.targets = static_cast<std::size_t>(args.get_int("targets", 18));
  const core::RunnerOutput out =
      core::run_algorithm(platform, scene.cube, cfg);

  std::printf("\n%s extracted %zu targets in %.2f simulated seconds\n",
              core::display_name(cfg.algorithm, cfg.policy).c_str(),
              out.targets.size(), out.report.total_time);
  std::printf("  COM %.2fs  SEQ %.2fs  PAR %.2fs  imbalance D_all %.3f\n",
              out.report.com(), out.report.seq(), out.report.par(),
              out.report.imbalance_all());

  // 4. Compare against the ground truth: for every hot spot, the spectral
  //    angle to the most similar detected target.
  std::printf("\nhot spot -> best-matching target (SAD, radians):\n");
  for (const auto& hs : scene.truth.hot_spots) {
    const auto truth_px = scene.cube.pixel(hs.row, hs.col);
    double best = 3.15;
    for (const auto& t : out.targets) {
      best = std::min(best, hsi::sad<float, float>(
                                truth_px, scene.cube.pixel(t.row, t.col)));
    }
    std::printf("  '%c' (%4.0f F at %3zu,%3zu): %.4f\n", hs.label, hs.temp_f,
                hs.row, hs.col, best);
  }
  return 0;
}
