// Platform comparison: reproduce the experimental design of the paper's
// Section 3 in miniature -- run a heterogeneous algorithm and its
// homogeneous baseline on the four equivalent networks of workstations and
// compare execution times, timing decomposition, and load balance.
//
//   ./platform_comparison [--rows N] [--cols N] [--algorithm atdca|ufcls|pct|morph]
//                         [--replication K] [--seed S]
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "hsi/scene.hpp"
#include "simnet/equivalence.hpp"
#include "simnet/platform.hpp"

namespace {

hprs::core::Algorithm parse_algorithm(const std::string& s) {
  using hprs::core::Algorithm;
  if (s == "atdca") return Algorithm::kAtdca;
  if (s == "ufcls") return Algorithm::kUfcls;
  if (s == "pct") return Algorithm::kPct;
  if (s == "morph") return Algorithm::kMorph;
  throw hprs::Error("unknown algorithm '" + s + "'");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hprs;
  const CliArgs args(argc, argv,
                     {"rows", "cols", "algorithm", "replication", "seed"});

  hsi::SceneConfig scene_cfg;
  scene_cfg.rows = static_cast<std::size_t>(args.get_int("rows", 96));
  scene_cfg.cols = static_cast<std::size_t>(args.get_int("cols", 96));
  scene_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 20010916));
  const hsi::Scene scene = hsi::generate_wtc_scene(scene_cfg);

  const std::vector<simnet::Platform> networks = {
      simnet::fully_heterogeneous(),
      simnet::fully_homogeneous(),
      simnet::partially_heterogeneous(),
      simnet::partially_homogeneous(),
  };

  // The evaluation framework rests on the networks being (approximately)
  // equivalent in aggregate power; report how closely they are.
  std::printf("Lastovetsky-Reddy equivalence vs fully-heterogeneous:\n");
  for (std::size_t i = 1; i < networks.size(); ++i) {
    const auto rep = simnet::check_equivalence(networks[0], networks[i], 0.25);
    std::printf("  %-26s %s\n", networks[i].name().c_str(),
                rep.to_string().c_str());
  }
  std::printf("\n");

  core::RunnerConfig cfg;
  cfg.algorithm = parse_algorithm(args.get("algorithm", "atdca"));
  cfg.replication =
      static_cast<std::size_t>(args.get_int("replication", 64));

  TextTable table({"Version", "Network", "Time (s)", "COM", "SEQ", "PAR",
                   "D_all", "D_minus"});
  for (const auto policy : {core::PartitionPolicy::kHeterogeneous,
                            core::PartitionPolicy::kHomogeneous}) {
    cfg.policy = policy;
    for (const auto& net : networks) {
      const auto out = core::run_algorithm(net, scene.cube, cfg);
      table.add_row({core::display_name(cfg.algorithm, policy), net.name(),
                     TextTable::num(out.report.total_time),
                     TextTable::num(out.report.com()),
                     TextTable::num(out.report.seq()),
                     TextTable::num(out.report.par()),
                     TextTable::num(out.report.imbalance_all(), 3),
                     TextTable::num(out.report.imbalance_minus_root(), 3)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
