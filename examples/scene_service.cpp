// Scene service: a shared network of workstations serving production
// traffic (paper Sect. 6 outlook -- many concurrent analyses competing for
// one cluster, here as a multi-tenant service).
//
//   ./scene_service [--trace steady|diurnal|bursty|tenant-mix] [--jobs N]
//                   [--duration S] [--policy fifo|sjf|hetero] [--batch B]
//                   [--rows N] [--cols N] [--seed S]
//
// Generates a seeded arrival trace of the chosen shape (default: the
// skewed three-tenant mix), serves it through serve::run_service --
// rate-limit admission, compute-once batching (--batch 1, default on),
// gang placement under the chosen policy -- and prints the per-request
// completion table plus the per-tenant SLA report.  Everything runs in
// virtual time, so both tables are bit-identical across runs and executor
// modes.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "hsi/scene.hpp"
#include "serve/service.hpp"
#include "serve/traffic.hpp"
#include "simnet/platform.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const CliArgs args(argc, argv, {"trace", "jobs", "duration", "policy",
                                  "batch", "rows", "cols", "seed"});

  // 1. The shared scene every request analyses (stands in for the AVIRIS
  //    World Trade Center cube) and the shared cluster serving the stream.
  hsi::SceneConfig scene_cfg;
  scene_cfg.rows = static_cast<std::size_t>(args.get_int("rows", 64));
  scene_cfg.cols = static_cast<std::size_t>(args.get_int("cols", 64));
  scene_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 20010916));
  const hsi::Scene scene = hsi::generate_wtc_scene(scene_cfg);
  const simnet::Platform platform = simnet::fully_heterogeneous();

  // 2. The traffic: a seeded trace of the requested shape, tenants and
  //    request parameters from the preset's tenant profiles.
  serve::TraceConfig trace_cfg =
      serve::preset_trace(args.get("trace", "tenant-mix"));
  trace_cfg.jobs = static_cast<std::size_t>(args.get_int("jobs", 24));
  trace_cfg.duration_s = args.get_double("duration", 4.0);
  trace_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 20010916));
  for (serve::TenantProfile& tenant : trace_cfg.tenants) {
    tenant.targets = 6;
    tenant.classes = 4;
    tenant.skewers = 32;
  }
  const auto stream = serve::generate_trace(trace_cfg);

  // 3. Service policy: admission quotas for the ad-hoc tail, batching on
  //    by default so the survey tenant's shared question computes once.
  serve::ServiceConfig config;
  config.policy = sched::parse_policy(args.get("policy", "hetero"));
  config.batching = args.get_bool("batch", true);
  config.quotas["adhoc"].max_inflight_ranks = 4;

  std::printf(
      "scene service: %zu requests (%s trace) on %s (%zu processors), "
      "%s, batching %s\n\n",
      stream.size(), serve::to_string(trace_cfg.shape),
      platform.name().c_str(), platform.size(),
      sched::to_string(config.policy), config.batching ? "on" : "off");

  const auto result = serve::run_service(platform, scene.cube, stream,
                                         config);

  // 4. Per-request completion table with batching/quota attribution.
  std::printf("%4s  %-8s  %-6s  %9s  %9s  %9s  note\n", "req", "tenant",
              "alg", "arrive(s)", "wait(s)", "finish(s)");
  for (const auto& record : result.schedule.records) {
    if (record.state == sched::JobState::kRejected) {
      std::printf("%4llu  %-8s  %-6s  %9.3f  rejected: %s\n",
                  static_cast<unsigned long long>(record.id),
                  record.tenant.c_str(), sched::to_string(record.algorithm),
                  record.arrival_s, record.error.c_str());
      continue;
    }
    std::string note;
    if (record.batched_into != 0) {
      note = "rider of job " + std::to_string(record.batched_into);
    } else if (record.batch_fanout > 0) {
      note = "computed for " + std::to_string(record.batch_fanout) +
             " riders";
    }
    std::printf("%4llu  %-8s  %-6s  %9.3f  %9.3f  %9.3f  %s\n",
                static_cast<unsigned long long>(record.id),
                record.tenant.c_str(), sched::to_string(record.algorithm),
                record.arrival_s, record.queue_wait_s(), record.finish_s,
                note.c_str());
  }

  // 5. The per-tenant SLA report.
  std::printf("\n%s", serve::sla_table(result).c_str());
  std::printf(
      "\nstream: %zu completed, %zu rejected (%zu by rate limits); "
      "%zu riders saved %.3f virtual s; makespan %.3f virtual s, "
      "cluster utilization %.1f%%\n",
      result.schedule.completed(), result.schedule.rejected(),
      result.rate_rejected, result.batches.riders,
      result.batches.saved_est_s, result.schedule.makespan_s,
      100.0 * result.schedule.utilization);
  return 0;
}
