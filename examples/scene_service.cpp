// Scene service: a shared network of workstations serving a mixed stream
// of analysis requests (paper Sect. 6 outlook -- many concurrent analyses
// competing for one cluster).
//
//   ./scene_service [--jobs N] [--policy fifo|sjf|hetero] [--rows N]
//                   [--cols N] [--seed S]
//
// Submits an alternating ATDCA (target extraction) + PCT (dimensionality
// reduction) request stream against the paper's fully heterogeneous
// 16-workstation network, gang-places each request onto a rank subset with
// the chosen policy (default: heterogeneity-aware best-fit with backfill),
// and prints the per-request completion table plus the stream summary.
// Everything runs in virtual time, so the table is bit-identical across
// runs and executor modes.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "hsi/scene.hpp"
#include "sched/scheduler.hpp"
#include "simnet/platform.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const CliArgs args(argc, argv, {"jobs", "policy", "rows", "cols", "seed"});

  // 1. The shared scene every request analyses (stands in for the AVIRIS
  //    World Trade Center cube) and the shared cluster serving the stream.
  hsi::SceneConfig scene_cfg;
  scene_cfg.rows = static_cast<std::size_t>(args.get_int("rows", 64));
  scene_cfg.cols = static_cast<std::size_t>(args.get_int("cols", 64));
  scene_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 20010916));
  const hsi::Scene scene = hsi::generate_wtc_scene(scene_cfg);
  const simnet::Platform platform = simnet::fully_heterogeneous();

  const std::string policy_name = args.get("policy", "hetero");
  sched::SchedulerConfig config;
  if (policy_name == "fifo") {
    config.policy = sched::Policy::kFifo;
  } else if (policy_name == "sjf") {
    config.policy = sched::Policy::kSjf;
  } else {
    config.policy = sched::Policy::kHeteroBestFit;
  }

  // 2. The request stream: clients alternate between target extraction
  //    (ATDCA, 3-rank gangs) and dimensionality reduction (PCT, 2-rank
  //    gangs), one request every 50 virtual milliseconds.
  const auto jobs = static_cast<std::size_t>(args.get_int("jobs", 8));
  std::vector<sched::JobSpec> stream;
  for (std::size_t k = 0; k < jobs; ++k) {
    sched::JobSpec spec;
    spec.id = k + 1;
    spec.arrival_s = 0.05 * static_cast<double>(k);
    if (k % 2 == 0) {
      spec.algorithm = sched::JobAlgorithm::kAtdca;
      spec.ranks = 3;
      spec.targets = 8;
    } else {
      spec.algorithm = sched::JobAlgorithm::kPct;
      spec.ranks = 2;
      spec.classes = 5;
    }
    stream.push_back(spec);
  }

  std::printf("scene service: %zu requests on %s (%zu processors), %s\n\n",
              stream.size(), platform.name().c_str(), platform.size(),
              sched::to_string(config.policy));

  // 3. Run the schedule and print the completion table.
  const auto result =
      sched::run_schedule(platform, scene.cube, stream, config);

  std::printf("%4s  %-6s  %9s  %9s  %9s  %8s  ranks\n", "job", "alg",
              "arrive(s)", "wait(s)", "finish(s)", "busy");
  for (const auto& record : result.records) {
    if (record.rejected) {
      std::printf("%4llu  %-6s  rejected: %s\n",
                  static_cast<unsigned long long>(record.id),
                  sched::to_string(record.algorithm), record.error.c_str());
      continue;
    }
    std::string members;
    for (int m : record.members) {
      members += (members.empty() ? "" : ",") + std::to_string(m);
    }
    std::printf("%4llu  %-6s  %9.3f  %9.3f  %9.3f  %7.0f%%  [%s]\n",
                static_cast<unsigned long long>(record.id),
                sched::to_string(record.algorithm), record.arrival_s,
                record.queue_wait_s(), record.finish_s,
                100.0 * record.utilization(), members.c_str());
  }

  std::printf(
      "\nstream: %zu completed, %zu rejected; makespan %.3f virtual s, "
      "cluster utilization %.1f%%\n",
      result.completed(), result.rejected(), result.makespan_s,
      100.0 * result.utilization);
  return 0;
}
