// Full target-detection workflow on the synthetic World Trade Center scene:
//
//   1. generate the scene and persist it as an ENVI-style cube (drop in a
//      real AVIRIS cube at the same path to run on real data),
//   2. estimate the intrinsic dimensionality (the paper derives t = 18 from
//      it) with the HFC virtual-dimensionality test,
//   3. run Hetero-ATDCA and Hetero-UFCLS on the simulated fully
//      heterogeneous network,
//   4. score both detectors against the thermal-hot-spot ground truth and
//      report the timing decomposition.
//
//   ./target_detection_wtc [--rows N] [--cols N] [--seed S] [--targets T]
//                          [--out PATH]
#include <algorithm>
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "hsi/io.hpp"
#include "hsi/metrics.hpp"
#include "hsi/scene.hpp"
#include "hsi/vd.hpp"
#include "simnet/platform.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const CliArgs args(argc, argv, {"rows", "cols", "seed", "targets", "out"});

  // --- 1. Scene -----------------------------------------------------------
  hsi::SceneConfig scene_cfg;
  scene_cfg.rows = static_cast<std::size_t>(args.get_int("rows", 96));
  scene_cfg.cols = static_cast<std::size_t>(args.get_int("cols", 96));
  scene_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 20010916));
  const hsi::Scene scene = hsi::generate_wtc_scene(scene_cfg);

  const std::string out = args.get("out", "wtc_scene");
  hsi::write_envi(scene.cube, out);
  std::printf("scene written to %s.hdr / %s.raw (%zux%zu pixels, %zu bands)\n",
              out.c_str(), out.c_str(), scene.cube.rows(), scene.cube.cols(),
              scene.cube.bands());

  // --- 2. Intrinsic dimensionality ----------------------------------------
  const auto vd = hsi::estimate_vd(scene.cube, 1e-4);
  const auto requested = args.get_int("targets", 0);
  const std::size_t targets =
      requested > 0 ? static_cast<std::size_t>(requested)
                    : std::max<std::size_t>(8, vd.dimensionality);
  std::printf("HFC virtual dimensionality: %zu sources -> extracting %zu "
              "targets (the paper derives t = 18 the same way)\n",
              vd.dimensionality, targets);

  // --- 3. Detect on the simulated heterogeneous network -------------------
  const simnet::Platform platform = simnet::fully_heterogeneous();
  TextTable table({"Hot spot", "Temp (F)", "ATDCA SAD", "UFCLS SAD"});
  std::vector<core::RunnerOutput> runs;
  for (const auto alg : {core::Algorithm::kAtdca, core::Algorithm::kUfcls}) {
    core::RunnerConfig cfg;
    cfg.algorithm = alg;
    cfg.targets = targets;
    runs.push_back(core::run_algorithm(platform, scene.cube, cfg));
    const auto& rep = runs.back().report;
    std::printf("%s: %.1f simulated s (COM %.1f  SEQ %.1f  PAR %.1f)\n",
                core::display_name(alg, cfg.policy).c_str(), rep.total_time,
                rep.com(), rep.seq(), rep.par());
  }

  // --- 4. Score ------------------------------------------------------------
  for (const auto& hs : scene.truth.hot_spots) {
    const auto truth_px = scene.cube.pixel(hs.row, hs.col);
    std::vector<std::string> row = {std::string("'") + hs.label + "'",
                                    TextTable::num(hs.temp_f, 0)};
    for (const auto& run : runs) {
      double best = 10.0;
      for (const auto& t : run.targets) {
        best = std::min(best, hsi::sad<float, float>(
                                  truth_px, scene.cube.pixel(t.row, t.col)));
      }
      row.push_back(TextTable::num(best, 4));
    }
    table.add_row(row);
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("(SAD 0 = exact match; the paper's UFCLS likewise misses the "
              "cool 700 F spot 'F')\n");
  return 0;
}
