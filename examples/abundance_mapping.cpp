// Abundance mapping workflow -- the full chain a mapping application runs:
//
//   1. extract endmember signatures with Hetero-ATDCA (cross-checked
//      against the parallel Pixel Purity Index),
//   2. unmix every pixel against them with the parallel FCLS mapper,
//   3. export the abundance planes (PGM), the dominant-endmember map (PPM),
//      and the per-rank execution timeline of the unmixing run.
//
//   ./abundance_mapping [--rows N] [--cols N] [--seed S] [--targets T]
//                       [--outdir DIR]
#include <cstdio>
#include <filesystem>

#include "common/cli.hpp"
#include "core/ppi.hpp"
#include "core/runner.hpp"
#include "core/unmix_map.hpp"
#include "hsi/render.hpp"
#include "hsi/scene.hpp"
#include "simnet/platform.hpp"
#include "vmpi/trace.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const CliArgs args(argc, argv, {"rows", "cols", "seed", "targets",
                                  "outdir"});

  hsi::SceneConfig scene_cfg;
  scene_cfg.rows = static_cast<std::size_t>(args.get_int("rows", 96));
  scene_cfg.cols = static_cast<std::size_t>(args.get_int("cols", 96));
  scene_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 20010916));
  const hsi::Scene scene = hsi::generate_wtc_scene(scene_cfg);
  const simnet::Platform platform = simnet::fully_heterogeneous();

  const std::filesystem::path outdir = args.get("outdir", "abundance_out");
  std::filesystem::create_directories(outdir);

  // --- 1. Endmember extraction ---------------------------------------------
  core::RunnerConfig det;
  det.algorithm = core::Algorithm::kAtdca;
  det.targets = static_cast<std::size_t>(args.get_int("targets", 12));
  const auto atdca = core::run_algorithm(platform, scene.cube, det);
  std::printf("ATDCA extracted %zu endmembers in %.1f simulated s\n",
              atdca.targets.size(), atdca.report.total_time);

  core::PpiConfig ppi_cfg;
  ppi_cfg.targets = det.targets;
  ppi_cfg.skewers = 512;
  const auto ppi = core::run_ppi(platform, scene.cube, ppi_cfg);
  std::size_t shared = 0;
  for (const auto& t : atdca.targets) {
    for (const auto& p : ppi.targets) {
      if (t == p) ++shared;
    }
  }
  std::printf("PPI (512 skewers) agrees on %zu/%zu candidates\n", shared,
              atdca.targets.size());

  // --- 2. Parallel FCLS unmixing -------------------------------------------
  const auto endmembers = core::endmembers_at(scene.cube, atdca.targets);
  core::UnmixMapConfig unmix_cfg;
  vmpi::Options traced;
  traced.enable_trace = true;
  const auto maps =
      core::run_unmix_map(platform, scene.cube, endmembers, unmix_cfg, traced);
  std::printf("unmixed %zux%zu pixels against %zu endmembers in %.1f "
              "simulated s (COM %.2f  PAR %.2f)\n",
              maps.rows, maps.cols, maps.endmembers, maps.report.total_time,
              maps.report.com(), maps.report.par());

  // --- 3. Products ----------------------------------------------------------
  for (std::size_t e = 0; e < maps.endmembers; ++e) {
    hsi::write_pgm((outdir / ("abundance_" + std::to_string(e) + ".pgm"))
                       .string(),
                   maps.plane(e), maps.rows, maps.cols);
  }
  hsi::write_pgm((outdir / "rmse.pgm").string(), maps.rmse, maps.rows,
                 maps.cols);
  std::vector<std::uint16_t> dominant(maps.rows * maps.cols);
  for (std::size_t r = 0; r < maps.rows; ++r) {
    for (std::size_t c = 0; c < maps.cols; ++c) {
      dominant[r * maps.cols + c] =
          static_cast<std::uint16_t>(maps.dominant(r, c));
    }
  }
  hsi::write_label_ppm((outdir / "dominant.ppm").string(), dominant,
                       maps.rows, maps.cols);
  std::printf("wrote %zu abundance planes, rmse.pgm and dominant.ppm to %s\n",
              maps.endmembers, outdir.string().c_str());

  std::printf("\nper-rank timeline of the unmixing run:\n%s",
              vmpi::render_gantt(maps.report, 64).c_str());
  return 0;
}
