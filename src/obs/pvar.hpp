// Named performance variables (pvars), modeled on the MPI_T / Open MPI SPC
// design: every counter the runtime exposes is a named variable with a
// class (counter / level / timer) and a determinism domain.  A PvarSet is
// one *sample* of such variables -- a named, name-sorted value vector --
// and is the payload of the virtual-time snapshot service
// (obs/snapshot.hpp), which strings samples into a per-run timeline.
//
// The classes mirror obs::MetricKind (counters accumulate, levels are
// instantaneous readings, timers carry host seconds plus a sample count),
// and the stable-vs-host Domain split carries over unchanged: a stable
// pvar's value at any snapshot is a pure function of the virtual protocol,
// so whole timelines of stable pvars are golden-comparable bit for bit;
// host pvars legitimately vary and are compared by threshold.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace hprs::obs {

/// MPI_T-style variable class.  kCounter accumulates monotonically,
/// kLevel is an instantaneous reading (queue depth, bytes in flight),
/// kTimer carries accumulated host seconds plus a sample count.
enum class PvarClass : std::uint8_t { kCounter, kLevel, kTimer };

[[nodiscard]] const char* to_string(PvarClass cls);

/// One named performance variable reading.
struct Pvar {
  std::string name;
  PvarClass cls = PvarClass::kCounter;
  Domain domain = Domain::kStable;
  std::uint64_t count = 0;  ///< counter total, or timer sample count
  double value = 0.0;       ///< level reading, or timer seconds

  friend bool operator==(const Pvar&, const Pvar&) = default;
};

/// One sample of named pvars.  Insertion order is irrelevant: sorted()
/// always presents the variables in name order, so two samples built from
/// the same state compare equal regardless of how they were assembled.
class PvarSet {
 public:
  void counter(std::string_view name, std::uint64_t total,
               Domain domain = Domain::kStable);
  void level(std::string_view name, double value,
             Domain domain = Domain::kStable);
  /// Timers describe host time and are always Domain::kHost.
  void timer(std::string_view name, double seconds, std::uint64_t samples);

  void clear() {
    vars_.clear();
    dirty_ = false;
  }
  [[nodiscard]] bool empty() const { return vars_.empty(); }
  [[nodiscard]] std::size_t size() const { return vars_.size(); }

  /// The variables in name order (sorted lazily after mutation).
  [[nodiscard]] const std::vector<Pvar>& sorted() const;

  friend bool operator==(const PvarSet& a, const PvarSet& b) {
    return a.sorted() == b.sorted();
  }

 private:
  mutable std::vector<Pvar> vars_;
  mutable bool dirty_ = false;
};

/// Exposes a metrics-registry snapshot (obs/metrics.hpp) as named pvars:
/// counters map to kCounter, gauges to kLevel, timers to kTimer.  Host
/// metrics are included only when `include_host` is set, and any host pvar
/// whose name does not already contain "host" is suffixed ".host" so the
/// report_diff threshold rule (key contains "host") applies to it.
[[nodiscard]] PvarSet pvars_from_metrics(const Metrics::Snapshot& snapshot,
                                         bool include_host = false);

}  // namespace hprs::obs
