#include "obs/report_diff.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace hprs::obs {
namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }
};

// Reads a JSON string literal (with escapes) and returns its decoded value.
bool read_string(Cursor& c, std::string& out, std::string& error) {
  if (c.eof() || c.peek() != '"') {
    error = "expected '\"' at offset " + std::to_string(c.pos);
    return false;
  }
  ++c.pos;
  out.clear();
  while (!c.eof() && c.peek() != '"') {
    char ch = c.text[c.pos++];
    if (ch == '\\') {
      if (c.eof()) break;
      char esc = c.text[c.pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u':
          // Our writer only emits \u00XX for control bytes; decode those.
          if (c.pos + 4 <= c.text.size()) {
            const std::string hex(c.text.substr(c.pos, 4));
            out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
            c.pos += 4;
          }
          break;
        default: out += esc;
      }
    } else {
      out += ch;
    }
  }
  if (c.eof()) {
    error = "unterminated string";
    return false;
  }
  ++c.pos;  // closing quote
  return true;
}

// Reads one scalar value token verbatim (string, number, true/false/null).
bool read_token(Cursor& c, std::string& out, std::string& error) {
  c.skip_ws();
  if (c.eof()) {
    error = "expected value, found end of input";
    return false;
  }
  const std::size_t start = c.pos;
  if (c.peek() == '"') {
    std::string ignored;
    if (!read_string(c, ignored, error)) return false;
  } else {
    while (!c.eof() && c.peek() != ',' && c.peek() != '}' &&
           !std::isspace(static_cast<unsigned char>(c.peek()))) {
      ++c.pos;
    }
    if (c.pos == start) {
      error = "empty value at offset " + std::to_string(start);
      return false;
    }
  }
  out = std::string(c.text.substr(start, c.pos - start));
  return true;
}

bool parse_number(std::string_view token, double& out) {
  const std::string s(token);
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && end == s.c_str() + s.size() && !s.empty();
}

}  // namespace

bool parse_flat_json(std::string_view text,
                     std::map<std::string, std::string>& out,
                     std::string& error) {
  out.clear();
  Cursor c{text};
  c.skip_ws();
  if (c.eof() || c.peek() != '{') {
    error = "expected '{' to open the summary object";
    return false;
  }
  ++c.pos;
  c.skip_ws();
  if (!c.eof() && c.peek() == '}') {
    ++c.pos;
    return true;
  }
  while (true) {
    c.skip_ws();
    std::string key;
    if (!read_string(c, key, error)) return false;
    c.skip_ws();
    if (c.eof() || c.peek() != ':') {
      error = "expected ':' after key \"" + key + "\"";
      return false;
    }
    ++c.pos;
    std::string token;
    if (!read_token(c, token, error)) return false;
    if (out.count(key) != 0) {
      error = "duplicate key \"" + key + "\"";
      return false;
    }
    out.emplace(std::move(key), std::move(token));
    c.skip_ws();
    if (!c.eof() && c.peek() == ',') {
      ++c.pos;
      continue;
    }
    if (!c.eof() && c.peek() == '}') {
      ++c.pos;
      return true;
    }
    error = "expected ',' or '}' at offset " + std::to_string(c.pos);
    return false;
  }
}

bool is_host_time_key(std::string_view key) {
  return key.find("host") != std::string_view::npos;
}

DiffResult diff_summaries(const std::map<std::string, std::string>& golden,
                          const std::map<std::string, std::string>& actual,
                          const DiffOptions& options) {
  DiffResult result;
  for (const auto& [key, gold_token] : golden) {
    auto it = actual.find(key);
    if (it == actual.end()) {
      result.mismatches.push_back(
          {key, gold_token, "<missing>", "key missing from actual summary"});
      continue;
    }
    ++result.keys_compared;
    const std::string& act_token = it->second;
    if (is_host_time_key(key)) {
      double g = 0.0;
      double a = 0.0;
      if (!parse_number(gold_token, g) || !parse_number(act_token, a)) {
        if (gold_token != act_token) {
          result.mismatches.push_back(
              {key, gold_token, act_token, "non-numeric host value differs"});
        }
        continue;
      }
      const double lo = std::min(g, a);
      const double hi = std::max(g, a);
      const bool within_rel = hi <= lo * options.host_rel_tol;
      const bool within_abs = std::abs(g - a) <= options.host_abs_tol;
      if (!(within_rel || within_abs)) {
        result.mismatches.push_back(
            {key, gold_token, act_token,
             "host value outside rel_tol=" +
                 std::to_string(options.host_rel_tol) +
                 " / abs_tol=" + std::to_string(options.host_abs_tol)});
      }
    } else if (gold_token != act_token) {
      result.mismatches.push_back(
          {key, gold_token, act_token, "stable value differs (exact match "
                                       "required; see DESIGN.md §10)"});
    }
  }
  for (const auto& [key, act_token] : actual) {
    if (golden.find(key) == golden.end()) {
      result.mismatches.push_back(
          {key, "<missing>", act_token, "key absent from golden summary"});
    }
  }
  return result;
}

}  // namespace hprs::obs
