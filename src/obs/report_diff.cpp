#include "obs/report_diff.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <tuple>
#include <utility>

namespace hprs::obs {
namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }
};

// Reads a JSON string literal (with escapes) and returns its decoded value.
bool read_string(Cursor& c, std::string& out, std::string& error) {
  if (c.eof() || c.peek() != '"') {
    error = "expected '\"' at offset " + std::to_string(c.pos);
    return false;
  }
  ++c.pos;
  out.clear();
  while (!c.eof() && c.peek() != '"') {
    char ch = c.text[c.pos++];
    if (ch == '\\') {
      if (c.eof()) break;
      char esc = c.text[c.pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u':
          // Our writer only emits \u00XX for control bytes; decode those.
          if (c.pos + 4 <= c.text.size()) {
            const std::string hex(c.text.substr(c.pos, 4));
            out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
            c.pos += 4;
          }
          break;
        default: out += esc;
      }
    } else {
      out += ch;
    }
  }
  if (c.eof()) {
    error = "unterminated string";
    return false;
  }
  ++c.pos;  // closing quote
  return true;
}

// Reads one scalar value token verbatim (string, number, true/false/null).
bool read_token(Cursor& c, std::string& out, std::string& error) {
  c.skip_ws();
  if (c.eof()) {
    error = "expected value, found end of input";
    return false;
  }
  const std::size_t start = c.pos;
  if (c.peek() == '"') {
    std::string ignored;
    if (!read_string(c, ignored, error)) return false;
  } else {
    while (!c.eof() && c.peek() != ',' && c.peek() != '}' &&
           !std::isspace(static_cast<unsigned char>(c.peek()))) {
      ++c.pos;
    }
    if (c.pos == start) {
      error = "empty value at offset " + std::to_string(start);
      return false;
    }
  }
  out = std::string(c.text.substr(start, c.pos - start));
  return true;
}

bool parse_number(std::string_view token, double& out) {
  const std::string s(token);
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && end == s.c_str() + s.size() && !s.empty();
}

}  // namespace

bool parse_flat_json(std::string_view text,
                     std::map<std::string, std::string>& out,
                     std::string& error) {
  out.clear();
  Cursor c{text};
  c.skip_ws();
  if (c.eof() || c.peek() != '{') {
    error = "expected '{' to open the summary object";
    return false;
  }
  ++c.pos;
  c.skip_ws();
  if (!c.eof() && c.peek() == '}') {
    ++c.pos;
    return true;
  }
  while (true) {
    c.skip_ws();
    std::string key;
    if (!read_string(c, key, error)) return false;
    c.skip_ws();
    if (c.eof() || c.peek() != ':') {
      error = "expected ':' after key \"" + key + "\"";
      return false;
    }
    ++c.pos;
    std::string token;
    if (!read_token(c, token, error)) return false;
    if (out.count(key) != 0) {
      error = "duplicate key \"" + key + "\"";
      return false;
    }
    out.emplace(std::move(key), std::move(token));
    c.skip_ws();
    if (!c.eof() && c.peek() == ',') {
      ++c.pos;
      continue;
    }
    if (!c.eof() && c.peek() == '}') {
      ++c.pos;
      return true;
    }
    error = "expected ',' or '}' at offset " + std::to_string(c.pos);
    return false;
  }
}

bool is_host_time_key(std::string_view key) {
  return key.find("host") != std::string_view::npos;
}

DiffResult diff_summaries(const std::map<std::string, std::string>& golden,
                          const std::map<std::string, std::string>& actual,
                          const DiffOptions& options) {
  DiffResult result;
  for (const auto& [key, gold_token] : golden) {
    auto it = actual.find(key);
    if (it == actual.end()) {
      result.mismatches.push_back(
          {key, gold_token, "<missing>", "key missing from actual summary"});
      continue;
    }
    ++result.keys_compared;
    const std::string& act_token = it->second;
    if (is_host_time_key(key)) {
      double g = 0.0;
      double a = 0.0;
      if (!parse_number(gold_token, g) || !parse_number(act_token, a)) {
        if (gold_token != act_token) {
          result.mismatches.push_back(
              {key, gold_token, act_token, "non-numeric host value differs"});
        }
        continue;
      }
      const double lo = std::min(g, a);
      const double hi = std::max(g, a);
      const bool within_rel = hi <= lo * options.host_rel_tol;
      const bool within_abs = std::abs(g - a) <= options.host_abs_tol;
      if (!(within_rel || within_abs)) {
        result.mismatches.push_back(
            {key, gold_token, act_token,
             "host value outside rel_tol=" +
                 std::to_string(options.host_rel_tol) +
                 " / abs_tol=" + std::to_string(options.host_abs_tol)});
      }
    } else if (gold_token != act_token) {
      result.mismatches.push_back(
          {key, gold_token, act_token, "stable value differs (exact match "
                                       "required; see DESIGN.md §10)"});
    }
  }
  for (const auto& [key, act_token] : actual) {
    if (golden.find(key) == golden.end()) {
      result.mismatches.push_back(
          {key, "<missing>", act_token, "key absent from golden summary"});
    }
  }
  return result;
}

namespace {

struct TimelineKey {
  std::string scope;
  int seq = 0;
  std::string name;
};

// Splits "<scope>|<seq>|<name>" (scope is sanitized, so it contains no
// '|'; the name never does either).
bool split_timeline_key(std::string_view key, TimelineKey& out) {
  const std::size_t first = key.find('|');
  if (first == std::string_view::npos) return false;
  const std::size_t second = key.find('|', first + 1);
  if (second == std::string_view::npos || second + 1 >= key.size()) {
    return false;
  }
  out.scope = std::string(key.substr(0, first));
  out.name = std::string(key.substr(second + 1));
  const std::string seq_text(key.substr(first + 1, second - first - 1));
  char* end = nullptr;
  const long seq = std::strtol(seq_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || seq_text.empty() || seq < 0) {
    return false;
  }
  out.seq = static_cast<int>(seq);
  return true;
}

}  // namespace

bool timeline_from_flat(const std::map<std::string, std::string>& flat,
                        SnapshotTimeline& out, std::string& error) {
  out.clear();
  // The flat map is key-sorted, so all entries of one (scope, seq) sample
  // are adjacent; within a sample "t_s" is just another sorted key.
  std::map<std::pair<std::string, int>, SnapshotSample> samples;
  for (const auto& [key, token] : flat) {
    if (key.rfind("_timeline.", 0) == 0) continue;
    TimelineKey parts;
    if (!split_timeline_key(key, parts)) {
      error = "key \"" + key + "\" is not in <scope>|<seq>|<name> shape";
      return false;
    }
    SnapshotSample& sample = samples[{parts.scope, parts.seq}];
    sample.scope = parts.scope;
    sample.seq = parts.seq;
    if (parts.name == "t_s") {
      double t = 0.0;
      if (!parse_number(token, t)) {
        error = "key \"" + key + "\": timestamp token \"" + token +
                "\" is not a number";
        return false;
      }
      sample.t_s = t;
      continue;
    }
    const Domain domain = is_host_time_key(parts.name) ? Domain::kHost
                                                       : Domain::kStable;
    if (token.find_first_of(".eE") == std::string::npos) {
      const std::string s(token);
      char* end = nullptr;
      const unsigned long long count = std::strtoull(s.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || s.empty()) {
        error = "key \"" + key + "\": token \"" + token +
                "\" is neither a counter nor a level";
        return false;
      }
      sample.pvars.counter(parts.name, count, domain);
    } else {
      double value = 0.0;
      if (!parse_number(token, value)) {
        error = "key \"" + key + "\": token \"" + token +
                "\" is not a number";
        return false;
      }
      sample.pvars.level(parts.name, value, domain);
    }
  }
  for (auto& [id, sample] : samples) out.append_sample(std::move(sample));
  out.finalize();
  return true;
}

TimelineDiffResult diff_timelines(
    const std::map<std::string, std::string>& golden,
    const std::map<std::string, std::string>& actual,
    const DiffOptions& options) {
  TimelineDiffResult result;
  result.diff = diff_summaries(golden, actual, options);
  if (result.diff.ok()) return result;

  // Localize the earliest divergence in *virtual time*, using whichever
  // side carries the sample's timestamp (the golden side wins ties).
  const DiffEntry* best = nullptr;
  TimelineKey best_key;
  double best_t = 0.0;
  for (const DiffEntry& entry : result.diff.mismatches) {
    TimelineKey parts;
    if (!split_timeline_key(entry.key, parts)) continue;
    char seq_buf[16];
    std::snprintf(seq_buf, sizeof(seq_buf), "%06d", parts.seq);
    const std::string t_key = parts.scope + "|" + seq_buf + "|t_s";
    double t = 0.0;
    bool have_t = false;
    if (auto it = golden.find(t_key); it != golden.end()) {
      have_t = parse_number(it->second, t);
    }
    if (!have_t) {
      if (auto it = actual.find(t_key); it != actual.end()) {
        have_t = parse_number(it->second, t);
      }
    }
    if (!have_t) t = 0.0;
    if (best == nullptr ||
        std::tie(t, parts.scope, parts.seq, parts.name) <
            std::tie(best_t, best_key.scope, best_key.seq, best_key.name)) {
      best = &entry;
      best_key = parts;
      best_t = t;
    }
  }
  char line[512];
  if (best != nullptr) {
    std::snprintf(line, sizeof(line),
                  "first divergence at t=%.6g s: scope \"%s\" sample %d, "
                  "key \"%s\" (golden %s, actual %s)",
                  best_t, best_key.scope.c_str(), best_key.seq,
                  best_key.name.c_str(), best->golden.c_str(),
                  best->actual.c_str());
  } else {
    const DiffEntry& entry = result.diff.mismatches.front();
    std::snprintf(line, sizeof(line),
                  "timelines differ at key \"%s\" (golden %s, actual %s)",
                  entry.key.c_str(), entry.golden.c_str(),
                  entry.actual.c_str());
  }
  result.first_divergence = line;
  return result;
}

}  // namespace hprs::obs
