// Host-time (wall-clock) profiler: scoped RAII timers around engine and
// runner sections, collected as named spans for the Chrome-trace exporter
// (obs/chrome_trace.hpp) so virtual and host timelines open side by side
// in the same Perfetto view.
//
// Like obs::Metrics, the profiler is a process-wide singleton that is
// disabled by default: a ScopedHostTimer constructed while disabled does
// nothing beyond one relaxed atomic load.  Host spans are inherently
// Domain::kHost data -- never golden-compared, only visualized (and
// summarized through Metrics::time_add, which ScopedHostTimer feeds).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace hprs::obs {

/// One completed host-time interval.  `tid` is a small dense id assigned to
/// each host thread in order of first appearance (ucontext fibers report
/// the worker thread currently running them).
struct HostSpan {
  std::string name;
  int tid = 0;
  double begin_us = 0.0;  ///< microseconds since the profiler epoch
  double end_us = 0.0;
};

class HostProfiler {
 public:
  [[nodiscard]] static HostProfiler& instance();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops recorded spans and restarts the epoch.
  void clear();

  /// Microseconds since the profiler epoch (monotonic).
  [[nodiscard]] double now_us() const;

  /// Records a completed span on the calling thread.  No-op while disabled.
  void record(std::string_view name, double begin_us, double end_us);

  /// Copy of the recorded spans, sorted by (begin_us, tid, name).
  [[nodiscard]] std::vector<HostSpan> spans() const;

 private:
  HostProfiler();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point epoch_;
  std::map<std::thread::id, int> tids_;
  std::vector<HostSpan> spans_;
};

/// RAII section timer: records a HostSpan for its lifetime and accumulates
/// the elapsed host seconds into the metrics timer of the same name
/// (Domain::kHost).  Costs one atomic load when the profiler and metrics
/// are both disabled.
class ScopedHostTimer {
 public:
  explicit ScopedHostTimer(std::string_view name);
  ~ScopedHostTimer();
  ScopedHostTimer(const ScopedHostTimer&) = delete;
  ScopedHostTimer& operator=(const ScopedHostTimer&) = delete;

 private:
  bool active_ = false;
  std::string name_;
  double begin_us_ = 0.0;
};

/// RAII enable + clear for tests and harnesses, mirroring ScopedMetrics.
class ScopedHostProfile {
 public:
  ScopedHostProfile() : saved_(HostProfiler::instance().enabled()) {
    HostProfiler::instance().clear();
    HostProfiler::instance().set_enabled(true);
  }
  ~ScopedHostProfile() { HostProfiler::instance().set_enabled(saved_); }
  ScopedHostProfile(const ScopedHostProfile&) = delete;
  ScopedHostProfile& operator=(const ScopedHostProfile&) = delete;

 private:
  bool saved_;
};

}  // namespace hprs::obs
