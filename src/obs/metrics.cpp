#include "obs/metrics.hpp"

#include <algorithm>

namespace hprs::obs {

Metrics& Metrics::instance() {
  static Metrics metrics;
  return metrics;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.clear();
}

void Metrics::add(std::string_view name, std::uint64_t delta, Domain domain,
                  int rank) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), MetricValue{}).first;
    it->second.kind = MetricKind::kCounter;
    it->second.domain = domain;
  }
  MetricValue& m = it->second;
  m.count += delta;
  if (rank >= 0) {
    const auto r = static_cast<std::size_t>(rank);
    if (m.per_rank.size() <= r) m.per_rank.resize(r + 1, 0);
    m.per_rank[r] += delta;
  }
}

void Metrics::gauge_max(std::string_view name, double value, Domain domain) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), MetricValue{}).first;
    it->second.kind = MetricKind::kGauge;
    it->second.domain = domain;
  }
  it->second.value = std::max(it->second.value, value);
}

void Metrics::time_add(std::string_view name, double seconds) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), MetricValue{}).first;
    it->second.kind = MetricKind::kTimer;
    it->second.domain = Domain::kHost;
  }
  it->second.value += seconds;
  ++it->second.count;
}

Metrics::Snapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  out.reserve(metrics_.size());
  for (const auto& [name, value] : metrics_) {
    out.emplace_back(name, value);
  }
  return out;  // std::map iterates name-sorted
}

Metrics::Snapshot Metrics::stable_subset(const Snapshot& snapshot) {
  Snapshot out;
  for (const auto& entry : snapshot) {
    if (entry.second.domain == Domain::kStable) out.push_back(entry);
  }
  return out;
}

}  // namespace hprs::obs
