#include "obs/host_profile.hpp"

#include <algorithm>
#include <tuple>

#include "obs/metrics.hpp"

namespace hprs::obs {

HostProfiler& HostProfiler::instance() {
  static HostProfiler profiler;
  return profiler;
}

HostProfiler::HostProfiler() : epoch_(std::chrono::steady_clock::now()) {}

void HostProfiler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  tids_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

double HostProfiler::now_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto d = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(d).count();
}

void HostProfiler::record(std::string_view name, double begin_us,
                          double end_us) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      tids_.emplace(std::this_thread::get_id(), static_cast<int>(tids_.size()));
  (void)inserted;
  spans_.push_back(HostSpan{std::string(name), it->second, begin_us, end_us});
}

std::vector<HostSpan> HostProfiler::spans() const {
  std::vector<HostSpan> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(), [](const HostSpan& a, const HostSpan& b) {
    return std::tie(a.begin_us, a.tid, a.name) <
           std::tie(b.begin_us, b.tid, b.name);
  });
  return out;
}

ScopedHostTimer::ScopedHostTimer(std::string_view name) {
  auto& profiler = HostProfiler::instance();
  // Metrics::time_add re-checks its own enabled gate, so a timer is live
  // whenever either sink wants the measurement.
  active_ = profiler.enabled() || Metrics::instance().enabled();
  if (!active_) return;
  name_ = std::string(name);
  begin_us_ = profiler.now_us();
}

ScopedHostTimer::~ScopedHostTimer() {
  if (!active_) return;
  auto& profiler = HostProfiler::instance();
  const double end_us = profiler.now_us();
  profiler.record(name_, begin_us_, end_us);
  Metrics::instance().time_add(name_, (end_us - begin_us_) * 1e-6);
}

}  // namespace hprs::obs
