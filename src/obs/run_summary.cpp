#include "obs/run_summary.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hprs::obs {
namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string number_token(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void RunSummary::set_count(std::string_view key, std::uint64_t value) {
  entries_[std::string(key)] = std::to_string(value);
}

void RunSummary::set_number(std::string_view key, double value) {
  entries_[std::string(key)] = number_token(value);
}

void RunSummary::set_bool(std::string_view key, bool value) {
  entries_[std::string(key)] = value ? "true" : "false";
}

void RunSummary::set_string(std::string_view key, std::string_view value) {
  entries_[std::string(key)] = json_escape(value);
}

std::string RunSummary::to_json() const {
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  for (const auto& [key, token] : entries_) {  // std::map: sorted keys
    if (!first) os << ",\n";
    first = false;
    os << "  " << json_escape(key) << ": " << token;
  }
  os << "\n}\n";
  return os.str();
}

bool RunSummary::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

void add_run_report(RunSummary& summary, std::string_view prefix,
                    const vmpi::RunReport& report) {
  const std::string p = std::string(prefix) + ".";
  summary.set_number(p + "total_s", report.total_time);
  summary.set_number(p + "com_s", report.com());
  summary.set_number(p + "seq_s", report.seq());
  summary.set_number(p + "par_s", report.par());
  summary.set_number(p + "imbalance_all", report.imbalance_all());
  summary.set_number(p + "imbalance_minus_root", report.imbalance_minus_root());
  summary.set_count(p + "bytes_moved", report.total_bytes_moved());
  summary.set_count(p + "flops", report.total_flops());
  summary.set_count(p + "ranks", report.ranks.size());
  summary.set_count(p + "fault_events", report.fault_events.size());
  const vmpi::RecoveryStats& rec = report.recovery;
  if (rec.crashes != 0 || rec.detections != 0 || rec.messages_lost != 0 ||
      rec.total_overhead_s() > 0.0) {
    summary.set_number(p + "recovery.detection_s", rec.detection_s);
    summary.set_number(p + "recovery.redistribution_s", rec.redistribution_s);
    summary.set_number(p + "recovery.recomputed_s", rec.recomputed_s);
    summary.set_count(p + "recovery.recomputed_flops", rec.recomputed_flops);
    summary.set_count(p + "recovery.crashes",
                      static_cast<std::uint64_t>(rec.crashes));
    summary.set_count(p + "recovery.detections",
                      static_cast<std::uint64_t>(rec.detections));
    summary.set_count(p + "recovery.messages_lost", rec.messages_lost);
  }
}

void add_metrics(RunSummary& summary, std::string_view prefix,
                 const Metrics::Snapshot& snapshot, bool include_host) {
  const std::string p = std::string(prefix) + ".metrics.";
  for (const auto& [name, value] : snapshot) {
    if (value.domain == Domain::kStable) {
      switch (value.kind) {
        case MetricKind::kCounter:
          summary.set_count(p + name, value.count);
          break;
        case MetricKind::kGauge:
          summary.set_number(p + name, value.value);
          break;
        case MetricKind::kTimer:
          // Timers are forced to Domain::kHost at creation; unreachable.
          break;
      }
    } else if (include_host) {
      // "host" in the key routes these through report_diff's threshold
      // comparison instead of exact equality.
      switch (value.kind) {
        case MetricKind::kCounter:
          summary.set_count(p + name + ".host_count", value.count);
          break;
        case MetricKind::kGauge:
          summary.set_number(p + name + ".host_level", value.value);
          break;
        case MetricKind::kTimer:
          summary.set_number(p + name + ".host_s", value.value);
          break;
      }
    }
  }
}

}  // namespace hprs::obs
