// Lightweight run-telemetry registry: named counters, gauges, and timers
// published by the vmpi engine, the fiber executor, the fault-tolerant
// master/worker loop, the algorithm runners, and the kernel scratch arenas.
//
// Two properties drive the design:
//
//  * Near-zero cost when disabled.  Every mutating call checks one relaxed
//    atomic and returns; hot code (the engine, ScratchArena) additionally
//    accumulates into plain per-run members and publishes once per run, so
//    the registry mutex is never taken on a per-operation path.
//
//  * A deterministic, golden-comparable core.  Metrics are tagged with a
//    Domain: kStable values derive only from virtual time, flop/byte
//    counts, or protocol decisions, so they are bit-identical across runs,
//    host schedules, and both executor modes (tests/obs_metrics_test.cpp);
//    kHost values (wall-clock timers, wakeup counts, queue depths) describe
//    the host execution and may legitimately vary.  Run summaries
//    (obs/run_summary.hpp) embed only the stable subset; tools/report_diff
//    compares stable fields exactly and host-time fields by threshold.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hprs::obs {

/// Who may legitimately change a metric's value between two identical runs.
enum class Domain : std::uint8_t {
  kStable,  ///< virtual-time / count domain: bit-identical across schedules
  kHost,    ///< wall-clock / host-scheduling domain: varies run to run
};

enum class MetricKind : std::uint8_t {
  kCounter,  ///< monotonically increasing integer (count / bytes / flops)
  kGauge,    ///< high-water mark kept with max()
  kTimer,    ///< accumulated seconds plus a sample count
};

struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  Domain domain = Domain::kStable;
  std::uint64_t count = 0;  ///< counter total, or timer sample count
  double value = 0.0;       ///< gauge level or accumulated timer seconds
  /// Optional per-rank breakdown of a counter (slot r sums the deltas
  /// reported for rank r; `count` keeps the aggregate over all ranks).
  std::vector<std::uint64_t> per_rank;

  friend bool operator==(const MetricValue&, const MetricValue&) = default;
};

/// Process-wide metrics registry.  Disabled (and empty) until a harness
/// opts in with set_enabled(true); see the header comment for the cost and
/// determinism contracts.
class Metrics {
 public:
  [[nodiscard]] static Metrics& instance();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every recorded metric (the enabled flag is left alone).
  void reset();

  /// Adds `delta` to the counter `name`, creating it on first use.  When
  /// `rank` is non-negative the delta is also recorded in the counter's
  /// per-rank breakdown.  No-op while disabled.
  void add(std::string_view name, std::uint64_t delta,
           Domain domain = Domain::kStable, int rank = -1);

  /// Raises the gauge `name` to at least `value` (high-water semantics).
  void gauge_max(std::string_view name, double value,
                 Domain domain = Domain::kStable);

  /// Accumulates `seconds` into the timer `name` and bumps its sample
  /// count.  Timers describe host time, so they are always Domain::kHost.
  void time_add(std::string_view name, double seconds);

  /// Name-sorted copy of every recorded metric.
  using Snapshot = std::vector<std::pair<std::string, MetricValue>>;
  [[nodiscard]] Snapshot snapshot() const;

  /// The golden-comparable subset: every Domain::kStable entry.
  [[nodiscard]] static Snapshot stable_subset(const Snapshot& snapshot);

 private:
  Metrics() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, MetricValue, std::less<>> metrics_;
};

/// RAII enable + reset for tests and harnesses: clears the registry, turns
/// collection on, and restores the previous enabled state on destruction.
class ScopedMetrics {
 public:
  ScopedMetrics() : saved_(Metrics::instance().enabled()) {
    Metrics::instance().reset();
    Metrics::instance().set_enabled(true);
  }
  ~ScopedMetrics() { Metrics::instance().set_enabled(saved_); }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  bool saved_;
};

}  // namespace hprs::obs
