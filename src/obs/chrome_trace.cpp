#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <string_view>

#include "vmpi/trace.hpp"

namespace hprs::obs {
namespace {

// Fixed-format double for JSON: enough digits to be lossless for the
// microsecond timestamps we emit, locale-independent via snprintf.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void meta(std::ostringstream& os, bool& first, int pid, int tid,
          std::string_view kind, std::string_view name) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"ph":"M","pid":)" << pid << R"(,"tid":)" << tid << R"(,"name":")"
     << kind << R"(","args":{"name":")" << escape(name) << R"("}})";
}

std::string_view fault_name(vmpi::FaultEventKind kind) {
  switch (kind) {
    case vmpi::FaultEventKind::kCrash: return "crash";
    case vmpi::FaultEventKind::kDetection: return "detection";
    case vmpi::FaultEventKind::kMessageLoss: return "message_loss";
  }
  return "fault";
}

}  // namespace

std::string chrome_trace_json(const vmpi::RunReport& report,
                              const std::vector<HostSpan>& host_spans) {
  return chrome_trace_json(report, std::vector<TraceTrackGroup>{},
                           host_spans);
}

std::string chrome_trace_json(const vmpi::RunReport& report,
                              const std::vector<TraceTrackGroup>& groups,
                              const std::vector<HostSpan>& host_spans) {
  constexpr int kVirtualPid = 0;
  constexpr int kHostPid = 1;
  constexpr int kFirstGroupPid = 2;
  // First group (input order) owning rank activity that starts at `begin`.
  const auto group_pid = [&](int rank, double begin) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const TraceTrackGroup& grp = groups[g];
      if (begin >= grp.begin_s && begin < grp.end_s &&
          std::find(grp.members.begin(), grp.members.end(), rank) !=
              grp.members.end()) {
        return kFirstGroupPid + static_cast<int>(g);
      }
    }
    return kVirtualPid;
  };
  std::ostringstream os;
  os << "{\n\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  bool first = true;

  // -- Metadata: name the two processes and every track we will emit into.
  meta(os, first, kVirtualPid, 0, "process_name", "vmpi virtual time");
  for (std::size_t r = 0; r < report.ranks.size(); ++r) {
    std::string label = "rank " + std::to_string(r);
    if (static_cast<int>(r) == report.root) label += " (root)";
    meta(os, first, kVirtualPid, static_cast<int>(r), "thread_name", label);
  }
  // Asynchronous staging copies get their own lane per rank (tid offset past
  // any real rank id) so Perfetto shows the DMA span *beside* the rank's
  // compute spans -- the stage/compute overlap is the point of the tiled
  // streaming driver.
  constexpr int kStageLaneOffset = 1 << 20;
  {
    std::set<int> stage_ranks;
    for (const vmpi::TraceEvent& ev : report.trace) {
      if (ev.kind == vmpi::TraceKind::kStage) stage_ranks.insert(ev.rank);
    }
    for (int r : stage_ranks) {
      meta(os, first, kVirtualPid, r + kStageLaneOffset, "thread_name",
           "rank " + std::to_string(r) + " stage pipe");
    }
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const TraceTrackGroup& grp = groups[g];
    const int pid = kFirstGroupPid + static_cast<int>(g);
    meta(os, first, pid, 0, "process_name", grp.label);
    for (std::size_t m = 0; m < grp.members.size(); ++m) {
      std::string label = "rank " + std::to_string(grp.members[m]);
      if (m == 0) label += " (leader)";
      meta(os, first, pid, grp.members[m], "thread_name", label);
    }
  }
  if (!host_spans.empty()) {
    meta(os, first, kHostPid, 0, "process_name", "host time");
    std::set<int> tids;
    for (const HostSpan& s : host_spans) tids.insert(s.tid);
    for (int tid : tids) {
      meta(os, first, kHostPid, tid, "thread_name",
           "host thread " + std::to_string(tid));
    }
  }

  // -- Virtual timeline: one complete ("X") event per TraceEvent, with the
  // flop/byte amount attached as an argument.  Virtual seconds map to
  // microseconds 1:1 in magnitude (1 virtual s == 1 trace s).
  for (const vmpi::TraceEvent& ev : report.trace) {
    const bool stage = ev.kind == vmpi::TraceKind::kStage;
    os << ",\n"
       << R"(  {"ph":"X","pid":)"
       << (stage ? kVirtualPid : group_pid(ev.rank, ev.begin))
       << R"(,"tid":)" << (stage ? ev.rank + kStageLaneOffset : ev.rank)
       << R"(,"name":")" << vmpi::to_string(ev.kind) << R"(","cat":"virtual")"
       << R"(,"ts":)" << fmt(ev.begin * 1e6) << R"(,"dur":)"
       << fmt((ev.end - ev.begin) * 1e6) << R"(,"args":{"amount":)"
       << ev.amount << "}}";
  }

  // -- Group instants (e.g. checkpoint/restart marks): pinned to the
  // group's leader lane so they line up with the job's activity.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const TraceTrackGroup& grp = groups[g];
    if (grp.members.empty()) continue;
    const int pid = kFirstGroupPid + static_cast<int>(g);
    for (const TraceInstant& mark : grp.instants) {
      os << ",\n"
         << R"(  {"ph":"i","pid":)" << pid << R"(,"tid":)" << grp.members[0]
         << R"(,"name":")" << escape(mark.label) << R"(","cat":"resilience")"
         << R"(,"s":"t","ts":)" << fmt(mark.t_s * 1e6) << R"(,"args":{}})";
    }
  }

  // -- Fault log: instant events pinned to the affected rank's track.
  for (const vmpi::FaultEvent& ev : report.fault_events) {
    const int tid = ev.rank >= 0 ? ev.rank : 0;
    os << ",\n"
       << R"(  {"ph":"i","pid":)" << kVirtualPid << R"(,"tid":)" << tid
       << R"(,"name":")" << fault_name(ev.kind) << R"(","cat":"fault")"
       << R"(,"s":"t","ts":)" << fmt(ev.time_s * 1e6) << R"(,"args":{"peer":)"
       << ev.peer << R"(,"attempt":)" << ev.attempt << "}}";
  }

  // -- Host timeline: the ScopedHostTimer sections, already host-µs.
  for (const HostSpan& s : host_spans) {
    os << ",\n"
       << R"(  {"ph":"X","pid":)" << kHostPid << R"(,"tid":)" << s.tid
       << R"(,"name":")" << escape(s.name) << R"(","cat":"host","ts":)"
       << fmt(s.begin_us) << R"(,"dur":)" << fmt(s.end_us - s.begin_us)
       << ",\"args\":{}}";
  }

  os << "\n]}\n";
  return os.str();
}

}  // namespace hprs::obs
