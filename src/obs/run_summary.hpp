// Canonical machine-readable run summary: a flat, sorted key -> value map
// serialized as one stable JSON object, the unit of comparison for the CI
// regression gate (tools/report_diff vs bench/golden/).
//
// Values are stored as pre-rendered JSON tokens (integers as decimal,
// doubles as %.17g so they round-trip exactly, strings quoted/escaped).
// That makes the comparison rule trivial and robust: two summaries agree on
// a stable key iff the raw tokens are character-identical -- no parsing, no
// epsilon, no formatting drift.  Host-time keys (any key containing
// "host") are the one exception; report_diff parses those and compares by
// threshold, because wall-clock numbers legitimately vary run to run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "vmpi/stats.hpp"

namespace hprs::obs {

/// Flat key -> JSON-token map with deterministic serialization.
class RunSummary {
 public:
  void set_count(std::string_view key, std::uint64_t value);
  void set_number(std::string_view key, double value);
  void set_bool(std::string_view key, bool value);
  void set_string(std::string_view key, std::string_view value);

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

  /// One JSON object, keys sorted, one `"key": token` pair per line.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::map<std::string, std::string> entries_;  // key -> raw JSON token
};

/// Records the deterministic core of a RunReport under `prefix.`:
/// total/com/seq/par seconds, imbalance ratios, bytes, flops, rank count,
/// fault-event count, and the recovery decomposition when non-trivial.
void add_run_report(RunSummary& summary, std::string_view prefix,
                    const vmpi::RunReport& report);

/// Records every Domain::kStable metric of `snapshot` under
/// `prefix.metrics.<name>` (counters/gauges; timers are host-domain and
/// are recorded only when `include_host` is set, as `...<name>.host_s`).
void add_metrics(RunSummary& summary, std::string_view prefix,
                 const Metrics::Snapshot& snapshot, bool include_host = false);

}  // namespace hprs::obs
