// Chrome trace-event (chrome://tracing / Perfetto "legacy JSON") exporter.
//
// Two timelines are emitted into one file so they can be inspected side by
// side in ui.perfetto.dev:
//
//  * pid 0, "vmpi virtual time": one track per rank, built from the
//    engine's virtual-time TraceEvent stream (Options::enable_trace).
//    Timestamps are virtual seconds scaled to microseconds, so 1 trace
//    second reads as 1 second in the viewer.  Fault-log entries become
//    instant events on the affected rank's track.
//
//  * pid 1, "host time": one track per host thread, built from the
//    HostSpan stream of obs::HostProfiler (the ScopedHostTimer sections
//    around the engine).  Omitted when no spans are supplied.
//
// The format is the stable subset documented by the Trace Event Format
// spec: "X" complete events (ts + dur), "i" instants, and "M" metadata
// records naming processes and threads.
#pragma once

#include <string>
#include <vector>

#include "obs/host_profile.hpp"
#include "vmpi/stats.hpp"

namespace hprs::obs {

/// A labelled instant on a track group's leader lane (virtual seconds),
/// e.g. the resilient scheduler's "checkpoint" / "restart" marks.
struct TraceInstant {
  std::string label;
  double t_s = 0.0;
};

/// A named group of rank tracks over a virtual-time window.  Virtual-time
/// events of `members` that begin inside [begin_s, end_s) are re-homed
/// from the shared pid-0 timeline into the group's own trace process
/// (pid 2 + group index), so each scheduler job renders as one collapsible
/// track group (e.g. "job:3/PCT") in the viewer.  Groups are matched in
/// input order; events covered by no group stay on the shared timeline.
struct TraceTrackGroup {
  std::string label;
  /// World ranks of the group, ascending; members[0] is the leader.
  std::vector<int> members;
  double begin_s = 0.0;
  double end_s = 0.0;
  /// Instant marks rendered on the group's leader lane ("i" events).
  std::vector<TraceInstant> instants;
};

/// Renders `report` (and optionally a host-profiler span list) as a Chrome
/// trace-event JSON document.  Deterministic for a fixed report + spans:
/// events are emitted in input order with fixed formatting.
[[nodiscard]] std::string chrome_trace_json(
    const vmpi::RunReport& report,
    const std::vector<HostSpan>& host_spans = {});

/// As above, but additionally re-homes windowed rank activity into one
/// trace process per TraceTrackGroup (see TraceTrackGroup).
[[nodiscard]] std::string chrome_trace_json(
    const vmpi::RunReport& report, const std::vector<TraceTrackGroup>& groups,
    const std::vector<HostSpan>& host_spans);

}  // namespace hprs::obs
