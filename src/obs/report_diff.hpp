// Comparator for RunSummary JSON documents -- the decision procedure of
// the CI bench-smoke gate (tools/report_diff, scripts/bench_smoke.sh).
//
// Policy (see DESIGN.md §10):
//  * Stable keys must match as raw character-for-character JSON tokens.
//    Virtual time is deterministic, so anything short of identity is a
//    regression (or an intentional change, regenerated with
//    scripts/bench_smoke.sh --update).
//  * Keys whose name contains "host" carry wall-clock measurements and are
//    compared numerically with generous relative/absolute tolerances --
//    they gate only order-of-magnitude performance collapses.
//  * A key present on one side only is always a failure: summaries are
//    schemas as much as values.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/snapshot.hpp"

namespace hprs::obs {

/// Parses the flat one-object JSON produced by RunSummary::to_json into
/// key -> raw-value-token.  Returns false (and sets `error`) on documents
/// that are not in that shape; this is a reader for our own writer, not a
/// general JSON parser.
bool parse_flat_json(std::string_view text,
                     std::map<std::string, std::string>& out,
                     std::string& error);

/// True when `key` is compared by threshold instead of exact identity.
[[nodiscard]] bool is_host_time_key(std::string_view key);

struct DiffOptions {
  /// Host values pass when within `rel_tol` RELATIVE factor of golden
  /// (actual <= golden * rel_tol and golden <= actual * rel_tol) or within
  /// `abs_tol` absolute difference.  Defaults are deliberately loose: the
  /// gate exists to catch collapses, not jitter.
  double host_rel_tol = 10.0;
  double host_abs_tol = 5.0;
};

struct DiffEntry {
  std::string key;
  std::string golden;  ///< raw token, or "<missing>"
  std::string actual;  ///< raw token, or "<missing>"
  std::string reason;
};

struct DiffResult {
  std::vector<DiffEntry> mismatches;
  std::size_t keys_compared = 0;
  [[nodiscard]] bool ok() const { return mismatches.empty(); }
};

[[nodiscard]] DiffResult diff_summaries(
    const std::map<std::string, std::string>& golden,
    const std::map<std::string, std::string>& actual,
    const DiffOptions& options = {});

/// Reconstructs a SnapshotTimeline from the flat map written by
/// snapshot_timeline_flat/json ("<scope>|<seq>|<name>" keys).  Token shape
/// decides the pvar class (decimal integer -> counter, decimal-marked ->
/// level) and the "host" substring decides the domain -- enough for replay
/// display and re-export; timer sample counts are not representable in the
/// flat form and come back as levels.  Keys outside the timeline shape
/// (other than the "_timeline." header) fail the parse.
bool timeline_from_flat(const std::map<std::string, std::string>& flat,
                        SnapshotTimeline& out, std::string& error);

struct TimelineDiffResult {
  DiffResult diff;
  /// When !diff.ok(): a one-line localization of the earliest diverging
  /// sample in virtual time, e.g.
  ///   "first divergence at t=0.125 s: scope \"job:3/atdca\" sample 7,
  ///    key \"p2p.wire_bytes\"".
  std::string first_divergence;
  [[nodiscard]] bool ok() const { return diff.ok(); }
};

/// diff_summaries over a full snapshot timeline: stable series must be
/// character-exact, host series thresholded -- so a counter that drifts
/// mid-run fails even when end-state totals agree.  On mismatch, the
/// earliest divergence is localized by the golden timeline's timestamps.
[[nodiscard]] TimelineDiffResult diff_timelines(
    const std::map<std::string, std::string>& golden,
    const std::map<std::string, std::string>& actual,
    const DiffOptions& options = {});

}  // namespace hprs::obs
