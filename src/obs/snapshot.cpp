#include "obs/snapshot.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <tuple>

namespace hprs::obs {
namespace {

std::string number_token(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  std::string token = buf;
  // Force a decimal marker so a re-parse can tell a level ("3.0") from a
  // counter ("3") by the token shape alone.
  if (token.find_first_of(".eE") == std::string::npos &&
      token.find_first_not_of("-0123456789") == std::string::npos) {
    token += ".0";
  }
  return token;
}

std::string sample_key_prefix(const SnapshotSample& sample) {
  char seq[16];
  std::snprintf(seq, sizeof(seq), "%06d", sample.seq);
  return sample.scope + "|" + seq + "|";
}

// Applies the same host-name rule as pvars_from_metrics: the report_diff
// threshold rule keys on the substring "host".
std::string exported_name(const Pvar& var) {
  if (var.domain == Domain::kHost &&
      var.name.find("host") == std::string::npos) {
    return var.name + ".host";
  }
  return var.name;
}

}  // namespace

int SnapshotTimeline::append(std::string_view scope, double t_s,
                             const PvarSet& pvars) {
  SnapshotSample sample;
  sample.scope = sanitize_scope(scope);
  sample.t_s = t_s;
  sample.pvars = pvars;
  auto it = next_seq_.find(sample.scope);
  if (it == next_seq_.end()) it = next_seq_.emplace(sample.scope, 0).first;
  sample.seq = it->second++;
  const int seq = sample.seq;
  samples_.push_back(std::move(sample));
  return seq;
}

void SnapshotTimeline::append_sample(SnapshotSample sample) {
  sample.scope = sanitize_scope(sample.scope);
  auto it = next_seq_.find(sample.scope);
  if (it == next_seq_.end()) it = next_seq_.emplace(sample.scope, 0).first;
  it->second = std::max(it->second, sample.seq + 1);
  samples_.push_back(std::move(sample));
}

void SnapshotTimeline::clear() {
  samples_.clear();
  next_seq_.clear();
}

void SnapshotTimeline::finalize() {
  std::sort(samples_.begin(), samples_.end(),
            [](const SnapshotSample& a, const SnapshotSample& b) {
              return std::tie(a.t_s, a.scope, a.seq) <
                     std::tie(b.t_s, b.scope, b.seq);
            });
}

std::string sanitize_scope(std::string_view scope) {
  std::string out(scope);
  for (char& c : out) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '|' || c == '"' || c == '\\' || c == ',' || u < 0x21 ||
        u == 0x7f) {
      c = '_';
    }
  }
  return out;
}

std::map<std::string, std::string> snapshot_timeline_flat(
    const SnapshotTimeline& timeline) {
  std::map<std::string, std::string> flat;
  std::map<std::string, int, std::less<>> scopes;
  for (const SnapshotSample& sample : timeline.samples()) {
    ++scopes[sample.scope];
    const std::string prefix = sample_key_prefix(sample);
    flat[prefix + "t_s"] = number_token(sample.t_s);
    for (const Pvar& var : sample.pvars.sorted()) {
      std::string& token = flat[prefix + exported_name(var)];
      if (var.cls == PvarClass::kCounter) {
        token = std::to_string(var.count);
      } else {
        token = number_token(var.value);
      }
    }
  }
  flat["_timeline.samples"] = std::to_string(timeline.size());
  flat["_timeline.scopes"] = std::to_string(scopes.size());
  return flat;
}

std::string snapshot_timeline_json(const SnapshotTimeline& timeline) {
  const auto flat = snapshot_timeline_flat(timeline);
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  for (const auto& [key, token] : flat) {
    if (!first) os << ",\n";
    first = false;
    os << "  \"" << key << "\": " << token;
  }
  os << "\n}\n";
  return os.str();
}

std::string snapshot_timeline_csv(const SnapshotTimeline& timeline) {
  std::ostringstream os;
  os << "scope,seq,t_s,name,class,domain,count,value\n";
  for (const SnapshotSample& sample : timeline.samples()) {
    const std::string t = number_token(sample.t_s);
    for (const Pvar& var : sample.pvars.sorted()) {
      os << sample.scope << ',' << sample.seq << ',' << t << ','
         << exported_name(var) << ',' << to_string(var.cls) << ','
         << (var.domain == Domain::kStable ? "stable" : "host") << ','
         << var.count << ',' << number_token(var.value) << '\n';
    }
  }
  return os.str();
}

}  // namespace hprs::obs
