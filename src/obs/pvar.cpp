#include "obs/pvar.hpp"

#include <algorithm>

namespace hprs::obs {

const char* to_string(PvarClass cls) {
  switch (cls) {
    case PvarClass::kCounter:
      return "counter";
    case PvarClass::kLevel:
      return "level";
    case PvarClass::kTimer:
      return "timer";
  }
  return "?";
}

void PvarSet::counter(std::string_view name, std::uint64_t total,
                      Domain domain) {
  vars_.push_back(Pvar{std::string(name), PvarClass::kCounter, domain, total,
                       0.0});
  dirty_ = true;
}

void PvarSet::level(std::string_view name, double value, Domain domain) {
  vars_.push_back(Pvar{std::string(name), PvarClass::kLevel, domain, 0,
                       value});
  dirty_ = true;
}

void PvarSet::timer(std::string_view name, double seconds,
                    std::uint64_t samples) {
  vars_.push_back(Pvar{std::string(name), PvarClass::kTimer, Domain::kHost,
                       samples, seconds});
  dirty_ = true;
}

const std::vector<Pvar>& PvarSet::sorted() const {
  if (dirty_) {
    std::sort(vars_.begin(), vars_.end(),
              [](const Pvar& a, const Pvar& b) { return a.name < b.name; });
    dirty_ = false;
  }
  return vars_;
}

PvarSet pvars_from_metrics(const Metrics::Snapshot& snapshot,
                           bool include_host) {
  PvarSet set;
  for (const auto& [name, value] : snapshot) {
    if (value.domain == Domain::kHost && !include_host) continue;
    std::string pvar_name = name;
    if (value.domain == Domain::kHost &&
        name.find("host") == std::string::npos) {
      // Route host values into report_diff's threshold rule, which keys on
      // the substring "host".
      pvar_name += ".host";
    }
    switch (value.kind) {
      case MetricKind::kCounter:
        set.counter(pvar_name, value.count, value.domain);
        break;
      case MetricKind::kGauge:
        set.level(pvar_name, value.value, value.domain);
        break;
      case MetricKind::kTimer:
        set.timer(pvar_name, value.value, value.count);
        break;
    }
  }
  return set;
}

}  // namespace hprs::obs
