// Deterministic virtual-time snapshot service for the pvar counter plane.
//
// The engine (and the scheduler's dispatcher) sample their stable pvars on
// a seeded, jittered virtual-time cadence -- the same idiom PR 8 uses for
// checkpoint scheduling -- and append the samples to a per-run
// SnapshotTimeline carried in vmpi::RunReport.  Because every sample is
// taken at a point that is itself a pure function of the virtual protocol
// (a collective boundary, or a deterministic dispatcher loop event), and
// the cadence depends only on (seed, scope id), the whole timeline of
// stable pvars is reproducible bit for bit across runs and across host
// execution modes.  That is what lets CI golden-gate the *time series*,
// not just end-of-run totals: a counter that drifts mid-run and recovers
// by the end still diverges at some sample.
//
// Export formats:
//   - snapshot_timeline_json(): a flat one-key-per-line JSON object in the
//     RunSummary dialect (parse_flat_json-compatible), key
//     "<scope>|<seq>|<pvar>", suitable for report_diff timeline gating.
//   - snapshot_timeline_csv(): long-form rows for spreadsheets / pandas.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "obs/pvar.hpp"

namespace hprs::obs {

/// Default snapshot seed; override via SnapshotConfig::seed to decorrelate
/// snapshot points from other seeded cadences (e.g. checkpoints).
inline constexpr std::uint64_t kDefaultSnapshotSeed = 0x5eedbea7'0b5e55edULL;

/// Snapshot service configuration, carried in vmpi::Engine::Options.
/// Disabled by default: enabling snapshots never changes virtual-time
/// results, but keeping the default off preserves existing host-time
/// behaviour and report contents byte for byte.
struct SnapshotConfig {
  bool enabled = false;
  double interval_s = 0.05;  ///< mean virtual-time sampling interval
  std::uint64_t seed = kDefaultSnapshotSeed;
};

/// Seeded jittered virtual-time cadence (the PR 8 checkpoint idiom): each
/// gap is interval * (0.75 + 0.5u) with u drawn from a SplitMix64 stream
/// keyed on (seed, scope id), so two scopes sample at decorrelated points
/// yet every run reproduces the exact same schedule.
class SnapshotCadence {
 public:
  SnapshotCadence() = default;
  SnapshotCadence(double interval_s, std::uint64_t seed,
                  std::uint64_t scope_id)
      : interval_s_(interval_s), rng_(seed ^ scope_id) {
    due_s_ = next_gap();
  }

  /// Virtual time at/after which the next sample is due.
  [[nodiscard]] double due_s() const { return due_s_; }

  /// True when `now_s` has reached the next sample point.
  [[nodiscard]] bool due(double now_s) const { return now_s >= due_s_; }

  /// Advances the schedule past `now_s`.  A long gap between visits skips
  /// the intermediate points rather than emitting a burst of stale
  /// samples; the skipped points are still drawn so the schedule stays a
  /// pure function of (seed, scope id).
  void advance_past(double now_s) {
    while (due_s_ <= now_s) due_s_ += next_gap();
  }

 private:
  double next_gap() {
    const double u =
        static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;  // [0, 1)
    return interval_s_ * (0.75 + 0.5 * u);
  }

  double interval_s_ = 0.05;
  double due_s_ = 0.0;
  SplitMix64 rng_{0};
};

/// One timeline entry: a pvar sample taken in `scope` at virtual time
/// `t_s`.  `seq` numbers the samples of a scope in append order, so a
/// scope's series stays ordered even if two samples share a timestamp.
struct SnapshotSample {
  std::string scope;
  int seq = 0;
  double t_s = 0.0;
  PvarSet pvars;

  friend bool operator==(const SnapshotSample&, const SnapshotSample&) =
      default;
};

/// Append-only per-run snapshot timeline.  Thread safety is the caller's
/// concern (the engine appends under its own mutex).  finalize() imposes
/// the canonical (t_s, scope, seq) order so concurrent scopes serialize
/// deterministically in the export.
class SnapshotTimeline {
 public:
  /// Appends one sample for `scope`, assigning the scope's next seq.
  int append(std::string_view scope, double t_s, const PvarSet& pvars);

  void append_sample(SnapshotSample sample);

  [[nodiscard]] const std::vector<SnapshotSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  void clear();

  /// Sorts samples into the canonical (t_s, scope, seq) order.
  void finalize();

  friend bool operator==(const SnapshotTimeline& a, const SnapshotTimeline& b) {
    return a.samples_ == b.samples_;
  }

 private:
  std::vector<SnapshotSample> samples_;
  std::map<std::string, int, std::less<>> next_seq_;
};

/// Makes a scope label safe for use inside flat-JSON keys and CSV cells:
/// '|', '"', '\\', ',' and whitespace/control bytes become '_'.
[[nodiscard]] std::string sanitize_scope(std::string_view scope);

/// Flat key->token map of the timeline, RunSummary-token dialect:
///   "<scope>|<seq %06d>|t_s"     -> %.17g virtual timestamp
///   "<scope>|<seq %06d>|<pvar>"  -> counter: decimal integer
///                                   level/timer: %.17g with a forced
///                                   decimal marker (disambiguates the
///                                   class on re-parse)
/// plus "_timeline.samples" / "_timeline.scopes" header counts.  Host-
/// domain pvars whose names lack "host" get ".host" appended so the
/// report_diff threshold rule applies.
[[nodiscard]] std::map<std::string, std::string> snapshot_timeline_flat(
    const SnapshotTimeline& timeline);

/// The flat map rendered as a one-key-per-line JSON object (same dialect
/// as RunSummary::to_json, parseable by parse_flat_json).
[[nodiscard]] std::string snapshot_timeline_json(
    const SnapshotTimeline& timeline);

/// Long-form CSV: "scope,seq,t_s,name,class,domain,count,value".
[[nodiscard]] std::string snapshot_timeline_csv(
    const SnapshotTimeline& timeline);

}  // namespace hprs::obs
