// Bounded, reusable worker pool for the blocked kernel fast paths.
//
// Determinism contract (DESIGN.md section 12): a parallel region hands the
// same body to `n` workers, each identified by a stable worker index; the
// kernels partition their output tiles by that index alone, every worker
// writes a disjoint slice of the output, and any cross-worker reduction is
// folded by the caller in ascending index order after the region completes.
// Which OS thread executes which index is irrelevant to the result, so
// threaded kernels are bit-identical to the serial fast path at every
// thread count -- HPRS_KERNEL_THREADS changes wall-clock time only, never
// results or the virtual-time model.
//
// The pool is process-wide and lazy: no threads exist until a region with
// more than one worker runs, threads are reused across regions, and the
// pool never exceeds the largest worker count ever requested.  Concurrent
// regions (e.g. several engine ranks inside threaded kernels at once)
// serialize on a region lock; bodies therefore never observe each other.
#pragma once

#include <cstddef>
#include <functional>

namespace hprs::linalg {

/// Number of workers threaded kernel regions use.  First call latches the
/// HPRS_KERNEL_THREADS environment variable (validated integer >= 1;
/// default 1 == serial); set_kernel_threads overrides it afterwards.
[[nodiscard]] std::size_t kernel_threads();
void set_kernel_threads(std::size_t n);

/// RAII override of the kernel thread count (tests and benchmarks).
class ScopedKernelThreads {
 public:
  explicit ScopedKernelThreads(std::size_t n);
  ~ScopedKernelThreads();
  ScopedKernelThreads(const ScopedKernelThreads&) = delete;
  ScopedKernelThreads& operator=(const ScopedKernelThreads&) = delete;

 private:
  std::size_t saved_;
};

/// Runs body(worker, workers) on workers = min(kernel_threads(),
/// max_workers) participants; the calling thread is worker 0 and blocks
/// until every worker returns.  workers == 1 runs inline with no pool
/// traffic.  An exception thrown by any body is rethrown here (first one
/// wins) after all workers finish.
void parallel_region(std::size_t max_workers,
                     const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace hprs::linalg
