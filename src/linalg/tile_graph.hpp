// Tile DAG for the streamed BLAS3 sweeps (PCT covariance, ATDCA/OSP).
//
// A partition's row block is cut into row-strip tiles (TileDesc); a sweep
// over the block becomes a small dependency graph of per-tile nodes that a
// driver executes in a deterministic ready order.  The canonical shape is
// the two-stage stream pipeline of Dongarra/Pineau/Robert's master-worker
// steady state: stage(k) copies tile k onto the device while compute(k-1)
// is still running, so accelerated ranks hide their staging latency behind
// compute.  The graph itself is pure bookkeeping -- no engine types leak in
// here -- which keeps it unit-testable and reusable from both the
// collective and the fault-tolerant schedules.
//
// Determinism contract: run() executes every node exactly once, respecting
// the edges, and breaks ties among ready nodes by (generation, kind with
// stage before compute, tile, insertion id).  That order is a pure function
// of the graph, so tiled sweeps are reproducible across runs, executor
// modes, and thread counts.  In the pipeline shape it interleaves
//   stage 0, stage 1, compute 0, stage 2, compute 1, ...
// i.e. the next tile's copy is issued before the previous tile's kernel,
// which is exactly the overlap the streaming driver charges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace hprs::linalg {

/// One row-strip tile of a partition's owned block.
struct TileDesc {
  std::size_t index = 0;      ///< position within the plan (0-based)
  std::size_t row_begin = 0;  ///< first image row of the tile
  std::size_t row_end = 0;    ///< one past the last image row
  std::size_t bytes = 0;      ///< host->device wire bytes of the tile

  [[nodiscard]] std::size_t rows() const { return row_end - row_begin; }
};

/// Cuts [row_begin, row_end) into tiles of `tile_rows` rows (the last tile
/// may be ragged).  `bytes_per_row` sizes the staged copy of each tile.
/// An empty range yields no tiles; tile_rows must be >= 1.
[[nodiscard]] std::vector<TileDesc> make_row_tiles(std::size_t row_begin,
                                                   std::size_t row_end,
                                                   std::size_t bytes_per_row,
                                                   std::size_t tile_rows);

/// Resolves the tile height for a partition of `owned_rows` rows:
/// `configured` when positive, else the HPRS_TILE_ROWS environment variable
/// (validated, 0 = unset), else an automatic split into at most
/// kAutoTilesPerPartition tiles.  Always >= 1.
inline constexpr std::size_t kAutoTilesPerPartition = 4;
[[nodiscard]] std::size_t resolve_tile_rows(std::size_t configured,
                                            std::size_t owned_rows);

/// True when the streaming tile driver (per-tile host->device staging
/// overlapped with compute) is enabled by default; latches HPRS_TILE_STREAM
/// on first call (default off -- the historic upfront-staging charge).
/// set_tile_stream overrides afterwards.
[[nodiscard]] bool tile_stream_enabled();
void set_tile_stream(bool enabled);

/// RAII override of the streaming default for a scope (tests, benches).
class ScopedTileStream {
 public:
  explicit ScopedTileStream(bool enabled);
  ~ScopedTileStream();
  ScopedTileStream(const ScopedTileStream&) = delete;
  ScopedTileStream& operator=(const ScopedTileStream&) = delete;

 private:
  bool saved_;
};

/// Node kinds, ordered so staging wins ready-queue ties within a
/// generation (the copy for tile k+1 must be issued before the kernel for
/// tile k to create overlap).
enum class TileNodeKind : std::uint8_t { kStage = 0, kCompute = 1 };

struct TileNode {
  TileNodeKind kind = TileNodeKind::kCompute;
  std::size_t tile = 0;        ///< TileDesc::index the node operates on
  std::size_t generation = 0;  ///< pipeline step used for ready ordering
};

/// A small static DAG of tile nodes with a deterministic ready queue.
class TileGraph {
 public:
  /// Adds a node and returns its id (also its insertion order).
  std::size_t add_node(TileNodeKind kind, std::size_t tile,
                       std::size_t generation);
  /// Declares that `from` must execute before `to`.
  void add_edge(std::size_t from, std::size_t to);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Executes every node exactly once, dependencies first; ready ties break
  /// by (generation, kind, tile, id).  Throws if the edges form a cycle.
  void run(const std::function<void(const TileNode&)>& visit) const;

  /// The two-stage stream pipeline over `tiles` tiles: stage(k) at
  /// generation k, compute(k) at generation k+1, with edges
  /// stage(k) -> compute(k), stage(k) -> stage(k+1) (the staging pipe is
  /// serial), and compute(k) -> compute(k+1) (accumulators extend in tile
  /// order, which is what keeps tiled sums bit-identical to monolithic).
  [[nodiscard]] static TileGraph stream_pipeline(std::size_t tiles);

 private:
  std::vector<TileNode> nodes_;
  std::vector<std::vector<std::size_t>> out_edges_;
  std::vector<std::size_t> in_degree_;
};

}  // namespace hprs::linalg
