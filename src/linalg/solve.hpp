// Direct solvers for the small symmetric systems arising in spectral
// unmixing: Gram systems (U^T U) y = b with t <= ~30 and covariance-sized
// SPD systems up to bands x bands.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hprs::linalg {

/// Cholesky factorization L L^T of a symmetric positive-definite matrix.
/// Throws hprs::Error if the matrix is not (numerically) SPD.
class Cholesky {
 public:
  explicit Cholesky(const Matrix& spd);

  /// Solves A x = b using the stored factor.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Allocation-free solve into a caller-provided buffer (b and x may not
  /// alias).  Arithmetic is identical to solve(); the hot per-pixel sweeps
  /// use this with a reusable scratch span.
  void solve_into(std::span<const double> b, std::span<double> x) const;

  [[nodiscard]] std::size_t dim() const { return l_.rows(); }

  /// log(det A) -- occasionally useful for conditioning diagnostics.
  [[nodiscard]] double log_det() const;

 private:
  Matrix l_;  // lower triangular factor
};

/// Gauss-Jordan inverse with partial pivoting.  Used where an explicit
/// inverse is genuinely required (the paper writes the OSP projector as
/// I - U (U^T U)^{-1} U^T); throws on singular input.
[[nodiscard]] Matrix gauss_jordan_inverse(const Matrix& a);

/// Solves the general square system A x = b by Gaussian elimination with
/// partial pivoting; throws on singular input.
[[nodiscard]] std::vector<double> solve_linear(const Matrix& a,
                                               std::span<const double> b);

}  // namespace hprs::linalg
