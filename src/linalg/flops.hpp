// Analytic floating-point operation counts for the library's kernels.
//
// The simulated cluster charges virtual compute time as
//   seconds = flops * 1e-6 * cycle_time_secs_per_megaflop,
// so every kernel in linalg/ and hsi/ has a companion cost formula here.
// Formulas count multiply and add as one flop each (divides and square
// roots as one flop as well -- the paper's cycle-time model is per-megaflop
// and does not distinguish instruction classes).  Unit tests in
// tests/linalg_flops_test.cpp pin these formulas against hand counts so the
// timing model cannot silently drift from the implementations.
#pragma once

#include <cstdint>

namespace hprs::linalg::flops {

using Count = std::uint64_t;

/// Dot product / squared norm of n-vectors: n multiplies + n-1 adds ~ 2n.
constexpr Count dot(Count n) { return 2 * n; }

/// Euclidean norm: dot + sqrt.
constexpr Count norm(Count n) { return dot(n) + 1; }

/// axpy over n elements: n multiplies + n adds.
constexpr Count axpy(Count n) { return 2 * n; }

/// Elementwise subtract / add / scale.
constexpr Count elementwise(Count n) { return n; }

/// Dense matvec of an (r x c) matrix: r dot products.
constexpr Count matvec(Count r, Count c) { return r * dot(c); }

/// Dense matmul (r x k) * (k x c).
constexpr Count matmul(Count r, Count k, Count c) { return r * c * dot(k); }

/// Gram matrix U^T U for U of size (r x c): symmetric, c*(c+1)/2 dots of
/// length r.
constexpr Count gram(Count r, Count c) { return c * (c + 1) / 2 * dot(r); }

/// Gauss-Jordan inverse of an n x n system: ~2n^3.
constexpr Count gauss_jordan_inverse(Count n) { return 2 * n * n * n; }

/// Cholesky factorization of an n x n SPD matrix: ~n^3/3.
constexpr Count cholesky(Count n) { return n * n * n / 3 + 2 * n * n; }

/// Triangular solve against a factored n x n system (two sweeps).
constexpr Count cholesky_solve(Count n) { return 2 * n * n; }

/// One cyclic Jacobi sweep on an n x n symmetric matrix: n(n-1)/2 rotations,
/// each touching two rows and two columns (~8n flops) plus the 2x2
/// eigenproblem (~12 flops).
constexpr Count jacobi_sweep(Count n) {
  return n * (n - 1) / 2 * (8 * n + 12);
}

/// Spectral angle distance between two n-band pixels: three dots, one
/// divide, one sqrt-pair, one acos (counted as 4 bookkeeping flops).
constexpr Count sad(Count n) { return 3 * dot(n) + 4; }

/// Squared norm of the orthogonal-subspace projection of one n-vector
/// against t targets, given a factored Gram matrix:
///   score = x.x - b . G^-1 b  with  b = U x,
/// i.e. t dots of length n, one t x t solve, the x.x dot, and the final
/// b . z inner product.
constexpr Count osp_score(Count n, Count t) {
  return t * dot(n) + cholesky_solve(t) + dot(n) + dot(t);
}

/// One unconstrained least-squares unmixing of an n-band pixel against t
/// endmembers given factored normal equations: U^T x + solve.
constexpr Count ucls(Count n, Count t) { return t * dot(n) + cholesky_solve(t); }

/// Fully constrained LS via active-set clamping: the correlation vector and
/// pixel norm (t+1 dots of length n), a first sum-to-one round reusing the
/// cached full-set factorization (two triangular solves), `rounds - 1`
/// clamped re-solves with fresh subset factorizations, and the final
/// quadratic-form reconstruction error.
constexpr Count fcls(Count n, Count t, Count rounds) {
  return t * dot(n) + dot(n) + 2 * cholesky_solve(t) + 6 * t +
         (rounds - 1) * (cholesky(t) + 2 * cholesky_solve(t) + 6 * t) +
         t * dot(t) + 2 * t;
}

}  // namespace hprs::linalg::flops
