// Vector kernels over contiguous spans.
//
// Hyperspectral pixels are stored as float spectra (224 bands for AVIRIS);
// all reductions accumulate in double to keep the iterative algorithms
// (orthogonal projections, least-squares residuals) numerically stable over
// hundreds of accumulated terms.
#pragma once

#include <cmath>
#include <span>

#include "common/error.hpp"

namespace hprs::linalg {

/// Dot product with double accumulation.  Cost: flops::dot(n).
template <typename T, typename U>
[[nodiscard]] double dot(std::span<const T> a, std::span<const U> b) {
  HPRS_ASSERT(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

/// Squared Euclidean norm.  Cost: flops::dot(n).
template <typename T>
[[nodiscard]] double norm_sq(std::span<const T> a) {
  return dot<T, T>(a, a);
}

/// Euclidean norm.  Cost: flops::dot(n) + 1.
template <typename T>
[[nodiscard]] double norm(std::span<const T> a) {
  return std::sqrt(norm_sq(a));
}

/// y += alpha * x.  Cost: flops::axpy(n).
template <typename T>
void axpy(double alpha, std::span<const T> x, std::span<double> y) {
  HPRS_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * static_cast<double>(x[i]);
  }
}

/// out = a - b.  Cost: n.
template <typename T>
void sub(std::span<const T> a, std::span<const T> b, std::span<double> out) {
  HPRS_ASSERT(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<double>(a[i]) - static_cast<double>(b[i]);
  }
}

/// Scales in place.  Cost: n.
inline void scale(double alpha, std::span<double> x) {
  for (auto& v : x) v *= alpha;
}

}  // namespace hprs::linalg
