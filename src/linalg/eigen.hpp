// Symmetric eigensolver for the PCT covariance step.
//
// The principal component transform needs all eigenpairs of the bands x
// bands covariance matrix (224 x 224 for AVIRIS), sorted by decreasing
// eigenvalue.  A cyclic Jacobi iteration is simple, unconditionally stable
// for symmetric input, and more than fast enough at this size; it also has a
// clean analytic flop count (flops::jacobi_sweep) for the virtual-time model.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace hprs::linalg {

struct EigenDecomposition {
  /// Eigenvalues in decreasing order.
  std::vector<double> values;
  /// Row k of `vectors` is the unit eigenvector for values[k].
  Matrix vectors;
  /// Number of full Jacobi sweeps performed (exposed so callers can charge
  /// the exact virtual compute cost).
  int sweeps = 0;
};

/// Computes the full eigendecomposition of a symmetric matrix by cyclic
/// Jacobi rotations.  `tol` bounds the off-diagonal Frobenius norm relative
/// to the diagonal; `max_sweeps` guards termination.
[[nodiscard]] EigenDecomposition jacobi_eigen(const Matrix& symmetric,
                                              double tol = 1e-12,
                                              int max_sweeps = 64);

}  // namespace hprs::linalg
