#include "linalg/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/env.hpp"
#include "common/error.hpp"
#include "linalg/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace hprs::linalg {

namespace {

bool reference_from_env() {
  const char* v = std::getenv("HPRS_REFERENCE_KERNELS");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "on") == 0;
}

std::atomic<bool>& reference_flag() {
  static std::atomic<bool> flag{reference_from_env()};
  return flag;
}

std::atomic<bool>& mixed_flag() {
  static std::atomic<bool> flag{env_int_or("HPRS_MIXED_PRECISION", 0, 0, 1) !=
                                0};
  return flag;
}

}  // namespace

bool use_reference_kernels() {
  return reference_flag().load(std::memory_order_relaxed);
}

void set_reference_kernels(bool reference) {
  reference_flag().store(reference, std::memory_order_relaxed);
}

ScopedKernelPath::ScopedKernelPath(bool reference)
    : saved_(use_reference_kernels()) {
  set_reference_kernels(reference);
}

ScopedKernelPath::~ScopedKernelPath() { set_reference_kernels(saved_); }

ScratchArena::~ScratchArena() {
  if (high_water_ > 0) {
    obs::Metrics::instance().gauge_max("linalg.scratch_high_water_doubles",
                                       static_cast<double>(high_water_));
  }
}

std::span<double> ScratchArena::take(std::size_t n) {
  live_ += n;
  if (live_ > high_water_) high_water_ = live_;
  while (chunk_ < chunks_.size() && used_ + n > chunks_[chunk_].size()) {
    ++chunk_;
    used_ = 0;
  }
  if (chunk_ == chunks_.size()) {
    chunks_.emplace_back(std::max(n, kMinChunk));
    used_ = 0;
  }
  std::span<double> s{chunks_[chunk_].data() + used_, n};
  used_ += n;
  return s;
}

namespace {

/// Shared implementation of dot_strip: 4 pixels x 2 matrix rows of
/// independent accumulators, reduction index k strictly ascending in each.
/// Processes pixels [p_begin, p_end); tile ownership is by 4-pixel groups,
/// so p_begin is always a multiple of 4 and only the final group (p_end ==
/// m) may be ragged.  Every pixel's accumulators are private to one call,
/// so any partition over groups yields bit-identical results.
template <typename T>
void dot_strip_range(const Matrix& u, const T* x, std::size_t p_begin,
                     std::size_t p_end, std::span<double> out) {
  const std::size_t t = u.rows();
  const std::size_t n = u.cols();
  std::size_t p = p_begin;
  for (; p + 4 <= p_end; p += 4) {
    const T* x0 = x + (p + 0) * n;
    const T* x1 = x + (p + 1) * n;
    const T* x2 = x + (p + 2) * n;
    const T* x3 = x + (p + 3) * n;
    std::size_t i = 0;
    for (; i + 2 <= t; i += 2) {
      const double* u0 = u.row(i).data();
      const double* u1 = u.row(i + 1).data();
      double a00 = 0.0, a01 = 0.0, a10 = 0.0, a11 = 0.0;
      double a20 = 0.0, a21 = 0.0, a30 = 0.0, a31 = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double b0 = u0[k];
        const double b1 = u1[k];
        const double v0 = static_cast<double>(x0[k]);
        const double v1 = static_cast<double>(x1[k]);
        const double v2 = static_cast<double>(x2[k]);
        const double v3 = static_cast<double>(x3[k]);
        a00 += b0 * v0;
        a01 += b1 * v0;
        a10 += b0 * v1;
        a11 += b1 * v1;
        a20 += b0 * v2;
        a21 += b1 * v2;
        a30 += b0 * v3;
        a31 += b1 * v3;
      }
      out[(p + 0) * t + i] = a00;
      out[(p + 0) * t + i + 1] = a01;
      out[(p + 1) * t + i] = a10;
      out[(p + 1) * t + i + 1] = a11;
      out[(p + 2) * t + i] = a20;
      out[(p + 2) * t + i + 1] = a21;
      out[(p + 3) * t + i] = a30;
      out[(p + 3) * t + i + 1] = a31;
    }
    for (; i < t; ++i) {
      const double* u0 = u.row(i).data();
      double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double b0 = u0[k];
        a0 += b0 * static_cast<double>(x0[k]);
        a1 += b0 * static_cast<double>(x1[k]);
        a2 += b0 * static_cast<double>(x2[k]);
        a3 += b0 * static_cast<double>(x3[k]);
      }
      out[(p + 0) * t + i] = a0;
      out[(p + 1) * t + i] = a1;
      out[(p + 2) * t + i] = a2;
      out[(p + 3) * t + i] = a3;
    }
  }
  for (; p < p_end; ++p) {
    const T* xp = x + p * n;
    for (std::size_t i = 0; i < t; ++i) {
      const double* u0 = u.row(i).data();
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        acc += u0[k] * static_cast<double>(xp[k]);
      }
      out[p * t + i] = acc;
    }
  }
}

/// Contiguous 4-pixel-group ownership: worker w takes groups
/// [w*per, (w+1)*per) of the ceil(m/4) groups.  Disjoint output rows, so
/// the partition cannot perturb any element's addition chain.
template <typename T>
void dot_strip_impl(const Matrix& u, const T* x, std::size_t m,
                    std::span<double> out) {
  HPRS_ASSERT(out.size() >= m * u.rows());
  const std::size_t groups = (m + 3) / 4;
  parallel_region(groups, [&](std::size_t worker, std::size_t workers) {
    const std::size_t per = (groups + workers - 1) / workers;
    const std::size_t g0 = worker * per;
    const std::size_t g1 = std::min(groups, g0 + per);
    if (g0 >= g1) return;
    dot_strip_range(u, x, g0 * 4, std::min(m, g1 * 4), out);
  });
}

}  // namespace

void dot_strip(const Matrix& u, const float* x, std::size_t m,
               std::span<double> out) {
  dot_strip_impl(u, x, m, out);
}

void dot_strip(const Matrix& u, const double* x, std::size_t m,
               std::span<double> out) {
  dot_strip_impl(u, x, m, out);
}

void norm_sq_strip(const float* x, std::size_t m, std::size_t n,
                   std::span<double> out) {
  HPRS_ASSERT(out.size() >= m);
  // Each pixel's accumulator is independent; contiguous pixel blocks per
  // worker keep the out[] writes on disjoint cache lines.
  parallel_region(m, [&](std::size_t worker, std::size_t workers) {
    const std::size_t per = (m + workers - 1) / workers;
    const std::size_t p0 = worker * per;
    const std::size_t p1 = std::min(m, p0 + per);
    for (std::size_t p = p0; p < p1; ++p) {
      const float* xp = x + p * n;
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double v = static_cast<double>(xp[k]);
        acc += v * v;
      }
      out[p] = acc;
    }
  });
}

namespace {

// Widest vector ISA the build understands, resolved per-process via ifunc.
// Only plain mulpd/addpd widen -- the avx2 clone has no FMA, so every lane
// performs the same IEEE operations as the default clone and results stay
// bit-identical across dispatch targets.
//
// Disabled under TSan: the loader runs the ifunc resolver while applying
// IRELATIVE relocations, before .preinit_array has called __tsan_init, and
// GCC instruments the generated resolver -- its __tsan_func_entry prologue
// then dereferences the not-yet-initialized thread state and the binary
// segfaults before main.  The clones are bit-identical, so falling back to
// the default kernel only changes instrumented-run speed.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
#define HPRS_TARGET_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define HPRS_TARGET_CLONES
#endif

HPRS_TARGET_CLONES
void syrk_tri_update_impl(const double* x, std::size_t m, std::size_t n,
                          double* tri, std::size_t worker,
                          std::size_t workers) {
  constexpr std::size_t kTi = 4;
  constexpr std::size_t kTj = 4;
  const auto offset = [n](std::size_t i) {
    return i * n - i * (i - 1) / 2;  // start of row i in the packed triangle
  };
  // Row-tile ownership, strided by worker: tile i0 owns triangle rows
  // [i0, i1), a disjoint slice of the packed array, and every element's
  // p-chain lives entirely inside one tile -- so any stride partition is
  // bit-identical to the serial sweep.  Striding (rather than contiguous
  // blocks) balances the triangle: early tiles carry long rectangular
  // remainders, late tiles short ones.
  for (std::size_t i0 = worker * kTi; i0 < n; i0 += workers * kTi) {
    const std::size_t i1 = std::min(i0 + kTi, n);
    // Triangular wedge j in [i, i1): too ragged to tile, done scalar.
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t j = i; j < i1; ++j) {
        double acc = tri[offset(i) + (j - i)];
        for (std::size_t p = 0; p < m; ++p) {
          const double* r = x + p * n;
          acc += r[i] * r[j];
        }
        tri[offset(i) + (j - i)] = acc;
      }
    }
    // Rectangular remainder j in [i1, n): full register tiles.
    for (std::size_t j0 = i1; j0 < n; j0 += kTj) {
      const std::size_t j1 = std::min(j0 + kTj, n);
      if (i1 - i0 == kTi && j1 - j0 == kTj) {
        double acc[kTi][kTj];
        for (std::size_t a = 0; a < kTi; ++a) {
          for (std::size_t b = 0; b < kTj; ++b) {
            acc[a][b] = tri[offset(i0 + a) + (j0 + b) - (i0 + a)];
          }
        }
        for (std::size_t p = 0; p < m; ++p) {
          const double* r = x + p * n;
          const double d0 = r[i0 + 0];
          const double d1 = r[i0 + 1];
          const double d2 = r[i0 + 2];
          const double d3 = r[i0 + 3];
          for (std::size_t b = 0; b < kTj; ++b) {
            const double e = r[j0 + b];
            acc[0][b] += d0 * e;
            acc[1][b] += d1 * e;
            acc[2][b] += d2 * e;
            acc[3][b] += d3 * e;
          }
        }
        for (std::size_t a = 0; a < kTi; ++a) {
          for (std::size_t b = 0; b < kTj; ++b) {
            tri[offset(i0 + a) + (j0 + b) - (i0 + a)] = acc[a][b];
          }
        }
      } else {
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t j = j0; j < j1; ++j) {
            double acc = tri[offset(i) + (j - i)];
            for (std::size_t p = 0; p < m; ++p) {
              const double* r = x + p * n;
              acc += r[i] * r[j];
            }
            tri[offset(i) + (j - i)] = acc;
          }
        }
      }
    }
  }
}

}  // namespace

void syrk_tri_update(const double* x, std::size_t m, std::size_t n,
                     double* tri) {
  const std::size_t tiles = (n + 3) / 4;
  parallel_region(tiles, [&](std::size_t worker, std::size_t workers) {
    syrk_tri_update_impl(x, m, n, tri, worker, workers);
  });
}

bool use_mixed_precision() {
  return mixed_flag().load(std::memory_order_relaxed);
}

void set_mixed_precision(bool enabled) {
  mixed_flag().store(enabled, std::memory_order_relaxed);
}

ScopedMixedPrecision::ScopedMixedPrecision(bool enabled)
    : saved_(use_mixed_precision()) {
  set_mixed_precision(enabled);
}

ScopedMixedPrecision::~ScopedMixedPrecision() { set_mixed_precision(saved_); }

bool mixed_tile_admissible(double amax, std::size_t chain_len) {
  // float unit roundoff; the worst-case relative residual of a length-L
  // float accumulation chain is ~eps32 * L.
  constexpr double kEps32 = 1.1920928955078125e-07;
  constexpr double kRelTol = 1e-2;
  // Partial sums can reach amax^2 * L; keep orders of magnitude below
  // FLT_MAX (~3.4e38) so no chain can round to infinity.
  constexpr double kOverflowGuard = 1e30;
  if (!(amax >= 0.0) || chain_len == 0) return false;  // NaN bound: fallback
  const double chain = static_cast<double>(chain_len);
  if (kEps32 * chain > kRelTol) return false;
  return amax * amax * chain <= kOverflowGuard;
}

namespace {

/// Same disjoint row-tile ownership as the double kernel: triangle rows
/// [i0, i0 + 4) per worker stride, every element's p-chain private to one
/// worker -- so the float result is bit-identical at every thread count.
void syrk_tri_update_f32_impl(const float* x, std::size_t m, std::size_t n,
                              float* tri, std::size_t worker,
                              std::size_t workers) {
  constexpr std::size_t kTi = 4;
  const auto offset = [n](std::size_t i) { return i * n - i * (i - 1) / 2; };
  for (std::size_t i0 = worker * kTi; i0 < n; i0 += workers * kTi) {
    const std::size_t i1 = std::min(i0 + kTi, n);
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        float acc = tri[offset(i) + (j - i)];
        for (std::size_t p = 0; p < m; ++p) {
          const float* r = x + p * n;
          acc += r[i] * r[j];
        }
        tri[offset(i) + (j - i)] = acc;
      }
    }
  }
}

}  // namespace

void syrk_tri_update_f32(const float* x, std::size_t m, std::size_t n,
                         float* tri) {
  const std::size_t tiles = (n + 3) / 4;
  parallel_region(tiles, [&](std::size_t worker, std::size_t workers) {
    syrk_tri_update_f32_impl(x, m, n, tri, worker, workers);
  });
}

}  // namespace hprs::linalg
