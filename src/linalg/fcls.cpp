#include "linalg/fcls.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "linalg/vec.hpp"

namespace hprs::linalg {

namespace {

/// Solves the sum-to-one constrained problem via the Lagrangian closed form
///   a = a_u - G^-1 1 (1^T a_u - 1) / (1^T G^-1 1)
/// given the unconstrained factorization plus a precomputed G^-1 1 and its
/// sum (pixel-independent, so callers working against a fixed endmember set
/// compute them once).
std::vector<double> scls_with_ginv1(const Cholesky& chol,
                                    std::span<const double> b,
                                    std::span<const double> ginv1,
                                    double denom) {
  const std::size_t m = b.size();
  const std::vector<double> au = chol.solve(b);
  const double sum_au = std::accumulate(au.begin(), au.end(), 0.0);
  HPRS_REQUIRE(std::abs(denom) > 1e-300, "degenerate sum-to-one system");
  const double lambda = (sum_au - 1.0) / denom;
  std::vector<double> a(m);
  for (std::size_t i = 0; i < m; ++i) a[i] = au[i] - lambda * ginv1[i];
  return a;
}

std::vector<double> scls_with_factor(const Cholesky& chol,
                                     std::span<const double> b) {
  const std::vector<double> ones(b.size(), 1.0);
  const std::vector<double> ginv1 = chol.solve(ones);
  const double denom = std::accumulate(ginv1.begin(), ginv1.end(), 0.0);
  return scls_with_ginv1(chol, b, ginv1, denom);
}

/// Sum-to-one solve restricted to `active` endmembers (fresh factorization
/// of the Gram submatrix).
std::vector<double> scls_on_subset(const Matrix& gram,
                                   std::span<const double> corr,
                                   const std::vector<std::size_t>& active) {
  const std::size_t m = active.size();
  Matrix g(m, m);
  std::vector<double> b(m);
  for (std::size_t i = 0; i < m; ++i) {
    b[i] = corr[active[i]];
    for (std::size_t j = 0; j < m; ++j) {
      g(i, j) = gram(active[i], active[j]);
    }
  }
  return scls_with_factor(Cholesky(g), b);
}

}  // namespace

Unmixer::Unmixer(const Matrix& signatures)
    : signatures_(signatures),
      gram_(signatures.multiply(signatures.transposed())),
      gram_factor_(gram_) {
  HPRS_REQUIRE(signatures_.rows() > 0, "unmixer requires >= 1 endmember");
  const std::vector<double> ones(endmember_count(), 1.0);
  ginv_ones_ = gram_factor_.solve(ones);
  ginv_ones_sum_ =
      std::accumulate(ginv_ones_.begin(), ginv_ones_.end(), 0.0);
}

std::vector<double> Unmixer::correlation_vector(
    std::span<const float> pixel) const {
  HPRS_REQUIRE(pixel.size() == band_count(), "pixel band count mismatch");
  std::vector<double> corr(endmember_count());
  for (std::size_t i = 0; i < endmember_count(); ++i) {
    corr[i] = dot<double, float>(signatures_.row(i), pixel);
  }
  return corr;
}

double Unmixer::explicit_error_sq(std::span<const float> pixel,
                                  std::span<const double> abundances) const {
  std::vector<double> recon(band_count(), 0.0);
  for (std::size_t i = 0; i < endmember_count(); ++i) {
    axpy<double>(abundances[i], signatures_.row(i), recon);
  }
  double err = 0.0;
  for (std::size_t b = 0; b < band_count(); ++b) {
    const double d = static_cast<double>(pixel[b]) - recon[b];
    err += d * d;
  }
  return err;
}

double Unmixer::quadratic_error_sq(double pixel_norm_sq,
                                   std::span<const double> corr,
                                   std::span<const double> abundances) const {
  // ||x - M a||^2 = x.x - 2 a.b + a^T G a with b = M^T x, G = M^T M.
  double err = pixel_norm_sq - 2.0 * dot<double, double>(abundances, corr);
  const std::size_t t = endmember_count();
  for (std::size_t i = 0; i < t; ++i) {
    err += abundances[i] * dot<double, double>(gram_.row(i), abundances);
  }
  return err > 0.0 ? err : 0.0;  // clamp FP cancellation noise
}

UnmixResult Unmixer::ucls(std::span<const float> pixel) const {
  const std::vector<double> corr = correlation_vector(pixel);
  UnmixResult r;
  r.abundances = gram_factor_.solve(corr);
  r.error_sq = quadratic_error_sq(norm_sq(pixel), corr, r.abundances);
  return r;
}

UnmixResult Unmixer::scls(std::span<const float> pixel) const {
  const std::vector<double> corr = correlation_vector(pixel);
  UnmixResult r;
  r.abundances =
      scls_with_ginv1(gram_factor_, corr, ginv_ones_, ginv_ones_sum_);
  r.error_sq = quadratic_error_sq(norm_sq(pixel), corr, r.abundances);
  return r;
}

UnmixResult Unmixer::fcls(std::span<const float> pixel) const {
  return fcls_with_corr(correlation_vector(pixel), norm_sq(pixel));
}

UnmixResult Unmixer::fcls_with_corr(std::span<const double> corr,
                                    double pixel_norm_sq) const {
  std::vector<std::size_t> active(endmember_count());
  std::iota(active.begin(), active.end(), std::size_t{0});

  UnmixResult r;
  // Active-set loop in the Heinz-Chang style: every endmember whose
  // abundance goes negative is clamped out and the sum-to-one problem is
  // re-solved on the survivors.  The active set shrinks every round, so at
  // most t-1 rounds run; in practice two or three suffice.  The first
  // round works on the full endmember set and reuses the factorization and
  // G^-1 1 vector cached at construction, which is what makes per-pixel
  // unmixing cheap.
  while (true) {
    const std::vector<double> a =
        active.size() == endmember_count()
            ? scls_with_ginv1(gram_factor_, corr, ginv_ones_, ginv_ones_sum_)
            : scls_on_subset(gram_, corr, active);
    std::vector<std::size_t> survivors;
    survivors.reserve(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (a[i] >= -1e-12) survivors.push_back(active[i]);
    }
    if (survivors.size() == active.size() || survivors.empty() ||
        active.size() == 1) {
      r.abundances.assign(endmember_count(), 0.0);
      for (std::size_t i = 0; i < active.size(); ++i) {
        r.abundances[active[i]] = std::max(a[i], 0.0);
      }
      break;
    }
    active = std::move(survivors);
    ++r.iterations;
  }
  // Renormalize away the clamping residue so the sum-to-one constraint holds
  // exactly.
  const double s =
      std::accumulate(r.abundances.begin(), r.abundances.end(), 0.0);
  if (s > 0.0) {
    for (auto& v : r.abundances) v /= s;
  }
  r.error_sq = quadratic_error_sq(pixel_norm_sq, corr, r.abundances);
  return r;
}

}  // namespace hprs::linalg
