// Blocked (BLAS3-style) fast-path kernels for the host-side numerics.
//
// Every kernel here is a drop-in replacement for a scalar reference loop
// elsewhere in the library, engineered so that each accumulated output
// element is produced by the *same ordered chain of floating-point
// additions* as the reference: register tiles widen across independent
// output elements (instruction-level parallelism, cache blocking) while the
// reduction dimension always runs ascending inside each accumulator.  The
// fast paths therefore change wall-clock time only -- results are
// bit-identical, and the virtual-time model (linalg/flops.hpp) is charged
// exactly as before.
//
// The reference paths are kept selectable at runtime (environment variable
// HPRS_REFERENCE_KERNELS=1, or set_reference_kernels()) so property tests
// can pin the two implementations against each other and benchmarks can
// report before/after numbers from one binary.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hprs::linalg {

/// True when the scalar reference kernels should be used instead of the
/// blocked fast paths.  First call latches the HPRS_REFERENCE_KERNELS
/// environment variable ("1"/"true"/"on" enable it); set_reference_kernels
/// overrides it afterwards (used by tests and benchmarks).
[[nodiscard]] bool use_reference_kernels();
void set_reference_kernels(bool reference);

/// RAII helper: forces the given kernel path for the current scope.
class ScopedKernelPath {
 public:
  explicit ScopedKernelPath(bool reference);
  ~ScopedKernelPath();
  ScopedKernelPath(const ScopedKernelPath&) = delete;
  ScopedKernelPath& operator=(const ScopedKernelPath&) = delete;

 private:
  bool saved_;
};

/// Bump allocator for the per-rank scratch buffers of the hot sweeps.
/// take() hands out uninitialized spans that stay valid until reset();
/// memory is retained across reset() so steady-state sweeps never touch the
/// heap.  Chunks are stable in memory (a new chunk never moves old ones).
class ScratchArena {
 public:
  ScratchArena() = default;
  /// Publishes the arena's lifetime high-water mark into obs::Metrics
  /// (gauge "linalg.scratch_high_water_doubles", the max over all arenas).
  /// The kernel call sequence is deterministic per rank, so the mark is
  /// Domain::kStable and golden-comparable.
  ~ScratchArena();
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  [[nodiscard]] std::span<double> take(std::size_t n);
  void reset() {
    chunk_ = 0;
    used_ = 0;
    live_ = 0;
  }

  /// Largest number of doubles simultaneously outstanding (between resets)
  /// over this arena's lifetime.
  [[nodiscard]] std::size_t high_water_doubles() const { return high_water_; }

 private:
  static constexpr std::size_t kMinChunk = 1 << 14;  // doubles per chunk
  std::vector<std::vector<double>> chunks_;
  std::size_t chunk_ = 0;  // index of the chunk currently bump-allocated
  std::size_t used_ = 0;   // doubles consumed in chunks_[chunk_]
  std::size_t live_ = 0;   // doubles taken since the last reset
  std::size_t high_water_ = 0;
};

/// out[p * u.rows() + i] = dot(u.row(i), x_p) for the m pixels stored
/// contiguously at x (pixel-major, u.cols() samples each).  This is the
/// BLAS3 form of the per-pixel matvec U * x_p: one strip of pixels amortizes
/// the traversal of U and runs 8 independent accumulator chains.  Each
/// element is bit-identical to linalg::dot on the same operands.
void dot_strip(const Matrix& u, const float* x, std::size_t m,
               std::span<double> out);
void dot_strip(const Matrix& u, const double* x, std::size_t m,
               std::span<double> out);

/// out[p] = norm_sq(x_p) for m contiguous n-sample pixels.
void norm_sq_strip(const float* x, std::size_t m, std::size_t n,
                   std::span<double> out);

/// Rank-m symmetric update of a packed upper triangle:
///   tri[idx(i, j)] += sum_p x[p*n + i] * x[p*n + j]   (j >= i)
/// where idx(i, j) = i*n - i*(i-1)/2 + (j-i), the layout used by the PCT
/// covariance accumulator.  Register-tiled over (i, j); the p-chain of every
/// element extends the value already in tri, so calling this strip after
/// strip is bit-identical to the per-pixel rank-1 reference loop.
void syrk_tri_update(const double* x, std::size_t m, std::size_t n,
                     double* tri);

// --- gated mixed-precision tiles (float accumulate, double fold) ---------
//
// The PLASMA-style mixed path: a tile's syrk update accumulates in float
// into a private float triangle, which the caller folds into the running
// double triangle once per tile.  It changes results (that is the point:
// half the accumulator bandwidth), so it is OFF by default and never
// allowed to touch a golden-compared run; each tile passes an a-priori
// residual bound first and falls back to the double kernel otherwise.

/// True when the mixed-precision tile fast path may be tried.  First call
/// latches HPRS_MIXED_PRECISION (validated 0/1, default 0 = off);
/// set_mixed_precision overrides afterwards.
[[nodiscard]] bool use_mixed_precision();
void set_mixed_precision(bool enabled);

/// RAII override of the mixed-precision gate for a scope.
class ScopedMixedPrecision {
 public:
  explicit ScopedMixedPrecision(bool enabled);
  ~ScopedMixedPrecision();
  ScopedMixedPrecision(const ScopedMixedPrecision&) = delete;
  ScopedMixedPrecision& operator=(const ScopedMixedPrecision&) = delete;

 private:
  bool saved_;
};

/// A-priori accuracy gate for one float-accumulated tile: `amax` bounds the
/// magnitude of the tile's inputs and `chain_len` is the length of each
/// output element's accumulation chain (pixels in the tile).  Admissible
/// when the predicted relative residual eps32 * chain stays within the
/// tolerance AND the partial sums amax^2 * chain keep clear float32
/// headroom; anything else (including NaN bounds) falls back to double.
[[nodiscard]] bool mixed_tile_admissible(double amax, std::size_t chain_len);

/// Float-accumulator companion of syrk_tri_update: same packed layout, same
/// disjoint row-tile ownership across kernel threads (so the result is
/// bit-identical at every thread count), float accumulation chains.  The
/// caller zeroes `tri` per tile and folds it into the double triangle.
void syrk_tri_update_f32(const float* x, std::size_t m, std::size_t n,
                         float* tri);

}  // namespace hprs::linalg
