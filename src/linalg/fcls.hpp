// Linear spectral unmixing: unconstrained, sum-to-one, and fully
// constrained least squares (FCLS).
//
// The Hetero-UFCLS target-detection algorithm (paper Alg. 3) grows a target
// set U and, at every iteration, unmixes each pixel against U under the two
// abundance constraints (non-negativity, sum-to-one), keeping the pixel with
// the largest reconstruction error as the next target.  This file implements
// the unmixing kernel following Heinz & Chang (2001): start from the
// sum-to-one constrained solution and iteratively clamp negative abundances
// to zero, re-solving on the active set.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"

namespace hprs::linalg {

struct UnmixResult {
  /// Abundance per endmember (same order as the rows of the signature
  /// matrix).  Non-negative and summing to one for fcls().
  std::vector<double> abundances;
  /// Squared Euclidean reconstruction error ||x - M a||^2.
  double error_sq = 0.0;
  /// Active-set iterations used (0 when no clamping was needed); exposed so
  /// callers can charge the exact virtual compute cost.
  int iterations = 0;
};

/// Unmixes pixels against a fixed endmember set.  Construction factors the
/// endmember Gram matrix once; per-pixel solves then cost O(t*n + t^2).
class Unmixer {
 public:
  /// `signatures` holds one endmember spectrum per row (t rows, n columns).
  /// Throws if the signatures are linearly dependent (singular Gram).
  explicit Unmixer(const Matrix& signatures);

  [[nodiscard]] std::size_t endmember_count() const {
    return signatures_.rows();
  }
  [[nodiscard]] std::size_t band_count() const { return signatures_.cols(); }

  /// Unconstrained least squares.
  [[nodiscard]] UnmixResult ucls(std::span<const float> pixel) const;

  /// Sum-to-one constrained least squares (abundances may be negative).
  [[nodiscard]] UnmixResult scls(std::span<const float> pixel) const;

  /// Fully constrained least squares: non-negative abundances summing to
  /// one, via active-set clamping.
  [[nodiscard]] UnmixResult fcls(std::span<const float> pixel) const;

  /// Explicit reconstruction error ||x - M a||^2 computed from first
  /// principles.  The unmix methods use the algebraically identical (and
  /// O(t) cheaper) quadratic form x.x - 2 a.b + a^T G a; this method exists
  /// so tests can pin the two against each other.
  [[nodiscard]] double explicit_error_sq(
      std::span<const float> pixel, std::span<const double> abundances) const;

 private:
  [[nodiscard]] std::vector<double> correlation_vector(
      std::span<const float> pixel) const;
  /// Quadratic-form error given the cached Gram matrix.
  [[nodiscard]] double quadratic_error_sq(
      double pixel_norm_sq, std::span<const double> corr,
      std::span<const double> abundances) const;

  Matrix signatures_;      // t x n, one endmember per row
  Matrix gram_;            // t x t
  Cholesky gram_factor_;   // factor of gram_
};

}  // namespace hprs::linalg
