// Linear spectral unmixing: unconstrained, sum-to-one, and fully
// constrained least squares (FCLS).
//
// The Hetero-UFCLS target-detection algorithm (paper Alg. 3) grows a target
// set U and, at every iteration, unmixes each pixel against U under the two
// abundance constraints (non-negativity, sum-to-one), keeping the pixel with
// the largest reconstruction error as the next target.  This file implements
// the unmixing kernel following Heinz & Chang (2001): start from the
// sum-to-one constrained solution and iteratively clamp negative abundances
// to zero, re-solving on the active set.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"

namespace hprs::linalg {

struct UnmixResult {
  /// Abundance per endmember (same order as the rows of the signature
  /// matrix).  Non-negative and summing to one for fcls().
  std::vector<double> abundances;
  /// Squared Euclidean reconstruction error ||x - M a||^2.
  double error_sq = 0.0;
  /// Active-set iterations used (0 when no clamping was needed); exposed so
  /// callers can charge the exact virtual compute cost.
  int iterations = 0;
};

/// Unmixes pixels against a fixed endmember set.  Construction factors the
/// endmember Gram matrix once; per-pixel solves then cost O(t*n + t^2).
class Unmixer {
 public:
  /// `signatures` holds one endmember spectrum per row (t rows, n columns).
  /// Throws if the signatures are linearly dependent (singular Gram).
  explicit Unmixer(const Matrix& signatures);

  [[nodiscard]] std::size_t endmember_count() const {
    return signatures_.rows();
  }
  [[nodiscard]] std::size_t band_count() const { return signatures_.cols(); }

  /// Unconstrained least squares.
  [[nodiscard]] UnmixResult ucls(std::span<const float> pixel) const;

  /// Sum-to-one constrained least squares (abundances may be negative).
  [[nodiscard]] UnmixResult scls(std::span<const float> pixel) const;

  /// Fully constrained least squares: non-negative abundances summing to
  /// one, via active-set clamping.
  [[nodiscard]] UnmixResult fcls(std::span<const float> pixel) const;

  /// FCLS given a precomputed correlation vector b = M^T x and pixel norm
  /// ||x||^2.  This is the strip-sweep entry point: Hetero-UFCLS computes
  /// the correlation vectors of a whole pixel strip as one BLAS3 product
  /// (linalg::dot_strip) and hands each pixel's column here.  Bit-identical
  /// to fcls() on the same pixel.
  [[nodiscard]] UnmixResult fcls_with_corr(std::span<const double> corr,
                                           double pixel_norm_sq) const;

  /// Explicit reconstruction error ||x - M a||^2 computed from first
  /// principles.  The unmix methods use the algebraically identical (and
  /// O(t) cheaper) quadratic form x.x - 2 a.b + a^T G a; this method exists
  /// so tests can pin the two against each other.
  [[nodiscard]] double explicit_error_sq(
      std::span<const float> pixel, std::span<const double> abundances) const;

 private:
  [[nodiscard]] std::vector<double> correlation_vector(
      std::span<const float> pixel) const;
  /// Quadratic-form error given the cached Gram matrix.
  [[nodiscard]] double quadratic_error_sq(
      double pixel_norm_sq, std::span<const double> corr,
      std::span<const double> abundances) const;

  Matrix signatures_;      // t x n, one endmember per row
  Matrix gram_;            // t x t
  Cholesky gram_factor_;   // factor of gram_
  /// G^-1 1 and 1^T G^-1 1 for the full endmember set: pixel-independent,
  /// so the sum-to-one solve of every first active-set round reuses them
  /// instead of re-solving per pixel.
  std::vector<double> ginv_ones_;
  double ginv_ones_sum_ = 0.0;
};

}  // namespace hprs::linalg
