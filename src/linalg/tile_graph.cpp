#include "linalg/tile_graph.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <tuple>

#include "common/env.hpp"
#include "common/error.hpp"

namespace hprs::linalg {

namespace {

std::atomic<int> g_tile_stream{-1};  // -1: env not latched yet

bool tile_stream_from_env() {
  return env_int_or("HPRS_TILE_STREAM", 0, 0, 1) != 0;
}

}  // namespace

std::vector<TileDesc> make_row_tiles(std::size_t row_begin,
                                     std::size_t row_end,
                                     std::size_t bytes_per_row,
                                     std::size_t tile_rows) {
  HPRS_REQUIRE(tile_rows >= 1, "tile_rows must be at least 1");
  std::vector<TileDesc> tiles;
  if (row_end <= row_begin) return tiles;
  tiles.reserve((row_end - row_begin + tile_rows - 1) / tile_rows);
  for (std::size_t r0 = row_begin; r0 < row_end; r0 += tile_rows) {
    const std::size_t r1 = std::min(row_end, r0 + tile_rows);
    tiles.push_back(
        TileDesc{tiles.size(), r0, r1, (r1 - r0) * bytes_per_row});
  }
  return tiles;
}

std::size_t resolve_tile_rows(std::size_t configured,
                              std::size_t owned_rows) {
  if (configured > 0) return configured;
  const auto env = static_cast<std::size_t>(
      env_int_or("HPRS_TILE_ROWS", 0, 0, 1 << 20));
  if (env > 0) return env;
  if (owned_rows == 0) return 1;
  return (owned_rows + kAutoTilesPerPartition - 1) / kAutoTilesPerPartition;
}

bool tile_stream_enabled() {
  int v = g_tile_stream.load(std::memory_order_relaxed);
  if (v < 0) {
    v = tile_stream_from_env() ? 1 : 0;
    g_tile_stream.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_tile_stream(bool enabled) {
  g_tile_stream.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

ScopedTileStream::ScopedTileStream(bool enabled)
    : saved_(tile_stream_enabled()) {
  set_tile_stream(enabled);
}

ScopedTileStream::~ScopedTileStream() { set_tile_stream(saved_); }

std::size_t TileGraph::add_node(TileNodeKind kind, std::size_t tile,
                                std::size_t generation) {
  nodes_.push_back(TileNode{kind, tile, generation});
  out_edges_.emplace_back();
  in_degree_.push_back(0);
  return nodes_.size() - 1;
}

void TileGraph::add_edge(std::size_t from, std::size_t to) {
  HPRS_REQUIRE(from < nodes_.size() && to < nodes_.size(),
               "tile graph edge references an unknown node");
  out_edges_[from].push_back(to);
  ++in_degree_[to];
}

void TileGraph::run(const std::function<void(const TileNode&)>& visit) const {
  // Kahn's algorithm with a deterministic ready set: the key is a pure
  // function of the node, so the execution order depends only on the graph.
  using ReadyKey =
      std::tuple<std::size_t, std::uint8_t, std::size_t, std::size_t>;
  const auto key_of = [this](std::size_t id) {
    const TileNode& n = nodes_[id];
    return ReadyKey{n.generation, static_cast<std::uint8_t>(n.kind), n.tile,
                    id};
  };
  std::set<ReadyKey> ready;
  std::vector<std::size_t> pending = in_degree_;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    if (pending[id] == 0) ready.insert(key_of(id));
  }
  std::size_t executed = 0;
  while (!ready.empty()) {
    const std::size_t id = std::get<3>(*ready.begin());
    ready.erase(ready.begin());
    visit(nodes_[id]);
    ++executed;
    for (const std::size_t succ : out_edges_[id]) {
      if (--pending[succ] == 0) ready.insert(key_of(succ));
    }
  }
  HPRS_REQUIRE(executed == nodes_.size(),
               "tile graph has a dependency cycle: executed " +
                   std::to_string(executed) + " of " +
                   std::to_string(nodes_.size()) + " nodes");
}

TileGraph TileGraph::stream_pipeline(std::size_t tiles) {
  TileGraph g;
  std::size_t prev_stage = 0;
  std::size_t prev_compute = 0;
  for (std::size_t k = 0; k < tiles; ++k) {
    const std::size_t stage = g.add_node(TileNodeKind::kStage, k, k);
    const std::size_t compute = g.add_node(TileNodeKind::kCompute, k, k + 1);
    g.add_edge(stage, compute);
    if (k > 0) {
      g.add_edge(prev_stage, stage);      // the staging pipe is serial
      g.add_edge(prev_compute, compute);  // accumulators extend in tile order
    }
    prev_stage = stage;
    prev_compute = compute;
  }
  return g;
}

}  // namespace hprs::linalg
