// Small dense row-major matrix used for the spectral-domain linear algebra.
//
// Dimensions in this library are modest (at most bands x bands = 224 x 224
// covariance matrices and t x t Gram systems with t <= ~30 targets).  The
// container is a straightforward cache-friendly row-major layout; multiply()
// and gram() dispatch between scalar reference loops and register-blocked
// fast paths (linalg/kernels.hpp) that produce bit-identical results.  All
// storage is double: these matrices hold accumulated statistics, not raw
// pixels.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace hprs::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized r x c matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds from row-major initializer data (size must equal rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    HPRS_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    HPRS_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    HPRS_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    HPRS_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> data() { return data_; }
  [[nodiscard]] std::span<const double> data() const { return data_; }

  /// Appends a row (used to grow the target matrix U one signature at a
  /// time, as Hetero-ATDCA does).  The row length must equal cols(); an
  /// empty matrix adopts the row's length.
  void append_row(std::span<const double> row_values);

  [[nodiscard]] Matrix transposed() const;

  /// this * other.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  /// this * x for an n-vector x.
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// Gram matrix this^T * this (cols x cols, symmetric).
  [[nodiscard]] Matrix gram() const;

  /// Max-abs elementwise difference; matrices must have equal shape.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hprs::linalg
