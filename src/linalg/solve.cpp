#include "linalg/solve.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hprs::linalg {

Cholesky::Cholesky(const Matrix& spd) : l_(spd.rows(), spd.cols()) {
  HPRS_REQUIRE(spd.rows() == spd.cols(), "Cholesky requires a square matrix");
  const std::size_t n = spd.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = spd(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    HPRS_REQUIRE(diag > 0.0, "matrix is not positive definite");
    l_(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = spd(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
  std::vector<double> y(dim());
  solve_into(b, y);
  return y;
}

void Cholesky::solve_into(std::span<const double> b,
                          std::span<double> y) const {
  const std::size_t n = dim();
  HPRS_REQUIRE(b.size() == n, "rhs dimension mismatch");
  HPRS_REQUIRE(y.size() == n, "solution buffer dimension mismatch");
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  // Back substitution L^T x = y (in place).
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * y[k];
    y[ii] = s / l_(ii, ii);
  }
}

double Cholesky::log_det() const {
  double s = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Matrix gauss_jordan_inverse(const Matrix& a) {
  HPRS_REQUIRE(a.rows() == a.cols(), "inverse requires a square matrix");
  const std::size_t n = a.rows();
  Matrix work = a;
  Matrix inv = Matrix::identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(work(r, col)) > std::abs(work(pivot, col))) pivot = r;
    }
    HPRS_REQUIRE(std::abs(work(pivot, col)) > 1e-300, "matrix is singular");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work(pivot, c), work(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const double d = work(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      work(col, c) /= d;
      inv(col, c) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = work(r, col);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work(r, c) -= f * work(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

std::vector<double> solve_linear(const Matrix& a, std::span<const double> b) {
  HPRS_REQUIRE(a.rows() == a.cols(), "solve_linear requires a square matrix");
  HPRS_REQUIRE(b.size() == a.rows(), "rhs dimension mismatch");
  const std::size_t n = a.rows();
  Matrix work = a;
  std::vector<double> x(b.begin(), b.end());
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(work(r, col)) > std::abs(work(pivot, col))) pivot = r;
    }
    HPRS_REQUIRE(std::abs(work(pivot, col)) > 1e-300, "matrix is singular");
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) std::swap(work(pivot, c), work(col, c));
      std::swap(x[pivot], x[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = work(r, col) / work(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) work(r, c) -= f * work(col, c);
      x[r] -= f * x[col];
    }
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= work(ii, c) * x[c];
    x[ii] = s / work(ii, ii);
  }
  return x;
}

}  // namespace hprs::linalg
