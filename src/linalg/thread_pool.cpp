#include "linalg/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/error.hpp"

namespace hprs::linalg {

namespace {

/// True while this thread is executing a region body.  A nested
/// parallel_region (e.g. osp_argmax_sweep's workers calling dot_strip)
/// runs inline as a single worker: the enclosing region already owns the
/// parallelism, and recursing into the pool would deadlock on the region
/// lock.  Inline nesting is bit-identical by construction (worker 0 of 1
/// is the serial sweep).
thread_local bool t_in_region = false;

std::atomic<std::size_t>& thread_count_flag() {
  static std::atomic<std::size_t> count{static_cast<std::size_t>(
      env_int_or("HPRS_KERNEL_THREADS", 1, 1, 1024))};
  return count;
}

/// The process-wide pool.  Workers park on a generation counter; a region
/// publishes a job, bumps the generation, and participates as worker 0
/// while parked threads claim the remaining indices.  Leaked on purpose:
/// worker threads may still be parked at static destruction time, and
/// tearing the pool down then would race their condition-variable waits.
class KernelPool {
 public:
  static KernelPool& instance() {
    static KernelPool* pool = new KernelPool;
    return *pool;
  }

  void run(std::size_t workers,
           const std::function<void(std::size_t, std::size_t)>& body) {
    // Whole regions serialize: concurrent callers (several engine ranks in
    // threaded kernels at once) queue here rather than interleave jobs.
    std::unique_lock<std::mutex> region(region_mutex_);
    ensure_threads(workers - 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      body_ = &body;
      job_workers_ = workers;
      next_index_ = 1;
      outstanding_ = workers - 1;
      ++generation_;
    }
    work_cv_.notify_all();
    t_in_region = true;
    try {
      body(0, workers);
    } catch (...) {
      note_exception(std::current_exception());
    }
    t_in_region = false;
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return outstanding_ == 0; });
    body_ = nullptr;
    if (first_error_ != nullptr) {
      std::exception_ptr e = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  KernelPool() = default;

  void ensure_threads(std::size_t needed) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (threads_.size() < needed) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  void note_exception(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (first_error_ == nullptr) first_error_ = e;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      work_cv_.wait(lock, [&] { return generation_ != seen; });
      seen = generation_;
      // A pool larger than the current region parks the surplus threads.
      if (body_ == nullptr || next_index_ >= job_workers_) continue;
      const std::size_t index = next_index_++;
      const std::size_t workers = job_workers_;
      const auto* body = body_;
      lock.unlock();
      t_in_region = true;
      try {
        (*body)(index, workers);
      } catch (...) {
        note_exception(std::current_exception());
      }
      t_in_region = false;
      lock.lock();
      if (--outstanding_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex region_mutex_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t job_workers_ = 0;
  std::size_t next_index_ = 0;
  std::size_t outstanding_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace

std::size_t kernel_threads() {
  return thread_count_flag().load(std::memory_order_relaxed);
}

void set_kernel_threads(std::size_t n) {
  HPRS_REQUIRE(n >= 1, "kernel thread count must be >= 1");
  thread_count_flag().store(n, std::memory_order_relaxed);
}

ScopedKernelThreads::ScopedKernelThreads(std::size_t n)
    : saved_(kernel_threads()) {
  set_kernel_threads(n);
}

ScopedKernelThreads::~ScopedKernelThreads() { set_kernel_threads(saved_); }

void parallel_region(
    std::size_t max_workers,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(kernel_threads(), max_workers));
  if (workers == 1 || t_in_region) {
    body(0, 1);
    return;
  }
  KernelPool::instance().run(workers, body);
}

}  // namespace hprs::linalg
