#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/kernels.hpp"
#include "linalg/thread_pool.hpp"
#include "linalg/vec.hpp"

namespace hprs::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  HPRS_REQUIRE(data_.size() == rows_ * cols_,
               "matrix initializer size does not match dimensions");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::append_row(std::span<const double> row_values) {
  if (empty()) {
    cols_ = row_values.size();
  }
  HPRS_REQUIRE(row_values.size() == cols_,
               "appended row length does not match matrix width");
  data_.insert(data_.end(), row_values.begin(), row_values.end());
  ++rows_;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  HPRS_REQUIRE(cols_ == other.rows_, "matmul inner dimensions differ");
  Matrix out(rows_, other.cols_);
  if (use_reference_kernels()) {
    // i-k-j loop order keeps the inner loop contiguous in both operands.
    // No zero-skipping: a data-dependent branch in the inner loop is a
    // misprediction tax on dense HSI spectra and makes the executed flop
    // count diverge from the analytic flops::matmul model on sparse inputs.
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const double a = (*this)(i, k);
        const auto brow = other.row(k);
        const auto orow = out.row(i);
        for (std::size_t j = 0; j < other.cols_; ++j) {
          orow[j] += a * brow[j];
        }
      }
    }
    return out;
  }
  // Blocked fast path: 4x4 register tiles, k ascending inside every
  // accumulator, so each out(i, j) is the same addition chain as the
  // reference i-k-j loop.  Workers own contiguous ranges of row tiles --
  // disjoint out rows, so the thread count cannot perturb any chain.
  const std::size_t n = other.cols_;
  const std::size_t kk = cols_;
  constexpr std::size_t kTi = 4;
  constexpr std::size_t kTj = 4;
  const std::size_t row_tiles = (rows_ + kTi - 1) / kTi;
  parallel_region(row_tiles, [&](std::size_t worker, std::size_t workers) {
    const std::size_t per = (row_tiles + workers - 1) / workers;
    const std::size_t t0 = worker * per;
    const std::size_t t1 = std::min(row_tiles, t0 + per);
  for (std::size_t i0 = t0 * kTi; i0 < t1 * kTi && i0 < rows_; i0 += kTi) {
    const std::size_t i1 = std::min(i0 + kTi, rows_);
    for (std::size_t j0 = 0; j0 < n; j0 += kTj) {
      const std::size_t j1 = std::min(j0 + kTj, n);
      if (i1 - i0 == kTi && j1 - j0 == kTj) {
        double acc[kTi][kTj] = {};
        const double* a0 = data_.data() + (i0 + 0) * kk;
        const double* a1 = data_.data() + (i0 + 1) * kk;
        const double* a2 = data_.data() + (i0 + 2) * kk;
        const double* a3 = data_.data() + (i0 + 3) * kk;
        for (std::size_t k = 0; k < kk; ++k) {
          const double* brow = other.data_.data() + k * n + j0;
          const double v0 = a0[k];
          const double v1 = a1[k];
          const double v2 = a2[k];
          const double v3 = a3[k];
          for (std::size_t b = 0; b < kTj; ++b) {
            const double e = brow[b];
            acc[0][b] += v0 * e;
            acc[1][b] += v1 * e;
            acc[2][b] += v2 * e;
            acc[3][b] += v3 * e;
          }
        }
        for (std::size_t a = 0; a < kTi; ++a) {
          for (std::size_t b = 0; b < kTj; ++b) {
            out(i0 + a, j0 + b) = acc[a][b];
          }
        }
      } else {
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t j = j0; j < j1; ++j) {
            const double* arow = data_.data() + i * kk;
            double acc = 0.0;
            for (std::size_t k = 0; k < kk; ++k) {
              acc += arow[k] * other.data_[k * n + j];
            }
            out(i, j) = acc;
          }
        }
      }
    }
  }
  });
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  HPRS_REQUIRE(x.size() == cols_, "matvec dimension mismatch");
  std::vector<double> y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    y[r] = dot<double, double>(row(r), x);
  }
  return y;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  if (use_reference_kernels()) {
    for (std::size_t r = 0; r < rows_; ++r) {
      const auto v = row(r);
      for (std::size_t i = 0; i < cols_; ++i) {
        for (std::size_t j = i; j < cols_; ++j) {
          g(i, j) += v[i] * v[j];
        }
      }
    }
  } else {
    // syrk fast path: accumulate the packed upper triangle with register
    // tiling (row index ascending inside each accumulator, matching the
    // reference rank-1 loop's chains), then unpack.
    std::vector<double> tri(cols_ * (cols_ + 1) / 2, 0.0);
    syrk_tri_update(data_.data(), rows_, cols_, tri.data());
    std::size_t k = 0;
    for (std::size_t i = 0; i < cols_; ++i) {
      for (std::size_t j = i; j < cols_; ++j) {
        g(i, j) = tri[k++];
      }
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      g(i, j) = g(j, i);
    }
  }
  return g;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  HPRS_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "shape mismatch in max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

}  // namespace hprs::linalg
