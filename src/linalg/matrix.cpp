#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/vec.hpp"

namespace hprs::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  HPRS_REQUIRE(data_.size() == rows_ * cols_,
               "matrix initializer size does not match dimensions");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::append_row(std::span<const double> row_values) {
  if (empty()) {
    cols_ = row_values.size();
  }
  HPRS_REQUIRE(row_values.size() == cols_,
               "appended row length does not match matrix width");
  data_.insert(data_.end(), row_values.begin(), row_values.end());
  ++rows_;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  HPRS_REQUIRE(cols_ == other.rows_, "matmul inner dimensions differ");
  Matrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop contiguous in both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const auto brow = other.row(k);
      const auto orow = out.row(i);
      for (std::size_t j = 0; j < other.cols_; ++j) {
        orow[j] += a * brow[j];
      }
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  HPRS_REQUIRE(x.size() == cols_, "matvec dimension mismatch");
  std::vector<double> y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    y[r] = dot<double, double>(row(r), x);
  }
  return y;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto v = row(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      for (std::size_t j = i; j < cols_; ++j) {
        g(i, j) += v[i] * v[j];
      }
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      g(i, j) = g(j, i);
    }
  }
  return g;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  HPRS_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "shape mismatch in max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

}  // namespace hprs::linalg
