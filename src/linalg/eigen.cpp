#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hprs::linalg {

namespace {

/// Sum of squares of strictly-off-diagonal entries.
double off_diagonal_sq(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (i != j) s += a(i, j) * a(i, j);
    }
  }
  return s;
}

}  // namespace

EigenDecomposition jacobi_eigen(const Matrix& symmetric, double tol,
                                int max_sweeps) {
  HPRS_REQUIRE(symmetric.rows() == symmetric.cols(),
               "eigendecomposition requires a square matrix");
  const std::size_t n = symmetric.rows();
  HPRS_REQUIRE(n > 0, "empty matrix");

  Matrix a = symmetric;
  Matrix v = Matrix::identity(n);

  double diag_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) diag_sq += a(i, i) * a(i, i);
  const double stop = tol * tol * std::max(diag_sq, 1e-300);

  EigenDecomposition out;
  while (out.sweeps < max_sweeps && off_diagonal_sq(a) > stop) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        // 2x2 symmetric Schur decomposition (Golub & Van Loan, Alg. 8.4.1).
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to rows/columns p and q of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate the eigenvector rotation.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    ++out.sweeps;
  }
  HPRS_REQUIRE(off_diagonal_sq(a) <= stop || max_sweeps == 0,
               "Jacobi eigensolver did not converge");

  // Sort eigenpairs by decreasing eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a(i, i) > a(j, j);
  });

  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = a(order[k], order[k]);
    for (std::size_t r = 0; r < n; ++r) {
      out.vectors(k, r) = v(r, order[k]);
    }
  }
  return out;
}

}  // namespace hprs::linalg
