// Validated environment-variable parsing for the runtime's numeric knobs.
//
// Every numeric HPRS_* toggle goes through env_int_or so a malformed value
// fails loudly with the variable named in the error instead of silently
// falling back to the default (a mistyped HPRS_KERNEL_THREADS=fuor would
// otherwise run serial and skew a benchmark without a trace).
#pragma once

#include <optional>

namespace hprs {

/// Parses the environment variable `name` as a decimal integer in
/// [min_value, max_value].  Returns std::nullopt when the variable is unset
/// or empty; throws Error naming the variable when the value is not a
/// plain integer or falls outside the range.
[[nodiscard]] std::optional<long long> env_int(const char* name,
                                               long long min_value,
                                               long long max_value);

/// env_int with a default: `fallback` when the variable is unset or empty.
[[nodiscard]] long long env_int_or(const char* name, long long fallback,
                                   long long min_value, long long max_value);

}  // namespace hprs
