#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hprs::detail {

void throw_error(const char* file, int line, const char* cond,
                 const std::string& message) {
  std::ostringstream os;
  os << message << " [requirement `" << cond << "` failed at " << file << ':'
     << line << ']';
  throw Error(os.str());
}

void assert_fail(const char* file, int line, const char* cond) {
  std::fprintf(stderr, "hprs internal invariant `%s` violated at %s:%d\n",
               cond, file, line);
  std::abort();
}

}  // namespace hprs::detail
