#include "common/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <string>

#include "common/error.hpp"

namespace hprs {

std::optional<long long> env_int(const char* name, long long min_value,
                                 long long max_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) {
    throw Error(std::string(name) + ": expected an integer, got '" + v + "'");
  }
  if (parsed < min_value || parsed > max_value) {
    throw Error(std::string(name) + ": value " + std::to_string(parsed) +
                " outside [" + std::to_string(min_value) + ", " +
                std::to_string(max_value) + "]");
  }
  return parsed;
}

long long env_int_or(const char* name, long long fallback,
                     long long min_value, long long max_value) {
  const auto v = env_int(name, min_value, max_value);
  return v.has_value() ? *v : fallback;
}

}  // namespace hprs
