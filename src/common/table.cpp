#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace hprs {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  HPRS_REQUIRE(!header_.empty(), "table requires at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  HPRS_REQUIRE(cells.size() == header_.size(),
               "row arity does not match table header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::num(long long value) { return std::to_string(value); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  }();
  const auto emit_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += ' ' + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = rule + emit_row(header_) + rule;
  for (const auto& row : rows_) out += emit_row(row);
  out += rule;
  return out;
}

std::string TextTable::to_csv() const {
  const auto sanitize = [](std::string s) {
    std::replace(s.begin(), s.end(), ',', ';');
    return s;
  };
  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += sanitize(row[c]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

}  // namespace hprs
