// Error handling primitives shared by every hprs module.
//
// The library reports contract violations and unrecoverable runtime
// conditions through `hprs::Error` (derived from std::runtime_error) so that
// callers can catch one type at API boundaries.  Internal invariants that
// indicate programmer error use HPRS_ASSERT, which is active in all build
// types: this is research infrastructure, and silent corruption of a
// simulation result is strictly worse than an abort.
#pragma once

#include <stdexcept>
#include <string>

namespace hprs {

/// Exception thrown for all recoverable hprs runtime errors (bad arguments,
/// malformed files, inconsistent platform descriptions, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
/// Builds the message and throws hprs::Error.  Out-of-line so that the
/// throwing path does not bloat every call site.
[[noreturn]] void throw_error(const char* file, int line, const char* cond,
                              const std::string& message);

/// Aborts with a diagnostic.  Used for internal invariants.
[[noreturn]] void assert_fail(const char* file, int line, const char* cond);
}  // namespace detail

}  // namespace hprs

/// Validates a caller-visible precondition; throws hprs::Error on failure.
#define HPRS_REQUIRE(cond, message)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::hprs::detail::throw_error(__FILE__, __LINE__, #cond, (message)); \
    }                                                                   \
  } while (false)

/// Checks an internal invariant; aborts on failure.  Enabled in all builds.
#define HPRS_ASSERT(cond)                                          \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::hprs::detail::assert_fail(__FILE__, __LINE__, #cond);      \
    }                                                              \
  } while (false)
