// Plain-text table rendering for benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables; this helper
// renders aligned ASCII tables (and optionally CSV) so the output can be
// compared side-by-side with the published numbers and parsed by scripts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hprs {

/// Column-aligned text table.  Rows are added as vectors of preformatted
/// cells; numeric helpers format with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a fully formatted row.  Must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` digits after the decimal point.
  static std::string num(double value, int precision = 2);
  /// Formats an integer.
  static std::string num(long long value);

  /// Renders with box-drawing rules suited for monospaced terminals.
  [[nodiscard]] std::string to_string() const;
  /// Renders as RFC-4180-ish CSV (no quoting of embedded commas needed for
  /// our cell vocabulary; commas in cells are replaced by ';').
  [[nodiscard]] std::string to_csv() const;

  /// Convenience: stream the ASCII rendering.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hprs
