// Deterministic random number generation.
//
// Every stochastic component of the library (scene synthesis, noise
// injection, property-test input generation) draws from these generators so
// that a run is reproducible from a single 64-bit seed.  We deliberately do
// not use std::mt19937 / std::normal_distribution in library code: their
// outputs are not guaranteed identical across standard library
// implementations, and reproducibility across toolchains is a requirement
// for regenerating the paper's tables bit-for-bit.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace hprs {

/// SplitMix64: tiny, fast generator used to seed Xoshiro and for cheap
/// decorrelated streams.  Reference: Steele, Lea & Flood (2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna, 2018).  The library's workhorse
/// generator: 256-bit state, passes BigCrush, trivially copyable so streams
/// can be forked deterministically.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be positive.
  constexpr std::uint64_t uniform_int(std::uint64_t n) {
    // Multiply-shift rejection-free mapping; bias is < 2^-64 * n which is
    // immaterial for scene synthesis and test-input generation.
    __extension__ using uint128 = unsigned __int128;
    const uint128 m = static_cast<uint128>(next()) * static_cast<uint128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate via Box-Muller (deterministic, no cached state
  /// so forked streams stay independent).
  double normal() {
    // uniform() can return exactly 0; shift into (0,1].
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Forks a decorrelated child stream; the parent advances by one draw.
  constexpr Xoshiro256 fork() { return Xoshiro256(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hprs
