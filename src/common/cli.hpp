// Minimal command-line option parsing for examples and bench harnesses.
//
// Supports `--name value` and `--name=value` forms plus boolean flags.  Kept
// deliberately tiny: the binaries in this repository take a handful of
// numeric knobs (scene size, seed, processor counts) and nothing more.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hprs {

/// Parsed command line.  Unknown options are an error so typos in experiment
/// scripts fail loudly instead of silently running the default workload.
class CliArgs {
 public:
  /// Parses argv.  `allowed` lists every recognized option name (without the
  /// leading dashes); pass the full set so misspellings are rejected.
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& allowed);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-option) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hprs
