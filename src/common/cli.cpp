#include "common/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace hprs {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& allowed) {
  const auto is_allowed = [&](const std::string& name) {
    return std::find(allowed.begin(), allowed.end(), name) != allowed.end();
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // bare flag
    }
    HPRS_REQUIRE(is_allowed(arg), "unknown option --" + arg);
    values_[arg] = std::move(value);
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  HPRS_REQUIRE(end && *end == '\0', "option --" + name + " expects an integer");
  return v;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  HPRS_REQUIRE(end && *end == '\0', "option --" + name + " expects a number");
  return v;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("option --" + name + " expects a boolean, got '" + v + "'");
}

}  // namespace hprs
