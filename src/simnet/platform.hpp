// Heterogeneous platform descriptions.
//
// A platform is the complete graph G = (P, E) of Section 2 of the paper:
// each processor p_i carries a relative cycle-time w_i (seconds per
// megaflop) and a memory capacity; each edge carries the capacity c_ij of
// the slowest physical link between p_i and p_j, expressed as the paper's
// Table 2 does -- milliseconds to transfer a one-megabit message.
// Processors are grouped into communication segments: intra-segment links
// are fast and independent, while the links *between* segments are serial
// (one message at a time), which the simulator models as shared resources.
//
// Builders reproduce the paper's five experimental platforms exactly
// (Tables 1 and 2 plus the three derived networks and Thunderhead).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hprs::simnet {

struct ProcessorSpec {
  std::string name;          ///< "p1" ... "p16", "n000" ... on clusters
  std::string architecture;  ///< free-text, e.g. "Linux -- Intel Xeon"
  double cycle_time;         ///< seconds per megaflop (w_i); smaller = faster
  std::size_t memory_mb;     ///< main memory, megabytes
  std::size_t cache_kb;      ///< cache, kilobytes (informational)
  std::size_t segment;       ///< communication segment index
  // --- Accelerated processor class (GPU/FPGA-style nodes).  The low
  // cycle-time above covers on-device compute; every kernel invocation
  // additionally pays a fixed host<->device staging latency, and input
  // blocks pay a staging-bandwidth charge on top of the network transfer.
  bool accelerated = false;       ///< has an attached accelerator
  double stage_latency_ms = 0.0;  ///< per-invocation host<->device latency
  double stage_ms_per_mbit = 0.0; ///< host<->device copy cost per megabit
};

class Platform {
 public:
  Platform(std::string name, std::vector<ProcessorSpec> processors,
           std::vector<std::vector<double>> segment_capacity_ms_per_mbit,
           bool switched_fabric = false);

  /// True for cluster interconnects (e.g. Thunderhead's Myrinet) where the
  /// message-passing layer runs tree-based collectives; false for networks
  /// of workstations, where broadcasts and gathers serialize through the
  /// root's NIC.
  [[nodiscard]] bool switched_fabric() const { return switched_fabric_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return processors_.size(); }
  [[nodiscard]] std::size_t segment_count() const {
    return segment_capacity_.size();
  }

  [[nodiscard]] const ProcessorSpec& processor(std::size_t i) const;
  [[nodiscard]] const std::vector<ProcessorSpec>& processors() const {
    return processors_;
  }

  /// w_i: seconds per megaflop.
  [[nodiscard]] double cycle_time(std::size_t i) const;
  /// Relative speed 1/w_i (megaflops per second).
  [[nodiscard]] double speed(std::size_t i) const;
  [[nodiscard]] std::size_t segment_of(std::size_t i) const;

  /// Whether processor i carries an accelerator (pays staging costs).
  [[nodiscard]] bool accelerated(std::size_t i) const;
  /// True if any processor on the platform is accelerated.
  [[nodiscard]] bool has_accelerated() const;
  /// Per-invocation host<->device latency, seconds (0 for plain CPUs).
  [[nodiscard]] double stage_latency_s(std::size_t i) const;
  /// Host<->device copy time for `bytes` of input, seconds (0 for CPUs).
  [[nodiscard]] double stage_seconds(std::size_t i, std::size_t bytes) const;

  /// c_ij in milliseconds per megabit (Table 2 units).  c_ii uses the
  /// intra-segment capacity of i's segment (loopback transfers are charged
  /// like any intra-segment transfer; ranks never message themselves in
  /// the provided algorithms).
  [[nodiscard]] double link_ms_per_mbit(std::size_t i, std::size_t j) const;

  /// Raw segment-to-segment capacity (Table 2 units), independent of any
  /// processor assignment.
  [[nodiscard]] double segment_capacity_ms_per_mbit(std::size_t a,
                                                    std::size_t b) const;

  /// Whether a transfer i -> j crosses segments (and therefore contends for
  /// the serial inter-segment link).
  [[nodiscard]] bool crosses_segments(std::size_t i, std::size_t j) const {
    return segment_of(i) != segment_of(j);
  }

  // --- Aggregate characteristics (used by the equivalence checker) ---

  /// Mean speed over processors, in 1/w units.
  [[nodiscard]] double average_speed() const;
  /// Mean pairwise link capacity over ordered pairs i != j, ms per megabit.
  [[nodiscard]] double average_link_ms_per_mbit() const;
  /// Ratio of fastest to slowest processor speed (1 = homogeneous).
  [[nodiscard]] double speed_heterogeneity() const;
  /// Ratio of slowest to fastest link time (1 = homogeneous).
  [[nodiscard]] double link_heterogeneity() const;

 private:
  std::string name_;
  std::vector<ProcessorSpec> processors_;
  /// segment_capacity_[a][b]: ms per megabit between segments a and b.
  std::vector<std::vector<double>> segment_capacity_;
  bool switched_fabric_ = false;
};

// --- The paper's experimental platforms -------------------------------

/// Table 1 + Table 2: 16 heterogeneous workstations on four segments.
[[nodiscard]] Platform fully_heterogeneous();

/// 16 identical workstations (w = 0.0131 s/Mflop) on a homogeneous network
/// with 26.64 ms/megabit links.
[[nodiscard]] Platform fully_homogeneous();

/// Table 1 processors on the homogeneous 26.64 ms/megabit network.
[[nodiscard]] Platform partially_heterogeneous();

/// 16 identical (w = 0.0131) workstations on the Table 2 network.
[[nodiscard]] Platform partially_homogeneous();

/// NASA GSFC Thunderhead Beowulf surrogate: `nodes` identical 2.4 GHz Xeon
/// nodes (1 GB memory, 512 KB cache) on uniform Myrinet-class links.
[[nodiscard]] Platform thunderhead(std::size_t nodes);

/// Synthetic platform for ablations: `nodes` processors on one segment with
/// speeds geometrically spread so that fastest/slowest == `spread`, mean
/// cycle-time `mean_cycle_time`, uniform links of `link_ms_per_mbit`.
[[nodiscard]] Platform synthetic_heterogeneous(std::size_t nodes,
                                               double spread,
                                               double mean_cycle_time,
                                               double link_ms_per_mbit);

/// Mixed CPU + accelerator network of workstations: `cpu_nodes` identical
/// workstations (w = 0.0131 s/Mflop) followed by `accel_nodes` accelerated
/// nodes (~40x faster compute, but 2 ms per-invocation staging latency and
/// 0.06 ms/megabit host<->device copy) on one 26.64 ms/megabit segment.
/// The accelerated nodes take the HIGHEST ranks, so rank-order policies
/// (fifo) underuse them while cost-aware policies must seek them out.
[[nodiscard]] Platform accelerated_now(std::size_t cpu_nodes,
                                       std::size_t accel_nodes);

}  // namespace hprs::simnet
