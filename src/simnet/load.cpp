#include "simnet/load.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hprs::simnet {

Platform with_background_load(const Platform& platform,
                              std::span<const double> load) {
  HPRS_REQUIRE(load.size() == platform.size(),
               "one load value per processor required");
  std::vector<ProcessorSpec> procs = platform.processors();
  for (std::size_t i = 0; i < procs.size(); ++i) {
    HPRS_REQUIRE(load[i] >= 0.0 && load[i] < 1.0,
                 "background load must lie in [0, 1)");
    procs[i].cycle_time /= (1.0 - load[i]);
  }
  std::vector<std::vector<double>> capacity(
      platform.segment_count(),
      std::vector<double>(platform.segment_count()));
  for (std::size_t a = 0; a < platform.segment_count(); ++a) {
    for (std::size_t b = 0; b < platform.segment_count(); ++b) {
      capacity[a][b] = platform.segment_capacity_ms_per_mbit(a, b);
    }
  }
  return Platform(platform.name() + "+load", std::move(procs),
                  std::move(capacity), platform.switched_fabric());
}

std::vector<std::vector<double>> load_epochs(std::size_t nodes,
                                             std::size_t epochs,
                                             double max_load,
                                             std::uint64_t seed) {
  HPRS_REQUIRE(max_load >= 0.0 && max_load < 1.0,
               "max_load must lie in [0, 1)");
  Xoshiro256 rng(seed);
  std::vector<std::vector<double>> out(epochs, std::vector<double>(nodes));
  for (auto& epoch : out) {
    for (auto& l : epoch) {
      l = rng.uniform(0.0, max_load);
    }
  }
  return out;
}

Platform with_degraded_processor(const Platform& platform, std::size_t rank,
                                 double slowdown) {
  HPRS_REQUIRE(rank < platform.size(), "degraded rank out of range");
  HPRS_REQUIRE(slowdown >= 1.0, "processor slowdown must be >= 1");
  std::vector<ProcessorSpec> procs = platform.processors();
  procs[rank].cycle_time *= slowdown;
  std::vector<std::vector<double>> capacity(
      platform.segment_count(),
      std::vector<double>(platform.segment_count()));
  for (std::size_t a = 0; a < platform.segment_count(); ++a) {
    for (std::size_t b = 0; b < platform.segment_count(); ++b) {
      capacity[a][b] = platform.segment_capacity_ms_per_mbit(a, b);
    }
  }
  return Platform(platform.name() + "+slow", std::move(procs),
                  std::move(capacity), platform.switched_fabric());
}

Platform with_degraded_links(const Platform& platform, double factor) {
  HPRS_REQUIRE(factor >= 1.0, "link degradation factor must be >= 1");
  std::vector<ProcessorSpec> procs = platform.processors();
  std::vector<std::vector<double>> capacity(
      platform.segment_count(),
      std::vector<double>(platform.segment_count()));
  for (std::size_t a = 0; a < platform.segment_count(); ++a) {
    for (std::size_t b = 0; b < platform.segment_count(); ++b) {
      capacity[a][b] = platform.segment_capacity_ms_per_mbit(a, b) * factor;
    }
  }
  return Platform(platform.name() + "+slowlinks", std::move(procs),
                  std::move(capacity), platform.switched_fabric());
}

}  // namespace hprs::simnet
