#include "simnet/platform_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace hprs::simnet {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw Error("platform file, line " + std::to_string(line) + ": " + what);
}

}  // namespace

Platform parse_platform(const std::string& text) {
  std::istringstream in(text);
  std::string name;
  bool switched = false;
  std::size_t segments = 0;
  std::vector<std::vector<double>> capacity;
  std::vector<ProcessorSpec> procs;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string key;
    if (!(line >> key)) continue;  // blank

    if (key == "platform") {
      if (!(line >> name)) fail(line_no, "expected a platform name");
    } else if (key == "fabric") {
      std::string kind;
      if (!(line >> kind)) fail(line_no, "expected now|switched");
      if (kind == "now") {
        switched = false;
      } else if (kind == "switched") {
        switched = true;
      } else {
        fail(line_no, "unknown fabric '" + kind + "'");
      }
    } else if (key == "segments") {
      if (!(line >> segments) || segments == 0) {
        fail(line_no, "expected a positive segment count");
      }
    } else if (key == "capacity") {
      if (segments == 0) fail(line_no, "capacity before segments");
      capacity.assign(segments, std::vector<double>(segments));
      // K*K values, starting on the `capacity` line and continuing across
      // as many following lines as needed.
      std::istringstream tok(raw.substr(raw.find("capacity") + 8));
      std::size_t filled = 0;
      while (filled < segments * segments) {
        double v = 0.0;
        if (tok >> v) {
          capacity[filled / segments][filled % segments] = v;
          ++filled;
          continue;
        }
        std::string next;
        if (!std::getline(in, next)) {
          fail(line_no, "incomplete capacity matrix");
        }
        ++line_no;
        const auto h = next.find('#');
        if (h != std::string::npos) next.erase(h);
        tok = std::istringstream(next);
      }
    } else if (key == "processor") {
      ProcessorSpec p;
      if (!(line >> p.name >> p.cycle_time >> p.memory_mb >> p.cache_kb >>
            p.segment)) {
        fail(line_no,
             "expected: processor <name> <cycle-time> <memory-mb> "
             "<cache-kb> <segment>");
      }
      std::string word;
      bool first_word = true;
      while (line >> word) {
        // Optional accelerator group directly after the segment, before the
        // architecture words: accel <stage-latency-ms> <stage-ms-per-mbit>.
        if (first_word && word == "accel") {
          first_word = false;
          if (!(line >> p.stage_latency_ms >> p.stage_ms_per_mbit)) {
            fail(line_no,
                 "expected: accel <stage-latency-ms> <stage-ms-per-mbit>");
          }
          p.accelerated = true;
          continue;
        }
        first_word = false;
        if (!p.architecture.empty()) p.architecture += ' ';
        p.architecture += word;
      }
      if (p.architecture.empty()) p.architecture = "unspecified";
      procs.push_back(std::move(p));
    } else {
      fail(line_no, "unknown directive '" + key + "'");
    }
  }

  if (name.empty()) throw Error("platform file: missing 'platform' line");
  if (capacity.empty()) throw Error("platform file: missing capacity matrix");
  if (procs.empty()) throw Error("platform file: no processors");
  return Platform(std::move(name), std::move(procs), std::move(capacity),
                  switched);
}

std::string format_platform(const Platform& platform) {
  std::ostringstream out;
  out << "platform " << platform.name() << "\n"
      << "fabric " << (platform.switched_fabric() ? "switched" : "now")
      << "\n"
      << "segments " << platform.segment_count() << "\n";
  out << "capacity";
  for (std::size_t a = 0; a < platform.segment_count(); ++a) {
    if (a > 0) out << "\n";
    for (std::size_t b = 0; b < platform.segment_count(); ++b) {
      out << ' ' << platform.segment_capacity_ms_per_mbit(a, b);
    }
  }
  out << "\n";
  for (std::size_t i = 0; i < platform.size(); ++i) {
    const auto& p = platform.processor(i);
    out << "processor " << p.name << ' ' << p.cycle_time << ' '
        << p.memory_mb << ' ' << p.cache_kb << ' ' << p.segment;
    if (p.accelerated) {
      out << " accel " << p.stage_latency_ms << ' ' << p.stage_ms_per_mbit;
    }
    out << ' ' << p.architecture << "\n";
  }
  return out.str();
}

Platform load_platform(const std::string& path) {
  std::ifstream in(path);
  HPRS_REQUIRE(in.good(), "cannot open platform file: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return parse_platform(buf.str());
}

void save_platform(const Platform& platform, const std::string& path) {
  std::ofstream out(path);
  HPRS_REQUIRE(out.good(), "cannot open for writing: " + path);
  out << format_platform(platform);
  HPRS_REQUIRE(out.good(), "failed writing " + path);
}

}  // namespace hprs::simnet
