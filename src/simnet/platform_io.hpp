// Platform description file I/O.
//
// A small line-oriented text format so experiment platforms can be
// versioned, edited, and exchanged without recompiling:
//
//   platform <name>
//   fabric now|switched
//   segments <K>
//   capacity <K values per row, K rows>    # ms per one-megabit message
//   processor <name> <cycle-time> <memory-mb> <cache-kb> <segment> <arch...>
//
// '#' starts a comment; blank lines are ignored.  save_platform writes a
// file load_platform round-trips exactly.
#pragma once

#include <string>

#include "simnet/platform.hpp"

namespace hprs::simnet {

/// Parses a platform description file.  Throws hprs::Error with a
/// line-numbered message on malformed input.
[[nodiscard]] Platform load_platform(const std::string& path);

/// Writes the platform in the format load_platform reads.
void save_platform(const Platform& platform, const std::string& path);

/// Parses a platform from an in-memory string (same format).
[[nodiscard]] Platform parse_platform(const std::string& text);

/// Serializes to the same format.
[[nodiscard]] std::string format_platform(const Platform& platform);

}  // namespace hprs::simnet
