// Lastovetsky-Reddy equivalence check between platforms.
//
// The paper evaluates heterogeneous algorithms by comparing their
// efficiency on a heterogeneous network against the homogeneous version on
// an "equivalent" homogeneous network, where equivalence means (Sec. 3.1):
//   1. both environments have the same number of processors,
//   2. the homogeneous processor speed equals the average heterogeneous
//      speed,
//   3. the aggregate communication characteristics match.
// This checker quantifies how closely two platforms satisfy those
// principles; the paper's own four networks only satisfy them
// approximately, and the reported deviations document that.
#pragma once

#include <string>

#include "simnet/platform.hpp"

namespace hprs::simnet {

struct EquivalenceReport {
  bool same_processor_count = false;
  /// |avg_speed_a - avg_speed_b| / avg_speed_a.
  double speed_deviation = 0.0;
  /// |avg_link_a - avg_link_b| / avg_link_a (ms-per-megabit averages).
  double link_deviation = 0.0;
  /// True when all three principles hold within `tolerance`.
  bool equivalent = false;

  [[nodiscard]] std::string to_string() const;
};

/// Checks platforms a and b against the three equivalence principles with a
/// relative tolerance on the averaged quantities.
[[nodiscard]] EquivalenceReport check_equivalence(const Platform& a,
                                                  const Platform& b,
                                                  double tolerance = 0.05);

}  // namespace hprs::simnet
