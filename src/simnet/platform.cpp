#include "simnet/platform.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hprs::simnet {

Platform::Platform(std::string name, std::vector<ProcessorSpec> processors,
                   std::vector<std::vector<double>> segment_capacity_ms_per_mbit,
                   bool switched_fabric)
    : name_(std::move(name)),
      processors_(std::move(processors)),
      segment_capacity_(std::move(segment_capacity_ms_per_mbit)),
      switched_fabric_(switched_fabric) {
  HPRS_REQUIRE(!processors_.empty(), "platform requires >= 1 processor");
  const std::size_t s = segment_capacity_.size();
  HPRS_REQUIRE(s > 0, "platform requires >= 1 segment");
  for (const auto& row : segment_capacity_) {
    HPRS_REQUIRE(row.size() == s, "segment capacity matrix must be square");
  }
  for (std::size_t a = 0; a < s; ++a) {
    for (std::size_t b = 0; b < s; ++b) {
      HPRS_REQUIRE(segment_capacity_[a][b] > 0.0,
                   "link capacities must be positive");
      HPRS_REQUIRE(segment_capacity_[a][b] == segment_capacity_[b][a],
                   "link capacities must be symmetric (c_ij = c_ji)");
    }
  }
  for (const auto& p : processors_) {
    HPRS_REQUIRE(p.cycle_time > 0.0, "cycle-time must be positive");
    HPRS_REQUIRE(p.memory_mb > 0, "memory must be positive");
    HPRS_REQUIRE(p.segment < s, "processor references unknown segment");
    HPRS_REQUIRE(p.stage_latency_ms >= 0.0 && p.stage_ms_per_mbit >= 0.0,
                 "staging costs must be non-negative");
    HPRS_REQUIRE(p.accelerated ||
                     (p.stage_latency_ms == 0.0 && p.stage_ms_per_mbit == 0.0),
                 "only accelerated processors may carry staging costs");
  }
}

const ProcessorSpec& Platform::processor(std::size_t i) const {
  HPRS_REQUIRE(i < processors_.size(), "processor index out of range");
  return processors_[i];
}

double Platform::cycle_time(std::size_t i) const {
  return processor(i).cycle_time;
}

double Platform::speed(std::size_t i) const { return 1.0 / cycle_time(i); }

std::size_t Platform::segment_of(std::size_t i) const {
  return processor(i).segment;
}

bool Platform::accelerated(std::size_t i) const {
  return processor(i).accelerated;
}

bool Platform::has_accelerated() const {
  return std::any_of(processors_.begin(), processors_.end(),
                     [](const ProcessorSpec& p) { return p.accelerated; });
}

double Platform::stage_latency_s(std::size_t i) const {
  return processor(i).stage_latency_ms * 1e-3;
}

double Platform::stage_seconds(std::size_t i, std::size_t bytes) const {
  const auto& p = processor(i);
  if (!p.accelerated) return 0.0;
  const double mbits = static_cast<double>(bytes) * 8e-6;
  return mbits * p.stage_ms_per_mbit * 1e-3;
}

double Platform::link_ms_per_mbit(std::size_t i, std::size_t j) const {
  return segment_capacity_[segment_of(i)][segment_of(j)];
}

double Platform::segment_capacity_ms_per_mbit(std::size_t a,
                                              std::size_t b) const {
  HPRS_REQUIRE(a < segment_count() && b < segment_count(),
               "segment index out of range");
  return segment_capacity_[a][b];
}

double Platform::average_speed() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) s += speed(i);
  return s / static_cast<double>(size());
}

double Platform::average_link_ms_per_mbit() const {
  if (size() < 2) return segment_capacity_[0][0];
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t j = 0; j < size(); ++j) {
      if (i == j) continue;
      s += link_ms_per_mbit(i, j);
      ++n;
    }
  }
  return s / static_cast<double>(n);
}

double Platform::speed_heterogeneity() const {
  double lo = speed(0);
  double hi = speed(0);
  for (std::size_t i = 1; i < size(); ++i) {
    lo = std::min(lo, speed(i));
    hi = std::max(hi, speed(i));
  }
  return hi / lo;
}

double Platform::link_heterogeneity() const {
  double lo = segment_capacity_[0][0];
  double hi = lo;
  for (const auto& row : segment_capacity_) {
    for (double v : row) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  return hi / lo;
}

namespace {

/// Table 1 of the paper, verbatim.  Segments: p1-p4 on s1, p5-p8 on s2,
/// p9-p10 on s3, p11-p16 on s4 (0-based below).
std::vector<ProcessorSpec> table1_processors() {
  std::vector<ProcessorSpec> p;
  const auto add = [&](std::string name, std::string arch, double w,
                       std::size_t mem, std::size_t cache, std::size_t seg) {
    p.push_back(ProcessorSpec{std::move(name), std::move(arch), w, mem, cache,
                              seg});
  };
  add("p1", "FreeBSD -- i386 Intel Pentium 4", 0.0058, 2048, 1024, 0);
  add("p2", "Linux -- Intel Xeon", 0.0102, 1024, 512, 0);
  add("p3", "Linux -- AMD Athlon", 0.0026, 7748, 512, 0);
  add("p4", "Linux -- Intel Xeon", 0.0072, 1024, 1024, 0);
  add("p5", "Linux -- Intel Xeon", 0.0102, 1024, 512, 1);
  add("p6", "Linux -- Intel Xeon", 0.0072, 1024, 1024, 1);
  add("p7", "Linux -- Intel Xeon", 0.0072, 1024, 1024, 1);
  add("p8", "Linux -- Intel Xeon", 0.0102, 1024, 512, 1);
  add("p9", "Linux -- Intel Xeon", 0.0072, 1024, 1024, 2);
  add("p10", "SunOS -- SUNW UltraSparc-5", 0.0451, 512, 2048, 2);
  for (int i = 11; i <= 16; ++i) {
    add("p" + std::to_string(i), "Linux -- AMD Athlon", 0.0131, 2048, 1024, 3);
  }
  return p;
}

/// Table 2 of the paper: ms to transfer a one-megabit message between the
/// four segments.
std::vector<std::vector<double>> table2_capacities() {
  return {
      {19.26, 48.31, 96.62, 154.76},
      {48.31, 17.65, 48.31, 106.45},
      {96.62, 48.31, 16.38, 58.14},
      {154.76, 106.45, 58.14, 14.05},
  };
}

std::vector<ProcessorSpec> homogeneous_processors(std::size_t n, double w,
                                                  std::size_t mem_mb,
                                                  std::size_t cache_kb,
                                                  const std::string& arch) {
  std::vector<ProcessorSpec> p;
  p.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(ProcessorSpec{"p" + std::to_string(i + 1), arch, w, mem_mb,
                              cache_kb, 0});
  }
  return p;
}

constexpr double kHomogeneousCycleTime = 0.0131;   // s per megaflop
constexpr double kHomogeneousLink = 26.64;         // ms per megabit

}  // namespace

Platform fully_heterogeneous() {
  return Platform("fully-heterogeneous", table1_processors(),
                  table2_capacities());
}

Platform fully_homogeneous() {
  return Platform(
      "fully-homogeneous",
      homogeneous_processors(16, kHomogeneousCycleTime, 2048, 1024,
                             "Linux -- AMD Athlon"),
      {{kHomogeneousLink}});
}

Platform partially_heterogeneous() {
  // Heterogeneous processors, homogeneous network: collapse everything onto
  // one segment with the 26.64 ms/megabit capacity.
  auto procs = table1_processors();
  for (auto& p : procs) p.segment = 0;
  return Platform("partially-heterogeneous", std::move(procs),
                  {{kHomogeneousLink}});
}

Platform partially_homogeneous() {
  // Homogeneous processors, heterogeneous (Table 2) network: keep the
  // segment structure of the heterogeneous platform.
  auto procs = homogeneous_processors(16, kHomogeneousCycleTime, 2048, 1024,
                                      "Linux -- AMD Athlon");
  const auto het = table1_processors();
  for (std::size_t i = 0; i < procs.size(); ++i) {
    procs[i].segment = het[i].segment;
  }
  return Platform("partially-homogeneous", std::move(procs),
                  table2_capacities());
}

Platform thunderhead(std::size_t nodes) {
  HPRS_REQUIRE(nodes >= 1, "thunderhead requires >= 1 node");
  // 2.4 GHz Xeon nodes: we adopt the Pentium-4-class cycle-time of Table 1
  // (0.0058 s/Mflop); Myrinet 2 Gbit/s gives 0.5 ms per megabit.
  return Platform(
      "thunderhead-" + std::to_string(nodes),
      homogeneous_processors(nodes, 0.0058, 1024, 512,
                             "Linux -- dual Intel Xeon 2.4 GHz"),
      {{0.5}}, /*switched_fabric=*/true);
}

Platform synthetic_heterogeneous(std::size_t nodes, double spread,
                                 double mean_cycle_time,
                                 double link_ms_per_mbit) {
  HPRS_REQUIRE(nodes >= 1, "need >= 1 node");
  HPRS_REQUIRE(spread >= 1.0, "spread must be >= 1");
  HPRS_REQUIRE(mean_cycle_time > 0.0 && link_ms_per_mbit > 0.0,
               "costs must be positive");
  // Geometric spread of speeds around 1, then scaled to the requested mean
  // cycle-time.
  std::vector<double> w(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const double t = nodes == 1
                         ? 0.5
                         : static_cast<double>(i) /
                               static_cast<double>(nodes - 1);
    w[i] = std::pow(spread, t - 0.5);  // sqrt(1/spread) .. sqrt(spread)
  }
  double mean = 0.0;
  for (double v : w) mean += v;
  mean /= static_cast<double>(nodes);
  std::vector<ProcessorSpec> procs;
  procs.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    procs.push_back(ProcessorSpec{"p" + std::to_string(i + 1),
                                  "synthetic", w[i] * mean_cycle_time / mean,
                                  2048, 1024, 0});
  }
  return Platform("synthetic-spread-" + std::to_string(spread),
                  std::move(procs), {{link_ms_per_mbit}});
}

Platform accelerated_now(std::size_t cpu_nodes, std::size_t accel_nodes) {
  HPRS_REQUIRE(cpu_nodes >= 1, "need >= 1 CPU node (the master)");
  HPRS_REQUIRE(accel_nodes >= 1, "need >= 1 accelerated node");
  auto procs = homogeneous_processors(cpu_nodes, kHomogeneousCycleTime, 2048,
                                      1024, "Linux -- AMD Athlon");
  for (std::size_t i = 0; i < accel_nodes; ++i) {
    ProcessorSpec a{"a" + std::to_string(i + 1),
                    "Linux -- AMD Athlon + accelerator",
                    kHomogeneousCycleTime / 40.0,
                    2048,
                    1024,
                    0};
    a.accelerated = true;
    a.stage_latency_ms = 2.0;
    a.stage_ms_per_mbit = 0.06;
    procs.push_back(std::move(a));
  }
  return Platform("accelerated-now-" + std::to_string(cpu_nodes) + "c" +
                      std::to_string(accel_nodes) + "a",
                  std::move(procs), {{kHomogeneousLink}});
}

}  // namespace hprs::simnet
