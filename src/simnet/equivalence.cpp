#include "simnet/equivalence.hpp"

#include <cmath>
#include <sstream>

namespace hprs::simnet {

std::string EquivalenceReport::to_string() const {
  std::ostringstream os;
  os << "equivalent=" << (equivalent ? "yes" : "no")
     << " same_P=" << (same_processor_count ? "yes" : "no")
     << " speed_dev=" << speed_deviation << " link_dev=" << link_deviation;
  return os.str();
}

EquivalenceReport check_equivalence(const Platform& a, const Platform& b,
                                    double tolerance) {
  EquivalenceReport r;
  r.same_processor_count = a.size() == b.size();
  r.speed_deviation =
      std::abs(a.average_speed() - b.average_speed()) / a.average_speed();
  r.link_deviation = std::abs(a.average_link_ms_per_mbit() -
                              b.average_link_ms_per_mbit()) /
                     a.average_link_ms_per_mbit();
  r.equivalent = r.same_processor_count && r.speed_deviation <= tolerance &&
                 r.link_deviation <= tolerance;
  return r;
}

}  // namespace hprs::simnet
