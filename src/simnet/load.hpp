// Background load modeling.
//
// The paper's introduction motivates heterogeneous platforms built from
// "local (user) computing resources" -- workstations whose owners also use
// them, so the *effective* speed of a node varies over time.  This module
// models a load snapshot: per-processor background utilization in [0, 1)
// that stretches the effective cycle-time by 1/(1 - load), plus a
// deterministic generator of load sequences ("epochs") for adaptivity
// experiments (bench_ablation_dynamic): a static partitioning computed for
// yesterday's load meets today's, while an adaptive WEA re-partitions per
// epoch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "simnet/platform.hpp"

namespace hprs::simnet {

/// Applies a background-load snapshot: processor i's cycle-time becomes
/// w_i / (1 - load[i]).  Loads must lie in [0, 1).
[[nodiscard]] Platform with_background_load(const Platform& platform,
                                            std::span<const double> load);

/// Deterministic sequence of load snapshots: `epochs` vectors of per-node
/// utilization drawn uniformly from [0, max_load], seeded.
[[nodiscard]] std::vector<std::vector<double>> load_epochs(
    std::size_t nodes, std::size_t epochs, double max_load,
    std::uint64_t seed);

/// Persistently slows one processor: its cycle-time is multiplied by
/// `slowdown` (>= 1).  The static counterpart of a vmpi::LinkDegradation-
/// style perturbation, for what-if planning around a known-sick node
/// (bench_fault_recovery's degraded scenarios).
[[nodiscard]] Platform with_degraded_processor(const Platform& platform,
                                               std::size_t rank,
                                               double slowdown);

/// Persistently slows every communication link: all segment capacities
/// (ms per megabit; larger = slower) are multiplied by `factor` (>= 1).
/// Models saturated shared media for the whole run, as opposed to the
/// windowed vmpi::LinkDegradation fault.
[[nodiscard]] Platform with_degraded_links(const Platform& platform,
                                           double factor);

}  // namespace hprs::simnet
