#include "core/pct.hpp"

#include <algorithm>
#include <any>
#include <cmath>
#include <limits>
#include <memory>

#include "common/error.hpp"
#include "core/ft_programs.hpp"
#include "core/spmd_common.hpp"
#include "hsi/metrics.hpp"
#include "linalg/eigen.hpp"
#include "linalg/flops.hpp"
#include "linalg/vec.hpp"
#include "obs/metrics.hpp"
#include "vmpi/comm.hpp"

namespace hprs::core {

namespace {

using linalg::flops::Count;

/// A unique-set member: where it came from and its full spectrum.
struct Rep {
  PixelLocation loc;
  std::vector<float> spectrum;
};

std::size_t rep_bytes(std::size_t bands, std::size_t count) {
  return count * (bands * sizeof(float) + 8);
}

/// Everything the workers need for the transform + labeling stage.
struct PctBundle {
  linalg::Matrix transform;      // c x bands (leading eigenvector rows)
  std::vector<double> mean;      // bands
  linalg::Matrix reduced_reps;   // label_count x c (reps in PCT space)
};

/// A worker's labeled slice.
struct LabelBlock {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
  std::vector<std::uint16_t> labels;  // owned_rows * cols
};

using linalg::flops::Count;

// --- per-partition kernels, shared by the collective and fault-tolerant
// schedules (identical arithmetic either way) ------------------------------

/// Step 2: online SAD clustering of rows [row_begin, row_end); returns the
/// best-supported 3c exemplars and the SAD count for the caller to charge.
struct UniqueOut {
  std::vector<Rep> reps;
  Count sad_evals = 0;
};

UniqueOut local_unique_sets(const hsi::HsiCube& cube, std::size_t row_begin,
                            std::size_t row_end, const PctConfig& config) {
  const std::size_t cols = cube.cols();
  struct LocalCluster {
    Rep exemplar;
    std::size_t support = 1;
    double norm = 0.0;  // ||exemplar|| (fast path: hoisted out of sad)
  };
  const bool fast = !linalg::use_reference_kernels();
  UniqueOut out;
  std::vector<LocalCluster> local_clusters;
  for (std::size_t r = row_begin; r < row_end; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const auto px = cube.pixel(r, c);
      const double px_norm = fast ? linalg::norm(px) : 0.0;
      bool merged = false;
      for (auto& cl : local_clusters) {
        ++out.sad_evals;
        const double dist =
            fast ? hsi::sad_with_norms<float, float>(cl.exemplar.spectrum,
                                                     px, cl.norm, px_norm)
                 : hsi::sad<float, float>(cl.exemplar.spectrum, px);
        if (dist <= config.sad_threshold) {
          ++cl.support;
          merged = true;
          break;
        }
      }
      if (!merged) {
        local_clusters.push_back(LocalCluster{
            Rep{{r, c}, std::vector<float>(px.begin(), px.end())}, 1,
            px_norm});
      }
    }
  }
  std::sort(local_clusters.begin(), local_clusters.end(),
            [](const LocalCluster& a, const LocalCluster& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.exemplar.loc.row != b.exemplar.loc.row) {
                return a.exemplar.loc.row < b.exemplar.loc.row;
              }
              return a.exemplar.loc.col < b.exemplar.loc.col;
            });
  const std::size_t local_cap =
      std::min<std::size_t>(3 * config.classes, local_clusters.size());
  out.reps.reserve(local_cap);
  for (std::size_t k = 0; k < local_cap; ++k) {
    out.reps.push_back(std::move(local_clusters[k].exemplar));
  }
  return out;
}

/// Step 3 (master): merges the per-partition unique sets, in partition
/// order, into at most c exemplars.  Charges the consolidation SADs.
std::vector<Rep> merge_unique_sets(vmpi::Comm& comm,
                                   std::vector<std::vector<Rep>> rep_sets,
                                   const PctConfig& config,
                                   std::size_t bands) {
  std::vector<detail::SpectralCandidate> pool;
  for (auto& set : rep_sets) {
    for (auto& rep : set) {
      pool.push_back(detail::SpectralCandidate{rep.loc,
                                               std::move(rep.spectrum),
                                               0.0});
    }
  }
  const auto selection = detail::consolidate_unique_set(
      pool, config.classes, config.sad_threshold);
  std::vector<Rep> unique;
  for (const std::size_t idx : selection.chosen) {
    unique.push_back(Rep{pool[idx].loc, std::move(pool[idx].spectrum)});
  }
  comm.compute(selection.sad_evals * hsi::flops::sad(bands),
               vmpi::Phase::kSequential);
  return unique;
}

/// Steps 4-6: band sums of rows [row_begin, row_end).
struct MeanOut {
  std::vector<double> sums;
  Count flops = 0;
};

/// Accumulates the band sums of rows [row_begin, row_end) into `sums`
/// (length bands) and returns the flops performed.  Tiles of a partition
/// call this back to back on one shared `sums`: each band's addition chain
/// extends strictly in row order, so any tiling of the owned range is
/// bit-identical to the monolithic sweep.
Count accum_mean_rows(const hsi::HsiCube& cube, std::size_t row_begin,
                      std::size_t row_end, double* sums) {
  const std::size_t bands = cube.bands();
  const std::size_t cols = cube.cols();
  Count flops = 0;
  for (std::size_t r = row_begin; r < row_end; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const auto px = cube.pixel(r, c);
      for (std::size_t b = 0; b < bands; ++b) {
        sums[b] += px[b];
      }
      flops += bands;
    }
  }
  return flops;
}

MeanOut local_mean_sums(const hsi::HsiCube& cube, std::size_t row_begin,
                        std::size_t row_end) {
  MeanOut out;
  out.sums.assign(cube.bands(), 0.0);
  out.flops = accum_mean_rows(cube, row_begin, row_end, out.sums.data());
  return out;
}

/// Master fold of the partition band sums (partition order) into the mean.
std::vector<double> fold_mean(vmpi::Comm& comm,
                              const std::vector<std::vector<double>>& parts,
                              std::size_t pixel_count, std::size_t bands) {
  std::vector<double> mean(bands, 0.0);
  for (const auto& part : parts) {
    for (std::size_t b = 0; b < bands; ++b) mean[b] += part[b];
  }
  const double n = static_cast<double>(pixel_count);
  for (auto& m : mean) m /= n;
  comm.compute(parts.size() * bands + bands, vmpi::Phase::kSequential);
  return mean;
}

/// Upper-triangle covariance accumulation over rows [row_begin, row_end),
/// dispatching between the per-pixel rank-1 loop and the strip syrk fast
/// path (bit-identical sums).
struct CovOut {
  std::vector<double> tri;
  Count flops = 0;
};

/// Accumulates the centered covariance triangle of rows
/// [row_begin, row_end) into `tri` and returns the flops performed.  Like
/// accum_mean_rows, tiles extend each triangle element's addition chain in
/// row order on a shared `tri`, so any tiling is bit-identical to the
/// monolithic sweep.
Count accum_cov_rows(const hsi::HsiCube& cube, std::size_t row_begin,
                     std::size_t row_end, const std::vector<double>& mean,
                     double* tri) {
  const std::size_t bands = cube.bands();
  const std::size_t cols = cube.cols();
  const std::size_t tri_n = bands * (bands + 1) / 2;
  Count flops = 0;
  if (linalg::use_reference_kernels()) {
    std::vector<double> centered(bands);
    for (std::size_t r = row_begin; r < row_end; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const auto px = cube.pixel(r, c);
        for (std::size_t b = 0; b < bands; ++b) {
          centered[b] = static_cast<double>(px[b]) - mean[b];
        }
        std::size_t k = 0;
        for (std::size_t i = 0; i < bands; ++i) {
          const double di = centered[i];
          for (std::size_t j = i; j < bands; ++j) {
            tri[k++] += di * centered[j];
          }
        }
        flops += bands + 2 * tri_n;
      }
    }
    return flops;
  }
  // Strip fast path: center a strip of pixels once, then apply one
  // rank-m syrk update to the packed triangle.  The per-element p-chain
  // extends the running value in the triangle, so the sums are
  // bit-identical to the per-pixel rank-1 loop above.
  constexpr std::size_t kStrip = 64;
  std::vector<double> cstrip(kStrip * bands);
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const float* row = cube.pixel(r, 0).data();
    for (std::size_t c0 = 0; c0 < cols; c0 += kStrip) {
      const std::size_t m = std::min(kStrip, cols - c0);
      const float* x = row + c0 * bands;
      for (std::size_t p = 0; p < m; ++p) {
        for (std::size_t b = 0; b < bands; ++b) {
          cstrip[p * bands + b] =
              static_cast<double>(x[p * bands + b]) - mean[b];
        }
      }
      linalg::syrk_tri_update(cstrip.data(), m, bands, tri);
      flops += static_cast<Count>(m) * (bands + 2 * tri_n);
    }
  }
  return flops;
}

CovOut local_cov_sums(const hsi::HsiCube& cube, std::size_t row_begin,
                      std::size_t row_end, const std::vector<double>& mean) {
  CovOut out;
  out.tri.assign(cube.bands() * (cube.bands() + 1) / 2, 0.0);
  out.flops =
      accum_cov_rows(cube, row_begin, row_end, mean, out.tri.data());
  return out;
}

/// Per-sweep mixed-precision bookkeeping (published as core.pct.mp_*
/// metrics only when the gate is on, so golden runs never see the keys).
struct MpCounters {
  std::uint64_t mixed_tiles = 0;
  std::uint64_t fallback_tiles = 0;
};

/// One covariance tile under the mixed-precision gate: if the a-priori
/// accuracy check admits the tile, accumulate its syrk update in float into
/// a private triangle and fold once into the running double triangle
/// (charging the float path's halved accumulate cost); otherwise fall back
/// to the exact double path for this tile.  The fallback is per tile, so an
/// adversarial block degrades precision nowhere and performance only where
/// the bound fails.
Count accum_cov_tile_mixed(const hsi::HsiCube& cube,
                           const linalg::TileDesc& tile,
                           const std::vector<double>& mean, double* tri,
                           MpCounters& mp) {
  const std::size_t bands = cube.bands();
  const std::size_t cols = cube.cols();
  const std::size_t tri_n = bands * (bands + 1) / 2;
  const std::size_t chain = tile.rows() * cols;
  // Bound |centered| over the tile: max raw magnitude plus max |mean|.
  double amax_raw = 0.0;
  for (std::size_t r = tile.row_begin; r < tile.row_end; ++r) {
    const float* row = cube.pixel(r, 0).data();
    for (std::size_t k = 0; k < cols * bands; ++k) {
      const double v = std::abs(static_cast<double>(row[k]));
      if (v > amax_raw) amax_raw = v;
    }
  }
  double amax_mean = 0.0;
  for (const double m : mean) amax_mean = std::max(amax_mean, std::abs(m));
  if (!linalg::mixed_tile_admissible(amax_raw + amax_mean, chain)) {
    ++mp.fallback_tiles;
    return accum_cov_rows(cube, tile.row_begin, tile.row_end, mean, tri);
  }
  ++mp.mixed_tiles;
  constexpr std::size_t kStrip = 64;
  std::vector<float> fstrip(kStrip * bands);
  std::vector<float> ftri(tri_n, 0.0f);
  Count flops = 0;
  for (std::size_t r = tile.row_begin; r < tile.row_end; ++r) {
    const float* row = cube.pixel(r, 0).data();
    for (std::size_t c0 = 0; c0 < cols; c0 += kStrip) {
      const std::size_t m = std::min(kStrip, cols - c0);
      const float* x = row + c0 * bands;
      for (std::size_t p = 0; p < m; ++p) {
        for (std::size_t b = 0; b < bands; ++b) {
          fstrip[p * bands + b] = static_cast<float>(
              static_cast<double>(x[p * bands + b]) - mean[b]);
        }
      }
      linalg::syrk_tri_update_f32(fstrip.data(), m, bands, ftri.data());
      // Centering still runs per band; the float accumulate models twice
      // the syrk throughput of the double path (tri_n instead of 2*tri_n).
      flops += static_cast<Count>(m) * (bands + tri_n);
    }
  }
  for (std::size_t k = 0; k < tri_n; ++k) {
    tri[k] += static_cast<double>(ftri[k]);
  }
  flops += tri_n;
  return flops;
}

/// Step 7 (master): folds the covariance parts (partition order), solves
/// the eigenproblem, and builds the transform/labeling bundle.
PctBundle build_bundle(vmpi::Comm& comm,
                       const std::vector<std::vector<double>>& cov_parts,
                       const std::vector<double>& mean,
                       const std::vector<Rep>& unique,
                       const PctConfig& config, const hsi::HsiCube& cube) {
  const std::size_t bands = cube.bands();
  const std::size_t tri = bands * (bands + 1) / 2;
  std::vector<double> cov_sum(tri, 0.0);
  for (const auto& part : cov_parts) {
    for (std::size_t k = 0; k < tri; ++k) cov_sum[k] += part[k];
  }
  linalg::Matrix cov(bands, bands);
  const double n = static_cast<double>(cube.pixel_count());
  std::size_t k = 0;
  for (std::size_t i = 0; i < bands; ++i) {
    for (std::size_t j = i; j < bands; ++j) {
      cov(i, j) = cov_sum[k] / n;
      cov(j, i) = cov(i, j);
      ++k;
    }
  }
  comm.compute(cov_parts.size() * tri + tri, vmpi::Phase::kSequential);

  const auto eig = linalg::jacobi_eigen(cov);
  comm.compute(static_cast<Count>(eig.sweeps) *
                   linalg::flops::jacobi_sweep(bands),
               vmpi::Phase::kSequential);

  PctBundle bundle;
  bundle.transform = linalg::Matrix(config.classes, bands);
  for (std::size_t comp = 0; comp < config.classes; ++comp) {
    for (std::size_t b = 0; b < bands; ++b) {
      bundle.transform(comp, b) = eig.vectors(comp, b);
    }
  }
  bundle.mean = mean;

  // Project the unique set into the reduced space.
  const std::size_t label_count = unique.size();
  std::vector<double> centered(bands);
  bundle.reduced_reps = linalg::Matrix(label_count, config.classes);
  for (std::size_t u = 0; u < label_count; ++u) {
    for (std::size_t b = 0; b < bands; ++b) {
      centered[b] =
          static_cast<double>(unique[u].spectrum[b]) - mean[b];
    }
    const auto y = bundle.transform.multiply(centered);
    for (std::size_t comp = 0; comp < config.classes; ++comp) {
      bundle.reduced_reps(u, comp) = y[comp];
    }
  }
  comm.compute(label_count * (bands + linalg::flops::matvec(
                                          config.classes, bands)),
               vmpi::Phase::kSequential);
  return bundle;
}

/// Steps 8-9: transform + reduced-space labeling of [row_begin, row_end).
struct LabelOut {
  LabelBlock block;
  Count flops = 0;
};

LabelOut label_partition(const hsi::HsiCube& cube, std::size_t row_begin,
                         std::size_t row_end, const PctBundle& bundle,
                         const PctConfig& config) {
  const std::size_t bands = cube.bands();
  const std::size_t cols = cube.cols();
  const std::size_t reps = bundle.reduced_reps.rows();
  LabelOut out;
  out.block.row_begin = row_begin;
  out.block.row_end = row_end;
  out.block.labels.reserve((row_end - row_begin) * cols);
  const auto classify = [&](std::span<const double> y) {
    std::uint16_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t u = 0; u < reps; ++u) {
      // Minimum Euclidean distance in the reduced space: the PCT
      // projection is mean-centered, so distances (not angles) are the
      // meaningful similarity there.
      double dist = 0.0;
      const auto rep = bundle.reduced_reps.row(u);
      for (std::size_t k = 0; k < config.classes; ++k) {
        const double diff = rep[k] - y[k];
        dist += diff * diff;
      }
      if (dist < best_d) {
        best_d = dist;
        best = static_cast<std::uint16_t>(u);
      }
    }
    return best;
  };
  if (linalg::use_reference_kernels()) {
    std::vector<double> centered(bands);
    for (std::size_t r = row_begin; r < row_end; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const auto px = cube.pixel(r, c);
        for (std::size_t b = 0; b < bands; ++b) {
          centered[b] = static_cast<double>(px[b]) - bundle.mean[b];
        }
        const auto y = bundle.transform.multiply(centered);
        out.block.labels.push_back(classify(y));
        out.flops += bands +
                     linalg::flops::matvec(config.classes, bands) +
                     reps * 3 * config.classes;
      }
    }
    return out;
  }
  // Strip fast path: center a strip once, project all its pixels with
  // one BLAS3 dot_strip call, and classify from the projection buffer.
  // dot_strip reproduces the matvec's per-row dot chains exactly, so
  // the labels match the reference pass bit for bit.
  constexpr std::size_t kStrip = 64;
  std::vector<double> cstrip(kStrip * bands);
  std::vector<double> ystrip(kStrip * config.classes);
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const float* row = cube.pixel(r, 0).data();
    for (std::size_t c0 = 0; c0 < cols; c0 += kStrip) {
      const std::size_t m = std::min(kStrip, cols - c0);
      const float* x = row + c0 * bands;
      for (std::size_t p = 0; p < m; ++p) {
        for (std::size_t b = 0; b < bands; ++b) {
          cstrip[p * bands + b] =
              static_cast<double>(x[p * bands + b]) - bundle.mean[b];
        }
      }
      linalg::dot_strip(bundle.transform, cstrip.data(), m,
                        std::span<double>(ystrip));
      for (std::size_t p = 0; p < m; ++p) {
        out.block.labels.push_back(classify(std::span<const double>(
            ystrip.data() + p * config.classes, config.classes)));
        out.flops += bands +
                     linalg::flops::matvec(config.classes, bands) +
                     reps * 3 * config.classes;
      }
    }
  }
  return out;
}

/// Master assembly of the final label image (partition order irrelevant:
/// blocks write disjoint row ranges).
void assemble_label_image(vmpi::Comm& comm,
                          const std::vector<LabelBlock>& blocks,
                          const hsi::HsiCube& cube, std::size_t reps,
                          ClassificationResult& result) {
  result.labels.assign(cube.pixel_count(), 0);
  for (const auto& blk : blocks) {
    std::copy(blk.labels.begin(), blk.labels.end(),
              result.labels.begin() +
                  static_cast<std::ptrdiff_t>(blk.row_begin * cube.cols()));
  }
  result.label_count = std::max<std::size_t>(1, reps);
  comm.compute(cube.pixel_count() / 8, vmpi::Phase::kSequential);
}

}  // namespace

/// The fault-tolerant schedule (core/ft.hpp): the same kernels and folds,
/// with the mean and bundle shipped as phase payloads instead of broadcasts.
ft::Program pct_ft_program(const hsi::HsiCube& cube, const PctConfig& config,
                           ClassificationResult& result) {
  ft::Program prog;
  prog.model = pct_workload(cube.bands(), config.classes);
  prog.model.scatter_input = config.charge_data_staging;
  prog.policy = config.policy;
  prog.memory_fraction = config.memory_fraction;
  prog.replication = config.replication;
  // Phase 0: local unique spectral sets.
  prog.handlers.push_back(
      [&cube, config](vmpi::Comm& c, const ft::Chunk& chunk, const std::any*) {
        const std::size_t bands = cube.bands();
        UniqueOut out = local_unique_sets(cube, chunk.part.row_begin,
                                          chunk.part.row_end, config);
        c.compute(out.sad_evals * hsi::flops::sad(bands) *
                  config.replication);
        const std::size_t count = out.reps.size();
        return ft::ChunkOutcome{std::move(out.reps),
                                rep_bytes(bands, count)};
      });
  // Phase 1: band sums.
  prog.handlers.push_back(
      [&cube, config](vmpi::Comm& c, const ft::Chunk& chunk, const std::any*) {
        MeanOut out =
            local_mean_sums(cube, chunk.part.row_begin, chunk.part.row_end);
        c.compute(out.flops * config.replication);
        return ft::ChunkOutcome{std::move(out.sums),
                                cube.bands() * sizeof(double)};
      });
  // Phase 2: covariance triangle against the shipped mean.
  prog.handlers.push_back(
      [&cube, config](vmpi::Comm& c, const ft::Chunk& chunk,
                      const std::any* payload) {
        const auto& mean = std::any_cast<const std::vector<double>&>(*payload);
        CovOut out = local_cov_sums(cube, chunk.part.row_begin,
                                    chunk.part.row_end, mean);
        c.compute(out.flops * config.replication);
        const std::size_t tri = cube.bands() * (cube.bands() + 1) / 2;
        return ft::ChunkOutcome{std::move(out.tri), tri * sizeof(double)};
      });
  // Phase 3: transform + labeling against the shipped bundle.
  prog.handlers.push_back(
      [&cube, config](vmpi::Comm& c, const ft::Chunk& chunk,
                      const std::any* payload) {
        const auto& bundle = std::any_cast<const PctBundle&>(*payload);
        LabelOut out = label_partition(cube, chunk.part.row_begin,
                                       chunk.part.row_end, bundle, config);
        c.compute(out.flops * config.replication);
        const std::size_t bytes =
            out.block.labels.size() * sizeof(std::uint16_t) *
            config.replication;
        return ft::ChunkOutcome{std::move(out.block), bytes};
      });

  prog.master = [&cube, config, &result](vmpi::Comm& comm,
                                         ft::PhaseDriver& master,
                                         const std::vector<ft::Handler>& h) {
    const std::size_t bands = cube.bands();

    // Steps 2-3: unique sets, merged in chunk (== rank) order.
    auto rep_any = master.phase(0, h[0]);
    std::vector<std::vector<Rep>> rep_sets;
    rep_sets.reserve(rep_any.size());
    for (auto& a : rep_any) {
      rep_sets.push_back(std::any_cast<std::vector<Rep>>(std::move(a)));
    }
    const std::vector<Rep> unique =
        merge_unique_sets(comm, std::move(rep_sets), config, bands);

    // Steps 4-6: mean, then covariance against it.
    auto mean_any = master.phase(1, h[1]);
    std::vector<std::vector<double>> mean_parts;
    mean_parts.reserve(mean_any.size());
    for (auto& a : mean_any) {
      mean_parts.push_back(std::any_cast<std::vector<double>>(std::move(a)));
    }
    const std::vector<double> mean =
        fold_mean(comm, mean_parts, cube.pixel_count(), bands);

    auto cov_any = master.phase(2, h[2],
                                std::make_shared<const std::any>(mean),
                                bands * sizeof(double));
    std::vector<std::vector<double>> cov_parts;
    cov_parts.reserve(cov_any.size());
    for (auto& a : cov_any) {
      cov_parts.push_back(std::any_cast<std::vector<double>>(std::move(a)));
    }

    // Step 7: sequential eigendecomposition + bundle at the master.
    PctBundle bundle =
        build_bundle(comm, cov_parts, mean, unique, config, cube);
    const std::size_t reps = bundle.reduced_reps.rows();
    const std::size_t bundle_bytes =
        config.classes * bands * sizeof(double) + bands * sizeof(double) +
        config.classes * config.classes * sizeof(double);

    // Steps 8-9: labeling against the shipped bundle.
    auto block_any = master.phase(3, h[3],
                                  std::make_shared<const std::any>(
                                      std::move(bundle)),
                                  bundle_bytes);
    std::vector<LabelBlock> blocks;
    blocks.reserve(block_any.size());
    for (auto& a : block_any) {
      blocks.push_back(std::any_cast<LabelBlock>(std::move(a)));
    }
    master.finish();
    assemble_label_image(comm, blocks, cube, reps, result);
  };
  return prog;
}

WorkloadModel pct_workload(std::size_t bands, std::size_t classes) {
  // Unique-set comparisons, mean + covariance accumulation, projection, and
  // reduced-space labeling per pixel.
  const Count unique = 3 * classes * hsi::flops::sad(bands);
  const Count stats = bands + bands + bands * (bands + 1);
  const Count project = linalg::flops::matvec(classes, bands) + bands;
  const Count label = classes * hsi::flops::sad(classes);
  WorkloadModel model;
  model.flops_per_pixel =
      static_cast<double>(unique + stats + project + label);
  model.bytes_per_pixel = bands * sizeof(float);
  model.scatter_input = false;
  model.sync_rounds = 4.0;  // unique sets, mean, covariance, labeling
  // Nominal 8-sweep Jacobi eigensolve of the band covariance on the master
  // -- the serial O(bands^3)-per-sweep section every rank waits on.
  model.seq_flops = 8.0 * static_cast<double>(linalg::flops::jacobi_sweep(
                              static_cast<Count>(bands)));
  return model;
}

void pct_body(vmpi::Comm& comm, const hsi::HsiCube& cube,
              const PctConfig& config, ClassificationResult& result) {
  WorkloadModel model = pct_workload(cube.bands(), config.classes);
  model.scatter_input = config.charge_data_staging;
  const std::size_t bands = cube.bands();
  const bool streaming = config.tile_stream || linalg::tile_stream_enabled();
  model.tile_stream = streaming;
  const PartitionView view = detail::distribute_partitions(
      comm, cube, model, config.policy, config.memory_fraction,
      /*overlap=*/0, config.replication, /*defer_staging=*/streaming);
  // Tile plan over the owned rows; with streaming on, every tile's
  // host->device copy is enqueued here and drains behind the unique-set
  // phase below, so the mean/covariance sweeps mostly find their tiles
  // already resident.
  const detail::TileStream tiles = detail::begin_tile_stream(
      comm, view, config.tile_rows, streaming, config.replication);

  // --- Step 2: local unique spectral sets -----------------------------
  // Online SAD clustering of the local pixels: each pixel either joins
  // the first cluster whose exemplar is within the threshold or founds a
  // new cluster.  The best-supported 3c exemplars go to the master, so
  // rare mixtures do not crowd out the partition's real constituents.
  UniqueOut local_u = local_unique_sets(cube, view.part.row_begin,
                                        view.part.row_end, config);
  comm.compute(local_u.sad_evals * hsi::flops::sad(bands) *
               config.replication);

  // --- Step 3: master merges the unique sets --------------------------
  const std::size_t local_count = local_u.reps.size();
  auto rep_sets = comm.gather(comm.root(), std::move(local_u.reps),
                              rep_bytes(bands, local_count));
  std::vector<Rep> unique;
  if (comm.is_root()) {
    unique = merge_unique_sets(comm, std::move(rep_sets), config, bands);
  }

  // --- Steps 4-6: parallel mean and covariance ------------------------
  // Tiled sweep over the shared band sums: tiles extend each band's
  // addition chain in row order, so the result (and, with streaming off,
  // the single compute charge) is bit-identical to the monolithic sweep.
  MeanOut local_m;
  local_m.sums.assign(bands, 0.0);
  detail::tiled_sweep(comm, tiles, config.replication,
                      [&](const linalg::TileDesc& t) {
                        return accum_mean_rows(cube, t.row_begin, t.row_end,
                                               local_m.sums.data());
                      });
  auto mean_parts = comm.gather(comm.root(), std::move(local_m.sums),
                                bands * sizeof(double));
  std::vector<double> mean_acc(bands, 0.0);
  if (comm.is_root()) {
    mean_acc = fold_mean(comm, mean_parts, cube.pixel_count(), bands);
  }
  // Shared broadcast: every rank centers against the same immutable mean.
  const auto mean_view = comm.bcast_shared(comm.root(), std::move(mean_acc),
                                           bands * sizeof(double));
  const std::vector<double>& mean = *mean_view;

  // Upper-triangle covariance accumulation over owned pixels, tiled like
  // the mean.  Under the (default-off) mixed-precision gate each tile may
  // accumulate in float and fold once into the shared double triangle,
  // falling back per tile when the a-priori accuracy bound fails.
  const std::size_t tri = bands * (bands + 1) / 2;
  const bool mixed =
      linalg::use_mixed_precision() && !linalg::use_reference_kernels();
  MpCounters mp;
  CovOut local_c;
  local_c.tri.assign(tri, 0.0);
  detail::tiled_sweep(comm, tiles, config.replication,
                      [&](const linalg::TileDesc& t) {
                        if (mixed) {
                          return accum_cov_tile_mixed(cube, t, mean,
                                                      local_c.tri.data(), mp);
                        }
                        return accum_cov_rows(cube, t.row_begin, t.row_end,
                                              mean, local_c.tri.data());
                      });
  if (mixed) {
    auto& metrics = obs::Metrics::instance();
    if (metrics.enabled()) {
      // Only ever recorded while the mixed gate is on, so golden-compared
      // runs keep their exact stable key sets.
      metrics.add("core.pct.mp_tiles", mp.mixed_tiles, obs::Domain::kStable,
                  comm.world_rank());
      metrics.add("core.pct.mp_fallback_tiles", mp.fallback_tiles,
                  obs::Domain::kStable, comm.world_rank());
    }
  }
  auto cov_parts = comm.gather(comm.root(), std::move(local_c.tri),
                               tri * sizeof(double));

  // --- Step 7: sequential eigendecomposition at the master ------------
  PctBundle bundle;
  if (comm.is_root()) {
    bundle = build_bundle(comm, cov_parts, mean, unique, config, cube);
  }

  // --- Steps 8-9: parallel transform + reduced-space labeling ---------
  // Shared broadcast: all ranks label against one immutable bundle.
  const std::size_t bundle_bytes =
      config.classes * bands * sizeof(double) + bands * sizeof(double) +
      config.classes * config.classes * sizeof(double);
  const auto bundle_view =
      comm.bcast_shared(comm.root(), std::move(bundle), bundle_bytes);
  const PctBundle& shared_bundle = *bundle_view;
  const std::size_t reps = shared_bundle.reduced_reps.rows();

  LabelOut local_l = label_partition(cube, view.part.row_begin,
                                     view.part.row_end, shared_bundle,
                                     config);
  comm.compute(local_l.flops * config.replication);

  const std::size_t block_bytes = local_l.block.labels.size() *
                                  sizeof(std::uint16_t) *
                                  config.replication;
  auto blocks =
      comm.gather(comm.root(), std::move(local_l.block), block_bytes);

  // Master assembles the final label image.
  if (comm.is_root()) {
    assemble_label_image(comm, blocks, cube, reps, result);
  }
}

ClassificationResult run_pct(const simnet::Platform& platform,
                             const hsi::HsiCube& cube, const PctConfig& config,
                             vmpi::Options options) {
  HPRS_REQUIRE(config.classes >= 1, "need at least one class");
  HPRS_REQUIRE(config.classes <= cube.bands(),
               "cannot extract more components than bands");
  HPRS_REQUIRE(!cube.empty(), "empty cube");

  vmpi::Engine engine(platform, options);
  ClassificationResult result;

  if (config.fault_tolerant) {
    ft::require_immortal_root(options);
    const ft::Program prog = pct_ft_program(cube, config, result);
    result.report = engine.run(
        [&](vmpi::Comm& comm) { ft::run_program(comm, cube, prog); });
    return result;
  }
  result.report = engine.run(
      [&](vmpi::Comm& comm) { pct_body(comm, cube, config, result); });
  return result;
}

}  // namespace hprs::core
