#include "core/pct.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "core/spmd_common.hpp"
#include "hsi/metrics.hpp"
#include "linalg/eigen.hpp"
#include "linalg/flops.hpp"
#include "linalg/vec.hpp"
#include "vmpi/comm.hpp"

namespace hprs::core {

namespace {

using linalg::flops::Count;

/// A unique-set member: where it came from and its full spectrum.
struct Rep {
  PixelLocation loc;
  std::vector<float> spectrum;
};

std::size_t rep_bytes(std::size_t bands, std::size_t count) {
  return count * (bands * sizeof(float) + 8);
}

/// Everything the workers need for the transform + labeling stage.
struct PctBundle {
  linalg::Matrix transform;      // c x bands (leading eigenvector rows)
  std::vector<double> mean;      // bands
  linalg::Matrix reduced_reps;   // label_count x c (reps in PCT space)
};

/// A worker's labeled slice.
struct LabelBlock {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
  std::vector<std::uint16_t> labels;  // owned_rows * cols
};

}  // namespace

WorkloadModel pct_workload(std::size_t bands, std::size_t classes) {
  // Unique-set comparisons, mean + covariance accumulation, projection, and
  // reduced-space labeling per pixel.
  const Count unique = 3 * classes * hsi::flops::sad(bands);
  const Count stats = bands + bands + bands * (bands + 1);
  const Count project = linalg::flops::matvec(classes, bands) + bands;
  const Count label = classes * hsi::flops::sad(classes);
  WorkloadModel model;
  model.flops_per_pixel =
      static_cast<double>(unique + stats + project + label);
  model.bytes_per_pixel = bands * sizeof(float);
  model.scatter_input = false;
  model.sync_rounds = 4.0;  // unique sets, mean, covariance, labeling
  return model;
}

ClassificationResult run_pct(const simnet::Platform& platform,
                             const hsi::HsiCube& cube, const PctConfig& config,
                             vmpi::Options options) {
  HPRS_REQUIRE(config.classes >= 1, "need at least one class");
  HPRS_REQUIRE(config.classes <= cube.bands(),
               "cannot extract more components than bands");
  HPRS_REQUIRE(!cube.empty(), "empty cube");

  vmpi::Engine engine(platform, options);
  ClassificationResult result;
  WorkloadModel model = pct_workload(cube.bands(), config.classes);
  model.scatter_input = config.charge_data_staging;
  const std::size_t bands = cube.bands();

  result.report = engine.run([&](vmpi::Comm& comm) {
    const PartitionView view = detail::distribute_partitions(
        comm, cube, model, config.policy, config.memory_fraction,
        /*overlap=*/0, config.replication);
    const std::size_t cols = cube.cols();

    // --- Step 2: local unique spectral sets -----------------------------
    // Online SAD clustering of the local pixels: each pixel either joins
    // the first cluster whose exemplar is within the threshold or founds a
    // new cluster.  The best-supported 3c exemplars go to the master, so
    // rare mixtures do not crowd out the partition's real constituents.
    struct LocalCluster {
      Rep exemplar;
      std::size_t support = 1;
      double norm = 0.0;  // ||exemplar|| (fast path: hoisted out of sad)
    };
    const bool fast = !linalg::use_reference_kernels();
    std::vector<LocalCluster> local_clusters;
    Count sad_evals = 0;
    for (std::size_t r = view.part.row_begin; r < view.part.row_end; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const auto px = cube.pixel(r, c);
        const double px_norm = fast ? linalg::norm(px) : 0.0;
        bool merged = false;
        for (auto& cl : local_clusters) {
          ++sad_evals;
          const double dist =
              fast ? hsi::sad_with_norms<float, float>(cl.exemplar.spectrum,
                                                       px, cl.norm, px_norm)
                   : hsi::sad<float, float>(cl.exemplar.spectrum, px);
          if (dist <= config.sad_threshold) {
            ++cl.support;
            merged = true;
            break;
          }
        }
        if (!merged) {
          local_clusters.push_back(LocalCluster{
              Rep{{r, c}, std::vector<float>(px.begin(), px.end())}, 1,
              px_norm});
        }
      }
    }
    comm.compute(sad_evals * hsi::flops::sad(bands) * config.replication);
    std::sort(local_clusters.begin(), local_clusters.end(),
              [](const LocalCluster& a, const LocalCluster& b) {
                if (a.support != b.support) return a.support > b.support;
                if (a.exemplar.loc.row != b.exemplar.loc.row) {
                  return a.exemplar.loc.row < b.exemplar.loc.row;
                }
                return a.exemplar.loc.col < b.exemplar.loc.col;
              });
    const std::size_t local_cap =
        std::min<std::size_t>(3 * config.classes, local_clusters.size());
    std::vector<Rep> local_reps;
    local_reps.reserve(local_cap);
    for (std::size_t k = 0; k < local_cap; ++k) {
      local_reps.push_back(std::move(local_clusters[k].exemplar));
    }

    // --- Step 3: master merges the unique sets --------------------------
    const std::size_t local_count = local_reps.size();
    auto rep_sets = comm.gather(comm.root(), std::move(local_reps),
                                rep_bytes(bands, local_count));
    std::vector<Rep> unique;
    if (comm.is_root()) {
      std::vector<detail::SpectralCandidate> pool;
      for (auto& set : rep_sets) {
        for (auto& rep : set) {
          pool.push_back(detail::SpectralCandidate{rep.loc,
                                                   std::move(rep.spectrum),
                                                   0.0});
        }
      }
      const auto selection = detail::consolidate_unique_set(
          pool, config.classes, config.sad_threshold);
      for (const std::size_t idx : selection.chosen) {
        unique.push_back(Rep{pool[idx].loc, std::move(pool[idx].spectrum)});
      }
      comm.compute(selection.sad_evals * hsi::flops::sad(bands),
                   vmpi::Phase::kSequential);
    }

    // --- Steps 4-6: parallel mean and covariance ------------------------
    std::vector<double> local_mean(bands, 0.0);
    Count mean_flops = 0;
    for (std::size_t r = view.part.row_begin; r < view.part.row_end; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const auto px = cube.pixel(r, c);
        for (std::size_t b = 0; b < bands; ++b) {
          local_mean[b] += px[b];
        }
        mean_flops += bands;
      }
    }
    comm.compute(mean_flops * config.replication);
    auto mean_parts = comm.gather(comm.root(), std::move(local_mean),
                                  bands * sizeof(double));
    std::vector<double> mean_acc(bands, 0.0);
    if (comm.is_root()) {
      for (const auto& part : mean_parts) {
        for (std::size_t b = 0; b < bands; ++b) mean_acc[b] += part[b];
      }
      const double n = static_cast<double>(cube.pixel_count());
      for (auto& m : mean_acc) m /= n;
      comm.compute(mean_parts.size() * bands + bands,
                   vmpi::Phase::kSequential);
    }
    // Shared broadcast: every rank centers against the same immutable mean.
    const auto mean_view = comm.bcast_shared(comm.root(), std::move(mean_acc),
                                             bands * sizeof(double));
    const std::vector<double>& mean = *mean_view;

    // Upper-triangle covariance accumulation over owned pixels.
    const std::size_t tri = bands * (bands + 1) / 2;
    std::vector<double> local_cov(tri, 0.0);
    std::vector<double> centered(bands);
    Count cov_flops = 0;
    if (!fast) {
      for (std::size_t r = view.part.row_begin; r < view.part.row_end; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          const auto px = cube.pixel(r, c);
          for (std::size_t b = 0; b < bands; ++b) {
            centered[b] = static_cast<double>(px[b]) - mean[b];
          }
          std::size_t k = 0;
          for (std::size_t i = 0; i < bands; ++i) {
            const double di = centered[i];
            for (std::size_t j = i; j < bands; ++j) {
              local_cov[k++] += di * centered[j];
            }
          }
          cov_flops += bands + 2 * tri;
        }
      }
    } else {
      // Strip fast path: center a strip of pixels once, then apply one
      // rank-m syrk update to the packed triangle.  The per-element p-chain
      // extends the running value in local_cov, so the sums are
      // bit-identical to the per-pixel rank-1 loop above.
      constexpr std::size_t kStrip = 64;
      std::vector<double> cstrip(kStrip * bands);
      for (std::size_t r = view.part.row_begin; r < view.part.row_end; ++r) {
        const float* row = cube.pixel(r, 0).data();
        for (std::size_t c0 = 0; c0 < cols; c0 += kStrip) {
          const std::size_t m = std::min(kStrip, cols - c0);
          const float* x = row + c0 * bands;
          for (std::size_t p = 0; p < m; ++p) {
            for (std::size_t b = 0; b < bands; ++b) {
              cstrip[p * bands + b] =
                  static_cast<double>(x[p * bands + b]) - mean[b];
            }
          }
          linalg::syrk_tri_update(cstrip.data(), m, bands, local_cov.data());
          cov_flops += static_cast<Count>(m) * (bands + 2 * tri);
        }
      }
    }
    comm.compute(cov_flops * config.replication);
    auto cov_parts = comm.gather(comm.root(), std::move(local_cov),
                                 tri * sizeof(double));

    // --- Step 7: sequential eigendecomposition at the master ------------
    PctBundle bundle;
    std::size_t label_count = 0;
    if (comm.is_root()) {
      std::vector<double> cov_sum(tri, 0.0);
      for (const auto& part : cov_parts) {
        for (std::size_t k = 0; k < tri; ++k) cov_sum[k] += part[k];
      }
      linalg::Matrix cov(bands, bands);
      const double n = static_cast<double>(cube.pixel_count());
      std::size_t k = 0;
      for (std::size_t i = 0; i < bands; ++i) {
        for (std::size_t j = i; j < bands; ++j) {
          cov(i, j) = cov_sum[k] / n;
          cov(j, i) = cov(i, j);
          ++k;
        }
      }
      comm.compute(cov_parts.size() * tri + tri, vmpi::Phase::kSequential);

      const auto eig = linalg::jacobi_eigen(cov);
      comm.compute(static_cast<Count>(eig.sweeps) *
                       linalg::flops::jacobi_sweep(bands),
                   vmpi::Phase::kSequential);

      bundle.transform = linalg::Matrix(config.classes, bands);
      for (std::size_t comp = 0; comp < config.classes; ++comp) {
        for (std::size_t b = 0; b < bands; ++b) {
          bundle.transform(comp, b) = eig.vectors(comp, b);
        }
      }
      bundle.mean = mean;

      // Project the unique set into the reduced space.
      label_count = unique.size();
      bundle.reduced_reps = linalg::Matrix(label_count, config.classes);
      for (std::size_t u = 0; u < label_count; ++u) {
        for (std::size_t b = 0; b < bands; ++b) {
          centered[b] =
              static_cast<double>(unique[u].spectrum[b]) - mean[b];
        }
        const auto y = bundle.transform.multiply(centered);
        for (std::size_t comp = 0; comp < config.classes; ++comp) {
          bundle.reduced_reps(u, comp) = y[comp];
        }
      }
      comm.compute(label_count * (bands + linalg::flops::matvec(
                                              config.classes, bands)),
                   vmpi::Phase::kSequential);
    }

    // --- Steps 8-9: parallel transform + reduced-space labeling ---------
    // Shared broadcast: all ranks label against one immutable bundle.
    const std::size_t bundle_bytes =
        config.classes * bands * sizeof(double) + bands * sizeof(double) +
        config.classes * config.classes * sizeof(double);
    const auto bundle_view =
        comm.bcast_shared(comm.root(), std::move(bundle), bundle_bytes);
    const PctBundle& shared_bundle = *bundle_view;
    const std::size_t reps = shared_bundle.reduced_reps.rows();

    LabelBlock block;
    block.row_begin = view.part.row_begin;
    block.row_end = view.part.row_end;
    block.labels.reserve(view.part.owned_rows() * cols);
    Count label_flops = 0;
    const auto classify = [&](std::span<const double> y) {
      std::uint16_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t u = 0; u < reps; ++u) {
        // Minimum Euclidean distance in the reduced space: the PCT
        // projection is mean-centered, so distances (not angles) are the
        // meaningful similarity there.
        double dist = 0.0;
        const auto rep = shared_bundle.reduced_reps.row(u);
        for (std::size_t k = 0; k < config.classes; ++k) {
          const double diff = rep[k] - y[k];
          dist += diff * diff;
        }
        if (dist < best_d) {
          best_d = dist;
          best = static_cast<std::uint16_t>(u);
        }
      }
      return best;
    };
    if (!fast) {
      for (std::size_t r = view.part.row_begin; r < view.part.row_end; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          const auto px = cube.pixel(r, c);
          for (std::size_t b = 0; b < bands; ++b) {
            centered[b] = static_cast<double>(px[b]) - shared_bundle.mean[b];
          }
          const auto y = shared_bundle.transform.multiply(centered);
          block.labels.push_back(classify(y));
          label_flops += bands +
                         linalg::flops::matvec(config.classes, bands) +
                         reps * 3 * config.classes;
        }
      }
    } else {
      // Strip fast path: center a strip once, project all its pixels with
      // one BLAS3 dot_strip call, and classify from the projection buffer.
      // dot_strip reproduces the matvec's per-row dot chains exactly, so
      // the labels match the reference pass bit for bit.
      constexpr std::size_t kStrip = 64;
      std::vector<double> cstrip(kStrip * bands);
      std::vector<double> ystrip(kStrip * config.classes);
      for (std::size_t r = view.part.row_begin; r < view.part.row_end; ++r) {
        const float* row = cube.pixel(r, 0).data();
        for (std::size_t c0 = 0; c0 < cols; c0 += kStrip) {
          const std::size_t m = std::min(kStrip, cols - c0);
          const float* x = row + c0 * bands;
          for (std::size_t p = 0; p < m; ++p) {
            for (std::size_t b = 0; b < bands; ++b) {
              cstrip[p * bands + b] =
                  static_cast<double>(x[p * bands + b]) - shared_bundle.mean[b];
            }
          }
          linalg::dot_strip(shared_bundle.transform, cstrip.data(), m,
                            std::span<double>(ystrip));
          for (std::size_t p = 0; p < m; ++p) {
            block.labels.push_back(classify(std::span<const double>(
                ystrip.data() + p * config.classes, config.classes)));
            label_flops += bands +
                           linalg::flops::matvec(config.classes, bands) +
                           reps * 3 * config.classes;
          }
        }
      }
    }
    comm.compute(label_flops * config.replication);

    const std::size_t block_bytes =
        block.labels.size() * sizeof(std::uint16_t) * config.replication;
    auto blocks = comm.gather(comm.root(), std::move(block), block_bytes);

    // Master assembles the final label image.
    if (comm.is_root()) {
      result.labels.assign(cube.pixel_count(), 0);
      for (const auto& blk : blocks) {
        std::copy(blk.labels.begin(), blk.labels.end(),
                  result.labels.begin() +
                      static_cast<std::ptrdiff_t>(blk.row_begin * cols));
      }
      result.label_count = std::max<std::size_t>(1, reps);
      comm.compute(cube.pixel_count() / 8, vmpi::Phase::kSequential);
    }
  });

  return result;
}

}  // namespace hprs::core
