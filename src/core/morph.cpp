#include "core/morph.hpp"

#include <algorithm>
#include <any>
#include <limits>
#include <memory>

#include "common/error.hpp"
#include "core/ft_programs.hpp"
#include "core/morph_kernel.hpp"
#include "core/spmd_common.hpp"
#include "hsi/metrics.hpp"
#include "linalg/flops.hpp"
#include "linalg/kernels.hpp"
#include "linalg/vec.hpp"
#include "vmpi/comm.hpp"

namespace hprs::core {

namespace {

using linalg::flops::Count;

/// A unique-set candidate: location, original spectrum, and its MEI score.
struct MorphRep {
  PixelLocation loc;
  std::vector<float> spectrum;
  double mei = 0.0;
};

std::size_t rep_bytes(std::size_t bands, std::size_t count) {
  return count * (bands * sizeof(float) + 16);
}

/// A worker's labeled slice.
struct LabelBlock {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
  std::vector<std::uint16_t> labels;
};

/// Tracks flop charges split between owned rows (scaled by replication) and
/// redundant halo rows (physical cost only; halos do not grow with the
/// virtual scene).
struct SplitFlops {
  Count owned = 0;
  Count halo = 0;

  void add(bool in_owned, Count f) { (in_owned ? owned : halo) += f; }
  [[nodiscard]] Count charge(std::size_t replication) const {
    return owned * replication + halo;
  }
};

/// The per-worker morphological driver.  The numeric passes live in
/// MorphBlockEngine (core/morph_kernel.hpp); this wrapper owns the
/// ownership bookkeeping, halo exchange, candidate selection, and the
/// virtual-time charges.
///
/// Windows are clamped to the local block, so pixels near a partition
/// boundary see a truncated neighborhood exactly as pixels at the image
/// border do.  The overlap border of one kernel radius keeps the owned
/// rows' first-iteration neighborhoods exact; later iterations are
/// slightly approximate near partition seams -- the accuracy/communication
/// trade the paper's overlap-border design makes (its companion JPDC'06
/// paper sizes the overlap to the structuring element).  Halo-exchange
/// mode refreshes the borders every iteration and is the tighter (but
/// communication-heavy) alternative measured by bench_ablation_overlap.
class MorphWorker {
 public:
  MorphWorker(const hsi::HsiCube& cube, const RowPartition& part,
              const MorphConfig& config)
      : cube_(cube),
        config_(config),
        block_begin_(part.halo_begin),
        owned_begin_(part.row_begin),
        owned_end_(part.row_end),
        engine_(cube.copy_rows(part.halo_begin, part.halo_end),
                config.kernel_radius) {}

  /// Runs one MEI-update pass (and, unless `last`, the dilation) over the
  /// whole block.  Returns the flop charges of the pass.
  SplitFlops iterate(bool last);

  /// Refreshes up to `width` halo rows on each side from the owned rows of
  /// the neighbouring workers (halo-exchange mode).
  void exchange_halo(vmpi::Comm& comm, std::size_t width);

  /// The c highest-MEI owned pixels (original spectra).
  [[nodiscard]] std::vector<MorphRep> top_candidates() const;

 private:
  [[nodiscard]] std::size_t block_rows() const {
    return engine_.image().rows();
  }
  [[nodiscard]] std::size_t cols() const { return engine_.image().cols(); }
  /// Whether block row br corresponds to a row this worker owns.
  [[nodiscard]] bool is_owned(std::size_t br) const {
    const std::size_t global = block_begin_ + br;
    return global >= owned_begin_ && global < owned_end_;
  }

  const hsi::HsiCube& cube_;
  const MorphConfig& config_;
  std::size_t block_begin_;
  std::size_t owned_begin_;
  std::size_t owned_end_;
  MorphBlockEngine engine_;
};

SplitFlops MorphWorker::iterate(bool last) {
  engine_.iterate(last);

  // The charge of a pass is purely geometric: one SAD per (pixel, window
  // element) in the D pass, two compares per window element plus one SAD in
  // the MEI/dilation pass.  Charging it analytically keeps the virtual-time
  // model identical whichever kernel path executed the pass.
  const std::size_t r = config_.kernel_radius;
  const std::size_t rows = block_rows();
  const std::size_t n_cols = cols();
  const std::size_t bands = engine_.image().bands();
  SplitFlops flops;
  for (std::size_t x = 0; x < rows; ++x) {
    const bool owned = is_owned(x);
    const std::size_t i_lo = x >= r ? x - r : 0;
    const std::size_t i_hi = std::min(x + r + 1, rows);
    for (std::size_t y = 0; y < n_cols; ++y) {
      const std::size_t j_lo = y >= r ? y - r : 0;
      const std::size_t j_hi = std::min(y + r + 1, n_cols);
      const Count window = (i_hi - i_lo) * (j_hi - j_lo);
      flops.add(owned, window * hsi::flops::sad(bands));  // D pass
      flops.add(owned, window * 2);                       // argmin/argmax
      flops.add(owned, hsi::flops::sad(bands));           // MEI score
    }
  }
  return flops;
}

void MorphWorker::exchange_halo(vmpi::Comm& comm, std::size_t width) {
  // Ship our updated boundary rows to the vertical neighbours and splice
  // the received rows into our halo.  Row payloads are raw samples.
  hsi::HsiCube& f = engine_.image();
  const std::size_t n_cols = cols();
  const std::size_t bands = f.bands();
  const std::size_t row_bytes = n_cols * bands * sizeof(float);

  std::vector<std::tuple<int, std::vector<float>, std::size_t>> sends;
  const int rank = comm.rank();
  const auto pack_rows = [&](std::size_t lo, std::size_t hi) {
    std::vector<float> buf;
    buf.reserve((hi - lo) * n_cols * bands);
    for (std::size_t x = lo; x < hi; ++x) {
      const auto row = f.pixel(x, 0);
      const auto* begin = row.data();
      buf.insert(buf.end(), begin, begin + n_cols * bands);
    }
    return buf;
  };

  const std::size_t ob = owned_begin_ - block_begin_;  // owned range in block
  const std::size_t oe = owned_end_ - block_begin_;
  if (rank > 0 && owned_begin_ > 0) {
    const std::size_t hi = std::min(oe, ob + width);
    sends.emplace_back(rank - 1, pack_rows(ob, hi), (hi - ob) * row_bytes);
  }
  if (rank + 1 < comm.size() && owned_end_ < cube_.rows()) {
    const std::size_t lo = oe >= ob + width ? oe - width : ob;
    sends.emplace_back(rank + 1, pack_rows(lo, oe), (oe - lo) * row_bytes);
  }

  const auto received = comm.exchange(std::move(sends));
  for (const auto& [src, rows] : received) {
    const std::size_t count = rows.size() / (n_cols * bands);
    // Rows from the lower-ranked neighbour fill the top halo (they are the
    // rows just above our owned range); rows from above fill the bottom.
    const std::size_t dst_begin = src < rank ? ob - count : oe;
    for (std::size_t k = 0; k < count; ++k) {
      auto dst = f.pixel(dst_begin + k, 0);
      std::copy(rows.begin() + static_cast<std::ptrdiff_t>(k * n_cols * bands),
                rows.begin() +
                    static_cast<std::ptrdiff_t>((k + 1) * n_cols * bands),
                dst.data());
    }
  }
}

std::vector<MorphRep> MorphWorker::top_candidates() const {
  std::vector<MorphRep> all;
  const std::vector<double>& mei = engine_.mei();
  const std::size_t n_cols = cols();
  for (std::size_t x = 0; x < block_rows(); ++x) {
    if (!is_owned(x)) continue;
    for (std::size_t y = 0; y < n_cols; ++y) {
      const auto px = cube_.pixel(block_begin_ + x, y);
      all.push_back(MorphRep{{block_begin_ + x, y},
                             std::vector<float>(px.begin(), px.end()),
                             mei[x * n_cols + y]});
    }
  }
  const std::size_t keep = std::min(config_.classes, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(keep), all.end(),
                    [](const MorphRep& a, const MorphRep& b) {
                      if (a.mei != b.mei) return a.mei > b.mei;
                      if (a.loc.row != b.loc.row) return a.loc.row < b.loc.row;
                      return a.loc.col < b.loc.col;
                    });
  all.resize(keep);
  return all;
}

// --- kernels shared by the collective and fault-tolerant schedules ------

/// Step 2 + candidate selection for one partition: runs all I_max
/// morphology iterations (charging each pass) and returns the c
/// highest-MEI owned pixels.  Overlap-border mode only: no worker-to-worker
/// halo traffic, so the result depends on the chunk alone.
std::vector<MorphRep> morph_candidates(vmpi::Comm& comm,
                                       const hsi::HsiCube& cube,
                                       const RowPartition& part,
                                       const MorphConfig& config) {
  MorphWorker worker(cube, part, config);
  for (std::size_t j = 1; j <= config.iterations; ++j) {
    const SplitFlops flops = worker.iterate(j == config.iterations);
    comm.compute(flops.charge(config.replication));
  }
  return worker.top_candidates();
}

/// Step 3 (master): merges the per-partition candidate sets, highest-MEI
/// first, into at most c unique representatives.  Charges the
/// consolidation SADs.
std::vector<MorphRep> merge_unique_sets(
    vmpi::Comm& comm, std::vector<std::vector<MorphRep>> rep_sets,
    const MorphConfig& config, std::size_t bands) {
  std::vector<detail::SpectralCandidate> pool;
  for (auto& set : rep_sets) {
    for (auto& rep : set) {
      pool.push_back(detail::SpectralCandidate{
          rep.loc, std::move(rep.spectrum), rep.mei});
    }
  }
  // Highest-MEI first so cluster exemplars are the purest pixels.
  std::stable_sort(pool.begin(), pool.end(),
                   [](const detail::SpectralCandidate& a,
                      const detail::SpectralCandidate& b) {
                     if (a.weight != b.weight) return a.weight > b.weight;
                     if (a.loc.row != b.loc.row)
                       return a.loc.row < b.loc.row;
                     return a.loc.col < b.loc.col;
                   });
  const auto selection = detail::consolidate_unique_set(
      pool, config.classes, config.sad_threshold);
  std::vector<MorphRep> unique;
  for (const std::size_t idx : selection.chosen) {
    unique.push_back(MorphRep{pool[idx].loc,
                              std::move(pool[idx].spectrum),
                              pool[idx].weight});
  }
  comm.compute(selection.sad_evals * hsi::flops::sad(bands),
               vmpi::Phase::kSequential);
  return unique;
}

/// Step 4: labels rows [row_begin, row_end) by minimum SAD against the
/// unique set.  Returns the block and the flop count for the caller to
/// charge.
struct LabelOut {
  LabelBlock block;
  Count flops = 0;
};

LabelOut label_partition(const hsi::HsiCube& cube, std::size_t row_begin,
                         std::size_t row_end,
                         const std::vector<MorphRep>& unique) {
  const std::size_t bands = cube.bands();
  const std::size_t cols = cube.cols();
  const std::size_t reps = unique.size();
  LabelOut out;
  out.block.row_begin = row_begin;
  out.block.row_end = row_end;
  out.block.labels.reserve((row_end - row_begin) * cols);
  // Representative norms hoisted out of the pixel loop (fast path); with
  // the pixel norm computed once per pixel this removes two of the three
  // dot products per SAD.  The charge stays the full sad() cost: the
  // virtual model prices the algorithm, not the host shortcuts.
  const bool fast = !linalg::use_reference_kernels();
  std::vector<double> rep_norms(reps);
  if (fast) {
    for (std::size_t u = 0; u < reps; ++u) {
      rep_norms[u] = linalg::norm<float>(unique[u].spectrum);
    }
  }
  for (std::size_t r = row_begin; r < row_end; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const auto px = cube.pixel(r, c);
      const double px_norm = fast ? linalg::norm(px) : 0.0;
      std::uint16_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t u = 0; u < reps; ++u) {
        const double dist =
            fast ? hsi::sad_with_norms<float, float>(
                       unique[u].spectrum, px, rep_norms[u], px_norm)
                 : hsi::sad<float, float>(unique[u].spectrum, px);
        if (dist < best_d) {
          best_d = dist;
          best = static_cast<std::uint16_t>(u);
        }
      }
      out.block.labels.push_back(best);
      out.flops += reps * hsi::flops::sad(bands);
    }
  }
  return out;
}

/// Step 5 (master): assembles the label image from the disjoint blocks.
void assemble_label_image(vmpi::Comm& comm,
                          const std::vector<LabelBlock>& blocks,
                          const hsi::HsiCube& cube, std::size_t reps,
                          ClassificationResult& result) {
  result.labels.assign(cube.pixel_count(), 0);
  for (const auto& blk : blocks) {
    std::copy(blk.labels.begin(), blk.labels.end(),
              result.labels.begin() +
                  static_cast<std::ptrdiff_t>(blk.row_begin * cube.cols()));
  }
  result.label_count = std::max<std::size_t>(1, reps);
  comm.compute(cube.pixel_count() / 8, vmpi::Phase::kSequential);
}

}  // namespace

/// The fault-tolerant schedule (core/ft.hpp): the same morphology and
/// labeling kernels, driven chunk-wise by the master.  Chunks carry their
/// own overlap borders, so a re-run on an adopting rank reproduces the lost
/// candidates bit for bit; merging in chunk order matches the collective
/// gather's rank order.
ft::Program morph_ft_program(const hsi::HsiCube& cube,
                             const MorphConfig& config,
                             ClassificationResult& result) {
  ft::Program prog;
  prog.model = morph_workload(cube.bands(), config);
  prog.model.scatter_input = config.charge_data_staging;
  prog.policy = config.policy;
  prog.memory_fraction = config.memory_fraction;
  prog.overlap = config.kernel_radius;
  prog.replication = config.replication;
  // Phase 0: morphology + candidate selection on the chunk.
  prog.handlers.push_back(
      [&cube, config](vmpi::Comm& c, const ft::Chunk& chunk, const std::any*) {
        std::vector<MorphRep> local =
            morph_candidates(c, cube, chunk.part, config);
        const std::size_t count = local.size();
        return ft::ChunkOutcome{std::move(local),
                                rep_bytes(cube.bands(), count)};
      });
  // Phase 1: label the chunk against the shipped unique set.
  prog.handlers.push_back(
      [&cube, config](vmpi::Comm& c, const ft::Chunk& chunk,
                      const std::any* payload) {
        const auto& unique =
            std::any_cast<const std::vector<MorphRep>&>(*payload);
        LabelOut out = label_partition(cube, chunk.part.row_begin,
                                       chunk.part.row_end, unique);
        c.compute(out.flops * config.replication);
        const std::size_t bytes = out.block.labels.size() *
                                  sizeof(std::uint16_t) * config.replication;
        return ft::ChunkOutcome{std::move(out.block), bytes};
      });

  prog.master = [&cube, config, &result](vmpi::Comm& comm,
                                         ft::PhaseDriver& master,
                                         const std::vector<ft::Handler>& h) {
    const std::size_t bands = cube.bands();

    // Steps 2-3: candidates, merged in chunk (== rank) order.
    auto rep_any = master.phase(0, h[0]);
    std::vector<std::vector<MorphRep>> rep_sets;
    rep_sets.reserve(rep_any.size());
    for (auto& a : rep_any) {
      rep_sets.push_back(std::any_cast<std::vector<MorphRep>>(std::move(a)));
    }
    std::vector<MorphRep> unique =
        merge_unique_sets(comm, std::move(rep_sets), config, bands);
    const std::size_t reps = unique.size();
    const std::size_t unique_bytes = rep_bytes(bands, reps);

    // Steps 4-5: labeling against the shipped unique set.
    auto block_any = master.phase(1, h[1],
                                  std::make_shared<const std::any>(
                                      std::move(unique)),
                                  unique_bytes);
    std::vector<LabelBlock> blocks;
    blocks.reserve(block_any.size());
    for (auto& a : block_any) {
      blocks.push_back(std::any_cast<LabelBlock>(std::move(a)));
    }
    master.finish();
    assemble_label_image(comm, blocks, cube, reps, result);
  };
  return prog;
}

WorkloadModel morph_workload(std::size_t bands, const MorphConfig& config) {
  const std::size_t w = 2 * config.kernel_radius + 1;
  const Count per_iter =
      (w * w + 1) * hsi::flops::sad(bands) + 2 * w * w;
  const Count label = config.classes * hsi::flops::sad(bands);
  WorkloadModel model;
  model.flops_per_pixel =
      static_cast<double>(per_iter * config.iterations + label);
  model.bytes_per_pixel = bands * sizeof(float);
  model.scatter_input = false;
  // One synchronized block: the morphology runs locally; only the
  // candidate gather and label pass re-synchronize.
  model.sync_rounds = 2.0;
  return model;
}

void morph_body(vmpi::Comm& comm, const hsi::HsiCube& cube,
                const MorphConfig& config, ClassificationResult& result) {
  WorkloadModel model = morph_workload(cube.bands(), config);
  model.scatter_input = config.charge_data_staging;
  const std::size_t bands = cube.bands();

  // Overlap border of one structuring-element radius on each side (the
  // companion JPDC'06 paper's sizing); the same width is refreshed every
  // iteration in halo-exchange mode.
  const std::size_t halo = config.kernel_radius;

  const PartitionView view = detail::distribute_partitions(
      comm, cube, model, config.policy, config.memory_fraction, halo,
      config.replication);

  // --- Step 2: iterative morphology on the local block ---------------
  MorphWorker worker(cube, view.part, config);
  for (std::size_t j = 1; j <= config.iterations; ++j) {
    if (!config.overlap_borders && j > 1) {
      worker.exchange_halo(comm, halo);
    }
    const SplitFlops flops = worker.iterate(j == config.iterations);
    comm.compute(flops.charge(config.replication));
  }

  // --- Step 3: master merges the per-worker candidates ----------------
  auto local = worker.top_candidates();
  const std::size_t local_count = local.size();
  auto rep_sets = comm.gather(comm.root(), std::move(local),
                              rep_bytes(bands, local_count));

  std::vector<MorphRep> unique;
  if (comm.is_root()) {
    unique = merge_unique_sets(comm, std::move(rep_sets), config, bands);
  }

  // --- Step 4: broadcast the unique set, label locally -----------------
  // Shared broadcast: all ranks label against one immutable unique set.
  const std::size_t unique_bytes = rep_bytes(bands, unique.size());
  const auto unique_view =
      comm.bcast_shared(comm.root(), std::move(unique), unique_bytes);
  const std::vector<MorphRep>& shared_unique = *unique_view;
  const std::size_t reps = shared_unique.size();

  LabelOut local_l = label_partition(cube, view.part.row_begin,
                                     view.part.row_end, shared_unique);
  comm.compute(local_l.flops * config.replication);

  // --- Step 5: master assembles the classification matrix -------------
  const std::size_t block_bytes = local_l.block.labels.size() *
                                  sizeof(std::uint16_t) *
                                  config.replication;
  auto blocks =
      comm.gather(comm.root(), std::move(local_l.block), block_bytes);
  if (comm.is_root()) {
    assemble_label_image(comm, blocks, cube, reps, result);
  }
}

ClassificationResult run_morph(const simnet::Platform& platform,
                               const hsi::HsiCube& cube,
                               const MorphConfig& config,
                               vmpi::Options options) {
  HPRS_REQUIRE(config.classes >= 1, "need at least one class");
  HPRS_REQUIRE(config.iterations >= 1, "need at least one iteration");
  HPRS_REQUIRE(config.kernel_radius >= 1, "kernel radius must be >= 1");
  HPRS_REQUIRE(!cube.empty(), "empty cube");

  vmpi::Engine engine(platform, options);
  ClassificationResult result;

  if (config.fault_tolerant) {
    HPRS_REQUIRE(config.overlap_borders,
                 "fault-tolerant MORPH requires overlap borders: the "
                 "halo-exchange mode needs worker-to-worker traffic the "
                 "master/worker protocol excludes");
    ft::require_immortal_root(options);
    const ft::Program prog = morph_ft_program(cube, config, result);
    result.report = engine.run(
        [&](vmpi::Comm& comm) { ft::run_program(comm, cube, prog); });
    return result;
  }
  result.report = engine.run(
      [&](vmpi::Comm& comm) { morph_body(comm, cube, config, result); });
  return result;
}

}  // namespace hprs::core
