// Uniform dispatch over the four parallel algorithms.
//
// The bench harnesses sweep {algorithm} x {partition policy} x {platform};
// this runner gives them one call signature and one output shape.
#pragma once

#include <string>

#include "core/atdca.hpp"
#include "core/morph.hpp"
#include "core/pct.hpp"
#include "core/types.hpp"
#include "core/ufcls.hpp"

namespace hprs::core {

enum class Algorithm : std::uint8_t { kAtdca, kUfcls, kPct, kMorph };

[[nodiscard]] const char* to_string(Algorithm a);

/// Display name in the paper's convention ("Hetero-ATDCA", "Homo-PCT", ...).
[[nodiscard]] std::string display_name(Algorithm a, PartitionPolicy policy);

struct RunnerConfig {
  Algorithm algorithm = Algorithm::kAtdca;
  PartitionPolicy policy = PartitionPolicy::kHeterogeneous;
  std::size_t targets = 18;          // ATDCA / UFCLS
  std::size_t classes = 7;           // PCT / MORPH
  std::size_t morph_iterations = 5;  // MORPH I_max
  std::size_t kernel_radius = 2;     // MORPH structuring element radius
  double sad_threshold = 0.06;       // PCT / MORPH unique-set threshold
  double memory_fraction = 0.5;
  std::size_t replication = 1;       // virtual scale (see spmd_common.hpp)
  bool morph_overlap_borders = true;
  bool charge_data_staging = false;  // see DESIGN.md on data staging
  /// Fault-tolerant master/worker execution (core/ft.hpp): survives
  /// fail-stop worker crashes from Options::fault_plan while producing the
  /// fault-free outputs bit for bit.
  bool fault_tolerant = false;
  /// Rows per tile of the tiled BLAS3 sweeps (ATDCA / PCT); 0 defers to
  /// HPRS_TILE_ROWS, then to the automatic split.  Numerics- and
  /// virtual-time-neutral unless tile_stream is on.
  std::size_t tile_rows = 0;
  /// Per-tile streamed staging overlapped with compute on accelerated
  /// ranks (ATDCA / PCT; ORed with HPRS_TILE_STREAM).
  bool tile_stream = false;
};

struct RunnerOutput {
  vmpi::RunReport report;
  /// Populated by the target-detection algorithms.
  std::vector<PixelLocation> targets;
  /// Populated by the classifiers.
  std::vector<std::uint16_t> labels;
  std::size_t label_count = 0;
};

[[nodiscard]] RunnerOutput run_algorithm(const simnet::Platform& platform,
                                         const hsi::HsiCube& cube,
                                         const RunnerConfig& config,
                                         vmpi::Options options = {});

}  // namespace hprs::core
