// Morphological spatial/spectral classification (paper Alg. 5).
//
// Each worker receives its partition *with overlap borders* (redundant rows
// replacing halo communication -- the paper's design choice for reducing
// inter-processor traffic) and runs I_max iterations of multichannel
// morphology: for every pixel, the cumulative SAD D_B of each neighbor over
// the structuring element B identifies the most spectrally pure (dilation,
// argmax D_B) and most highly mixed (erosion, argmin D_B) neighbors; the
// morphological eccentricity index MEI(x, y) accumulates the SAD between
// the two picks, and the image is replaced by its dilation before the next
// iteration.  The c highest-MEI pixels per worker are merged by the master
// into p <= c unique class representatives; a final parallel pass labels
// every pixel by its most similar representative.
//
// Interpretation notes: the paper leaves |B| unspecified (its companion
// work uses square structuring elements; we default to 5x5 = radius 2) and
// says MEI is "updated" each iteration, which we read as a running maximum
// so scores stay in [0, pi].
#pragma once

#include "core/partition.hpp"
#include "core/types.hpp"
#include "hsi/cube.hpp"
#include "simnet/platform.hpp"
#include "vmpi/engine.hpp"

namespace hprs::core {

struct MorphConfig {
  /// Number of classes c (paper: 7).
  std::size_t classes = 7;
  /// Morphological iterations I_max (paper: 5).
  std::size_t iterations = 5;
  /// Structuring-element radius (B is the (2r+1) x (2r+1) square).
  std::size_t kernel_radius = 2;
  /// SAD threshold for the master's unique-set merge.
  double sad_threshold = 0.06;
  PartitionPolicy policy = PartitionPolicy::kHeterogeneous;
  double memory_fraction = 0.5;
  /// Virtual scale (see spmd_common.hpp).
  std::size_t replication = 1;
  /// Charge the full image distribution over the network instead of
  /// assuming pre-staged data (see DESIGN.md on why pre-staged is the
  /// default).  Also makes the WEA communication-aware.
  bool charge_data_staging = false;
  /// When false, skips the overlap borders and exchanges halo rows between
  /// neighboring ranks before every iteration instead (the communication-
  /// heavy alternative ablated in bench_ablation_overlap).
  bool overlap_borders = true;
  /// Run the fault-tolerant master/worker protocol (core/ft.hpp) instead
  /// of the collective SPMD schedule: the run survives fail-stop worker
  /// crashes from Options::fault_plan and still produces the fault-free
  /// outputs bit for bit.  Requires overlap_borders (halo exchange needs
  /// worker-to-worker traffic the protocol excludes); the root must not be
  /// in the crash plan.
  bool fault_tolerant = false;
};

/// Per-pixel workload model used by the WEA for this algorithm.
[[nodiscard]] WorkloadModel morph_workload(std::size_t bands,
                                           const MorphConfig& config);

/// The non-fault-tolerant SPMD schedule over any communicator (world or a
/// sub-communicator); only the comm root's `result` is populated.
void morph_body(vmpi::Comm& comm, const hsi::HsiCube& cube,
                const MorphConfig& config, ClassificationResult& result);

[[nodiscard]] ClassificationResult run_morph(const simnet::Platform& platform,
                                             const hsi::HsiCube& cube,
                                             const MorphConfig& config,
                                             vmpi::Options options = {});

}  // namespace hprs::core
