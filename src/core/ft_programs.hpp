// Per-algorithm ft::Program factories.
//
// Each factory packages one algorithm for the master/worker framework
// (core/ft.hpp): the phase handlers, the root-side control flow, and the
// WEA parameters.  The closures capture `cube` and `result` by reference
// and the config by value, so the returned Program must not outlive either
// argument.  ft::run_program(comm, cube, prog) reproduces the historical
// solo fault-tolerant schedules bit for bit; the cluster resilience layer
// (src/sched/resilience) drives the same Programs through a checkpointing
// PhaseDriver instead.
//
// The handlers are stateless (they only read the captured cube/config), so
// one Program instance may be shared by every rank of an engine run, in
// both executor modes.
#pragma once

#include "core/atdca.hpp"
#include "core/ft.hpp"
#include "core/morph.hpp"
#include "core/pct.hpp"
#include "core/ppi.hpp"
#include "core/ufcls.hpp"

namespace hprs::core {

[[nodiscard]] ft::Program atdca_ft_program(const hsi::HsiCube& cube,
                                           const AtdcaConfig& config,
                                           TargetDetectionResult& result);

[[nodiscard]] ft::Program ufcls_ft_program(const hsi::HsiCube& cube,
                                           const UfclsConfig& config,
                                           TargetDetectionResult& result);

[[nodiscard]] ft::Program pct_ft_program(const hsi::HsiCube& cube,
                                         const PctConfig& config,
                                         ClassificationResult& result);

/// Requires config.overlap_borders: the chunks carry their own halo rows,
/// so a re-run on an adopting rank needs no worker-to-worker exchange.
[[nodiscard]] ft::Program morph_ft_program(const hsi::HsiCube& cube,
                                           const MorphConfig& config,
                                           ClassificationResult& result);

[[nodiscard]] ft::Program ppi_ft_program(const hsi::HsiCube& cube,
                                         const PpiConfig& config,
                                         PpiResult& result);

}  // namespace hprs::core
