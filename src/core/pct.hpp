// Principal-component-transform classification (paper Alg. 4).
//
// Pipeline: (1) WEA partition + scatter; (2) each worker extracts a small
// "unique spectral set" of mutually dissimilar pixels by SAD-threshold
// deduplication; (3) the master merges the worker sets into c class
// representatives; (4-6) band means and the bands x bands covariance matrix
// are accumulated in parallel over partitions and combined sequentially at
// the master; (7) the master solves the symmetric eigenproblem sequentially
// (the step that limits PCT's scalability in the paper); (8) workers
// project their pixels onto the leading c principal components; (9) workers
// label every pixel by the most similar (SAD in the reduced space) class
// representative and the master assembles the label image.
//
// Interpretation note: the paper's abbreviated description computes the
// mean/covariance over the merged unique set; with c = 7 representatives
// that covariance is rank-deficient and statistically meaningless, and the
// standard parallel PCT the paper builds on (Achalakul & Taylor) uses
// full-image statistics, which is what we implement.  DESIGN.md records
// the deviation.
#pragma once

#include "core/partition.hpp"
#include "core/types.hpp"
#include "hsi/cube.hpp"
#include "simnet/platform.hpp"
#include "vmpi/engine.hpp"

namespace hprs::core {

struct PctConfig {
  /// Number of classes c (the paper uses 7, the USGS dust/debris classes).
  std::size_t classes = 7;
  /// SAD threshold (radians) for the unique-set deduplication; two pixels
  /// closer than this are considered the same substance.
  double sad_threshold = 0.06;
  PartitionPolicy policy = PartitionPolicy::kHeterogeneous;
  double memory_fraction = 0.5;
  /// Virtual scale (see spmd_common.hpp).
  std::size_t replication = 1;
  /// Charge the full image distribution over the network instead of
  /// assuming pre-staged data (see DESIGN.md on why pre-staged is the
  /// default).  Also makes the WEA communication-aware.
  bool charge_data_staging = false;
  /// Run the fault-tolerant master/worker protocol (core/ft.hpp) instead
  /// of the collective SPMD schedule: the run survives fail-stop worker
  /// crashes from Options::fault_plan and still produces the fault-free
  /// outputs bit for bit.  The root must not be in the crash plan.
  bool fault_tolerant = false;
  /// Rows per tile of the mean/covariance sweeps; 0 = HPRS_TILE_ROWS, else
  /// automatic (linalg::resolve_tile_rows).  Any value is numerics- and
  /// virtual-time-neutral unless tile_stream is on.
  std::size_t tile_rows = 0;
  /// Per-tile streamed staging overlapped with compute on accelerated
  /// ranks (ORed with HPRS_TILE_STREAM).  Off reproduces the historic
  /// upfront-staging charge bit for bit.
  bool tile_stream = false;
};

/// Per-pixel workload model used by the WEA for this algorithm.
[[nodiscard]] WorkloadModel pct_workload(std::size_t bands,
                                         std::size_t classes);

/// The non-fault-tolerant SPMD schedule over any communicator (world or a
/// sub-communicator); only the comm root's `result` is populated.
void pct_body(vmpi::Comm& comm, const hsi::HsiCube& cube,
              const PctConfig& config, ClassificationResult& result);

[[nodiscard]] ClassificationResult run_pct(const simnet::Platform& platform,
                                           const hsi::HsiCube& cube,
                                           const PctConfig& config,
                                           vmpi::Options options = {});

}  // namespace hprs::core
