#include "core/morph_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hsi/metrics.hpp"
#include "linalg/kernels.hpp"
#include "linalg/thread_pool.hpp"
#include "linalg/vec.hpp"

namespace hprs::core {

MorphBlockEngine::MorphBlockEngine(hsi::HsiCube block,
                                   std::size_t kernel_radius)
    : radius_(kernel_radius),
      f_(std::move(block)),
      mei_(f_.rows() * f_.cols(), 0.0) {}

std::pair<std::size_t, std::size_t> MorphBlockEngine::row_window(
    std::size_t x) const {
  return {x >= radius_ ? x - radius_ : 0, std::min(x + radius_ + 1, rows())};
}

std::pair<std::size_t, std::size_t> MorphBlockEngine::col_window(
    std::size_t y) const {
  return {y >= radius_ ? y - radius_ : 0, std::min(y + radius_ + 1, cols())};
}

void MorphBlockEngine::iterate(bool last) {
  const bool cached = !linalg::use_reference_kernels();
  d_.assign(rows() * cols(), 0.0);
  if (cached) {
    d_pass_cached(d_);
  } else {
    d_pass_reference(d_);
  }
  mei_pass(d_, last, cached);
}

// --- Reference path: D(x, y) = sum over the structuring element of
//     SAD(F(x, y), F(neighbor)), windows clamped to the block.
void MorphBlockEngine::d_pass_reference(std::vector<double>& d) const {
  const std::size_t n_cols = cols();
  for (std::size_t x = 0; x < rows(); ++x) {
    const auto [i_lo, i_hi] = row_window(x);
    for (std::size_t y = 0; y < n_cols; ++y) {
      const auto [j_lo, j_hi] = col_window(y);
      const auto center = f_.pixel(x, y);
      double acc = 0.0;
      for (std::size_t i = i_lo; i < i_hi; ++i) {
        for (std::size_t j = j_lo; j < j_hi; ++j) {
          acc += hsi::sad<float, float>(center, f_.pixel(i, j));
        }
      }
      d[x * n_cols + y] = acc;
    }
  }
}

void MorphBlockEngine::refresh_sad_cache() {
  const std::size_t n_rows = rows();
  const std::size_t n_cols = cols();
  const std::size_t count = n_rows * n_cols;
  const auto r = static_cast<std::ptrdiff_t>(radius_);

  norms_.resize(count);
  norms_sq_.resize(count);
  self_sad_.resize(count);
  // Per-pixel norms are independent; workers own contiguous pixel blocks.
  linalg::parallel_region(count, [&](std::size_t worker,
                                     std::size_t workers) {
    const std::size_t per = (count + workers - 1) / workers;
    const std::size_t p0 = worker * per;
    const std::size_t p1 = std::min(count, p0 + per);
    for (std::size_t p = p0; p < p1; ++p) {
      const double sq = linalg::norm_sq<float>(f_.pixel(p));
      const double n = std::sqrt(sq);
      norms_sq_[p] = sq;
      norms_[p] = n;
      // SAD(p, p) exactly as sad() computes it: the quotient sq / n^2 is
      // not exactly 1 in general, so the self term is acos rounding noise
      // rather than a literal zero.
      self_sad_[p] =
          n == 0.0 ? 0.0
                   : std::acos(std::clamp(sq / (n * n), -1.0, 1.0));
    }
  });

  if (offsets_.empty()) {
    // Lexicographically positive half of the structuring element; the
    // negative half is reached through SAD's symmetry.
    plane_of_.assign((radius_ + 1) * (2 * radius_ + 1),
                     std::ptrdiff_t{-1});
    for (std::ptrdiff_t di = 0; di <= r; ++di) {
      for (std::ptrdiff_t dj = -r; dj <= r; ++dj) {
        if (di == 0 && dj <= 0) continue;
        plane_of_[static_cast<std::size_t>(di) * (2 * radius_ + 1) +
                  static_cast<std::size_t>(dj + r)] =
            static_cast<std::ptrdiff_t>(offsets_.size());
        offsets_.emplace_back(static_cast<std::size_t>(di), dj);
      }
    }
    planes_.resize(offsets_.size());
  }

  // One worker per SAD plane (stride-owned): planes are disjoint output
  // arrays, each filled in the same serial order regardless of thread
  // count.
  linalg::parallel_region(
      offsets_.size(), [&](std::size_t worker, std::size_t workers) {
  for (std::size_t k = worker; k < offsets_.size(); k += workers) {
    const auto [di, dj] = offsets_[k];
    auto& plane = planes_[k];
    plane.resize(count);
    const std::size_t x_hi = n_rows > di ? n_rows - di : 0;
    const std::size_t y_lo = dj < 0 ? static_cast<std::size_t>(-dj) : 0;
    const std::size_t y_hi =
        dj > 0 && static_cast<std::size_t>(dj) >= n_cols
            ? 0
            : (dj > 0 ? n_cols - static_cast<std::size_t>(dj) : n_cols);
    for (std::size_t x = 0; x < x_hi; ++x) {
      for (std::size_t y = y_lo; y < y_hi; ++y) {
        const std::size_t p = x * n_cols + y;
        const std::size_t q =
            (x + di) * n_cols +
            static_cast<std::size_t>(static_cast<std::ptrdiff_t>(y) + dj);
        plane[p] = hsi::sad_with_norms<float, float>(
            f_.pixel(p), f_.pixel(q), norms_[p], norms_[q]);
      }
    }
  }
      });
}

// --- Fast path: one SAD evaluation per distinct (pixel, neighbor) pair,
//     then each D entry sums cached values in the reference window order.
void MorphBlockEngine::d_pass_cached(std::vector<double>& d) {
  refresh_sad_cache();
  const std::size_t n_cols = cols();
  const std::size_t n_rows = rows();
  const auto w = 2 * radius_ + 1;
  // Row ownership: each D row sums read-only cached planes into its own
  // slice of d, so contiguous row blocks per worker are bit-identical to
  // the serial sweep.  (The MEI pass stays serial: its mei_[p_max] updates
  // collide across windows.)
  linalg::parallel_region(n_rows, [&](std::size_t worker,
                                      std::size_t workers) {
    const std::size_t per = (n_rows + workers - 1) / workers;
    const std::size_t x0 = worker * per;
    const std::size_t x1 = std::min(n_rows, x0 + per);
  for (std::size_t x = x0; x < x1; ++x) {
    const auto [i_lo, i_hi] = row_window(x);
    for (std::size_t y = 0; y < n_cols; ++y) {
      const auto [j_lo, j_hi] = col_window(y);
      double acc = 0.0;
      for (std::size_t i = i_lo; i < i_hi; ++i) {
        for (std::size_t j = j_lo; j < j_hi; ++j) {
          double v;
          if (i == x && j == y) {
            v = self_sad_[x * n_cols + y];
          } else if (i > x || (i == x && j > y)) {
            const std::ptrdiff_t k =
                plane_of_[(i - x) * w +
                          static_cast<std::size_t>(
                              static_cast<std::ptrdiff_t>(j) -
                              static_cast<std::ptrdiff_t>(y) +
                              static_cast<std::ptrdiff_t>(radius_))];
            v = planes_[static_cast<std::size_t>(k)][x * n_cols + y];
          } else {
            const std::ptrdiff_t k =
                plane_of_[(x - i) * w +
                          static_cast<std::size_t>(
                              static_cast<std::ptrdiff_t>(y) -
                              static_cast<std::ptrdiff_t>(j) +
                              static_cast<std::ptrdiff_t>(radius_))];
            v = planes_[static_cast<std::size_t>(k)][i * n_cols + j];
          }
          acc += v;
        }
      }
      d[x * n_cols + y] = acc;
    }
  }
  });
}

// --- MEI + dilation pass: erosion picks the window's argmin of D, the
//     dilation its argmax; MEI accumulates the SAD between the two picks.
void MorphBlockEngine::mei_pass(const std::vector<double>& d, bool last,
                                bool cached) {
  const std::size_t n_cols = cols();
  if (!last) {
    if (next_.empty()) {
      next_ = f_;
    }
  }
  for (std::size_t x = 0; x < rows(); ++x) {
    const auto [i_lo, i_hi] = row_window(x);
    for (std::size_t y = 0; y < n_cols; ++y) {
      const auto [j_lo, j_hi] = col_window(y);
      double d_min = std::numeric_limits<double>::infinity();
      double d_max = -d_min;
      std::size_t min_x = x, min_y = y, max_x = x, max_y = y;
      for (std::size_t i = i_lo; i < i_hi; ++i) {
        for (std::size_t j = j_lo; j < j_hi; ++j) {
          const double v = d[i * n_cols + j];
          if (v < d_min) {
            d_min = v;
            min_x = i;
            min_y = j;
          }
          if (v > d_max) {
            d_max = v;
            max_x = i;
            max_y = j;
          }
        }
      }

      const std::size_t p_min = min_x * n_cols + min_y;
      const std::size_t p_max = max_x * n_cols + max_y;
      const double score =
          cached ? hsi::sad_with_norms<float, float>(
                       f_.pixel(p_min), f_.pixel(p_max), norms_[p_min],
                       norms_[p_max])
                 : hsi::sad<float, float>(f_.pixel(p_min), f_.pixel(p_max));
      // AMEE convention: the eccentricity score is associated with the
      // spectrally purest pixel of the window (the dilation pick), which is
      // what makes high-MEI pixels good class representatives.
      auto& best = mei_[p_max];
      best = std::max(best, score);

      if (!last) {
        const auto src = f_.pixel(p_max);
        std::copy(src.begin(), src.end(), next_.pixel(x, y).begin());
      }
    }
  }

  if (!last) {
    std::swap(f_, next_);
  }
}

}  // namespace hprs::core
