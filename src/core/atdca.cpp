#include "core/atdca.hpp"

#include <any>
#include <limits>
#include <memory>

#include "common/error.hpp"
#include "core/ft_programs.hpp"
#include "core/spmd_common.hpp"
#include "linalg/flops.hpp"
#include "linalg/vec.hpp"
#include "vmpi/comm.hpp"

namespace hprs::core {

namespace {

using detail::Candidate;
using linalg::flops::Count;

/// First row-major argmax of the squared norm over rows
/// [row_begin, row_end), plus the flops performed.  Tiles of a partition
/// fold their results with the same strictly-greater comparison in tile
/// order, which reproduces the monolithic sweep's first-maximum exactly.
struct BrightOut {
  Candidate best{0, 0, -1.0};
  Count flops = 0;
};

BrightOut brightest_range(const hsi::HsiCube& cube, std::size_t row_begin,
                          std::size_t row_end) {
  BrightOut out;
  for (std::size_t r = row_begin; r < row_end; ++r) {
    for (std::size_t c = 0; c < cube.cols(); ++c) {
      const double score = linalg::norm_sq(cube.pixel(r, c));
      out.flops += linalg::flops::dot(cube.bands());
      if (score > out.best.score) out.best = Candidate{r, c, score};
    }
  }
  return out;
}

/// Local argmax of the squared norm over the owned rows.
Candidate brightest_pixel(vmpi::Comm& comm, const PartitionView& view,
                          std::size_t replication) {
  BrightOut out = brightest_range(*view.cube, view.part.row_begin,
                                  view.part.row_end);
  comm.compute(out.flops * replication);
  return out.best;
}

/// Master-side selection of the winning candidate, charged as the paper
/// describes: the master re-applies the current operator at the P proposed
/// locations before picking the maximum.
Candidate select_best(vmpi::Comm& comm, const std::vector<Candidate>& cands,
                      Count per_candidate_flops) {
  Candidate best{0, 0, -std::numeric_limits<double>::infinity()};
  for (const auto& c : cands) {
    if (c.score > best.score) best = c;
  }
  comm.compute(per_candidate_flops * cands.size() + cands.size(),
               vmpi::Phase::kSequential);
  return best;
}

}  // namespace

/// The fault-tolerant schedule (core/ft.hpp): the same chunk kernels as the
/// collective path (brightest_pixel, osp_argmax_sweep), driven by the
/// master over point-to-point operations so worker crashes are survivable.
/// Folding candidates in chunk order reproduces the gather's rank-order
/// fold, so the extracted targets equal the fault-free ones exactly.
ft::Program atdca_ft_program(const hsi::HsiCube& cube,
                             const AtdcaConfig& config,
                             TargetDetectionResult& result) {
  ft::Program prog;
  prog.model = atdca_workload(cube.bands(), config.targets);
  prog.model.scatter_input = config.charge_data_staging;
  prog.policy = config.policy;
  prog.memory_fraction = config.memory_fraction;
  prog.replication = config.replication;
  // Phase 0: the chunk's brightest pixel.
  prog.handlers.push_back(
      [&cube, config](vmpi::Comm& c, const ft::Chunk& chunk, const std::any*) {
        const PartitionView view{&cube, chunk.part};
        return ft::ChunkOutcome{brightest_pixel(c, view, config.replication),
                                detail::kCandidateBytes};
      });
  // Phase 1: the chunk's OSP argmax against the shipped target matrix U.
  prog.handlers.push_back(
      [&cube, config](vmpi::Comm& c, const ft::Chunk& chunk,
                      const std::any* payload) {
        const auto& u = std::any_cast<const linalg::Matrix&>(*payload);
        const linalg::Cholesky gram(detail::ridged_row_gram(u));
        c.compute(linalg::flops::gram(cube.bands(), u.rows()) +
                  linalg::flops::cholesky(u.rows()));
        linalg::ScratchArena arena;
        const Candidate best = detail::osp_argmax_sweep(
            u, gram, cube, chunk.part.row_begin, chunk.part.row_end, arena);
        c.compute(static_cast<Count>(chunk.part.owned_rows()) * cube.cols() *
                  linalg::flops::osp_score(cube.bands(), u.rows()) *
                  config.replication);
        return ft::ChunkOutcome{best, detail::kCandidateBytes};
      });

  prog.master = [&cube, config, &result](vmpi::Comm& comm,
                                         ft::PhaseDriver& master,
                                         const std::vector<ft::Handler>& h) {
    const auto as_candidates = [](const std::vector<std::any>& results) {
      std::vector<Candidate> cands;
      cands.reserve(results.size());
      for (const auto& r : results) {
        cands.push_back(std::any_cast<Candidate>(r));
      }
      return cands;
    };

    // Steps 2-3: global brightest pixel, folded in chunk (== rank) order.
    const Candidate t1 = select_best(comm, as_candidates(master.phase(0, h[0])),
                                     linalg::flops::dot(cube.bands()));
    std::vector<PixelLocation> found{{t1.row, t1.col}};
    linalg::Matrix targets;
    targets.append_row(detail::to_double(cube.pixel(t1.row, t1.col)));

    // Steps 4-6: grow U one orthogonal target at a time; U ships with each
    // phase command instead of the collective broadcast.
    while (found.size() < config.targets) {
      const std::size_t u_bytes =
          targets.rows() * cube.bands() * sizeof(double);
      auto payload = std::make_shared<const std::any>(targets);
      const auto round = as_candidates(master.phase(1, h[1], payload, u_bytes));
      const Candidate next = select_best(
          comm, round, linalg::flops::osp_score(cube.bands(), targets.rows()));
      found.push_back({next.row, next.col});
      targets.append_row(detail::to_double(cube.pixel(next.row, next.col)));
    }
    master.finish();
    result.targets = std::move(found);
  };
  return prog;
}

WorkloadModel atdca_workload(std::size_t bands, std::size_t targets) {
  // Brightness pass plus t-1 projection passes of growing width.
  Count flops = linalg::flops::dot(bands);
  for (std::size_t t = 1; t < targets; ++t) {
    flops += linalg::flops::osp_score(bands, t);
  }
  WorkloadModel model;
  model.flops_per_pixel = static_cast<double>(flops);
  model.bytes_per_pixel = bands * sizeof(float);
  model.scatter_input = false;
  model.sync_rounds = static_cast<double>(targets);
  return model;
}

void atdca_body(vmpi::Comm& comm, const hsi::HsiCube& cube,
                const AtdcaConfig& config, TargetDetectionResult& result) {
  WorkloadModel model = atdca_workload(cube.bands(), config.targets);
  model.scatter_input = config.charge_data_staging;
  const bool streaming = config.tile_stream || linalg::tile_stream_enabled();
  model.tile_stream = streaming;
  const PartitionView view = detail::distribute_partitions(
      comm, cube, model, config.policy, config.memory_fraction,
      /*overlap=*/0, config.replication, /*defer_staging=*/streaming);
  // Tile plan over the owned rows; with streaming on, each tile's copy is
  // enqueued here and the brightest/OSP sweeps overlap the remaining
  // transfers with per-tile compute.
  const detail::TileStream tiles = detail::begin_tile_stream(
      comm, view, config.tile_rows, streaming, config.replication);

  // Steps 2-3: global brightest pixel, swept tile by tile (fold order ==
  // tile order == row-major order, so the pick is the monolithic one).
  Candidate local{0, 0, -1.0};
  detail::tiled_sweep(comm, tiles, config.replication,
                      [&](const linalg::TileDesc& t) {
                        BrightOut out =
                            brightest_range(cube, t.row_begin, t.row_end);
                        if (out.best.score > local.score) local = out.best;
                        return out.flops;
                      });
  const auto cands =
      comm.gather(comm.root(), local, detail::kCandidateBytes);

  linalg::Matrix targets;  // t x bands, grown at the master
  std::vector<PixelLocation> found;
  if (comm.is_root()) {
    const Candidate t1 =
        select_best(comm, cands, linalg::flops::dot(cube.bands()));
    found.push_back({t1.row, t1.col});
    targets.append_row(detail::to_double(cube.pixel(t1.row, t1.col)));
  }

  // Steps 4-6: grow U one orthogonal target at a time.  The broadcast is
  // shared: all ranks sweep against one immutable copy of U; only the
  // master re-materializes an owned matrix to grow it.
  linalg::ScratchArena arena;  // strip-sweep scratch, reused every round
  while (true) {
    // Only the root's payload (and wire size) reaches the engine.
    const std::size_t u_bytes =
        comm.is_root() ? targets.rows() * cube.bands() * sizeof(double) : 0;
    const auto u_view =
        comm.bcast_shared(comm.root(), std::move(targets), u_bytes);
    const std::size_t t_cur = u_view->rows();
    if (t_cur >= config.targets) break;

    // Factor the Gram of U once per iteration (every rank; the master's
    // copy is reused for candidate re-evaluation).
    const linalg::Cholesky gram(detail::ridged_row_gram(*u_view));
    comm.compute(linalg::flops::gram(cube.bands(), t_cur) +
                 linalg::flops::cholesky(t_cur));

    // Tiled OSP sweep: osp_argmax_sweep returns the first row-major
    // maximum of its range, so folding per-tile bests strictly-greater in
    // tile order reproduces the monolithic sweep's pick exactly.
    Candidate local_best{0, 0, -1.0};
    detail::tiled_sweep(
        comm, tiles, config.replication, [&](const linalg::TileDesc& t) {
          const Candidate cand = detail::osp_argmax_sweep(
              *u_view, gram, cube, t.row_begin, t.row_end, arena);
          if (cand.score > local_best.score) local_best = cand;
          return static_cast<Count>(t.rows()) * cube.cols() *
                 linalg::flops::osp_score(cube.bands(), t_cur);
        });

    const auto round =
        comm.gather(comm.root(), local_best, detail::kCandidateBytes);
    if (comm.is_root()) {
      const Candidate next = select_best(
          comm, round, linalg::flops::osp_score(cube.bands(), t_cur));
      found.push_back({next.row, next.col});
      targets = *u_view;  // re-own the shared U to grow it
      targets.append_row(detail::to_double(cube.pixel(next.row, next.col)));
    }
    // Non-root ranks leave `targets` empty; the next bcast refreshes it.
  }

  if (comm.is_root()) {
    result.targets = std::move(found);
  }
}

TargetDetectionResult run_atdca(const simnet::Platform& platform,
                                const hsi::HsiCube& cube,
                                const AtdcaConfig& config,
                                vmpi::Options options) {
  HPRS_REQUIRE(config.targets >= 1, "need at least one target");
  HPRS_REQUIRE(!cube.empty(), "empty cube");

  vmpi::Engine engine(platform, options);
  TargetDetectionResult result;

  if (config.fault_tolerant) {
    ft::require_immortal_root(options);
    const ft::Program prog = atdca_ft_program(cube, config, result);
    result.report = engine.run(
        [&](vmpi::Comm& comm) { ft::run_program(comm, cube, prog); });
    return result;
  }
  result.report = engine.run(
      [&](vmpi::Comm& comm) { atdca_body(comm, cube, config, result); });
  return result;
}

}  // namespace hprs::core
