#include "core/atdca.hpp"

#include <limits>

#include "common/error.hpp"
#include "core/spmd_common.hpp"
#include "linalg/flops.hpp"
#include "linalg/vec.hpp"
#include "vmpi/comm.hpp"

namespace hprs::core {

namespace {

using detail::Candidate;
using linalg::flops::Count;

/// Local argmax of the squared norm over the owned rows.
Candidate brightest_pixel(vmpi::Comm& comm, const PartitionView& view,
                          std::size_t replication) {
  const auto& cube = *view.cube;
  Candidate best{0, 0, -1.0};
  Count flops = 0;
  for (std::size_t r = view.part.row_begin; r < view.part.row_end; ++r) {
    for (std::size_t c = 0; c < cube.cols(); ++c) {
      const double score = linalg::norm_sq(cube.pixel(r, c));
      flops += linalg::flops::dot(cube.bands());
      if (score > best.score) best = Candidate{r, c, score};
    }
  }
  comm.compute(flops * replication);
  return best;
}

/// Master-side selection of the winning candidate, charged as the paper
/// describes: the master re-applies the current operator at the P proposed
/// locations before picking the maximum.
Candidate select_best(vmpi::Comm& comm, const std::vector<Candidate>& cands,
                      Count per_candidate_flops) {
  Candidate best{0, 0, -std::numeric_limits<double>::infinity()};
  for (const auto& c : cands) {
    if (c.score > best.score) best = c;
  }
  comm.compute(per_candidate_flops * cands.size() + cands.size(),
               vmpi::Phase::kSequential);
  return best;
}

}  // namespace

WorkloadModel atdca_workload(std::size_t bands, std::size_t targets) {
  // Brightness pass plus t-1 projection passes of growing width.
  Count flops = linalg::flops::dot(bands);
  for (std::size_t t = 1; t < targets; ++t) {
    flops += linalg::flops::osp_score(bands, t);
  }
  WorkloadModel model;
  model.flops_per_pixel = static_cast<double>(flops);
  model.bytes_per_pixel = bands * sizeof(float);
  model.scatter_input = false;
  model.sync_rounds = static_cast<double>(targets);
  return model;
}

TargetDetectionResult run_atdca(const simnet::Platform& platform,
                                const hsi::HsiCube& cube,
                                const AtdcaConfig& config,
                                vmpi::Options options) {
  HPRS_REQUIRE(config.targets >= 1, "need at least one target");
  HPRS_REQUIRE(!cube.empty(), "empty cube");

  vmpi::Engine engine(platform, options);
  TargetDetectionResult result;

  WorkloadModel model = atdca_workload(cube.bands(), config.targets);
  model.scatter_input = config.charge_data_staging;
  result.report = engine.run([&](vmpi::Comm& comm) {
    const PartitionView view = detail::distribute_partitions(
        comm, cube, model, config.policy, config.memory_fraction,
        /*overlap=*/0, config.replication);

    // Steps 2-3: global brightest pixel.
    const Candidate local = brightest_pixel(comm, view, config.replication);
    const auto cands =
        comm.gather(comm.root(), local, detail::kCandidateBytes);

    linalg::Matrix targets;  // t x bands, grown at the master
    std::vector<PixelLocation> found;
    if (comm.is_root()) {
      const Candidate t1 =
          select_best(comm, cands, linalg::flops::dot(cube.bands()));
      found.push_back({t1.row, t1.col});
      targets.append_row(detail::to_double(cube.pixel(t1.row, t1.col)));
    }

    // Steps 4-6: grow U one orthogonal target at a time.  The broadcast is
    // shared: all ranks sweep against one immutable copy of U; only the
    // master re-materializes an owned matrix to grow it.
    linalg::ScratchArena arena;  // strip-sweep scratch, reused every round
    while (true) {
      // Only the root's payload (and wire size) reaches the engine.
      const std::size_t u_bytes =
          comm.is_root() ? targets.rows() * cube.bands() * sizeof(double) : 0;
      const auto u_view =
          comm.bcast_shared(comm.root(), std::move(targets), u_bytes);
      const std::size_t t_cur = u_view->rows();
      if (t_cur >= config.targets) break;

      // Factor the Gram of U once per iteration (every rank; the master's
      // copy is reused for candidate re-evaluation).
      const linalg::Cholesky gram(detail::ridged_row_gram(*u_view));
      comm.compute(linalg::flops::gram(cube.bands(), t_cur) +
                   linalg::flops::cholesky(t_cur));

      const Candidate local_best = detail::osp_argmax_sweep(
          *u_view, gram, cube, view.part.row_begin, view.part.row_end, arena);
      const Count flops =
          static_cast<Count>(view.part.owned_rows()) * cube.cols() *
          linalg::flops::osp_score(cube.bands(), t_cur);
      comm.compute(flops * config.replication);

      const auto round =
          comm.gather(comm.root(), local_best, detail::kCandidateBytes);
      if (comm.is_root()) {
        const Candidate next = select_best(
            comm, round, linalg::flops::osp_score(cube.bands(), t_cur));
        found.push_back({next.row, next.col});
        targets = *u_view;  // re-own the shared U to grow it
        targets.append_row(detail::to_double(cube.pixel(next.row, next.col)));
      }
      // Non-root ranks leave `targets` empty; the next bcast refreshes it.
    }

    if (comm.is_root()) {
      result.targets = std::move(found);
    }
  });

  return result;
}

}  // namespace hprs::core
