#include "core/unmix_map.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/spmd_common.hpp"
#include "linalg/fcls.hpp"
#include "obs/host_profile.hpp"
#include "obs/metrics.hpp"
#include "linalg/flops.hpp"
#include "vmpi/comm.hpp"

namespace hprs::core {

namespace {

using linalg::flops::Count;

/// A worker's slice of the abundance planes.
struct AbundanceBlock {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
  /// pixel-major: [local pixel][endmember], then rmse appended per pixel.
  std::vector<float> abundances;
  std::vector<float> rmse;
};

}  // namespace

std::size_t AbundanceMaps::dominant(std::size_t row, std::size_t col) const {
  HPRS_REQUIRE(row < rows && col < cols, "pixel out of range");
  std::size_t best = 0;
  float best_v = -1.0f;
  for (std::size_t e = 0; e < endmembers; ++e) {
    const float v = planes[e * rows * cols + row * cols + col];
    if (v > best_v) {
      best_v = v;
      best = e;
    }
  }
  return best;
}

WorkloadModel unmix_workload(std::size_t bands, std::size_t endmembers) {
  WorkloadModel model;
  model.flops_per_pixel =
      static_cast<double>(linalg::flops::fcls(bands, endmembers, 2));
  model.bytes_per_pixel = bands * sizeof(float);
  model.scatter_input = false;
  model.sync_rounds = 1.0;  // one unmixing pass, one gather
  return model;
}

linalg::Matrix endmembers_at(const hsi::HsiCube& cube,
                             std::span<const PixelLocation> locations) {
  HPRS_REQUIRE(!locations.empty(), "need at least one endmember location");
  linalg::Matrix m;
  for (const auto& loc : locations) {
    m.append_row(detail::to_double(cube.pixel(loc.row, loc.col)));
  }
  return m;
}

AbundanceMaps run_unmix_map(const simnet::Platform& platform,
                            const hsi::HsiCube& cube,
                            const linalg::Matrix& endmembers,
                            const UnmixMapConfig& config,
                            vmpi::Options options) {
  HPRS_REQUIRE(endmembers.rows() >= 1, "need at least one endmember");
  HPRS_REQUIRE(endmembers.cols() == cube.bands(),
               "endmember band count does not match the cube");
  obs::Metrics::instance().add("core.runs.UNMIX", 1);
  obs::ScopedHostTimer obs_timer("core.run.UNMIX");
  HPRS_REQUIRE(!cube.empty(), "empty cube");

  vmpi::Engine engine(platform, options);
  AbundanceMaps result;
  result.endmembers = endmembers.rows();
  result.rows = cube.rows();
  result.cols = cube.cols();

  WorkloadModel model = unmix_workload(cube.bands(), endmembers.rows());
  model.scatter_input = config.charge_data_staging;
  const std::size_t bands = cube.bands();
  const std::size_t cols = cube.cols();
  const std::size_t t = endmembers.rows();

  result.report = engine.run([&](vmpi::Comm& comm) {
    const PartitionView view = detail::distribute_partitions(
        comm, cube, model, config.policy, config.memory_fraction,
        /*overlap=*/0, config.replication);

    // Broadcast the endmember matrix and factor it once per rank.  Shared
    // broadcast: only the root stages a copy; the others alias it.
    const auto sigs = comm.bcast_shared(
        comm.root(), comm.is_root() ? endmembers : linalg::Matrix(),
        t * bands * sizeof(double));
    const linalg::Unmixer unmixer(*sigs);
    comm.compute(linalg::flops::gram(bands, t) + linalg::flops::cholesky(t));

    AbundanceBlock block;
    block.row_begin = view.part.row_begin;
    block.row_end = view.part.row_end;
    block.abundances.reserve(view.part.owned_rows() * cols * t);
    block.rmse.reserve(view.part.owned_rows() * cols);
    Count flops = 0;
    for (std::size_t r = view.part.row_begin; r < view.part.row_end; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const auto unmix = unmixer.fcls(cube.pixel(r, c));
        flops += linalg::flops::fcls(
            bands, t, static_cast<Count>(unmix.iterations) + 1);
        for (const double a : unmix.abundances) {
          block.abundances.push_back(static_cast<float>(a));
        }
        block.rmse.push_back(static_cast<float>(
            std::sqrt(unmix.error_sq / static_cast<double>(bands))));
      }
    }
    comm.compute(flops * config.replication);

    const std::size_t block_bytes =
        (block.abundances.size() + block.rmse.size()) * sizeof(float) *
        config.replication;
    auto blocks = comm.gather(comm.root(), std::move(block), block_bytes);

    if (comm.is_root()) {
      result.planes.assign(t * cube.pixel_count(), 0.0f);
      result.rmse.assign(cube.pixel_count(), 0.0f);
      for (const auto& blk : blocks) {
        std::size_t k = 0;
        for (std::size_t r = blk.row_begin; r < blk.row_end; ++r) {
          for (std::size_t c = 0; c < cols; ++c) {
            for (std::size_t e = 0; e < t; ++e) {
              result.planes[e * cube.pixel_count() + r * cols + c] =
                  blk.abundances[k * t + e];
            }
            result.rmse[r * cols + c] = blk.rmse[k];
            ++k;
          }
        }
      }
      comm.compute(cube.pixel_count() / 8, vmpi::Phase::kSequential);
    }
  });

  return result;
}

}  // namespace hprs::core
