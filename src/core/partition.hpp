// Workload estimation and data partitioning (paper Algorithm 1, WEA).
//
// The WEA assigns each processor a workload fraction alpha_i and turns the
// fractions into spatial-domain partitions (blocks of whole image rows that
// keep full spectral content -- the paper's hybrid strategy), subject to
// per-node memory bounds with recursive redistribution of any excess.
//
// Two policies:
//
//  * kHomogeneous -- the paper's homogeneous baseline: equal fractions
//    alpha_i = 1/P regardless of the platform.
//
//  * kHeterogeneous -- the heterogeneity-aware WEA.  The paper's text
//    derives alpha_i from cycle-times only (alpha_i ~ 1/w_i), but its
//    evaluation (Table 5, partially homogeneous network) shows the
//    heterogeneous algorithms adapting to *link* heterogeneity as well, so
//    our WEA computes the fractions from the full cost model: processor i
//    receives its block over the master's serialized NIC chain and then
//    computes it, and the fractions are chosen so all processors finish
//    simultaneously.  With per-pixel compute cost e_i and per-pixel
//    transfer cost g_i this is the classical divisible-load recursion
//        alpha_{i+1} = alpha_i * e_i / (g_{i+1} + e_{i+1}),
//    which degenerates to alpha_i ~ 1/w_i exactly when communication is
//    negligible -- the paper's formula.  DESIGN.md discusses this
//    refinement.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/platform.hpp"

namespace hprs::core {

enum class PartitionPolicy : std::uint8_t {
  kHomogeneous,
  kHeterogeneous,
};

[[nodiscard]] const char* to_string(PartitionPolicy p);

/// Per-pixel cost model of the algorithm to be partitioned; only the ratio
/// of the two costs matters for the fractions.
struct WorkloadModel {
  double flops_per_pixel = 1.0;
  std::size_t bytes_per_pixel = 1;
  /// Whether the input block is transferred from the master (true for all
  /// the shipped algorithms; false models pre-distributed data).
  bool scatter_input = true;
  /// Number of globally synchronized compute rounds the algorithm runs
  /// after receiving its block.  The one-time staging transfer can only be
  /// hidden behind the first round, so the divisible-load recursion
  /// amortizes the per-pixel transfer cost over this many rounds; iterative
  /// algorithms (large values) therefore converge to the pure-speed
  /// fractions alpha ~ 1/w.
  double sync_rounds = 1.0;
  /// Streamed per-tile staging: the accelerated ranks' host->device copy
  /// overlaps their compute (engine staging pipe), so the per-pixel cost is
  /// the dominant term instead of the sum and they can absorb larger
  /// shares.  False keeps every historic partition bit-identical.
  bool tile_stream = false;
  /// Job-level flops the master/leader executes sequentially regardless of
  /// the partition (e.g. PCT's Jacobi eigensolve of the band covariance).
  /// Irrelevant to the WEA fractions -- every rank waits on the same serial
  /// section -- but a scheduler estimating a gang's span must charge it at
  /// the leader's speed (sched/cost_model.cpp).
  double seq_flops = 0.0;
};

/// One rank's slice: whole image rows [row_begin, row_end), plus the halo
/// extent [halo_begin, halo_end) when an overlap border was requested
/// (MORPH's redundant-computation scheme).  Without overlap the halo equals
/// the owned range.
struct RowPartition {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;
  std::size_t halo_begin = 0;
  std::size_t halo_end = 0;

  [[nodiscard]] std::size_t owned_rows() const { return row_end - row_begin; }
  [[nodiscard]] std::size_t halo_rows() const { return halo_end - halo_begin; }
};

struct PartitionResult {
  /// Workload fraction per rank (sums to 1).
  std::vector<double> alpha;
  /// Row ranges per rank, in rank order, covering [0, rows) exactly.
  std::vector<RowPartition> parts;
};

/// Computes workload fractions and row partitions for `rows` x `cols`
/// pixels of `bytes_per_pixel` bytes on the platform.
///
/// `memory_fraction` is the fraction of each node's main memory usable for
/// its partition (the upper bound of Algorithm 1 step 3); exceeding it
/// triggers the recursive redistribution.  `overlap` adds that many halo
/// rows on each side of every partition (clamped at the image border).
/// Throws hprs::Error if the image does not fit in the aggregate memory.
[[nodiscard]] PartitionResult wea_partition(
    const simnet::Platform& platform, std::size_t rows, std::size_t cols,
    const WorkloadModel& model, PartitionPolicy policy,
    double memory_fraction = 0.5, std::size_t overlap = 0, int root = 0);

/// Spectral-domain partitioning (contiguous band ranges per rank), provided
/// for the partitioning-strategy ablation.  Returns [begin, end) band
/// ranges proportional to the same fractions as wea_partition.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
spectral_partition(const simnet::Platform& platform, std::size_t bands,
                   PartitionPolicy policy, int root = 0);

}  // namespace hprs::core
