// Fault-tolerant master/worker execution framework (paper Sect. 6 outlook:
// "fault tolerance ... on networks of workstations").
//
// The SPMD algorithm implementations assume every processor survives the
// run: they synchronize with full-world collectives, which can never
// complete once a rank fail-stops (vmpi/fault.hpp).  This framework
// restructures the same numeric work as a master/worker protocol that only
// ever uses point-to-point operations between the (immortal) root and the
// workers, so the master can outlive worker crashes:
//
//  * The master runs the WEA once and freezes the result as `Chunk`s --
//    the original full-world partitions, including MORPH halo rows.  Chunks
//    are atomic: they are reassigned whole, never split, so the per-chunk
//    floating-point accumulation order is independent of which rank
//    computes the chunk.
//
//  * Each algorithm phase is a `Handler`: chunk (+ an optional shared
//    payload such as the current target matrix) -> result blob.  The same
//    closure runs on the master and on every worker, so a recomputed chunk
//    reproduces the lost result bit for bit.
//
//  * The master drives each phase: it issues a `Command` to every live
//    worker (Comm::try_send, ascending rank order), computes its own
//    chunks, and collects a `PhaseResult` from each commanded worker
//    (Comm::try_recv, ascending rank order).  A false/nullopt marks the
//    worker dead (the engine charges the detection heartbeat); the master
//    then re-runs the WEA over the survivors -- respecting each node's
//    memory bound -- adopts the orphaned chunks, and re-issues them with
//    Command::recovery set so the recomputation is tagged as recovery
//    overhead (Comm::RecoveryScope).
//
//  * Folding phase results in ascending chunk id reproduces the rank-order
//    folds of the collective implementations, so a fault-tolerant run's
//    outputs (targets, labels) equal the fault-free outputs exactly, with
//    or without crashes.
//
// Determinism: every transfer has the root as one endpoint, and the master
// holds at most one operation in flight (try_send blocks until matched or
// the peer's death is detected), so the virtual transfer schedule is
// serialized by the master's program order regardless of host scheduling
// or execution mode.
#pragma once

#include <any>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/partition.hpp"
#include "hsi/cube.hpp"
#include "vmpi/comm.hpp"

namespace hprs::core::ft {

/// One atomic unit of work: an original WEA partition, identified by its
/// position in the full-world partition (== the rank that would own it in
/// the collective implementation).
struct Chunk {
  int id = -1;
  RowPartition part;
};

/// Wire size of one chunk descriptor inside a Command (row range, halo
/// range, phase id -- mirrors detail::kPartitionDescriptorBytes).
inline constexpr std::size_t kChunkDescriptorBytes = 64;
/// Wire overhead per chunk result in a PhaseResult (chunk id + framing).
inline constexpr std::size_t kResultHeaderBytes = 8;

/// Reserved tags of the master/worker protocol.
inline constexpr int kCommandTag = 7001;
inline constexpr int kResultTag = 7002;

/// What a handler returns for one chunk: the result blob plus its wire size
/// (the bytes the worker charges when shipping it back to the master).
struct ChunkOutcome {
  std::any value;
  std::size_t bytes = 0;
};

/// A phase kernel, run identically on master and workers.  `payload` is the
/// phase's shared state (null when the phase has none); handlers charge
/// their own virtual compute via `comm`.
using Handler =
    std::function<ChunkOutcome(vmpi::Comm& comm, const Chunk& chunk,
                               const std::any* payload)>;

/// A master -> worker message: run `phase` over `chunks`, or exit when
/// `phase` is negative.  The payload is shared (never mutated) across all
/// ranks of the host process; its wire size is charged per worker.
struct Command {
  int phase = -1;
  bool recovery = false;
  std::shared_ptr<const std::any> payload;
  std::vector<Chunk> chunks;
};

struct ChunkResult {
  int chunk = -1;
  std::any value;
};

/// A worker -> master message: the results of one Command, in the order the
/// chunks were listed.
struct PhaseResult {
  std::vector<ChunkResult> results;
};

/// The generic worker side: executes Commands from the root until told to
/// finish.  `handlers[k]` serves phase k.  Workers talk to the root with
/// plain (non-try) operations: the root never crashes (run_* validate the
/// fault plan), and a posted message is always delivered, so a worker
/// blocked toward the root can always make progress.
void worker_loop(vmpi::Comm& comm, const std::vector<Handler>& handlers);

/// Worker loop for gangs whose root (the gang leader) is itself mortal --
/// the cluster-resilience case (src/sched/resilience): every operation
/// toward the root is a try-variant, so a leader crash is detected instead
/// of deadlocking or poisoning the engine.  Returns true when the leader
/// released this worker with the exit command, false when the leader was
/// detected dead (the caller then reports itself free to whatever outer
/// control plane owns it).
[[nodiscard]] bool resilient_worker_loop(vmpi::Comm& comm,
                                         const std::vector<Handler>& handlers);

/// Abstract phase-issuing interface the algorithm master closures program
/// against.  Master implements it directly; the scheduler's checkpointing
/// decorator (sched::ResilientDriver) wraps one to replay completed phases
/// from a checkpoint and snapshot progress at phase boundaries.
class PhaseDriver {
 public:
  virtual ~PhaseDriver() = default;

  /// Runs one phase over all chunks and returns the per-chunk results,
  /// indexed by chunk id.  Blocks (in virtual time) until every chunk has a
  /// result, adopting orphans of crashed workers as needed.  Throws
  /// hprs::Error when the surviving memory cannot hold the orphans.
  [[nodiscard]] virtual std::vector<std::any> phase(
      int phase_id, const Handler& handler,
      std::shared_ptr<const std::any> payload = nullptr,
      std::size_t payload_bytes = 0) = 0;

  /// Releases the surviving workers (idempotent: only the first call sends
  /// exit commands, so a caller-side release followed by a run_program
  /// backstop charges nothing twice).
  virtual void finish() = 0;
};

/// The master side of the protocol.  Constructed with the frozen full-world
/// partition; `phase()` runs one handler over every chunk, surviving any
/// worker crashes; `finish()` releases the surviving workers.
class Master final : public PhaseDriver {
 public:
  /// `bytes_per_pixel` and `replication` size the staging transfer charged
  /// the first time a chunk lands on a rank (only when `charge_staging`;
  /// otherwise descriptors are charged, matching distribute_partitions).
  Master(vmpi::Comm& comm, std::vector<RowPartition> parts,
         PartitionPolicy policy, double memory_fraction, std::size_t cols,
         std::size_t bytes_per_pixel, std::size_t replication,
         bool charge_staging);

  /// Resume / elastic-restart construction: adopts an explicit frozen chunk
  /// list (typically exported from a checkpoint of an earlier, differently
  /// sized gang).  When the list has exactly one chunk per rank the
  /// assignment is the identity, matching the primary constructor; for any
  /// other width the chunks are spread with the same earliest-finisher
  /// heuristic the recovery path uses (memory-bounded, lowest-rank ties),
  /// in ascending chunk-id order.  Because chunks are atomic and folds run
  /// in chunk-id order, a resumed run's outputs equal the original gang's
  /// regardless of the new width.
  Master(vmpi::Comm& comm, std::vector<Chunk> chunks, PartitionPolicy policy,
         double memory_fraction, std::size_t cols, std::size_t bytes_per_pixel,
         std::size_t replication, bool charge_staging);

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  [[nodiscard]] std::vector<std::any> phase(
      int phase_id, const Handler& handler,
      std::shared_ptr<const std::any> payload = nullptr,
      std::size_t payload_bytes = 0) override;

  void finish() override;

  /// Workers currently believed alive (excludes the root).
  [[nodiscard]] int live_workers() const;

  /// The frozen chunk list (checkpoint export: chunks are immutable for the
  /// lifetime of the job, across restarts and resizes).
  [[nodiscard]] const std::vector<Chunk>& chunks() const { return chunks_; }

 private:
  [[nodiscard]] std::size_t chunk_block_bytes(const Chunk& chunk) const;
  /// Re-runs the WEA over the survivors and adopts the chunks in `missing`
  /// whose assigned rank died.  Charges the master's re-partitioning work.
  void reassign_lost(const std::vector<bool>& have);

  vmpi::Comm* comm_;
  PartitionPolicy policy_;
  double memory_fraction_;
  std::size_t cols_;
  std::size_t bytes_per_pixel_;
  std::size_t replication_;
  bool charge_staging_;
  bool finished_ = false;
  std::vector<Chunk> chunks_;
  std::vector<int> assignment_;             // chunk id -> rank
  std::vector<bool> alive_;                 // rank -> believed alive
  std::vector<std::vector<bool>> staged_;   // chunk id -> rank -> data present
};

/// One algorithm packaged for the master/worker framework: the phase
/// handlers (run on every rank), the root-side control flow (phase issue
/// order plus the master-only folds), and the WEA parameters that freeze
/// the chunk list.  Factories live in core/ft_programs.hpp; run_program and
/// the scheduler's resilient gang runtime both consume this.
struct Program {
  std::vector<Handler> handlers;
  /// Root-side control flow.  Receives the driver (phase issuing) and the
  /// program's handlers; must call driver.finish() at the point the
  /// collective implementation released the workers (finish is idempotent,
  /// so run_program's backstop charges nothing on the normal path).
  std::function<void(vmpi::Comm&, PhaseDriver&, const std::vector<Handler>&)>
      master;
  /// WEA inputs for the chunk freeze; model.scatter_input doubles as the
  /// staging-charge toggle (Master's charge_staging).
  WorkloadModel model;
  PartitionPolicy policy = PartitionPolicy::kHeterogeneous;
  double memory_fraction = 0.5;
  /// Halo rows per side (MORPH's kernel radius; 0 elsewhere).
  std::size_t overlap = 0;
  std::size_t replication = 1;
};

/// Runs `prog` over `comm` exactly as the historical per-algorithm
/// run_*_ft drivers did: non-root ranks serve worker_loop; the root runs
/// the WEA once, freezes the chunks, and hands a Master to prog.master.
void run_program(vmpi::Comm& comm, const hsi::HsiCube& cube,
                 const Program& prog);

/// Validates that a fault plan never kills `root` (the protocol's single
/// point of control).  Throws hprs::Error otherwise.
void require_immortal_root(const vmpi::Options& options);

}  // namespace hprs::core::ft
