#include "core/spmd_common.hpp"

#include <algorithm>

#include "hsi/metrics.hpp"
#include "linalg/flops.hpp"
#include "linalg/thread_pool.hpp"
#include "linalg/vec.hpp"

namespace hprs::core::detail {

PartitionView distribute_partitions(vmpi::Comm& comm,
                                    const hsi::HsiCube& cube,
                                    const WorkloadModel& model,
                                    PartitionPolicy policy,
                                    double memory_fraction,
                                    std::size_t overlap,
                                    std::size_t replication,
                                    bool defer_staging) {
  std::vector<PartitionView> views;
  std::vector<std::size_t> bytes;
  if (comm.is_root()) {
    const PartitionResult partition =
        wea_partition(comm.platform(), cube.rows(), cube.cols(), model,
                      policy, memory_fraction, overlap, comm.root());
    // The WEA itself is a handful of arithmetic per processor, performed by
    // the master before any parallel work exists.
    comm.compute(64ULL * static_cast<std::uint64_t>(comm.size()),
                 vmpi::Phase::kSequential);
    views.reserve(partition.parts.size());
    bytes.reserve(partition.parts.size());
    for (const auto& part : partition.parts) {
      PartitionView v{&cube, part};
      // Default: data is pre-staged on the nodes (the only reading
      // consistent with the paper's measured times; see DESIGN.md), so the
      // scatter ships a small partition descriptor.  With scatter_input the
      // full block crosses the wire.
      bytes.push_back(model.scatter_input ? v.wire_bytes() * replication
                                          : kPartitionDescriptorBytes);
      views.push_back(v);
    }
  }
  PartitionView view = comm.scatter(comm.root(), std::move(views), bytes);
  // Accelerated ranks copy their block across the host<->device path before
  // any kernel can touch it; a no-op for plain CPU ranks, so historic
  // platforms keep their virtual clocks bit-for-bit.  Tiled streaming
  // callers defer the charge to begin_tile_stream instead.
  if (!defer_staging) comm.stage_to_device(view.wire_bytes() * replication);
  return view;
}

TileStream begin_tile_stream(vmpi::Comm& comm, const PartitionView& view,
                             std::size_t tile_rows, bool streaming,
                             std::size_t replication) {
  TileStream ts;
  const RowPartition& part = view.part;
  const std::size_t bytes_per_row =
      view.cube->cols() * view.cube->bytes_per_pixel();
  ts.tiles = linalg::make_row_tiles(
      part.row_begin, part.row_end, bytes_per_row,
      linalg::resolve_tile_rows(tile_rows, part.owned_rows()));
  ts.streaming = streaming;
  if (!streaming) return ts;
  // Enqueue every tile's copy now, in the deterministic stage-chain order:
  // the DMA pipe drains in the background while the host-side phases that
  // precede the device sweeps (clustering, means, gathers) run, and each
  // sweep only waits out whatever part of its tile's copy is still exposed.
  ts.staged_until.assign(ts.tiles.size(), 0.0);
  linalg::TileGraph stages;
  for (std::size_t k = 0; k < ts.tiles.size(); ++k) {
    const std::size_t id = stages.add_node(linalg::TileNodeKind::kStage, k, k);
    if (k > 0) stages.add_edge(id - 1, id);
  }
  stages.run([&](const linalg::TileNode& node) {
    ts.staged_until[node.tile] =
        comm.stage_to_device_async(ts.tiles[node.tile].bytes * replication);
  });
  return ts;
}

double osp_score(const linalg::Matrix& targets,
                 const linalg::Cholesky& gram_factor,
                 std::span<const float> pixel) {
  const std::size_t t = targets.rows();
  std::vector<double> b(t);
  for (std::size_t i = 0; i < t; ++i) {
    b[i] = linalg::dot<double, float>(targets.row(i), pixel);
  }
  const std::vector<double> z = gram_factor.solve(b);
  const double xx = linalg::norm_sq(pixel);
  const double bz = linalg::dot<double, double>(b, z);
  return xx - bz;
}

Candidate osp_argmax_sweep(const linalg::Matrix& targets,
                           const linalg::Cholesky& gram_factor,
                           const hsi::HsiCube& cube, std::size_t row_begin,
                           std::size_t row_end,
                           linalg::ScratchArena& arena) {
  Candidate best{0, 0, -1.0};
  const std::size_t cols = cube.cols();
  if (linalg::use_reference_kernels()) {
    for (std::size_t r = row_begin; r < row_end; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const double score = osp_score(targets, gram_factor, cube.pixel(r, c));
        if (score > best.score) best = Candidate{r, c, score};
      }
    }
    return best;
  }

  constexpr std::size_t kStrip = 64;
  const std::size_t t = targets.rows();
  const std::size_t bands = cube.bands();
  const std::size_t n_rows = row_end > row_begin ? row_end - row_begin : 0;
  // Contiguous row-block ownership with per-worker scratch (the arena's
  // chunks are stable, so spans taken up front survive the region).  Each
  // worker scans its rows in the serial row-major order with
  // strictly-greater updates; folding the per-worker bests in ascending
  // worker order with the same comparison reproduces the serial sweep's
  // first-maximum exactly, so the thread count cannot change the pick.
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(linalg::kernel_threads(), n_rows));
  arena.reset();
  struct WorkerLane {
    std::span<double> b, xx, z;
    Candidate best{0, 0, -1.0};
  };
  std::vector<WorkerLane> lanes(workers);
  for (auto& lane : lanes) {
    lane.b = arena.take(kStrip * t);
    lane.xx = arena.take(kStrip);
    lane.z = arena.take(t);
  }
  linalg::parallel_region(workers, [&](std::size_t worker,
                                       std::size_t actual) {
    // `actual` can be smaller than the planned lane count (a nested region
    // runs inline); stride over lanes so every block is still scanned.
    for (std::size_t w = worker; w < workers; w += actual) {
    WorkerLane& lane = lanes[w];
    const std::size_t per = (n_rows + workers - 1) / workers;
    const std::size_t r0 = row_begin + w * per;
    const std::size_t r1 = std::min(row_end, r0 + per);
    for (std::size_t r = r0; r < r1; ++r) {
      const float* row = cube.pixel(r, 0).data();
      for (std::size_t c0 = 0; c0 < cols; c0 += kStrip) {
        const std::size_t m = std::min(kStrip, cols - c0);
        const float* x = row + c0 * bands;
        linalg::dot_strip(targets, x, m, lane.b);
        linalg::norm_sq_strip(x, m, bands, lane.xx);
        for (std::size_t p = 0; p < m; ++p) {
          const std::span<const double> bp = lane.b.subspan(p * t, t);
          gram_factor.solve_into(bp, lane.z);
          const double score =
              lane.xx[p] - linalg::dot<double, double>(bp, lane.z);
          if (score > lane.best.score) lane.best = Candidate{r, c0 + p, score};
        }
      }
    }
    }
  });
  for (const auto& lane : lanes) {
    if (lane.best.score > best.score) best = lane.best;
  }
  return best;
}

linalg::Matrix ridged_row_gram(const linalg::Matrix& u) {
  linalg::Matrix g = u.multiply(u.transposed());
  double trace = 0.0;
  for (std::size_t i = 0; i < g.rows(); ++i) trace += g(i, i);
  const double ridge = 1e-10 * trace / static_cast<double>(g.rows());
  for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) += ridge;
  return g;
}

std::vector<double> to_double(std::span<const float> pixel) {
  return std::vector<double>(pixel.begin(), pixel.end());
}

UniqueSetSelection consolidate_unique_set(
    std::span<const SpectralCandidate> pool, std::size_t c,
    double sad_threshold) {
  UniqueSetSelection out;

  struct Cluster {
    std::size_t exemplar;   // pool index of the first (best-quality) member
    std::size_t support = 1;
  };
  std::vector<Cluster> clusters;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    bool merged = false;
    for (auto& cl : clusters) {
      ++out.sad_evals;
      if (hsi::sad<float, float>(pool[cl.exemplar].spectrum,
                                 pool[i].spectrum) <= sad_threshold) {
        ++cl.support;
        merged = true;
        break;
      }
    }
    if (!merged) {
      clusters.push_back(Cluster{i, 1});
    }
  }

  // Rank clusters by support, breaking ties by candidate quality and then
  // pool order (all deterministic).
  std::sort(clusters.begin(), clusters.end(),
            [&](const Cluster& a, const Cluster& b) {
              if (a.support != b.support) return a.support > b.support;
              if (pool[a.exemplar].weight != pool[b.exemplar].weight) {
                return pool[a.exemplar].weight > pool[b.exemplar].weight;
              }
              return a.exemplar < b.exemplar;
            });
  const std::size_t keep = std::min(c, clusters.size());
  out.chosen.reserve(keep);
  for (std::size_t k = 0; k < keep; ++k) {
    out.chosen.push_back(clusters[k].exemplar);
  }
  return out;
}

}  // namespace hprs::core::detail
