// Shared result types for the parallel hyperspectral algorithms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/partition.hpp"
#include "hsi/cube.hpp"
#include "vmpi/stats.hpp"

namespace hprs::core {

/// Spatial location of a pixel.
struct PixelLocation {
  std::size_t row = 0;
  std::size_t col = 0;

  bool operator==(const PixelLocation&) const = default;
};

/// Output of the target-detection algorithms (ATDCA, UFCLS): the t target
/// locations in extraction order plus the simulated run report.
struct TargetDetectionResult {
  std::vector<PixelLocation> targets;
  vmpi::RunReport report;
};

/// Output of the classifiers (PCT, MORPH): a row-major label image (one
/// label per pixel, values < label_count) plus the run report.
struct ClassificationResult {
  std::vector<std::uint16_t> labels;
  std::size_t label_count = 0;
  vmpi::RunReport report;
};

/// The partition message scattered to workers.  Ranks share one address
/// space, so the payload is a view into the master's cube while the wire
/// cost (declared separately at the scatter call) is the full block size --
/// the same single-step distribution the paper implements with MPI derived
/// datatypes.
struct PartitionView {
  const hsi::HsiCube* cube = nullptr;
  RowPartition part;

  [[nodiscard]] std::size_t wire_bytes() const {
    return part.halo_rows() * cube->cols() * cube->bytes_per_pixel();
  }
};

}  // namespace hprs::core
