#include "core/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hprs::core {

const char* to_string(PartitionPolicy p) {
  switch (p) {
    case PartitionPolicy::kHomogeneous: return "homogeneous";
    case PartitionPolicy::kHeterogeneous: return "heterogeneous";
  }
  return "?";
}

namespace {

/// Raw (uncapped) workload fractions.
std::vector<double> base_fractions(const simnet::Platform& platform,
                                   const WorkloadModel& model,
                                   PartitionPolicy policy, int root) {
  const std::size_t p = platform.size();
  std::vector<double> alpha(p, 1.0 / static_cast<double>(p));
  if (policy == PartitionPolicy::kHomogeneous || p == 1) {
    return alpha;
  }

  // Per-pixel compute seconds e_i and transfer seconds g_i (g == 0 for the
  // root, whose block never crosses the wire, or when data is
  // pre-distributed).
  std::vector<double> e(p);
  std::vector<double> g(p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    e[i] = model.flops_per_pixel * 1e-6 * platform.cycle_time(i);
    // Accelerated nodes pay the host<->device copy for every pixel they
    // own, root included -- charging it with e_i keeps the equal-finish
    // recursion exact and shrinks their share accordingly.  Zero for plain
    // CPUs, so accelerator-free platforms keep their historic fractions.
    // With streamed tiling the copy overlaps the compute on the staging
    // pipe, so the dominant term bounds the steady-state per-pixel cost.
    const double stage = platform.stage_seconds(i, model.bytes_per_pixel);
    e[i] = model.tile_stream ? std::max(e[i], stage) : e[i] + stage;
    if (model.scatter_input && static_cast<int>(i) != root) {
      const double mbits =
          static_cast<double>(model.bytes_per_pixel) * 8.0 / 1e6;
      g[i] = mbits *
             platform.link_ms_per_mbit(static_cast<std::size_t>(root), i) /
             1000.0 / std::max(1.0, model.sync_rounds);
    }
  }

  // Divisible-load recursion along the (rank-ordered) scatter chain of the
  // non-root processors: equal finish times require
  //   alpha_{next} = alpha_{prev} * e_prev / (g_next + e_next).
  // The root computes after its NIC finishes the chain, so it matches the
  // last worker via alpha_root * e_root = alpha_last * e_last.
  std::vector<std::size_t> chain;
  for (std::size_t i = 0; i < p; ++i) {
    if (static_cast<int>(i) != root) chain.push_back(i);
  }
  alpha.assign(p, 0.0);
  alpha[chain.front()] = 1.0;
  for (std::size_t k = 1; k < chain.size(); ++k) {
    const std::size_t prev = chain[k - 1];
    const std::size_t cur = chain[k];
    alpha[cur] = alpha[prev] * e[prev] / (g[cur] + e[cur]);
  }
  const std::size_t last = chain.back();
  alpha[static_cast<std::size_t>(root)] =
      alpha[last] * e[last] / e[static_cast<std::size_t>(root)];

  const double total = std::accumulate(alpha.begin(), alpha.end(), 0.0);
  for (auto& a : alpha) a /= total;
  return alpha;
}

/// Applies per-node memory caps (fractions of capacity) with the recursive
/// redistribution of Algorithm 1 step 3(b): saturated nodes keep their cap;
/// the excess is re-shared among unsaturated nodes in proportion to their
/// original fractions.
std::vector<double> apply_memory_caps(std::vector<double> alpha,
                                      const std::vector<double>& cap) {
  const std::size_t p = alpha.size();
  std::vector<bool> saturated(p, false);
  for (int pass = 0; pass < static_cast<int>(p) + 1; ++pass) {
    double excess = 0.0;
    double unsat_weight = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      if (saturated[i]) continue;
      if (alpha[i] > cap[i]) {
        excess += alpha[i] - cap[i];
        alpha[i] = cap[i];
        saturated[i] = true;
      } else {
        unsat_weight += alpha[i];
      }
    }
    if (excess <= 0.0) return alpha;
    HPRS_REQUIRE(unsat_weight > 0.0,
                 "image does not fit in the aggregate memory of the platform");
    for (std::size_t i = 0; i < p; ++i) {
      if (!saturated[i]) alpha[i] += excess * alpha[i] / unsat_weight;
    }
  }
  // One node saturates per pass at most, so p+1 passes always suffice.
  HPRS_ASSERT(false);
  return alpha;
}

}  // namespace

PartitionResult wea_partition(const simnet::Platform& platform,
                              std::size_t rows, std::size_t cols,
                              const WorkloadModel& model,
                              PartitionPolicy policy, double memory_fraction,
                              std::size_t overlap, int root) {
  const std::size_t p = platform.size();
  HPRS_REQUIRE(rows >= p, "fewer image rows than processors");
  HPRS_REQUIRE(cols > 0, "cols must be positive");
  HPRS_REQUIRE(memory_fraction > 0.0 && memory_fraction <= 1.0,
               "memory_fraction must be in (0, 1]");
  HPRS_REQUIRE(root >= 0 && static_cast<std::size_t>(root) < p,
               "root out of range");

  PartitionResult result;
  result.alpha = base_fractions(platform, model, policy, root);

  // Memory caps as fractions of the total workload.
  const double bytes_per_row =
      static_cast<double>(cols) * static_cast<double>(model.bytes_per_pixel);
  const double total_bytes = bytes_per_row * static_cast<double>(rows);
  std::vector<double> cap(p);
  for (std::size_t i = 0; i < p; ++i) {
    const double budget = memory_fraction *
                          static_cast<double>(platform.processor(i).memory_mb) *
                          1024.0 * 1024.0;
    cap[i] = budget / total_bytes;
  }
  result.alpha = apply_memory_caps(std::move(result.alpha), cap);

  // Turn fractions into whole-row counts (largest-remainder rounding so
  // counts sum exactly to `rows` and every rank gets >= 1 row).
  std::vector<std::size_t> count(p, 1);
  std::size_t assigned = p;
  std::vector<std::pair<double, std::size_t>> remainder(p);
  for (std::size_t i = 0; i < p; ++i) {
    const double exact = result.alpha[i] * static_cast<double>(rows);
    const auto extra = static_cast<std::size_t>(
        std::max(0.0, std::floor(exact - 1.0)));
    count[i] += extra;
    assigned += extra;
    remainder[i] = {exact - std::floor(exact), i};
  }
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;  // deterministic tie-break
            });
  for (std::size_t k = 0; assigned < rows; k = (k + 1) % p) {
    ++count[remainder[k].second];
    ++assigned;
  }
  while (assigned > rows) {
    // Over-assignment can only come from the +1 row floor on tiny shares;
    // trim from the largest partitions.
    const auto it = std::max_element(count.begin(), count.end());
    HPRS_ASSERT(*it > 1);
    --*it;
    --assigned;
  }

  // Materialize contiguous row ranges in rank order, with optional halo.
  result.parts.resize(p);
  std::size_t row = 0;
  for (std::size_t i = 0; i < p; ++i) {
    auto& part = result.parts[i];
    part.row_begin = row;
    part.row_end = row + count[i];
    part.halo_begin = part.row_begin >= overlap ? part.row_begin - overlap : 0;
    part.halo_end = std::min(rows, part.row_end + overlap);
    row = part.row_end;
  }
  HPRS_ASSERT(row == rows);
  return result;
}

std::vector<std::pair<std::size_t, std::size_t>> spectral_partition(
    const simnet::Platform& platform, std::size_t bands,
    PartitionPolicy policy, int root) {
  const std::size_t p = platform.size();
  HPRS_REQUIRE(bands >= p, "fewer bands than processors");
  // Band slices carry every pixel, so the transfer cost per rank is the
  // same regardless of assignment; fractions follow compute speed only.
  WorkloadModel model;
  model.scatter_input = false;
  auto alpha = base_fractions(platform, model, policy, root);

  std::vector<std::pair<std::size_t, std::size_t>> parts(p);
  std::size_t band = 0;
  for (std::size_t i = 0; i < p; ++i) {
    const auto n = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::round(
               alpha[i] * static_cast<double>(bands))));
    parts[i].first = band;
    parts[i].second = std::min(bands, band + n);
    band = parts[i].second;
  }
  // Give any unassigned tail (or steal any overshoot) to the last ranks.
  parts.back().second = bands;
  for (std::size_t i = p; i-- > 1;) {
    if (parts[i].first >= parts[i].second) {
      parts[i].first = parts[i].second > 0 ? parts[i].second - 1 : 0;
      parts[i - 1].second = parts[i].first;
    }
  }
  return parts;
}

}  // namespace hprs::core
