// Per-block AMEE morphological engine (the compute core of Hetero-MORPH).
//
// Extracted from the SPMD driver so the windowed kernel can be property-
// tested and benchmarked on its own.  The engine owns a standalone block of
// image rows and runs the paper's iterative erosion/dilation/eccentricity
// passes over it; partitioning, halo exchange, candidate selection, and all
// virtual-time accounting stay with the caller (the flop charge of a pass
// is purely geometric, so the driver computes it without the engine).
//
// Two implementations back iterate():
//  - the scalar reference path evaluates SAD(center, neighbor) for every
//    (pixel, window element) pair from scratch, exactly as the paper's
//    pseudo-code reads;
//  - the fast path (default; see linalg/kernels.hpp for the toggle) caches
//    per-pixel norms once per iteration and materializes one SAD plane per
//    distinct window offset, exploiting SAD's symmetry so each (pixel,
//    neighbor) pair is evaluated once instead of ~2(2r+1)^2 times across
//    the D and MEI/dilation passes.  The cached values are produced by the
//    same arithmetic as hsi::sad and summed in the same window order, so
//    the D planes, MEI scores, and dilated images are bit-identical.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "hsi/cube.hpp"

namespace hprs::core {

class MorphBlockEngine {
 public:
  /// Takes ownership of the block image (halo rows included).
  MorphBlockEngine(hsi::HsiCube block, std::size_t kernel_radius);

  /// One AMEE iteration: the D (cumulative SAD) pass followed by the
  /// MEI/dilation pass.  `last` skips the dilation, as the final working
  /// image is never read.
  void iterate(bool last);

  /// Working image (dilated in place across iterations).  Mutable access
  /// exists for the driver's halo splicing.
  [[nodiscard]] const hsi::HsiCube& image() const { return f_; }
  [[nodiscard]] hsi::HsiCube& image() { return f_; }

  /// Running per-pixel maximum eccentricity index, row-major over the block.
  [[nodiscard]] const std::vector<double>& mei() const { return mei_; }

 private:
  [[nodiscard]] std::size_t rows() const { return f_.rows(); }
  [[nodiscard]] std::size_t cols() const { return f_.cols(); }
  [[nodiscard]] std::pair<std::size_t, std::size_t> row_window(
      std::size_t x) const;
  [[nodiscard]] std::pair<std::size_t, std::size_t> col_window(
      std::size_t y) const;

  void d_pass_reference(std::vector<double>& d) const;
  void d_pass_cached(std::vector<double>& d);
  void mei_pass(const std::vector<double>& d, bool last, bool cached);
  void refresh_sad_cache();

  std::size_t radius_;
  hsi::HsiCube f_;
  std::vector<double> mei_;

  // Fast-path scratch, allocated lazily and reused across iterations.
  std::vector<double> d_;
  std::vector<double> norms_;     // ||pixel|| per block pixel
  std::vector<double> norms_sq_;  // pixel . pixel per block pixel
  std::vector<double> self_sad_;  // SAD(pixel, pixel) -- acos rounding noise
  std::vector<std::pair<std::size_t, std::ptrdiff_t>> offsets_;
  std::vector<std::vector<double>> planes_;  // one SAD plane per offset
  std::vector<std::ptrdiff_t> plane_of_;     // (di, dj) -> plane index
  hsi::HsiCube next_;                        // dilation target, reused
};

}  // namespace hprs::core
