#include "core/ufcls.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "core/spmd_common.hpp"
#include "linalg/fcls.hpp"
#include "linalg/flops.hpp"
#include "linalg/vec.hpp"
#include "vmpi/comm.hpp"

namespace hprs::core {

namespace {

using detail::Candidate;
using linalg::flops::Count;

}  // namespace

WorkloadModel ufcls_workload(std::size_t bands, std::size_t targets) {
  // Brightness pass plus t-1 unmixing passes; assume a couple of active-set
  // iterations per pixel on average.
  Count flops = linalg::flops::dot(bands);
  for (std::size_t t = 1; t < targets; ++t) {
    flops += linalg::flops::fcls(bands, t, 2);
  }
  WorkloadModel model;
  model.flops_per_pixel = static_cast<double>(flops);
  model.bytes_per_pixel = bands * sizeof(float);
  model.scatter_input = false;
  model.sync_rounds = static_cast<double>(targets);
  return model;
}

TargetDetectionResult run_ufcls(const simnet::Platform& platform,
                                const hsi::HsiCube& cube,
                                const UfclsConfig& config,
                                vmpi::Options options) {
  HPRS_REQUIRE(config.targets >= 1, "need at least one target");
  HPRS_REQUIRE(!cube.empty(), "empty cube");

  vmpi::Engine engine(platform, options);
  TargetDetectionResult result;
  WorkloadModel model = ufcls_workload(cube.bands(), config.targets);
  model.scatter_input = config.charge_data_staging;

  result.report = engine.run([&](vmpi::Comm& comm) {
    const PartitionView view = detail::distribute_partitions(
        comm, cube, model, config.policy, config.memory_fraction,
        /*overlap=*/0, config.replication);

    // Step 1: the brightest pixel seeds the target set.
    Candidate local{0, 0, -1.0};
    Count flops = 0;
    for (std::size_t r = view.part.row_begin; r < view.part.row_end; ++r) {
      for (std::size_t c = 0; c < cube.cols(); ++c) {
        const double score = linalg::norm_sq(cube.pixel(r, c));
        flops += linalg::flops::dot(cube.bands());
        if (score > local.score) local = Candidate{r, c, score};
      }
    }
    comm.compute(flops * config.replication);
    const auto seeds = comm.gather(comm.root(), local, detail::kCandidateBytes);

    linalg::Matrix targets;
    std::vector<PixelLocation> found;
    if (comm.is_root()) {
      Candidate best{0, 0, -std::numeric_limits<double>::infinity()};
      for (const auto& c : seeds) {
        if (c.score > best.score) best = c;
      }
      comm.compute(linalg::flops::dot(cube.bands()) * seeds.size(),
                   vmpi::Phase::kSequential);
      found.push_back({best.row, best.col});
      targets.append_row(detail::to_double(cube.pixel(best.row, best.col)));
    }

    // Steps 2-5: grow the target set by maximum FCLS reconstruction error.
    // The broadcast is shared: every rank unmixes against one immutable
    // copy of the target matrix; only the master re-owns it to grow it.
    linalg::ScratchArena arena;  // strip-sweep scratch, reused every round
    while (true) {
      // Only the root's payload (and wire size) reaches the engine.
      const std::size_t u_bytes =
          comm.is_root() ? targets.rows() * cube.bands() * sizeof(double) : 0;
      const auto u_view =
          comm.bcast_shared(comm.root(), std::move(targets), u_bytes);
      const std::size_t t_cur = u_view->rows();
      if (t_cur >= config.targets) break;

      const linalg::Unmixer unmixer(*u_view);
      comm.compute(linalg::flops::gram(cube.bands(), t_cur) +
                   linalg::flops::cholesky(t_cur));

      Candidate local_best{0, 0, -1.0};
      Count round_flops = 0;
      if (linalg::use_reference_kernels()) {
        for (std::size_t r = view.part.row_begin; r < view.part.row_end;
             ++r) {
          for (std::size_t c = 0; c < cube.cols(); ++c) {
            const auto unmix = unmixer.fcls(cube.pixel(r, c));
            round_flops += linalg::flops::fcls(
                cube.bands(), t_cur,
                static_cast<Count>(unmix.iterations) + 1);
            if (unmix.error_sq > local_best.score) {
              local_best = Candidate{r, c, unmix.error_sq};
            }
          }
        }
      } else {
        // Strip fast path: the correlation vectors U^T x and pixel norms of
        // a whole strip are one BLAS3 product; the active-set solves then
        // run per pixel on the precomputed columns, bit-identical to
        // fcls(pixel).
        constexpr std::size_t kStrip = 64;
        const std::size_t bands = cube.bands();
        const std::size_t cols = cube.cols();
        arena.reset();
        const std::span<double> corr = arena.take(kStrip * t_cur);
        const std::span<double> xx = arena.take(kStrip);
        for (std::size_t r = view.part.row_begin; r < view.part.row_end;
             ++r) {
          const float* row = cube.pixel(r, 0).data();
          for (std::size_t c0 = 0; c0 < cols; c0 += kStrip) {
            const std::size_t m = std::min(kStrip, cols - c0);
            const float* x = row + c0 * bands;
            linalg::dot_strip(*u_view, x, m, corr);
            linalg::norm_sq_strip(x, m, bands, xx);
            for (std::size_t p = 0; p < m; ++p) {
              const auto unmix = unmixer.fcls_with_corr(
                  corr.subspan(p * t_cur, t_cur), xx[p]);
              round_flops += linalg::flops::fcls(
                  bands, t_cur, static_cast<Count>(unmix.iterations) + 1);
              if (unmix.error_sq > local_best.score) {
                local_best = Candidate{r, c0 + p, unmix.error_sq};
              }
            }
          }
        }
      }
      comm.compute(round_flops * config.replication);

      const auto round =
          comm.gather(comm.root(), local_best, detail::kCandidateBytes);
      if (comm.is_root()) {
        Candidate best{0, 0, -std::numeric_limits<double>::infinity()};
        for (const auto& c : round) {
          if (c.score > best.score) best = c;
        }
        comm.compute(
            linalg::flops::fcls(cube.bands(), t_cur, 2) * round.size(),
            vmpi::Phase::kSequential);
        found.push_back({best.row, best.col});
        targets = *u_view;  // re-own the shared target set to grow it
        targets.append_row(detail::to_double(cube.pixel(best.row, best.col)));
      }
      // Non-root ranks leave `targets` empty; the next bcast refreshes it.
    }

    if (comm.is_root()) {
      result.targets = std::move(found);
    }
  });

  return result;
}

}  // namespace hprs::core
