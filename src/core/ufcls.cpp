#include "core/ufcls.hpp"

#include <algorithm>
#include <any>
#include <limits>
#include <memory>

#include "common/error.hpp"
#include "core/ft_programs.hpp"
#include "core/spmd_common.hpp"
#include "linalg/fcls.hpp"
#include "linalg/flops.hpp"
#include "linalg/vec.hpp"
#include "vmpi/comm.hpp"

namespace hprs::core {

namespace {

using detail::Candidate;
using linalg::flops::Count;

/// The brightest pixel of rows [row_begin, row_end) plus the flop charge.
struct BrightestOut {
  Candidate best{0, 0, -1.0};
  Count flops = 0;
};

BrightestOut brightest_sweep(const hsi::HsiCube& cube, std::size_t row_begin,
                             std::size_t row_end) {
  BrightestOut out;
  for (std::size_t r = row_begin; r < row_end; ++r) {
    for (std::size_t c = 0; c < cube.cols(); ++c) {
      const double score = linalg::norm_sq(cube.pixel(r, c));
      out.flops += linalg::flops::dot(cube.bands());
      if (score > out.best.score) out.best = Candidate{r, c, score};
    }
  }
  return out;
}

/// Argmax of the FCLS reconstruction error over rows [row_begin, row_end),
/// dispatching between the reference per-pixel loop and the strip-blocked
/// fast path (bit-identical results).  Returns the flop count for the
/// caller to charge.
struct ErrorSweepOut {
  Candidate best{0, 0, -1.0};
  Count flops = 0;
};

ErrorSweepOut fcls_error_sweep(const hsi::HsiCube& cube,
                               const linalg::Matrix& u,
                               const linalg::Unmixer& unmixer,
                               std::size_t row_begin, std::size_t row_end,
                               linalg::ScratchArena& arena) {
  ErrorSweepOut out;
  const std::size_t t_cur = u.rows();
  if (linalg::use_reference_kernels()) {
    for (std::size_t r = row_begin; r < row_end; ++r) {
      for (std::size_t c = 0; c < cube.cols(); ++c) {
        const auto unmix = unmixer.fcls(cube.pixel(r, c));
        out.flops += linalg::flops::fcls(
            cube.bands(), t_cur, static_cast<Count>(unmix.iterations) + 1);
        if (unmix.error_sq > out.best.score) {
          out.best = Candidate{r, c, unmix.error_sq};
        }
      }
    }
    return out;
  }
  // Strip fast path: the correlation vectors U^T x and pixel norms of
  // a whole strip are one BLAS3 product; the active-set solves then
  // run per pixel on the precomputed columns, bit-identical to
  // fcls(pixel).
  constexpr std::size_t kStrip = 64;
  const std::size_t bands = cube.bands();
  const std::size_t cols = cube.cols();
  arena.reset();
  const std::span<double> corr = arena.take(kStrip * t_cur);
  const std::span<double> xx = arena.take(kStrip);
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const float* row = cube.pixel(r, 0).data();
    for (std::size_t c0 = 0; c0 < cols; c0 += kStrip) {
      const std::size_t m = std::min(kStrip, cols - c0);
      const float* x = row + c0 * bands;
      linalg::dot_strip(u, x, m, corr);
      linalg::norm_sq_strip(x, m, bands, xx);
      for (std::size_t p = 0; p < m; ++p) {
        const auto unmix =
            unmixer.fcls_with_corr(corr.subspan(p * t_cur, t_cur), xx[p]);
        out.flops += linalg::flops::fcls(
            bands, t_cur, static_cast<Count>(unmix.iterations) + 1);
        if (unmix.error_sq > out.best.score) {
          out.best = Candidate{r, c0 + p, unmix.error_sq};
        }
      }
    }
  }
  return out;
}

}  // namespace

/// The fault-tolerant schedule (core/ft.hpp): identical chunk kernels and
/// chunk-order folds, driven over point-to-point operations only.
ft::Program ufcls_ft_program(const hsi::HsiCube& cube,
                             const UfclsConfig& config,
                             TargetDetectionResult& result) {
  ft::Program prog;
  prog.model = ufcls_workload(cube.bands(), config.targets);
  prog.model.scatter_input = config.charge_data_staging;
  prog.policy = config.policy;
  prog.memory_fraction = config.memory_fraction;
  prog.replication = config.replication;
  // Phase 0: the chunk's brightest pixel.
  prog.handlers.push_back(
      [&cube, config](vmpi::Comm& c, const ft::Chunk& chunk, const std::any*) {
        const BrightestOut out =
            brightest_sweep(cube, chunk.part.row_begin, chunk.part.row_end);
        c.compute(out.flops * config.replication);
        return ft::ChunkOutcome{out.best, detail::kCandidateBytes};
      });
  // Phase 1: the chunk's FCLS error argmax against the shipped targets.
  prog.handlers.push_back(
      [&cube, config](vmpi::Comm& c, const ft::Chunk& chunk,
                      const std::any* payload) {
        const auto& u = std::any_cast<const linalg::Matrix&>(*payload);
        const linalg::Unmixer unmixer(u);
        c.compute(linalg::flops::gram(cube.bands(), u.rows()) +
                  linalg::flops::cholesky(u.rows()));
        linalg::ScratchArena arena;
        const ErrorSweepOut out = fcls_error_sweep(
            cube, u, unmixer, chunk.part.row_begin, chunk.part.row_end, arena);
        c.compute(out.flops * config.replication);
        return ft::ChunkOutcome{out.best, detail::kCandidateBytes};
      });

  prog.master = [&cube, config, &result](vmpi::Comm& comm,
                                         ft::PhaseDriver& master,
                                         const std::vector<ft::Handler>& h) {
    const auto as_candidates = [](const std::vector<std::any>& results) {
      std::vector<Candidate> cands;
      cands.reserve(results.size());
      for (const auto& r : results) {
        cands.push_back(std::any_cast<Candidate>(r));
      }
      return cands;
    };

    // Step 1: the brightest pixel seeds the target set (chunk-order fold).
    const auto seeds = as_candidates(master.phase(0, h[0]));
    Candidate best{0, 0, -std::numeric_limits<double>::infinity()};
    for (const auto& c : seeds) {
      if (c.score > best.score) best = c;
    }
    comm.compute(linalg::flops::dot(cube.bands()) * seeds.size(),
                 vmpi::Phase::kSequential);
    std::vector<PixelLocation> found{{best.row, best.col}};
    linalg::Matrix targets;
    targets.append_row(detail::to_double(cube.pixel(best.row, best.col)));

    // Steps 2-5: grow the target set by maximum reconstruction error.
    while (found.size() < config.targets) {
      const std::size_t t_cur = targets.rows();
      const std::size_t u_bytes = t_cur * cube.bands() * sizeof(double);
      auto payload = std::make_shared<const std::any>(targets);
      const auto round = as_candidates(master.phase(1, h[1], payload, u_bytes));
      Candidate next{0, 0, -std::numeric_limits<double>::infinity()};
      for (const auto& c : round) {
        if (c.score > next.score) next = c;
      }
      comm.compute(linalg::flops::fcls(cube.bands(), t_cur, 2) * round.size(),
                   vmpi::Phase::kSequential);
      found.push_back({next.row, next.col});
      targets.append_row(detail::to_double(cube.pixel(next.row, next.col)));
    }
    master.finish();
    result.targets = std::move(found);
  };
  return prog;
}

WorkloadModel ufcls_workload(std::size_t bands, std::size_t targets) {
  // Brightness pass plus t-1 unmixing passes; assume a couple of active-set
  // iterations per pixel on average.
  Count flops = linalg::flops::dot(bands);
  for (std::size_t t = 1; t < targets; ++t) {
    flops += linalg::flops::fcls(bands, t, 2);
  }
  WorkloadModel model;
  model.flops_per_pixel = static_cast<double>(flops);
  model.bytes_per_pixel = bands * sizeof(float);
  model.scatter_input = false;
  model.sync_rounds = static_cast<double>(targets);
  return model;
}

void ufcls_body(vmpi::Comm& comm, const hsi::HsiCube& cube,
                const UfclsConfig& config, TargetDetectionResult& result) {
  WorkloadModel model = ufcls_workload(cube.bands(), config.targets);
  model.scatter_input = config.charge_data_staging;
  const PartitionView view = detail::distribute_partitions(
      comm, cube, model, config.policy, config.memory_fraction,
      /*overlap=*/0, config.replication);

  // Step 1: the brightest pixel seeds the target set.
  const BrightestOut seed =
      brightest_sweep(cube, view.part.row_begin, view.part.row_end);
  comm.compute(seed.flops * config.replication);
  const auto seeds =
      comm.gather(comm.root(), seed.best, detail::kCandidateBytes);

  linalg::Matrix targets;
  std::vector<PixelLocation> found;
  if (comm.is_root()) {
    Candidate best{0, 0, -std::numeric_limits<double>::infinity()};
    for (const auto& c : seeds) {
      if (c.score > best.score) best = c;
    }
    comm.compute(linalg::flops::dot(cube.bands()) * seeds.size(),
                 vmpi::Phase::kSequential);
    found.push_back({best.row, best.col});
    targets.append_row(detail::to_double(cube.pixel(best.row, best.col)));
  }

  // Steps 2-5: grow the target set by maximum FCLS reconstruction error.
  // The broadcast is shared: every rank unmixes against one immutable
  // copy of the target matrix; only the master re-owns it to grow it.
  linalg::ScratchArena arena;  // strip-sweep scratch, reused every round
  while (true) {
    // Only the root's payload (and wire size) reaches the engine.
    const std::size_t u_bytes =
        comm.is_root() ? targets.rows() * cube.bands() * sizeof(double) : 0;
    const auto u_view =
        comm.bcast_shared(comm.root(), std::move(targets), u_bytes);
    const std::size_t t_cur = u_view->rows();
    if (t_cur >= config.targets) break;

    const linalg::Unmixer unmixer(*u_view);
    comm.compute(linalg::flops::gram(cube.bands(), t_cur) +
                 linalg::flops::cholesky(t_cur));

    const ErrorSweepOut sweep =
        fcls_error_sweep(cube, *u_view, unmixer, view.part.row_begin,
                         view.part.row_end, arena);
    comm.compute(sweep.flops * config.replication);

    const auto round =
        comm.gather(comm.root(), sweep.best, detail::kCandidateBytes);
    if (comm.is_root()) {
      Candidate best{0, 0, -std::numeric_limits<double>::infinity()};
      for (const auto& c : round) {
        if (c.score > best.score) best = c;
      }
      comm.compute(
          linalg::flops::fcls(cube.bands(), t_cur, 2) * round.size(),
          vmpi::Phase::kSequential);
      found.push_back({best.row, best.col});
      targets = *u_view;  // re-own the shared target set to grow it
      targets.append_row(detail::to_double(cube.pixel(best.row, best.col)));
    }
    // Non-root ranks leave `targets` empty; the next bcast refreshes it.
  }

  if (comm.is_root()) {
    result.targets = std::move(found);
  }
}

TargetDetectionResult run_ufcls(const simnet::Platform& platform,
                                const hsi::HsiCube& cube,
                                const UfclsConfig& config,
                                vmpi::Options options) {
  HPRS_REQUIRE(config.targets >= 1, "need at least one target");
  HPRS_REQUIRE(!cube.empty(), "empty cube");

  vmpi::Engine engine(platform, options);
  TargetDetectionResult result;

  if (config.fault_tolerant) {
    ft::require_immortal_root(options);
    const ft::Program prog = ufcls_ft_program(cube, config, result);
    result.report = engine.run(
        [&](vmpi::Comm& comm) { ft::run_program(comm, cube, prog); });
    return result;
  }
  result.report = engine.run(
      [&](vmpi::Comm& comm) { ufcls_body(comm, cube, config, result); });
  return result;
}

}  // namespace hprs::core
