#include "core/runner.hpp"

#include "obs/host_profile.hpp"
#include "obs/metrics.hpp"

namespace hprs::core {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kAtdca: return "ATDCA";
    case Algorithm::kUfcls: return "UFCLS";
    case Algorithm::kPct: return "PCT";
    case Algorithm::kMorph: return "MORPH";
  }
  return "?";
}

std::string display_name(Algorithm a, PartitionPolicy policy) {
  const char* prefix =
      policy == PartitionPolicy::kHeterogeneous ? "Hetero-" : "Homo-";
  return std::string(prefix) + to_string(a);
}

RunnerOutput run_algorithm(const simnet::Platform& platform,
                           const hsi::HsiCube& cube,
                           const RunnerConfig& config, vmpi::Options options) {
  obs::Metrics::instance().add(std::string("core.runs.") +
                               to_string(config.algorithm), 1);
  obs::ScopedHostTimer timer(std::string("core.run.") +
                             to_string(config.algorithm));
  RunnerOutput out;
  switch (config.algorithm) {
    case Algorithm::kAtdca: {
      AtdcaConfig c;
      c.targets = config.targets;
      c.policy = config.policy;
      c.memory_fraction = config.memory_fraction;
      c.replication = config.replication;
      c.charge_data_staging = config.charge_data_staging;
      c.fault_tolerant = config.fault_tolerant;
      c.tile_rows = config.tile_rows;
      c.tile_stream = config.tile_stream;
      auto r = run_atdca(platform, cube, c, options);
      out.report = std::move(r.report);
      out.targets = std::move(r.targets);
      break;
    }
    case Algorithm::kUfcls: {
      UfclsConfig c;
      c.targets = config.targets;
      c.policy = config.policy;
      c.memory_fraction = config.memory_fraction;
      c.replication = config.replication;
      c.charge_data_staging = config.charge_data_staging;
      c.fault_tolerant = config.fault_tolerant;
      auto r = run_ufcls(platform, cube, c, options);
      out.report = std::move(r.report);
      out.targets = std::move(r.targets);
      break;
    }
    case Algorithm::kPct: {
      PctConfig c;
      c.classes = config.classes;
      c.sad_threshold = config.sad_threshold;
      c.policy = config.policy;
      c.memory_fraction = config.memory_fraction;
      c.replication = config.replication;
      c.charge_data_staging = config.charge_data_staging;
      c.fault_tolerant = config.fault_tolerant;
      c.tile_rows = config.tile_rows;
      c.tile_stream = config.tile_stream;
      auto r = run_pct(platform, cube, c, options);
      out.report = std::move(r.report);
      out.labels = std::move(r.labels);
      out.label_count = r.label_count;
      break;
    }
    case Algorithm::kMorph: {
      MorphConfig c;
      c.classes = config.classes;
      c.iterations = config.morph_iterations;
      c.kernel_radius = config.kernel_radius;
      c.sad_threshold = config.sad_threshold;
      c.policy = config.policy;
      c.memory_fraction = config.memory_fraction;
      c.replication = config.replication;
      c.charge_data_staging = config.charge_data_staging;
      c.overlap_borders = config.morph_overlap_borders;
      c.fault_tolerant = config.fault_tolerant;
      auto r = run_morph(platform, cube, c, options);
      out.report = std::move(r.report);
      out.labels = std::move(r.labels);
      out.label_count = r.label_count;
      break;
    }
  }
  return out;
}

}  // namespace hprs::core
