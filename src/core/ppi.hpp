// Parallel Pixel Purity Index (PPI) endmember extraction.
//
// PPI is the third classical target/endmember extractor of the
// hyperspectral literature alongside OSP (ATDCA) and least-squares error
// ranking (UFCLS), and the one the paper's companion cluster work (Plaza et
// al., JPDC 2006) parallelizes the same master/worker way.  The master
// draws K random unit vectors ("skewers") and broadcasts them; every worker
// projects each local pixel onto every skewer and marks the extreme
// (minimum and maximum) pixels; a pixel's purity index counts how often it
// was extreme.  The t highest-index pixels are returned as endmember
// candidates.
//
// Included both as a library feature and as a third data point for the
// heterogeneous-vs-homogeneous comparison: PPI is embarrassingly parallel
// with a single reduction, so it isolates the WEA's effect even more
// cleanly than ATDCA.
#pragma once

#include "core/partition.hpp"
#include "core/types.hpp"
#include "hsi/cube.hpp"
#include "simnet/platform.hpp"
#include "vmpi/engine.hpp"

namespace hprs::core {

struct PpiConfig {
  /// Endmember candidates to return.
  std::size_t targets = 18;
  /// Random projections ("skewers") to score against.
  std::size_t skewers = 512;
  std::uint64_t seed = 1;
  PartitionPolicy policy = PartitionPolicy::kHeterogeneous;
  double memory_fraction = 0.5;
  std::size_t replication = 1;
  bool charge_data_staging = false;
  /// Use the master/worker fault-tolerant schedule (core/ft.hpp) instead of
  /// the collective SPMD one.  Requires a fault plan that never kills the
  /// root.  Output is bit-identical to the collective schedule.
  bool fault_tolerant = false;
};

/// Per-pixel workload model used by the WEA for this algorithm.
[[nodiscard]] WorkloadModel ppi_workload(std::size_t bands,
                                         std::size_t skewers);

struct PpiResult {
  /// The t candidates, ordered by decreasing purity index.
  std::vector<PixelLocation> targets;
  /// Purity count per candidate (same order).
  std::vector<std::uint32_t> scores;
  vmpi::RunReport report;
};

/// The SPMD schedule over any communicator (world or a sub-communicator);
/// only the comm root's `result` is populated.  Unlike run_ppi this does
/// not touch the host-side obs metrics (the caller owns process metrics).
void ppi_body(vmpi::Comm& comm, const hsi::HsiCube& cube,
              const PpiConfig& config, PpiResult& result);

[[nodiscard]] PpiResult run_ppi(const simnet::Platform& platform,
                                const hsi::HsiCube& cube,
                                const PpiConfig& config,
                                vmpi::Options options = {});

}  // namespace hprs::core
