#include "core/ft.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace hprs::core::ft {

namespace {

// Recovery decisions are pure functions of the virtual protocol (who died,
// when, which chunks were theirs), so these counters are Domain::kStable
// and golden-comparable.  The recovery path runs at most a few times per
// program, so publishing directly (registry mutex and all) is fine here.
void note_worker_lost() { obs::Metrics::instance().add("ft.workers_lost", 1); }

}  // namespace

/// Shared phase execution of one Command on a worker rank.
[[nodiscard]] std::pair<PhaseResult, std::size_t> execute_command(
    vmpi::Comm& comm, const Command& cmd,
    const std::vector<Handler>& handlers) {
  HPRS_REQUIRE(static_cast<std::size_t>(cmd.phase) < handlers.size(),
               "fault-tolerant worker received a command for phase " +
                   std::to_string(cmd.phase) + " but only " +
                   std::to_string(handlers.size()) + " handlers exist");
  const std::any* payload = cmd.payload ? cmd.payload.get() : nullptr;
  PhaseResult out;
  out.results.reserve(cmd.chunks.size());
  std::size_t bytes = 0;
  std::optional<vmpi::Comm::RecoveryScope> scope;
  if (cmd.recovery) scope.emplace(comm);
  for (const Chunk& chunk : cmd.chunks) {
    ChunkOutcome oc =
        handlers[static_cast<std::size_t>(cmd.phase)](comm, chunk, payload);
    bytes += oc.bytes + kResultHeaderBytes;
    out.results.push_back(ChunkResult{chunk.id, std::move(oc.value)});
  }
  return {std::move(out), bytes};
}

void worker_loop(vmpi::Comm& comm, const std::vector<Handler>& handlers) {
  const int root = comm.root();
  while (true) {
    Command cmd = comm.recv<Command>(root, kCommandTag);
    if (cmd.phase < 0) return;
    auto [out, bytes] = execute_command(comm, cmd, handlers);
    // Plain send: the root is immortal and always collects from every
    // worker it commanded, so this cannot block forever.
    comm.send(root, std::move(out), bytes, kResultTag);
  }
}

bool resilient_worker_loop(vmpi::Comm& comm,
                           const std::vector<Handler>& handlers) {
  const int root = comm.root();
  while (true) {
    auto cmd = comm.try_recv<Command>(root, kCommandTag);
    if (!cmd.has_value()) return false;  // leader died with nothing pending
    if (cmd->phase < 0) return true;     // graceful release
    auto [out, bytes] = execute_command(comm, *cmd, handlers);
    // try_send: a leader that crashed while we computed is detected here
    // (the next try_recv then reports it); an alive leader matches this
    // exactly like the plain send.
    if (!comm.try_send(root, std::move(out), bytes, kResultTag)) {
      return false;
    }
  }
}

Master::Master(vmpi::Comm& comm, std::vector<RowPartition> parts,
               PartitionPolicy policy, double memory_fraction,
               std::size_t cols, std::size_t bytes_per_pixel,
               std::size_t replication, bool charge_staging)
    : comm_(&comm),
      policy_(policy),
      memory_fraction_(memory_fraction),
      cols_(cols),
      bytes_per_pixel_(bytes_per_pixel),
      replication_(replication),
      charge_staging_(charge_staging) {
  HPRS_REQUIRE(comm.is_root(),
               "ft::Master must be constructed on the root rank");
  HPRS_REQUIRE(parts.size() == static_cast<std::size_t>(comm.size()),
               "one initial chunk per rank expected");
  const std::size_t p = parts.size();
  chunks_.reserve(p);
  assignment_.reserve(p);
  staged_.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    chunks_.push_back(Chunk{static_cast<int>(i), parts[i]});
    assignment_.push_back(static_cast<int>(i));
    // The master's own chunk needs no staging; everything else does.
    std::vector<bool> staged(p, false);
    staged[static_cast<std::size_t>(comm.root())] = true;
    staged_.push_back(std::move(staged));
  }
  alive_.assign(p, true);
}

Master::Master(vmpi::Comm& comm, std::vector<Chunk> chunks,
               PartitionPolicy policy, double memory_fraction,
               std::size_t cols, std::size_t bytes_per_pixel,
               std::size_t replication, bool charge_staging)
    : comm_(&comm),
      policy_(policy),
      memory_fraction_(memory_fraction),
      cols_(cols),
      bytes_per_pixel_(bytes_per_pixel),
      replication_(replication),
      charge_staging_(charge_staging),
      chunks_(std::move(chunks)) {
  HPRS_REQUIRE(comm.is_root(),
               "ft::Master must be constructed on the root rank");
  HPRS_REQUIRE(!chunks_.empty(), "resume requires at least one frozen chunk");
  const auto p = static_cast<std::size_t>(comm.size());
  const auto root = static_cast<std::size_t>(comm.root());
  const std::size_t n = chunks_.size();
  alive_.assign(p, true);
  staged_.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<bool> staged(p, false);
    staged[root] = true;
    staged_.push_back(std::move(staged));
  }
  assignment_.assign(n, -1);
  if (n == p) {
    // Same width as the original gang: the identity assignment of the
    // primary constructor.
    for (std::size_t c = 0; c < n; ++c) {
      assignment_[c] = static_cast<int>(c);
    }
    return;
  }
  // Elastic resize: spread the frozen chunks over the new width with the
  // recovery path's earliest-finisher heuristic (memory-bounded,
  // lowest-rank ties), in ascending chunk-id order so the plan is a pure
  // function of (chunks, platform, policy).
  const simnet::Platform& platform = comm.platform();
  std::vector<double> load(p, 0.0);
  std::vector<double> held(p, 0.0);
  std::vector<double> weight(p, 1.0);
  for (std::size_t r = 0; r < p; ++r) {
    if (policy_ == PartitionPolicy::kHeterogeneous) {
      weight[r] = 1.0 / platform.cycle_time(r);
    }
  }
  for (std::size_t c = 0; c < n; ++c) {
    const double rows = static_cast<double>(chunks_[c].part.owned_rows());
    const double bytes = static_cast<double>(chunks_[c].part.halo_rows() *
                                             cols_ * bytes_per_pixel_);
    int best = -1;
    double best_finish = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < p; ++r) {
      const double budget =
          memory_fraction_ *
          static_cast<double>(platform.processor(r).memory_mb) * 1024.0 *
          1024.0;
      if (held[r] + bytes > budget) continue;
      const double finish = (load[r] + rows) / weight[r];
      if (finish < best_finish) {
        best_finish = finish;
        best = static_cast<int>(r);
      }
    }
    HPRS_REQUIRE(best >= 0,
                 "elastic restart failed: no rank of the " +
                     std::to_string(p) + "-wide gang has memory for chunk " +
                     std::to_string(chunks_[c].id));
    assignment_[c] = best;
    const auto bu = static_cast<std::size_t>(best);
    load[bu] += rows;
    held[bu] += bytes;
  }
}

std::size_t Master::chunk_block_bytes(const Chunk& chunk) const {
  if (!charge_staging_) return 0;
  return chunk.part.halo_rows() * cols_ * bytes_per_pixel_ * replication_;
}

std::vector<std::any> Master::phase(int phase_id, const Handler& handler,
                                    std::shared_ptr<const std::any> payload,
                                    std::size_t payload_bytes) {
  vmpi::Comm& comm = *comm_;
  const int p = comm.size();
  const int root = comm.root();
  const std::size_t n = chunks_.size();
  std::vector<std::any> results(n);
  std::vector<bool> have(n, false);
  bool recovery = false;

  while (true) {
    // This round's work lists under the current assignment.  Round 0
    // commands every live worker (even with no chunks: the lockstep reply
    // keeps it available as an adoption target); recovery rounds only
    // contact the adopters of orphaned chunks.
    std::vector<std::vector<Chunk>> todo(static_cast<std::size_t>(p));
    for (std::size_t c = 0; c < n; ++c) {
      if (!have[c]) {
        todo[static_cast<std::size_t>(assignment_[c])].push_back(chunks_[c]);
      }
    }

    std::vector<int> commanded;
    for (int r = 0; r < p; ++r) {
      const auto ru = static_cast<std::size_t>(r);
      if (r == root || !alive_[ru]) continue;
      if (recovery && todo[ru].empty()) continue;
      std::size_t bytes = payload_bytes + kChunkDescriptorBytes;
      for (const Chunk& chunk : todo[ru]) {
        bytes += kChunkDescriptorBytes;
        if (!staged_[static_cast<std::size_t>(chunk.id)][ru]) {
          bytes += chunk_block_bytes(chunk);
        }
      }
      const double t0 = comm.now();
      if (!comm.try_send(r, Command{phase_id, recovery, payload, todo[ru]},
                         bytes, kCommandTag)) {
        // Death detected while posting; the detection wait was charged by
        // the engine.  The chunks stay missing and are adopted below.
        alive_[ru] = false;
        note_worker_lost();
        continue;
      }
      if (recovery) {
        // Time spent re-shipping lost work (the re-staging transfer) is
        // redistribution overhead; failed posts above were detection.
        comm.note_redistribution(comm.now() - t0);
      }
      for (const Chunk& chunk : todo[ru]) {
        staged_[static_cast<std::size_t>(chunk.id)][ru] = true;
      }
      commanded.push_back(r);
    }

    // The master's own share, in chunk order.
    {
      std::optional<vmpi::Comm::RecoveryScope> scope;
      if (recovery) scope.emplace(comm);
      for (const Chunk& chunk : todo[static_cast<std::size_t>(root)]) {
        results[static_cast<std::size_t>(chunk.id)] =
            std::move(handler(comm, chunk, payload ? payload.get() : nullptr)
                          .value);
        have[static_cast<std::size_t>(chunk.id)] = true;
      }
    }

    // Collect, ascending rank order.  A worker that died after taking the
    // command surfaces here; its chunks stay missing.
    for (const int r : commanded) {
      auto res = comm.try_recv<PhaseResult>(r, kResultTag);
      if (!res.has_value()) {
        alive_[static_cast<std::size_t>(r)] = false;
        note_worker_lost();
        continue;
      }
      for (auto& cr : res->results) {
        results[static_cast<std::size_t>(cr.chunk)] = std::move(cr.value);
        have[static_cast<std::size_t>(cr.chunk)] = true;
      }
    }

    if (std::all_of(have.begin(), have.end(), [](bool b) { return b; })) {
      return results;
    }
    reassign_lost(have);
    recovery = true;
  }
}

void Master::reassign_lost(const std::vector<bool>& have) {
  vmpi::Comm& comm = *comm_;
  const simnet::Platform& platform = comm.platform();
  const std::size_t p = static_cast<std::size_t>(comm.size());
  const double t0 = comm.now();

  // Survivor state: assigned rows (load) and held partition bytes (memory).
  std::vector<double> load(p, 0.0);
  std::vector<double> held(p, 0.0);
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    const auto r = static_cast<std::size_t>(assignment_[c]);
    if (!alive_[r]) continue;
    load[r] += static_cast<double>(chunks_[c].part.owned_rows());
    held[r] += static_cast<double>(chunks_[c].part.halo_rows() * cols_ *
                                   bytes_per_pixel_);
  }
  // The WEA re-run over the survivors: heterogeneous fractions follow
  // compute speed (alpha ~ 1/w, the paper's formula -- the staging term
  // is sunk for already-held chunks), homogeneous stays uniform.
  std::vector<double> weight(p, 0.0);
  std::size_t survivors = 0;
  for (std::size_t r = 0; r < p; ++r) {
    if (!alive_[r]) continue;
    ++survivors;
    weight[r] = policy_ == PartitionPolicy::kHeterogeneous
                    ? 1.0 / platform.cycle_time(r)
                    : 1.0;
  }

  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    if (have[c] || alive_[static_cast<std::size_t>(assignment_[c])]) continue;
    const Chunk& chunk = chunks_[c];
    const double rows = static_cast<double>(chunk.part.owned_rows());
    const double bytes = static_cast<double>(chunk.part.halo_rows() * cols_ *
                                             bytes_per_pixel_);
    // Earliest-finisher adoption under the per-node memory bound; ties go
    // to the lowest rank so the plan is deterministic.
    int best = -1;
    double best_finish = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < p; ++r) {
      if (!alive_[r]) continue;
      const double budget =
          memory_fraction_ *
          static_cast<double>(platform.processor(r).memory_mb) * 1024.0 *
          1024.0;
      if (held[r] + bytes > budget) continue;
      const double finish = (load[r] + rows) / weight[r];
      if (finish < best_finish) {
        best_finish = finish;
        best = static_cast<int>(r);
      }
    }
    HPRS_REQUIRE(best >= 0,
                 "fault recovery failed: no surviving node has memory for "
                 "the partition of crashed rank " +
                     std::to_string(assignment_[c]) + " (" +
                     std::to_string(survivors) + " survivors)");
    assignment_[c] = best;
    const auto bu = static_cast<std::size_t>(best);
    load[bu] += rows;
    held[bu] += bytes;
    obs::Metrics::instance().add("ft.chunks_reassigned", 1, obs::Domain::kStable,
                                 best);
  }
  obs::Metrics::instance().add("ft.recovery_rounds", 1);

  // The replanning is a handful of arithmetic per survivor, performed by
  // the master alone -- the same charge distribute_partitions makes for
  // the initial WEA.
  comm.compute(64ULL * survivors, vmpi::Phase::kSequential);
  comm.note_redistribution(comm.now() - t0);
}

void Master::finish() {
  if (finished_) return;
  finished_ = true;
  vmpi::Comm& comm = *comm_;
  for (int r = 0; r < comm.size(); ++r) {
    const auto ru = static_cast<std::size_t>(r);
    if (r == comm.root() || !alive_[ru]) continue;
    if (!comm.try_send(r, Command{}, kChunkDescriptorBytes, kCommandTag)) {
      alive_[ru] = false;
      note_worker_lost();
    }
  }
}

int Master::live_workers() const {
  int n = 0;
  for (std::size_t r = 0; r < alive_.size(); ++r) {
    if (alive_[r] && static_cast<int>(r) != comm_->root()) ++n;
  }
  return n;
}

void run_program(vmpi::Comm& comm, const hsi::HsiCube& cube,
                 const Program& prog) {
  if (!comm.is_root()) {
    worker_loop(comm, prog.handlers);
    return;
  }
  const PartitionResult partition =
      wea_partition(comm.platform(), cube.rows(), cube.cols(), prog.model,
                    prog.policy, prog.memory_fraction, prog.overlap,
                    comm.root());
  comm.compute(64ULL * static_cast<std::uint64_t>(comm.size()),
               vmpi::Phase::kSequential);
  Master master(comm, partition.parts, prog.policy, prog.memory_fraction,
                cube.cols(), cube.bytes_per_pixel(), prog.replication,
                prog.model.scatter_input);
  prog.master(comm, master, prog.handlers);
  master.finish();
}

void require_immortal_root(const vmpi::Options& options) {
  for (const auto& crash : options.fault_plan.crashes) {
    HPRS_REQUIRE(crash.rank != options.root,
                 "fault-tolerant execution requires an immortal root: the "
                 "fault plan crashes rank " +
                     std::to_string(crash.rank) +
                     ", which is the root; pick a different root or crash "
                     "a worker instead");
  }
}

}  // namespace hprs::core::ft
