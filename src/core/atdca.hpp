// Automated Target Detection and Classification Algorithm (paper Alg. 2).
//
// Master/worker orthogonal-subspace-projection target finder: the master
// WEA-partitions the cube; workers find the brightest pixel; then, t-1
// times, the master broadcasts the grown target matrix U, each worker finds
// its local pixel maximizing the projection onto the orthogonal complement
// of span(U), and the master selects the global winner and appends it to U.
//
// run_atdca with PartitionPolicy::kHeterogeneous is the paper's
// Hetero-ATDCA; with kHomogeneous it is the Homo-ATDCA baseline (identical
// numerics, equal partitions).
#pragma once

#include "core/partition.hpp"
#include "core/types.hpp"
#include "hsi/cube.hpp"
#include "simnet/platform.hpp"
#include "vmpi/engine.hpp"

namespace hprs::core {

struct AtdcaConfig {
  /// Number of targets t to extract (the paper uses 18, the intrinsic
  /// dimensionality of the WTC scene).
  std::size_t targets = 18;
  PartitionPolicy policy = PartitionPolicy::kHeterogeneous;
  /// Fraction of each node's memory available to its partition.
  double memory_fraction = 0.5;
  /// Virtual scale: each physical pixel stands for this many identical
  /// scene pixels in the timing model (see spmd_common.hpp).
  std::size_t replication = 1;
  /// Charge the full image distribution over the network instead of
  /// assuming pre-staged data (see DESIGN.md on why pre-staged is the
  /// default).  Also makes the WEA communication-aware.
  bool charge_data_staging = false;
  /// Run the fault-tolerant master/worker protocol (core/ft.hpp) instead
  /// of the collective SPMD schedule: the run survives fail-stop worker
  /// crashes from Options::fault_plan and still produces the fault-free
  /// outputs bit for bit.  The root must not be in the crash plan.
  bool fault_tolerant = false;
  /// Rows per tile of the brightest/OSP sweeps; 0 = HPRS_TILE_ROWS, else
  /// automatic (linalg::resolve_tile_rows).  Any value is numerics- and
  /// virtual-time-neutral unless tile_stream is on.
  std::size_t tile_rows = 0;
  /// Per-tile streamed staging overlapped with compute on accelerated
  /// ranks (ORed with HPRS_TILE_STREAM).  Off reproduces the historic
  /// upfront-staging charge bit for bit.
  bool tile_stream = false;
};

/// Per-pixel workload model used by the WEA for this algorithm.
[[nodiscard]] WorkloadModel atdca_workload(std::size_t bands,
                                           std::size_t targets);

/// The non-fault-tolerant SPMD schedule, runnable over any communicator
/// (world or a sub-communicator): the comm's root partitions and selects,
/// every member sweeps its strip.  Only the root's `result` is populated.
/// Used by run_atdca and by the sched/ gang scheduler for subset placement.
void atdca_body(vmpi::Comm& comm, const hsi::HsiCube& cube,
                const AtdcaConfig& config, TargetDetectionResult& result);

/// Runs ATDCA on the simulated platform.  The returned targets are in
/// extraction order (first = brightest pixel of the scene).
[[nodiscard]] TargetDetectionResult run_atdca(const simnet::Platform& platform,
                                              const hsi::HsiCube& cube,
                                              const AtdcaConfig& config,
                                              vmpi::Options options = {});

}  // namespace hprs::core
