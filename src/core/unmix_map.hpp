// Parallel abundance mapping: fully constrained unmixing of every pixel
// against a fixed endmember set.
//
// This is the downstream product the paper's motivating applications
// consume -- once ATDCA/UFCLS/PPI have extracted target signatures, the
// per-pixel abundance planes say *how much* of each material sits where
// (the USGS WTC dust maps are exactly such products).  Parallelization is
// the same master/worker WEA pattern: the endmember matrix is broadcast,
// every worker unmixes its partition, and the planes are gathered.
#pragma once

#include <span>

#include "core/partition.hpp"
#include "core/types.hpp"
#include "hsi/cube.hpp"
#include "linalg/matrix.hpp"
#include "simnet/platform.hpp"
#include "vmpi/engine.hpp"

namespace hprs::core {

struct UnmixMapConfig {
  PartitionPolicy policy = PartitionPolicy::kHeterogeneous;
  double memory_fraction = 0.5;
  std::size_t replication = 1;
  bool charge_data_staging = false;
};

struct AbundanceMaps {
  std::size_t endmembers = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// Endmember-major planes: plane e holds rows*cols abundances in [0, 1].
  std::vector<float> planes;
  /// Per-pixel root-mean-square reconstruction error.
  std::vector<float> rmse;
  vmpi::RunReport report;

  [[nodiscard]] std::span<const float> plane(std::size_t e) const {
    return {planes.data() + e * rows * cols, rows * cols};
  }
  /// Index of the dominant endmember at (row, col).
  [[nodiscard]] std::size_t dominant(std::size_t row, std::size_t col) const;
};

/// Per-pixel workload model used by the WEA for this computation.
[[nodiscard]] WorkloadModel unmix_workload(std::size_t bands,
                                           std::size_t endmembers);

/// Unmixes the cube against `endmembers` (one signature per row, matching
/// the cube's band count) on the simulated platform.
[[nodiscard]] AbundanceMaps run_unmix_map(const simnet::Platform& platform,
                                          const hsi::HsiCube& cube,
                                          const linalg::Matrix& endmembers,
                                          const UnmixMapConfig& config,
                                          vmpi::Options options = {});

/// Convenience: copies the spectra at `locations` (e.g. ATDCA targets) out
/// of the cube into an endmember matrix.
[[nodiscard]] linalg::Matrix endmembers_at(
    const hsi::HsiCube& cube, std::span<const PixelLocation> locations);

}  // namespace hprs::core
