#include "core/ppi.hpp"

#include <algorithm>
#include <any>
#include <cmath>
#include <limits>
#include <map>
#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/ft_programs.hpp"
#include "core/spmd_common.hpp"
#include "obs/host_profile.hpp"
#include "obs/metrics.hpp"
#include "linalg/flops.hpp"
#include "linalg/vec.hpp"
#include "vmpi/comm.hpp"

namespace hprs::core {

namespace {

using linalg::flops::Count;

/// A ranked purity candidate at the master.
struct PurityEntry {
  std::size_t row = 0;
  std::size_t col = 0;
  std::uint32_t count = 0;
};

/// Per-skewer local extremes a worker reports: projection values plus the
/// pixel locations realizing them.
struct SkewerExtreme {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::size_t lo_row = 0, lo_col = 0;
  std::size_t hi_row = 0, hi_col = 0;
};
/// Wire size of one SkewerExtreme (two doubles + four 32-bit coordinates).
constexpr std::size_t kExtremeBytes = 2 * 8 + 4 * 4;

/// K unit skewers on `bands` channels, deterministic in the seed.
linalg::Matrix make_skewers(std::size_t k, std::size_t bands,
                            std::uint64_t seed) {
  Xoshiro256 rng(seed);
  linalg::Matrix skewers(k, bands);
  for (std::size_t s = 0; s < k; ++s) {
    auto row = skewers.row(s);
    double norm_sq = 0.0;
    for (std::size_t b = 0; b < bands; ++b) {
      row[b] = rng.normal();
      norm_sq += row[b] * row[b];
    }
    const double inv = 1.0 / std::sqrt(std::max(norm_sq, 1e-300));
    for (std::size_t b = 0; b < bands; ++b) row[b] *= inv;
  }
  return skewers;
}

}  // namespace

/// The fault-tolerant schedule (core/ft.hpp): the projection kernel runs
/// per chunk against the skewer matrix shipped as the phase payload; the
/// master folds the per-chunk extremes in chunk order with the same
/// row-major position tie-breaks as the collective path, so the purity
/// counts (and hence the ranked targets) are bit-identical regardless of
/// which rank computed which chunk.
ft::Program ppi_ft_program(const hsi::HsiCube& cube, const PpiConfig& config,
                           PpiResult& result) {
  ft::Program prog;
  prog.model = ppi_workload(cube.bands(), config.skewers);
  prog.model.scatter_input = config.charge_data_staging;
  prog.policy = config.policy;
  prog.memory_fraction = config.memory_fraction;
  prog.replication = config.replication;
  // Phase 0: per-skewer projection extremes over the chunk's rows.
  prog.handlers.push_back(
      [&cube, config](vmpi::Comm& c, const ft::Chunk& chunk,
                      const std::any* payload) {
        const auto& skewers = std::any_cast<const linalg::Matrix&>(*payload);
        const std::size_t bands = cube.bands();
        const std::size_t cols = cube.cols();
        std::vector<SkewerExtreme> local(config.skewers);
        Count flops = 0;
        for (std::size_t s = 0; s < config.skewers; ++s) {
          const auto skewer = skewers.row(s);
          auto& ext = local[s];
          for (std::size_t r = chunk.part.row_begin; r < chunk.part.row_end;
               ++r) {
            for (std::size_t col = 0; col < cols; ++col) {
              const double proj =
                  linalg::dot<double, float>(skewer, cube.pixel(r, col));
              flops += linalg::flops::dot(bands);
              if (proj < ext.lo) {
                ext.lo = proj;
                ext.lo_row = r;
                ext.lo_col = col;
              }
              if (proj > ext.hi) {
                ext.hi = proj;
                ext.hi_row = r;
                ext.hi_col = col;
              }
            }
          }
        }
        c.compute(flops * config.replication);
        return ft::ChunkOutcome{std::move(local),
                                config.skewers * kExtremeBytes};
      });

  prog.master = [&cube, config, &result](vmpi::Comm& comm,
                                         ft::PhaseDriver& master,
                                         const std::vector<ft::Handler>& h) {
    const std::size_t bands = cube.bands();

    // The master draws the skewers once and ships them with the phase
    // command (the collective path broadcasts the same matrix).
    linalg::Matrix drawn = make_skewers(config.skewers, bands, config.seed);
    comm.compute(config.skewers * (3 * bands + 1), vmpi::Phase::kSequential);
    auto payload = std::make_shared<const std::any>(std::move(drawn));
    const std::size_t skewer_bytes =
        config.skewers * bands * sizeof(double);

    auto ext_any = master.phase(0, h[0], payload, skewer_bytes);
    std::vector<std::vector<SkewerExtreme>> parts;
    parts.reserve(ext_any.size());
    for (auto& a : ext_any) {
      parts.push_back(std::any_cast<std::vector<SkewerExtreme>>(std::move(a)));
    }

    // Global extreme per skewer, folded in chunk order; ties broken by
    // row-major position so the outcome cannot depend on the partitioning.
    std::map<std::pair<std::size_t, std::size_t>, std::uint32_t> counts;
    for (std::size_t s = 0; s < config.skewers; ++s) {
      std::size_t lo_row = 0, lo_col = 0, hi_row = 0, hi_col = 0;
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      for (const auto& part : parts) {
        const auto& ext = part[s];
        if (ext.lo < lo ||
            (ext.lo == lo && std::make_pair(ext.lo_row, ext.lo_col) <
                                 std::make_pair(lo_row, lo_col))) {
          lo = ext.lo;
          lo_row = ext.lo_row;
          lo_col = ext.lo_col;
        }
        if (ext.hi > hi ||
            (ext.hi == hi && std::make_pair(ext.hi_row, ext.hi_col) <
                                 std::make_pair(hi_row, hi_col))) {
          hi = ext.hi;
          hi_row = ext.hi_row;
          hi_col = ext.hi_col;
        }
      }
      ++counts[{lo_row, lo_col}];
      ++counts[{hi_row, hi_col}];
    }
    comm.compute(config.skewers * parts.size() * 4, vmpi::Phase::kSequential);

    std::vector<PurityEntry> all;
    all.reserve(counts.size());
    for (const auto& [loc, count] : counts) {
      all.push_back(PurityEntry{loc.first, loc.second, count});
    }
    // Deterministic ranking: count desc, then row-major position.
    std::sort(all.begin(), all.end(),
              [](const PurityEntry& a, const PurityEntry& b) {
                if (a.count != b.count) return a.count > b.count;
                if (a.row != b.row) return a.row < b.row;
                return a.col < b.col;
              });
    master.finish();
    const std::size_t keep = std::min(config.targets, all.size());
    for (std::size_t k = 0; k < keep; ++k) {
      result.targets.push_back({all[k].row, all[k].col});
      result.scores.push_back(all[k].count);
    }
  };
  return prog;
}

WorkloadModel ppi_workload(std::size_t bands, std::size_t skewers) {
  WorkloadModel model;
  model.flops_per_pixel = static_cast<double>(
      skewers * linalg::flops::dot(bands));
  model.bytes_per_pixel = bands * sizeof(float);
  model.scatter_input = false;
  model.sync_rounds = 1.0;  // single projection pass, single reduction
  return model;
}

void ppi_body(vmpi::Comm& comm, const hsi::HsiCube& cube,
              const PpiConfig& config, PpiResult& result) {
  WorkloadModel model = ppi_workload(cube.bands(), config.skewers);
  model.scatter_input = config.charge_data_staging;
  const std::size_t bands = cube.bands();
  const std::size_t cols = cube.cols();

  const PartitionView view = detail::distribute_partitions(
      comm, cube, model, config.policy, config.memory_fraction,
      /*overlap=*/0, config.replication);

  // Master draws the skewers and broadcasts them; every rank projects
  // against the same shared immutable copy (zero fan-out copies).
  linalg::Matrix drawn;
  if (comm.is_root()) {
    drawn = make_skewers(config.skewers, bands, config.seed);
    comm.compute(config.skewers * (3 * bands + 1),
                 vmpi::Phase::kSequential);
  }
  const auto skewers_view =
      comm.bcast_shared(comm.root(), std::move(drawn),
                        config.skewers * bands * sizeof(double));
  const linalg::Matrix& skewers = *skewers_view;

  // Projection pass: per skewer, the local extremes and their locations.
  // The global extremes are selected at the master, so the purity counts
  // are independent of the partitioning.
  std::vector<SkewerExtreme> local(config.skewers);
  Count flops = 0;
  for (std::size_t s = 0; s < config.skewers; ++s) {
    const auto skewer = skewers.row(s);
    auto& ext = local[s];
    for (std::size_t r = view.part.row_begin; r < view.part.row_end; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const double proj =
            linalg::dot<double, float>(skewer, cube.pixel(r, c));
        flops += linalg::flops::dot(bands);
        if (proj < ext.lo) {
          ext.lo = proj;
          ext.lo_row = r;
          ext.lo_col = c;
        }
        if (proj > ext.hi) {
          ext.hi = proj;
          ext.hi_row = r;
          ext.hi_col = c;
        }
      }
    }
  }
  comm.compute(flops * config.replication);

  const std::size_t local_bytes = config.skewers * kExtremeBytes;
  auto gathered = comm.gather(comm.root(), std::move(local), local_bytes);

  if (comm.is_root()) {
    // Global extreme per skewer; ties broken by row-major position so
    // the outcome cannot depend on rank assignment.
    std::map<std::pair<std::size_t, std::size_t>, std::uint32_t> counts;
    for (std::size_t s = 0; s < config.skewers; ++s) {
      std::size_t lo_row = 0, lo_col = 0, hi_row = 0, hi_col = 0;
      double lo = std::numeric_limits<double>::infinity();
      double hi = -lo;
      for (const auto& part : gathered) {
        const auto& ext = part[s];
        if (ext.lo < lo ||
            (ext.lo == lo && std::make_pair(ext.lo_row, ext.lo_col) <
                                 std::make_pair(lo_row, lo_col))) {
          lo = ext.lo;
          lo_row = ext.lo_row;
          lo_col = ext.lo_col;
        }
        if (ext.hi > hi ||
            (ext.hi == hi && std::make_pair(ext.hi_row, ext.hi_col) <
                                 std::make_pair(hi_row, hi_col))) {
          hi = ext.hi;
          hi_row = ext.hi_row;
          hi_col = ext.hi_col;
        }
      }
      ++counts[{lo_row, lo_col}];
      ++counts[{hi_row, hi_col}];
    }
    comm.compute(config.skewers * gathered.size() * 4,
                 vmpi::Phase::kSequential);

    std::vector<PurityEntry> all;
    all.reserve(counts.size());
    for (const auto& [loc, count] : counts) {
      all.push_back(PurityEntry{loc.first, loc.second, count});
    }
    // Deterministic ranking: count desc, then row-major position.
    std::sort(all.begin(), all.end(),
              [](const PurityEntry& a, const PurityEntry& b) {
                if (a.count != b.count) return a.count > b.count;
                if (a.row != b.row) return a.row < b.row;
                return a.col < b.col;
              });
    const std::size_t keep = std::min(config.targets, all.size());
    for (std::size_t k = 0; k < keep; ++k) {
      result.targets.push_back({all[k].row, all[k].col});
      result.scores.push_back(all[k].count);
    }
  }
}

PpiResult run_ppi(const simnet::Platform& platform, const hsi::HsiCube& cube,
                  const PpiConfig& config, vmpi::Options options) {
  HPRS_REQUIRE(config.targets >= 1, "need at least one target");
  HPRS_REQUIRE(config.skewers >= 1, "need at least one skewer");
  HPRS_REQUIRE(!cube.empty(), "empty cube");
  obs::Metrics::instance().add("core.runs.PPI", 1);
  obs::ScopedHostTimer obs_timer("core.run.PPI");

  vmpi::Engine engine(platform, options);
  PpiResult result;
  if (config.fault_tolerant) {
    ft::require_immortal_root(options);
    const ft::Program prog = ppi_ft_program(cube, config, result);
    result.report = engine.run(
        [&](vmpi::Comm& comm) { ft::run_program(comm, cube, prog); });
    return result;
  }
  result.report = engine.run(
      [&](vmpi::Comm& comm) { ppi_body(comm, cube, config, result); });
  return result;
}

}  // namespace hprs::core
