// Building blocks shared by the SPMD algorithm implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.hpp"
#include "core/types.hpp"
#include "hsi/cube.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "linalg/tile_graph.hpp"
#include "vmpi/comm.hpp"

namespace hprs::core::detail {

/// Wire size of the partition descriptor scattered when image data is
/// pre-staged on the nodes (row range, halo range, cube geometry).
inline constexpr std::size_t kPartitionDescriptorBytes = 64;

/// A worker's local argmax/argmin proposal sent back to the master.
struct Candidate {
  std::size_t row = 0;
  std::size_t col = 0;
  double score = 0.0;
};
/// Wire size of one candidate: two 32-bit coordinates plus the score (the
/// real implementation would send exactly this struct).
inline constexpr std::size_t kCandidateBytes = 2 * 4 + 8;

/// Step 1 of every algorithm: the master runs the WEA over the platform and
/// scatters one partition view per rank (wire-charging the full block
/// transfer); every rank returns its own view.  `overlap` requests halo
/// rows (MORPH).
///
/// `replication` is the virtual-scale knob shared by all algorithms: each
/// physical pixel stands for `replication` identical scene pixels, so
/// per-pixel virtual costs (compute charges, block wire sizes) are
/// multiplied by it while the numerics run once.  Because every algorithm
/// here does identical independent work per pixel, this linear
/// extrapolation of virtual time to the paper's full 2133x512 scene is
/// exact; DESIGN.md discusses the substitution.
///
/// `defer_staging` skips the host->device staging charge after the scatter;
/// the caller then owes a begin_tile_stream (which stages the same bytes,
/// monolithically or per tile).  Default false keeps every historic call
/// site's accounting untouched.
PartitionView distribute_partitions(vmpi::Comm& comm,
                                    const hsi::HsiCube& cube,
                                    const WorkloadModel& model,
                                    PartitionPolicy policy,
                                    double memory_fraction,
                                    std::size_t overlap = 0,
                                    std::size_t replication = 1,
                                    bool defer_staging = false);

/// One rank's tile plan for the tiled BLAS3 sweeps: row-strip tiles over
/// the partition's owned rows plus, in streaming mode, the virtual
/// completion time of each tile's asynchronous host->device copy.
struct TileStream {
  std::vector<linalg::TileDesc> tiles;
  /// Parallel to `tiles`; empty unless `streaming`.
  std::vector<double> staged_until;
  bool streaming = false;
};

/// Builds the tile plan for `view`.  Callers pass
/// `defer_staging = streaming` to distribute_partitions: with streaming off
/// the distribute already staged the whole block synchronously (the
/// historic charge, bit-identical) and this only cuts tiles; with streaming
/// on this walks the TileGraph stage chain and enqueues one
/// stage_to_device_async per tile, so the DMA pipeline drains in the shadow
/// of whatever host-side phases precede the device sweeps.
[[nodiscard]] TileStream begin_tile_stream(vmpi::Comm& comm,
                                           const PartitionView& view,
                                           std::size_t tile_rows,
                                           bool streaming,
                                           std::size_t replication);

/// Runs `body` once per tile of `ts` in the deterministic TileGraph order
/// (a compute chain: accumulators extend strictly in tile order, which is
/// what keeps tiled sums bit-identical to the monolithic sweep) and charges
/// the sweep's virtual time.  `body` returns the flops it performed on the
/// tile.  Non-streaming: flops accumulate across tiles and the sweep
/// charges ONE compute -- the same single multiply-then-charge as the
/// monolithic path, so virtual time is bit-identical.  Streaming: each tile
/// first waits out the exposed part of its staged copy, then charges its
/// own compute, paying the kernel-launch latency only on the sweep's first
/// tile (one batched launch per sweep).
template <typename Body>
void tiled_sweep(vmpi::Comm& comm, const TileStream& ts,
                 std::size_t replication, Body&& body) {
  linalg::TileGraph chain;
  for (std::size_t k = 0; k < ts.tiles.size(); ++k) {
    const std::size_t id =
        chain.add_node(linalg::TileNodeKind::kCompute, k, k);
    if (k > 0) chain.add_edge(id - 1, id);
  }
  if (!ts.streaming) {
    std::uint64_t flops = 0;
    chain.run([&](const linalg::TileNode& node) {
      flops += body(ts.tiles[node.tile]);
    });
    comm.compute(flops * replication);
    return;
  }
  bool first = true;
  chain.run([&](const linalg::TileNode& node) {
    comm.stage_wait(ts.staged_until[node.tile]);
    const std::uint64_t flops = body(ts.tiles[node.tile]);
    comm.compute_tile(flops * replication, first);
    first = false;
  });
}

/// OSP score ||P_U_perp x||^2 = x.x - b . G^-1 b computed against the
/// factored Gram of the current target matrix.  Cost:
/// linalg::flops::osp_score(n, U.rows()).
[[nodiscard]] double osp_score(const linalg::Matrix& targets,
                               const linalg::Cholesky& gram_factor,
                               std::span<const float> pixel);

/// Argmax of the OSP score over whole rows [row_begin, row_end) of the
/// cube, scanning pixels in row-major order with strictly-greater updates.
/// Dispatches between the per-pixel reference loop (osp_score per pixel)
/// and the strip-blocked fast path, which forms U^T X over 64-pixel strips
/// as one BLAS3 product (linalg::dot_strip), back-solves each column into a
/// reusable scratch buffer, and never touches the heap per pixel.  Both
/// paths return bit-identical candidates.  The caller charges
/// linalg::flops::osp_score(bands, U.rows()) per pixel as before.
[[nodiscard]] Candidate osp_argmax_sweep(const linalg::Matrix& targets,
                                         const linalg::Cholesky& gram_factor,
                                         const hsi::HsiCube& cube,
                                         std::size_t row_begin,
                                         std::size_t row_end,
                                         linalg::ScratchArena& arena);

/// Gram matrix of the rows of U with a tiny relative ridge so the Cholesky
/// factorization survives nearly collinear targets.
[[nodiscard]] linalg::Matrix ridged_row_gram(const linalg::Matrix& u);

/// Copies a float pixel spectrum into a double row for the target matrix.
[[nodiscard]] std::vector<double> to_double(std::span<const float> pixel);

/// A unique-set candidate as gathered from the workers: a pixel spectrum
/// plus an optional quality weight (MORPH's MEI score; zero for PCT).
struct SpectralCandidate {
  PixelLocation loc;
  std::vector<float> spectrum;
  double weight = 0.0;
};

struct UniqueSetSelection {
  /// Indices into the candidate pool of the chosen exemplars (at most c).
  std::vector<std::size_t> chosen;
  /// SAD evaluations performed (for virtual-time charging).
  std::uint64_t sad_evals = 0;
};

/// Master-side consolidation of the workers' unique-set candidates (paper
/// step "the P unique sets are combined"): an online clustering pass merges
/// candidates within `sad_threshold` of a cluster exemplar (pool order,
/// which the callers pre-sort by quality), then the exemplars of the `c`
/// best-supported clusters are selected.  Ranking clusters by how many
/// workers' candidates they absorbed keeps rare outliers (single fire
/// pixels, odd mixtures) from displacing the scene's real constituents --
/// the behaviour the paper's accuracy tables imply but whose mechanism it
/// leaves unspecified.
[[nodiscard]] UniqueSetSelection consolidate_unique_set(
    std::span<const SpectralCandidate> pool, std::size_t c,
    double sad_threshold);

}  // namespace hprs::core::detail
