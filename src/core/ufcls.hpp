// Unsupervised Fully Constrained Least Squares target detection
// (paper Alg. 3).
//
// Starts from the brightest pixel (steps 1-3 of ATDCA) and then grows the
// target set by repeatedly unmixing every pixel against the current targets
// under the full abundance constraints (non-negativity + sum-to-one) and
// taking the pixel with the largest reconstruction error as the next
// target.  Heterogeneous and homogeneous versions differ only in the
// partitioning policy.
#pragma once

#include "core/partition.hpp"
#include "core/types.hpp"
#include "hsi/cube.hpp"
#include "simnet/platform.hpp"
#include "vmpi/engine.hpp"

namespace hprs::core {

struct UfclsConfig {
  std::size_t targets = 18;
  PartitionPolicy policy = PartitionPolicy::kHeterogeneous;
  double memory_fraction = 0.5;
  /// Virtual scale: each physical pixel stands for this many identical
  /// scene pixels in the timing model (see spmd_common.hpp).
  std::size_t replication = 1;
  /// Charge the full image distribution over the network instead of
  /// assuming pre-staged data (see DESIGN.md on why pre-staged is the
  /// default).  Also makes the WEA communication-aware.
  bool charge_data_staging = false;
  /// Run the fault-tolerant master/worker protocol (core/ft.hpp) instead
  /// of the collective SPMD schedule: the run survives fail-stop worker
  /// crashes from Options::fault_plan and still produces the fault-free
  /// outputs bit for bit.  The root must not be in the crash plan.
  bool fault_tolerant = false;
};

/// Per-pixel workload model used by the WEA for this algorithm.
[[nodiscard]] WorkloadModel ufcls_workload(std::size_t bands,
                                           std::size_t targets);

/// The non-fault-tolerant SPMD schedule over any communicator (world or a
/// sub-communicator); only the comm root's `result` is populated.
void ufcls_body(vmpi::Comm& comm, const hsi::HsiCube& cube,
                const UfclsConfig& config, TargetDetectionResult& result);

[[nodiscard]] TargetDetectionResult run_ufcls(const simnet::Platform& platform,
                                              const hsi::HsiCube& cube,
                                              const UfclsConfig& config,
                                              vmpi::Options options = {});

}  // namespace hprs::core
