// Gang checkpoint store for the cluster resilience layer.
//
// A checkpoint is algorithm-agnostic progress of one job's master/worker
// program (core/ft.hpp): the frozen WEA chunk list plus the per-phase
// result log the ResilientDriver has accumulated (sched/resilience.hpp).
// Because chunks are atomic and the master folds results in chunk-id
// order, replaying the log on a restarted gang of *any* width reproduces
// the original run's outputs bit for bit.
//
// The store itself is host-side state shared by every rank thread of the
// scheduler engine: only a job's gang leader writes its entry, and the
// next attempt's leader reads it strictly after the previous attempt
// retired (the dispatcher orders attempts in virtual time, and the
// engine's message matching gives the host-side happens-before), so the
// mutex only guards the map structure.
//
// Writes are two-phase to model torn checkpoints deterministically:
// begin() stages the snapshot, the writer charges the (virtual) write
// cost, and commit() promotes it.  A rank crash whose virtual time lands
// inside the write window kills the leader between begin and commit, so
// the staged snapshot is discarded and the previous *committed* one
// survives -- exactly the atomic-rename semantics of an on-disk
// checkpoint, with the torn window decided by virtual time alone.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "core/ft.hpp"

namespace hprs::sched {

/// One committed snapshot of a job's progress.
struct Checkpoint {
  std::uint64_t job_id = 0;
  /// Attempt that wrote the snapshot.
  int attempt = 1;
  /// Number of completed phase() calls in `phase_log`.
  int seq = 0;
  /// Virtual time the writing leader began the commit.
  double saved_at_s = 0.0;
  /// The frozen chunk list (immutable across attempts and resizes).
  std::vector<core::ft::Chunk> chunks;
  /// Per-phase results in issue order, each indexed by chunk id.
  std::vector<std::vector<std::any>> phase_log;
};

class CheckpointStore {
 public:
  /// Stages `snapshot` for its job id (replacing any staged predecessor).
  /// Not yet visible to load().
  void begin(Checkpoint snapshot);

  /// Promotes the staged snapshot to committed.  No-op when nothing is
  /// staged (the writer died inside the window and another path cleaned
  /// up -- cannot happen under the current protocol, but harmless).
  void commit(std::uint64_t job_id);

  /// The last *committed* snapshot, or nullopt.
  [[nodiscard]] std::optional<Checkpoint> load(std::uint64_t job_id) const;

  /// Drops both staged and committed snapshots of the job.
  void erase(std::uint64_t job_id);

  /// Commits ever performed for the job (survives erase): the dispatcher's
  /// Degraded-vs-Failed verdict for jobs that exhaust their retries.
  [[nodiscard]] std::size_t committed_count(std::uint64_t job_id) const;

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, Checkpoint> staged_;
  std::map<std::uint64_t, Checkpoint> committed_;
  std::map<std::uint64_t, std::size_t> commits_;
};

}  // namespace hprs::sched
