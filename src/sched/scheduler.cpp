#include "sched/scheduler.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "core/atdca.hpp"
#include "core/morph.hpp"
#include "core/pct.hpp"
#include "core/ppi.hpp"
#include "core/ufcls.hpp"
#include "obs/metrics.hpp"
#include "sched/cost_model.hpp"
#include "vmpi/comm.hpp"

namespace hprs::sched {
namespace {

// Control-plane tags, chosen above anything the algorithm bodies use.  The
// dispatcher shares a rank pair with every worker, so the control plane
// needs tags no job traffic reuses; job-internal p2p runs between worker
// pairs (disjoint from dispatcher pairs) or on sub-communicator collectives
// and cannot collide.
constexpr int kCmdTag = 9001;
constexpr int kDoneTag = 9002;

/// Dispatcher -> member gang command (or shutdown).
struct Cmd {
  bool shutdown = false;
  std::uint32_t index = 0;   ///< stream index of the job
  std::vector<int> members;  ///< engine ranks of the gang, ascending
};

/// Gang leader -> dispatcher completion report.
struct Done {
  std::uint32_t index = 0;
  double finish_s = 0.0;  ///< gang-aligned completion (virtual seconds)
  double busy_s = 0.0;    ///< summed member busy time during the job
};

constexpr std::size_t kCmdBaseBytes = 16;
constexpr std::size_t kDoneBytes = 24;

[[nodiscard]] std::size_t cmd_bytes(const Cmd& cmd) {
  return kCmdBaseBytes + 4 * cmd.members.size();
}

/// Runs one job on a fresh sub-communicator over the commanded members and
/// reports completion to the dispatcher.  Every member executes this; only
/// the gang leader (members[0]) writes `out` and messages the dispatcher.
void run_job(vmpi::Comm& world, const Cmd& cmd, const JobSpec& spec,
             const hsi::HsiCube& scene, JobOutput& out) {
  vmpi::Comm sub = world.subset(cmd.members, spec.id);
  const vmpi::RankStats before = sub.stats();

  switch (spec.algorithm) {
    case JobAlgorithm::kAtdca: {
      core::AtdcaConfig config;
      config.targets = spec.targets;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      core::TargetDetectionResult result;
      core::atdca_body(sub, scene, config, result);
      if (sub.is_root()) out.targets = std::move(result.targets);
      break;
    }
    case JobAlgorithm::kUfcls: {
      core::UfclsConfig config;
      config.targets = spec.targets;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      core::TargetDetectionResult result;
      core::ufcls_body(sub, scene, config, result);
      if (sub.is_root()) out.targets = std::move(result.targets);
      break;
    }
    case JobAlgorithm::kPct: {
      core::PctConfig config;
      config.classes = spec.classes;
      config.sad_threshold = spec.sad_threshold;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      core::ClassificationResult result;
      core::pct_body(sub, scene, config, result);
      if (sub.is_root()) {
        out.labels = std::move(result.labels);
        out.label_count = result.label_count;
      }
      break;
    }
    case JobAlgorithm::kMorph: {
      core::MorphConfig config;
      config.classes = spec.classes;
      config.iterations = spec.iterations;
      config.kernel_radius = spec.kernel_radius;
      config.sad_threshold = spec.sad_threshold;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      core::ClassificationResult result;
      core::morph_body(sub, scene, config, result);
      if (sub.is_root()) {
        out.labels = std::move(result.labels);
        out.label_count = result.label_count;
      }
      break;
    }
    case JobAlgorithm::kPpi: {
      core::PpiConfig config;
      config.targets = spec.targets;
      config.skewers = spec.skewers;
      config.seed = spec.seed;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      core::PpiResult result;
      core::ppi_body(sub, scene, config, result);
      if (sub.is_root()) {
        out.targets = std::move(result.targets);
        out.scores = std::move(result.scores);
      }
      break;
    }
  }

  // Align the gang so the recorded finish covers every member, snapshot
  // the job's busy window, then fold the per-member busy time to the
  // leader (the accounting traffic is charged after the finish snapshot,
  // so it never pollutes the job's utilization).
  sub.barrier();
  const vmpi::RankStats after = sub.stats();
  const double busy = after.busy() - before.busy();
  const auto busys = sub.gather(sub.root(), busy, sizeof(double));
  if (sub.is_root()) {
    Done done;
    done.index = cmd.index;
    done.finish_s = after.clock;
    for (double b : busys) done.busy_s += b;
    world.send(world.root(), done, kDoneBytes, kDoneTag);
  }
}

void worker_loop(vmpi::Comm& comm, const std::vector<JobSpec>& stream,
                 const hsi::HsiCube& scene, std::vector<JobOutput>& outputs) {
  while (true) {
    const Cmd cmd = comm.recv<Cmd>(comm.root(), kCmdTag);
    if (cmd.shutdown) break;
    const JobSpec& spec = stream[cmd.index];
    const hsi::HsiCube& job_scene = spec.scene != nullptr ? *spec.scene : scene;
    run_job(comm, cmd, spec, job_scene, outputs[cmd.index]);
  }
}

void dispatcher_loop(vmpi::Comm& comm, const std::vector<JobSpec>& stream,
                     const hsi::HsiCube& scene, Policy policy,
                     std::vector<JobRecord>& records) {
  const simnet::Platform& platform = comm.platform();
  std::vector<int> pool;  // the worker ranks, ascending
  for (int r = 0; r < comm.size(); ++r) {
    if (r != comm.root()) pool.push_back(r);
  }

  // Arrival order over admitted jobs: (arrival, id), the event order the
  // dispatcher paces virtual time with.
  std::vector<std::size_t> arrivals;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (!records[i].rejected) arrivals.push_back(i);
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [&stream](std::size_t a, std::size_t b) {
              if (stream[a].arrival_s != stream[b].arrival_s) {
                return stream[a].arrival_s < stream[b].arrival_s;
              }
              return stream[a].id < stream[b].id;
            });

  std::size_t next_arrival = 0;
  std::vector<PendingJob> ready;
  std::vector<RunningJob> running;
  std::set<int> free(pool.begin(), pool.end());
  std::size_t completed = 0;

  while (completed < arrivals.size()) {
    const double now = comm.now();

    // Admit everything that has arrived by now.
    while (next_arrival < arrivals.size() &&
           stream[arrivals[next_arrival]].arrival_s <= now) {
      const std::size_t idx = arrivals[next_arrival++];
      ready.push_back(PendingJob{stream[idx].id, idx, stream[idx].arrival_s,
                                 records[idx].est_seconds,
                                 stream[idx].ranks});
    }

    const std::vector<int> free_ranks(free.begin(), free.end());
    if (auto sel = try_select(policy, platform, ready, free_ranks, running,
                              now)) {
      const std::size_t idx = ready[sel->ready_pos].index;
      const JobSpec& spec = stream[idx];
      const hsi::HsiCube& job_scene =
          spec.scene != nullptr ? *spec.scene : scene;
      std::vector<int> members = sel->members;
      if (policy == Policy::kHeteroBestFit) {
        // Second opinion on mixed CPU+accelerator platforms: a tiny job's
        // launch-latency bill can make an all-CPU gang cheaper than the
        // "fastest ranks" pick.  Identity when the pick has no accelerator.
        members = refine_members(platform, free_ranks, std::move(members),
                                 spec, job_scene);
      }
      JobRecord& record = records[idx];
      record.dispatch_s = now;
      record.members = members;
      record.est_seconds =
          estimate_job(platform, members, spec, job_scene).seconds;
      running.push_back(RunningJob{spec.id, idx, now + record.est_seconds,
                                   members});
      for (int m : members) free.erase(m);
      ready.erase(ready.begin() +
                  static_cast<std::ptrdiff_t>(sel->ready_pos));
      Cmd cmd;
      cmd.index = static_cast<std::uint32_t>(idx);
      cmd.members = members;
      const std::size_t bytes = cmd_bytes(cmd);
      for (int m : members) {
        comm.send(m, cmd, bytes, kCmdTag);
      }
      continue;
    }

    // Nothing may start: advance virtual time to the next event.  Arrival
    // times are known exactly; completions are consumed in the cost
    // model's (est_finish, id) order -- a deterministic rule, so the
    // schedule cannot depend on host timing even when an estimate is off.
    const bool have_arrival = next_arrival < arrivals.size();
    const double arrival_t =
        have_arrival ? stream[arrivals[next_arrival]].arrival_s : 0.0;
    if (running.empty()) {
      HPRS_ASSERT(have_arrival);  // else the stream would be drained
      comm.sleep_until(arrival_t);
      continue;
    }
    std::size_t next = 0;
    for (std::size_t i = 1; i < running.size(); ++i) {
      const bool earlier =
          running[i].est_finish_s != running[next].est_finish_s
              ? running[i].est_finish_s < running[next].est_finish_s
              : running[i].id < running[next].id;
      if (earlier) next = i;
    }
    if (have_arrival && arrival_t <= running[next].est_finish_s) {
      comm.sleep_until(arrival_t);
      continue;
    }
    const int leader = running[next].members.front();
    const Done done = comm.recv<Done>(leader, kDoneTag);
    HPRS_ASSERT(done.index == running[next].index);
    JobRecord& record = records[done.index];
    record.finish_s = done.finish_s;
    record.busy_s = done.busy_s;
    for (int m : running[next].members) free.insert(m);
    running.erase(running.begin() + static_cast<std::ptrdiff_t>(next));
    ++completed;
  }

  // Drain the pool: one shutdown command per worker.
  Cmd bye;
  bye.shutdown = true;
  for (int m : pool) {
    comm.send(m, bye, kCmdBaseBytes, kCmdTag);
  }
}

}  // namespace

std::size_t ScheduleResult::completed() const {
  std::size_t n = 0;
  for (const JobRecord& r : records) n += r.completed() ? 1 : 0;
  return n;
}

std::size_t ScheduleResult::rejected() const {
  std::size_t n = 0;
  for (const JobRecord& r : records) n += r.rejected ? 1 : 0;
  return n;
}

ScheduleResult run_schedule(const simnet::Platform& platform,
                            const hsi::HsiCube& scene,
                            const std::vector<JobSpec>& stream,
                            const SchedulerConfig& config,
                            vmpi::Options options) {
  HPRS_REQUIRE(platform.size() >= 2,
               "the scheduler needs a dispatcher rank plus at least one "
               "worker");
  {
    std::set<std::uint64_t> ids;
    for (const JobSpec& spec : stream) {
      HPRS_REQUIRE(ids.insert(spec.id).second,
                   "duplicate job id " + std::to_string(spec.id) +
                       " in the stream");
    }
  }

  const int root = options.root;
  HPRS_REQUIRE(root >= 0 && static_cast<std::size_t>(root) < platform.size(),
               "dispatcher (root) rank out of range");
  std::vector<int> pool;
  for (std::size_t r = 0; r < platform.size(); ++r) {
    if (static_cast<int>(r) != root) pool.push_back(static_cast<int>(r));
  }

  ScheduleResult result;
  result.policy = config.policy;
  result.records.resize(stream.size());
  result.outputs.resize(stream.size());

  // Memory-bound admission plus the canonical (full-pool placement)
  // estimate SJF orders the ready queue by.  Both are host-side and purely
  // arithmetic, so the engine program below is already fixed before it
  // starts -- part of the determinism argument (DESIGN.md section 11).
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const JobSpec& spec = stream[i];
    const hsi::HsiCube& job_scene = spec.scene != nullptr ? *spec.scene : scene;
    JobRecord& record = result.records[i];
    record.id = spec.id;
    record.algorithm = spec.algorithm;
    record.arrival_s = spec.arrival_s;
    try {
      check_admission(platform, pool, spec, job_scene);
      std::vector<int> canonical =
          pick_members(config.policy, platform, pool, spec.ranks);
      if (config.policy == Policy::kHeteroBestFit) {
        canonical = refine_members(platform, pool, std::move(canonical), spec,
                                   job_scene);
      }
      record.est_seconds =
          estimate_job(platform, canonical, spec, job_scene).seconds;
    } catch (const AdmissionError& e) {
      record.rejected = true;
      record.error = e.what();
    }
  }

  vmpi::Engine engine(platform, options);
  result.report = engine.run([&](vmpi::Comm& comm) {
    if (comm.rank() == comm.root()) {
      dispatcher_loop(comm, stream, scene, config.policy, result.records);
    } else {
      worker_loop(comm, stream, scene, result.outputs);
    }
  });

  for (const JobRecord& record : result.records) {
    if (!record.completed()) continue;
    result.makespan_s = std::max(result.makespan_s, record.finish_s);
    result.utilization += record.busy_s;
  }
  const double span =
      result.makespan_s * static_cast<double>(pool.size());
  result.utilization = span > 0.0 ? result.utilization / span : 0.0;

  if (config.record_metrics) {
    auto& metrics = obs::Metrics::instance();
    metrics.add("sched.jobs.completed", result.completed());
    metrics.add("sched.jobs.rejected", result.rejected());
    for (const JobRecord& record : result.records) {
      if (!record.completed()) continue;
      const std::string prefix =
          "sched.job." + std::to_string(record.id) + ".";
      metrics.gauge_max(prefix + "queue_wait_s", record.queue_wait_s());
      metrics.gauge_max(prefix + "makespan_s", record.makespan_s());
      metrics.gauge_max(prefix + "utilization", record.utilization());
    }
  }
  return result;
}

std::vector<obs::TraceTrackGroup> job_track_groups(
    const ScheduleResult& result) {
  std::vector<obs::TraceTrackGroup> groups;
  for (const JobRecord& record : result.records) {
    if (!record.completed()) continue;
    obs::TraceTrackGroup group;
    group.label = "job:" + std::to_string(record.id) + "/" +
                  to_string(record.algorithm);
    group.members = record.members;
    group.begin_s = record.dispatch_s;
    group.end_s = record.finish_s;
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace hprs::sched
