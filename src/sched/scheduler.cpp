#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "core/atdca.hpp"
#include "core/morph.hpp"
#include "core/pct.hpp"
#include "core/ppi.hpp"
#include "core/ufcls.hpp"
#include "obs/metrics.hpp"
#include "sched/checkpoint.hpp"
#include "sched/cost_model.hpp"
#include "vmpi/comm.hpp"

namespace hprs::sched {
namespace {

// Control-plane tags, chosen above anything the algorithm bodies use.  The
// dispatcher shares a rank pair with every worker, so the control plane
// needs tags no job traffic reuses; job-internal p2p runs between worker
// pairs (disjoint from dispatcher pairs) or on sub-communicator collectives
// and cannot collide.
constexpr int kCmdTag = 9001;
constexpr int kDoneTag = 9002;
/// Per-member free notification of the resilient mode (kDoneTag stays the
/// leader's completion report, so the base wire protocol is untouched).
constexpr int kFreeTag = 9003;

/// Dispatcher -> member gang command (or shutdown).
struct Cmd {
  bool shutdown = false;
  std::uint32_t index = 0;   ///< stream index of the job
  std::uint32_t attempt = 1; ///< 1-based attempt (resilient mode; else 1)
  std::vector<int> members;  ///< engine ranks of the gang, ascending
};

/// Gang leader -> dispatcher completion report.
struct Done {
  std::uint32_t index = 0;
  double finish_s = 0.0;  ///< gang-aligned completion (virtual seconds)
  double busy_s = 0.0;    ///< summed member busy time during the job
};

/// Resilient gang leader -> dispatcher attempt report.  Unlike Done it can
/// describe a preempted or failed attempt; a *crashed* leader sends
/// nothing, which the dispatcher detects with try_recv.
struct RDone {
  std::uint32_t index = 0;
  std::uint32_t attempt = 1;
  std::uint32_t status = 0;  ///< AttemptOutcome::status
  double finish_s = 0.0;
  std::int32_t resumed_seq = 0;
  std::int32_t checkpoints = 0;
  double checkpoint_s = 0.0;
  std::vector<double> checkpoint_at_s;
  std::string error;
};

/// Every gang member -> dispatcher after an attempt (leader included,
/// after its RDone): the per-member busy contribution and the implicit
/// "this rank is alive and free again" signal.
struct WorkerFree {
  std::uint32_t index = 0;
  std::uint32_t attempt = 1;
  double busy_s = 0.0;
};

constexpr std::size_t kCmdBaseBytes = 16;
constexpr std::size_t kDoneBytes = 24;
constexpr std::size_t kRDoneBaseBytes = 40;
constexpr std::size_t kFreeBytes = 16;

[[nodiscard]] std::size_t cmd_bytes(const Cmd& cmd) {
  return kCmdBaseBytes + 4 * cmd.members.size();
}

[[nodiscard]] std::size_t rdone_bytes(const RDone& done) {
  return kRDoneBaseBytes + 8 * done.checkpoint_at_s.size() +
         done.error.size();
}

/// Snapshot-scope label of one job's gang communicator; the resilient mode
/// appends "#<attempt>" so every attempt gets its own series.
[[nodiscard]] std::string job_snapshot_scope(const JobSpec& spec) {
  return "job:" + std::to_string(spec.id) + "/" + to_string(spec.algorithm);
}

/// Decorrelates the dispatcher's sampling schedule from the per-group
/// cadences (which are keyed on communicator ids).
constexpr std::uint64_t kDispatcherScopeId = 0xd15ba7c4e5c09e1dULL;

/// Live per-tenant accounting the dispatcher keeps for quota admission and
/// the "tenant:<name>" pvar scopes.  All fields advance at deterministic
/// dispatcher events (arrival processing, dispatch, completion), so the
/// sampled series are bit-identical across runs and exec modes.
struct TenantLive {
  /// Summed requested gang widths of admitted, not-yet-finished jobs --
  /// the quantity SchedulerConfig::tenant_rank_caps bounds.
  int inflight_ranks = 0;
  std::size_t ready = 0;    ///< jobs waiting in the ready queue
  std::size_t running = 0;  ///< gangs holding ranks
  std::size_t riders = 0;   ///< batched riders waiting on a gang
  std::uint64_t completed = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t batched = 0;  ///< riders served by fan-out (cumulative)
};
using TenantMap = std::map<std::string, TenantLive>;

/// Dispatcher-side counter plane: job/retry counters plus queue-depth and
/// bytes-in-flight levels, sampled on the engine's snapshot cadence at the
/// top of the dispatch loop.  Every sampled quantity and the loop's `now`
/// sequence are deterministic virtual-time state (DESIGN.md §11), so the
/// series is bit-identical across runs and exec modes.
class DispatcherPvars {
 public:
  explicit DispatcherPvars(vmpi::Comm& comm)
      : comm_(comm), enabled_(comm.snapshots_enabled()) {
    if (enabled_) {
      const obs::SnapshotConfig& cfg = comm.snapshot_config();
      cadence_ =
          obs::SnapshotCadence(cfg.interval_s, cfg.seed, kDispatcherScopeId);
    }
  }

  void on_dispatch(std::size_t wire_bytes) {
    ++dispatched_;
    cmd_wire_bytes_ += wire_bytes;
    bytes_in_flight_ += wire_bytes;
  }
  void on_complete(std::size_t wire_bytes) {
    ++completed_;
    bytes_in_flight_ -= std::min<std::uint64_t>(bytes_in_flight_, wire_bytes);
  }
  void on_retry() { ++retried_; }
  void on_worker_lost() { ++lost_workers_; }

  void maybe_sample(double now, std::size_t ready, std::size_t running,
                    std::size_t free, std::size_t retry_queue,
                    const TenantMap* tenants = nullptr) {
    if (!enabled_ || !cadence_.due(now)) return;
    cadence_.advance_past(now);
    obs::PvarSet set;
    set.counter("jobs.dispatched", dispatched_);
    set.counter("jobs.completed", completed_);
    set.counter("jobs.retried", retried_);
    set.counter("workers.lost", lost_workers_);
    set.counter("cmd.wire_bytes", cmd_wire_bytes_);
    set.level("bytes.in_flight", static_cast<double>(bytes_in_flight_));
    set.level("queue.ready", static_cast<double>(ready));
    set.level("queue.retry", static_cast<double>(retry_queue));
    set.level("gangs.running", static_cast<double>(running));
    set.level("workers.free", static_cast<double>(free));
    comm_.snapshot_sample("dispatcher", set);
    // Per-tenant series ride the dispatcher's cadence event, one scope per
    // tenant in map (= name) order.  Untenanted streams pass null and emit
    // exactly the historic scope set.
    if (tenants != nullptr) {
      for (const auto& [name, t] : *tenants) {
        obs::PvarSet ts;
        ts.counter("jobs.completed", t.completed);
        ts.counter("jobs.rejected_quota", t.rejected_quota);
        ts.counter("jobs.batched", t.batched);
        ts.level("jobs.ready", static_cast<double>(t.ready));
        ts.level("gangs.running", static_cast<double>(t.running));
        ts.level("jobs.riders", static_cast<double>(t.riders));
        ts.level("ranks.inflight", static_cast<double>(t.inflight_ranks));
        comm_.snapshot_sample("tenant:" + name, ts);
      }
    }
  }

 private:
  vmpi::Comm& comm_;
  bool enabled_ = false;
  obs::SnapshotCadence cadence_;
  std::uint64_t dispatched_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t retried_ = 0;
  std::uint64_t lost_workers_ = 0;
  std::uint64_t cmd_wire_bytes_ = 0;
  std::uint64_t bytes_in_flight_ = 0;  ///< control-plane bytes of running gangs
};

/// Control-plane wire bytes a running gang's dispatch put in flight.
[[nodiscard]] std::size_t gang_wire_bytes(std::size_t members) {
  return (kCmdBaseBytes + 4 * members) * members;
}

/// Runs one job on a fresh sub-communicator over the commanded members and
/// reports completion to the dispatcher.  Every member executes this; only
/// the gang leader (members[0]) writes `out` and messages the dispatcher.
void run_job(vmpi::Comm& world, const Cmd& cmd, const JobSpec& spec,
             const hsi::HsiCube& scene, JobOutput& out) {
  vmpi::Comm sub = world.subset(cmd.members, spec.id);
  if (world.snapshots_enabled()) sub.label_snapshots(job_snapshot_scope(spec));
  const vmpi::RankStats before = sub.stats();

  switch (spec.algorithm) {
    case JobAlgorithm::kAtdca: {
      core::AtdcaConfig config;
      config.targets = spec.targets;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      core::TargetDetectionResult result;
      core::atdca_body(sub, scene, config, result);
      if (sub.is_root()) out.targets = std::move(result.targets);
      break;
    }
    case JobAlgorithm::kUfcls: {
      core::UfclsConfig config;
      config.targets = spec.targets;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      core::TargetDetectionResult result;
      core::ufcls_body(sub, scene, config, result);
      if (sub.is_root()) out.targets = std::move(result.targets);
      break;
    }
    case JobAlgorithm::kPct: {
      core::PctConfig config;
      config.classes = spec.classes;
      config.sad_threshold = spec.sad_threshold;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      core::ClassificationResult result;
      core::pct_body(sub, scene, config, result);
      if (sub.is_root()) {
        out.labels = std::move(result.labels);
        out.label_count = result.label_count;
      }
      break;
    }
    case JobAlgorithm::kMorph: {
      core::MorphConfig config;
      config.classes = spec.classes;
      config.iterations = spec.iterations;
      config.kernel_radius = spec.kernel_radius;
      config.sad_threshold = spec.sad_threshold;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      core::ClassificationResult result;
      core::morph_body(sub, scene, config, result);
      if (sub.is_root()) {
        out.labels = std::move(result.labels);
        out.label_count = result.label_count;
      }
      break;
    }
    case JobAlgorithm::kPpi: {
      core::PpiConfig config;
      config.targets = spec.targets;
      config.skewers = spec.skewers;
      config.seed = spec.seed;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      core::PpiResult result;
      core::ppi_body(sub, scene, config, result);
      if (sub.is_root()) {
        out.targets = std::move(result.targets);
        out.scores = std::move(result.scores);
      }
      break;
    }
  }

  // Align the gang so the recorded finish covers every member, snapshot
  // the job's busy window, then fold the per-member busy time to the
  // leader (the accounting traffic is charged after the finish snapshot,
  // so it never pollutes the job's utilization).
  sub.barrier();
  const vmpi::RankStats after = sub.stats();
  const double busy = after.busy() - before.busy();
  const auto busys = sub.gather(sub.root(), busy, sizeof(double));
  if (sub.is_root()) {
    Done done;
    done.index = cmd.index;
    done.finish_s = after.clock;
    for (double b : busys) done.busy_s += b;
    world.send(world.root(), done, kDoneBytes, kDoneTag);
  }
}

void worker_loop(vmpi::Comm& comm, const std::vector<JobSpec>& stream,
                 const hsi::HsiCube& scene, std::vector<JobOutput>& outputs) {
  while (true) {
    const Cmd cmd = comm.recv<Cmd>(comm.root(), kCmdTag);
    if (cmd.shutdown) break;
    const JobSpec& spec = stream[cmd.index];
    const hsi::HsiCube& job_scene = spec.scene != nullptr ? *spec.scene : scene;
    run_job(comm, cmd, spec, job_scene, outputs[cmd.index]);
  }
}

void dispatcher_loop(vmpi::Comm& comm, const std::vector<JobSpec>& stream,
                     const hsi::HsiCube& scene, const SchedulerConfig& config,
                     std::vector<JobRecord>& records) {
  const simnet::Platform& platform = comm.platform();
  const Policy policy = config.policy;
  std::vector<int> pool;  // the worker ranks, ascending
  for (int r = 0; r < comm.size(); ++r) {
    if (r != comm.root()) pool.push_back(r);
  }

  // Arrival order over admitted jobs: (arrival, id), the event order the
  // dispatcher paces virtual time with.
  std::vector<std::size_t> arrivals;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (!records[i].rejected) arrivals.push_back(i);
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [&stream](std::size_t a, std::size_t b) {
              if (stream[a].arrival_s != stream[b].arrival_s) {
                return stream[a].arrival_s < stream[b].arrival_s;
              }
              return stream[a].id < stream[b].id;
            });

  // Per-tenant live accounting, pre-seeded from the stream so every tenant
  // has a pvar series from the first dispatcher sample on.  Untenanted
  // streams keep the map empty and sample exactly the historic scope set.
  TenantMap tenants;
  for (std::size_t i : arrivals) {
    if (!stream[i].tenant.empty()) tenants[stream[i].tenant];
  }
  const TenantMap* tenant_view = tenants.empty() ? nullptr : &tenants;
  const auto live_of = [&tenants](const JobSpec& spec) -> TenantLive* {
    if (spec.tenant.empty()) return nullptr;
    const auto it = tenants.find(spec.tenant);
    return it == tenants.end() ? nullptr : &it->second;
  };

  std::size_t next_arrival = 0;
  ReadyQueue ready(policy);
  std::vector<RunningJob> running;
  std::set<int> free(pool.begin(), pool.end());
  std::size_t terminal = 0;  // completed + quota-rejected + riders served
  DispatcherPvars pvars(comm);

  while (terminal < arrivals.size()) {
    const double now = comm.now();

    // Admit everything that has arrived by now.
    while (next_arrival < arrivals.size() &&
           stream[arrivals[next_arrival]].arrival_s <= now) {
      const std::size_t idx = arrivals[next_arrival++];
      const JobSpec& spec = stream[idx];
      TenantLive* live = live_of(spec);

      // Tenant quota: the cap on in-flight ranks is enforced at the
      // arrival event, before the job can hold a queue slot.
      if (live != nullptr) {
        const auto cap = config.tenant_rank_caps.find(spec.tenant);
        if (cap != config.tenant_rank_caps.end() && cap->second > 0 &&
            live->inflight_ranks + spec.ranks > cap->second) {
          JobRecord& record = records[idx];
          record.rejected = true;
          record.state = JobState::kRejected;
          record.error = "quota:inflight_ranks tenant '" + spec.tenant +
                         "' cap " + std::to_string(cap->second) +
                         " in flight " +
                         std::to_string(live->inflight_ranks) +
                         " requested " + std::to_string(spec.ranks);
          ++live->rejected_quota;
          ++terminal;
          continue;
        }
        live->inflight_ranks += spec.ranks;
      }

      // Compute-once batching, arrival side: a request arriving while a
      // gang is already computing the identical work attaches to it as a
      // rider instead of queueing.  Among several matching gangs (possible
      // only with batching off earlier in the stream) the lowest job id
      // hosts -- a deterministic rule.
      if (config.batch_shared_keys && spec.batch_key != 0) {
        RunningJob* host = nullptr;
        for (RunningJob& run : running) {
          if (run.batch_key == spec.batch_key &&
              compute_equivalent(stream[run.index], spec) &&
              (host == nullptr || run.id < host->id)) {
            host = &run;
          }
        }
        if (host != nullptr) {
          JobRecord& record = records[idx];
          record.dispatch_s = now;  // joined the in-flight computation
          record.members = records[host->index].members;
          record.est_seconds = records[host->index].est_seconds;
          record.batched_into = host->id;
          host->riders.push_back(idx);
          if (live != nullptr) ++live->riders;
          continue;
        }
      }

      PendingJob pending{spec.id,  idx, spec.arrival_s,
                         records[idx].est_seconds, spec.ranks};
      pending.batch_key = config.batch_shared_keys ? spec.batch_key : 0;
      ready.push(pending);
      if (live != nullptr) ++live->ready;
    }
    pvars.maybe_sample(now, ready.size(), running.size(), free.size(), 0,
                       tenant_view);

    const std::vector<int> free_ranks(free.begin(), free.end());
    if (auto sel = try_select(policy, platform, ready, free_ranks, running,
                              now)) {
      const std::size_t idx = sel->index;
      const JobSpec& spec = stream[idx];
      const hsi::HsiCube& job_scene =
          spec.scene != nullptr ? *spec.scene : scene;
      std::vector<int> members = sel->members;
      if (policy == Policy::kHeteroBestFit) {
        // Second opinion on mixed CPU+accelerator platforms: a tiny job's
        // launch-latency bill can make an all-CPU gang cheaper than the
        // "fastest ranks" pick.  Identity when the pick has no accelerator.
        members = refine_members(platform, free_ranks, std::move(members),
                                 spec, job_scene);
      }
      JobRecord& record = records[idx];
      record.dispatch_s = now;
      record.members = members;
      record.est_seconds =
          estimate_job(platform, members, spec, job_scene).seconds;
      RunningJob run;
      run.id = spec.id;
      run.index = idx;
      run.est_finish_s = now + record.est_seconds;
      run.members = members;
      run.batch_key = config.batch_shared_keys ? spec.batch_key : 0;
      ready.erase(sel->id);
      if (TenantLive* live = live_of(spec)) {
        --live->ready;
        ++live->running;
      }

      // Compute-once batching, dispatch side: every queued
      // compute-equivalent request with the same key skips its own
      // dispatch and takes this gang's result.
      if (run.batch_key != 0) {
        for (std::uint64_t peer : ready.batch_peers(run.batch_key)) {
          const PendingJob* pending = ready.find(peer);
          HPRS_ASSERT(pending != nullptr);
          const std::size_t ridx = pending->index;
          if (!compute_equivalent(stream[ridx], spec)) continue;
          ready.erase(peer);
          JobRecord& rider = records[ridx];
          rider.dispatch_s = now;
          rider.members = members;
          rider.est_seconds = record.est_seconds;
          rider.batched_into = spec.id;
          run.riders.push_back(ridx);
          if (TenantLive* rlive = live_of(stream[ridx])) {
            --rlive->ready;
            ++rlive->riders;
          }
        }
      }
      running.push_back(std::move(run));
      for (int m : members) free.erase(m);
      Cmd cmd;
      cmd.index = static_cast<std::uint32_t>(idx);
      cmd.members = members;
      const std::size_t bytes = cmd_bytes(cmd);
      for (int m : members) {
        comm.send(m, cmd, bytes, kCmdTag);
      }
      pvars.on_dispatch(gang_wire_bytes(members.size()));
      continue;
    }

    // Nothing may start: advance virtual time to the next event.  Arrival
    // times are known exactly; completions are consumed in the cost
    // model's (est_finish, id) order -- a deterministic rule, so the
    // schedule cannot depend on host timing even when an estimate is off.
    const bool have_arrival = next_arrival < arrivals.size();
    const double arrival_t =
        have_arrival ? stream[arrivals[next_arrival]].arrival_s : 0.0;
    if (running.empty()) {
      HPRS_ASSERT(have_arrival);  // else the stream would be drained
      comm.sleep_until(arrival_t);
      continue;
    }
    std::size_t next = 0;
    for (std::size_t i = 1; i < running.size(); ++i) {
      const bool earlier =
          running[i].est_finish_s != running[next].est_finish_s
              ? running[i].est_finish_s < running[next].est_finish_s
              : running[i].id < running[next].id;
      if (earlier) next = i;
    }
    if (have_arrival && arrival_t <= running[next].est_finish_s) {
      comm.sleep_until(arrival_t);
      continue;
    }
    const int leader = running[next].members.front();
    const Done done = comm.recv<Done>(leader, kDoneTag);
    HPRS_ASSERT(done.index == running[next].index);
    JobRecord& record = records[done.index];
    record.finish_s = done.finish_s;
    record.busy_s = done.busy_s;
    record.batch_fanout = running[next].riders.size();
    if (TenantLive* live = live_of(stream[done.index])) {
      --live->running;
      ++live->completed;
      live->inflight_ranks -= stream[done.index].ranks;
    }
    ++terminal;
    // Fan the completion out to the riders: their result is the leader's
    // (run_schedule copies the output after the run); available at the
    // gang's finish, or at the rider's own attach instant if the gang's
    // actual finish predates it (estimate skew).
    for (std::size_t ridx : running[next].riders) {
      JobRecord& rider = records[ridx];
      rider.finish_s = std::max(done.finish_s, rider.dispatch_s);
      if (TenantLive* rlive = live_of(stream[ridx])) {
        --rlive->riders;
        ++rlive->completed;
        ++rlive->batched;
        rlive->inflight_ranks -= stream[ridx].ranks;
      }
      ++terminal;
    }
    for (int m : running[next].members) free.insert(m);
    pvars.on_complete(gang_wire_bytes(running[next].members.size()));
    running.erase(running.begin() + static_cast<std::ptrdiff_t>(next));
  }

  // Drain the pool: one shutdown command per worker.
  Cmd bye;
  bye.shutdown = true;
  for (int m : pool) {
    comm.send(m, bye, kCmdBaseBytes, kCmdTag);
  }
}

// ---------------------------------------------------------------------------
// Resilient mode (SchedulerConfig::resilience.enabled)
// ---------------------------------------------------------------------------

/// Sub-communicator uid of one attempt: retries of a job must build a
/// *fresh* communicator (the previous one may contain dead ranks and
/// half-matched state), so the attempt number is mixed in.
[[nodiscard]] std::uint64_t attempt_uid(std::uint64_t job_id,
                                        std::uint32_t attempt) {
  return job_id + (static_cast<std::uint64_t>(attempt) << 32);
}

void resilient_worker_loop(vmpi::Comm& comm, const std::vector<JobSpec>& stream,
                           const hsi::HsiCube& scene,
                           std::vector<JobOutput>& outputs,
                           const ResilienceConfig& rc, CheckpointStore* store) {
  while (true) {
    const Cmd cmd = comm.recv<Cmd>(comm.root(), kCmdTag);
    if (cmd.shutdown) break;
    const JobSpec& spec = stream[cmd.index];
    const hsi::HsiCube& job_scene = spec.scene != nullptr ? *spec.scene : scene;
    vmpi::Comm sub =
        comm.subset(cmd.members, attempt_uid(spec.id, cmd.attempt));
    if (comm.snapshots_enabled()) {
      sub.label_snapshots(job_snapshot_scope(spec) + "#" +
                          std::to_string(cmd.attempt));
    }
    const vmpi::RankStats before = sub.stats();
    if (sub.is_root()) {
      AttemptOutcome oc = run_resilient_leader(
          sub, spec, job_scene, static_cast<int>(cmd.attempt), rc, store,
          outputs[cmd.index]);
      const vmpi::RankStats after = sub.stats();
      RDone done;
      done.index = cmd.index;
      done.attempt = cmd.attempt;
      done.status = static_cast<std::uint32_t>(oc.status);
      done.finish_s = after.clock;
      done.resumed_seq = oc.resumed_seq;
      done.checkpoints = oc.checkpoints;
      done.checkpoint_s = oc.checkpoint_s;
      done.checkpoint_at_s = std::move(oc.checkpoint_at_s);
      done.error = std::move(oc.error);
      const std::size_t bytes = rdone_bytes(done);
      comm.send(comm.root(), std::move(done), bytes, kDoneTag);
    } else {
      // Released by the leader or detected it dead; either way this rank
      // is free again and says so below.
      (void)run_resilient_worker(sub, spec, job_scene);
    }
    const vmpi::RankStats after = sub.stats();
    WorkerFree free_msg;
    free_msg.index = cmd.index;
    free_msg.attempt = cmd.attempt;
    free_msg.busy_s = after.busy() - before.busy();
    comm.send(comm.root(), free_msg, kFreeBytes, kFreeTag);
  }
}

/// One queued retry: the job may start again at `retry_at_s`.
struct RetryEntry {
  double retry_at_s = 0.0;
  std::size_t index = 0;
  double backoff_s = 0.0;
};

void resilient_dispatcher_loop(vmpi::Comm& comm,
                               const std::vector<JobSpec>& stream,
                               const hsi::HsiCube& scene,
                               const SchedulerConfig& config,
                               std::vector<JobRecord>& records,
                               CheckpointStore& store,
                               std::vector<int>& lost_ranks) {
  const simnet::Platform& platform = comm.platform();
  const ResilienceConfig& rc = config.resilience;
  const Policy policy = config.policy;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<int> pool;  // surviving worker ranks, ascending
  for (int r = 0; r < comm.size(); ++r) {
    if (r != comm.root()) pool.push_back(r);
  }
  std::set<int> free(pool.begin(), pool.end());
  // Online w_i re-estimation: measured-vs-estimated spans of completed
  // attempts nudge a per-rank speed multiplier the placement and estimates
  // consult.  Seeded entirely by virtual-time observations -> deterministic.
  std::vector<double> speed_scale(platform.size(), 1.0);

  std::vector<std::size_t> arrivals;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (!records[i].rejected) arrivals.push_back(i);
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [&stream](std::size_t a, std::size_t b) {
              if (stream[a].arrival_s != stream[b].arrival_s) {
                return stream[a].arrival_s < stream[b].arrival_s;
              }
              return stream[a].id < stream[b].id;
            });

  std::size_t next_arrival = 0;
  ReadyQueue ready(policy);
  std::vector<RunningJob> running;
  std::vector<RetryEntry> retryq;
  std::size_t terminal = 0;
  DispatcherPvars pvars(comm);

  const auto finalize = [&](std::size_t idx, const std::string& why) {
    JobRecord& record = records[idx];
    record.state = store.committed_count(stream[idx].id) > 0
                       ? JobState::kDegraded
                       : JobState::kFailed;
    record.error = why;
    store.erase(stream[idx].id);
    ++terminal;
  };

  // A rank detected dead leaves the pool for good; ready widths re-clamp
  // so queued jobs elastically resize to whatever survives.
  const auto remove_rank = [&](int rank) {
    pool.erase(std::remove(pool.begin(), pool.end(), rank), pool.end());
    free.erase(rank);
    lost_ranks.push_back(rank);
    pvars.on_worker_lost();
    ready.clamp_widths(static_cast<int>(pool.size()));
  };

  while (terminal < arrivals.size()) {
    const double now = comm.now();

    while (next_arrival < arrivals.size() &&
           stream[arrivals[next_arrival]].arrival_s <= now) {
      const std::size_t idx = arrivals[next_arrival++];
      if (pool.empty()) {
        finalize(idx, "no surviving workers to run the job");
        continue;
      }
      const int width =
          std::min(stream[idx].ranks, static_cast<int>(pool.size()));
      ready.push(PendingJob{stream[idx].id, idx, stream[idx].arrival_s,
                            records[idx].est_seconds, width});
    }
    // Due retries re-enter the queue in deterministic (retry_at, id) order.
    std::sort(retryq.begin(), retryq.end(),
              [&stream](const RetryEntry& a, const RetryEntry& b) {
                if (a.retry_at_s != b.retry_at_s) {
                  return a.retry_at_s < b.retry_at_s;
                }
                return stream[a.index].id < stream[b.index].id;
              });
    while (!retryq.empty() && retryq.front().retry_at_s <= now) {
      const RetryEntry entry = retryq.front();
      retryq.erase(retryq.begin());
      if (pool.empty()) {
        finalize(entry.index, "no surviving workers to retry the job");
        continue;
      }
      const int width =
          std::min(stream[entry.index].ranks, static_cast<int>(pool.size()));
      PendingJob retry{stream[entry.index].id, entry.index,
                       stream[entry.index].arrival_s,
                       records[entry.index].est_seconds, width};
      retry.backoff_s = entry.backoff_s;
      ready.push(retry);
    }
    pvars.maybe_sample(now, ready.size(), running.size(), free.size(),
                       retryq.size());

    const std::vector<int> free_ranks(free.begin(), free.end());
    if (auto sel = try_select(policy, platform, ready, free_ranks, running,
                              now, &speed_scale)) {
      const std::size_t idx = sel->index;
      const double sel_backoff_s = ready.find(sel->id)->backoff_s;
      const JobSpec& spec = stream[idx];
      const hsi::HsiCube& job_scene =
          spec.scene != nullptr ? *spec.scene : scene;
      std::vector<int> members = sel->members;
      if (policy == Policy::kHeteroBestFit) {
        members = refine_members(platform, free_ranks, std::move(members),
                                 spec, job_scene);
      }
      JobRecord& record = records[idx];
      record.dispatch_s = now;
      record.members = members;
      record.est_seconds =
          estimate_job(platform, members, spec, job_scene, &speed_scale)
              .seconds;
      JobAttempt attempt;
      attempt.attempt = static_cast<int>(record.attempts.size()) + 1;
      attempt.dispatch_s = now;
      attempt.backoff_s = sel_backoff_s;
      attempt.width = static_cast<int>(members.size());
      attempt.members = members;
      record.attempts.push_back(std::move(attempt));
      RunningJob run;
      run.id = spec.id;
      run.index = idx;
      run.est_finish_s = now + record.est_seconds;
      run.members = members;
      running.push_back(std::move(run));
      for (int m : members) free.erase(m);
      ready.erase(sel->id);
      Cmd cmd;
      cmd.index = static_cast<std::uint32_t>(idx);
      cmd.attempt =
          static_cast<std::uint32_t>(records[idx].attempts.back().attempt);
      cmd.members = members;
      const std::size_t bytes = cmd_bytes(cmd);
      for (int m : members) {
        comm.send(m, cmd, bytes, kCmdTag);
      }
      pvars.on_dispatch(gang_wire_bytes(members.size()));
      continue;
    }

    // Nothing may start: advance to the next arrival, due retry, or
    // completion -- all deterministic virtual-time quantities.
    const double arrival_t = next_arrival < arrivals.size()
                                 ? stream[arrivals[next_arrival]].arrival_s
                                 : kInf;
    double retry_t = kInf;
    for (const RetryEntry& entry : retryq) {
      retry_t = std::min(retry_t, entry.retry_at_s);
    }
    if (running.empty()) {
      const double wake = std::min(arrival_t, retry_t);
      HPRS_ASSERT(wake < kInf);  // else the stream would be drained
      comm.sleep_until(wake);
      continue;
    }
    std::size_t next = 0;
    for (std::size_t i = 1; i < running.size(); ++i) {
      const bool earlier =
          running[i].est_finish_s != running[next].est_finish_s
              ? running[i].est_finish_s < running[next].est_finish_s
              : running[i].id < running[next].id;
      if (earlier) next = i;
    }
    if (std::min(arrival_t, retry_t) <= running[next].est_finish_s) {
      comm.sleep_until(std::min(arrival_t, retry_t));
      continue;
    }

    // Consume the attempt: the leader's report (nullopt = leader crashed),
    // then every member's free notification (nullopt = member crashed and
    // leaves the pool).  All try_recv detection time is charged to the
    // dispatcher in virtual time, so the schedule stays deterministic.
    const RunningJob run = running[next];
    running.erase(running.begin() + static_cast<std::ptrdiff_t>(next));
    pvars.on_complete(gang_wire_bytes(run.members.size()));
    const int leader = run.members.front();
    std::optional<RDone> report = comm.try_recv<RDone>(leader, kDoneTag);
    double busy = 0.0;
    for (int m : run.members) {
      if (m == leader && !report.has_value()) {
        // A dead leader posted nothing (RDone precedes its WorkerFree);
        // skip the redundant probe and drop it from the pool directly.
        remove_rank(m);
        continue;
      }
      std::optional<WorkerFree> free_msg =
          comm.try_recv<WorkerFree>(m, kFreeTag);
      if (free_msg.has_value()) {
        free.insert(m);
        busy += free_msg->busy_s;
      } else {
        remove_rank(m);
      }
    }
    JobRecord& record = records[run.index];
    record.busy_s += busy;
    JobAttempt& attempt = record.attempts.back();
    attempt.end_s = report.has_value() ? report->finish_s : comm.now();
    if (report.has_value()) {
      attempt.resumed_seq = report->resumed_seq;
      attempt.checkpoints = report->checkpoints;
      attempt.checkpoint_s = report->checkpoint_s;
      attempt.checkpoint_at_s = std::move(report->checkpoint_at_s);
    }

    if (report.has_value() && report->status == 0) {
      attempt.outcome = "completed";
      record.finish_s = report->finish_s;
      record.state = JobState::kCompleted;
      store.erase(stream[run.index].id);
      ++terminal;
      // Feed the measured span back into the speed estimates: ratio > 1
      // means the gang beat its estimate (its ranks run faster than the
      // platform w_i claims), < 1 the opposite.  Clamps keep one noisy
      // attempt from swinging placements wildly.
      const double measured = report->finish_s - attempt.dispatch_s;
      if (measured > 0.0) {
        const double ratio =
            std::clamp(record.est_seconds / measured, 0.25, 4.0);
        for (int m : run.members) {
          auto& scale = speed_scale[static_cast<std::size_t>(m)];
          scale = std::clamp(scale * (0.7 + 0.3 * ratio), 0.1, 10.0);
        }
      }
    } else {
      const bool preempted = report.has_value() && report->status == 1;
      const std::string why = !report.has_value()
                                  ? "leader crashed"
                                  : (preempted ? "preempted" : report->error);
      attempt.outcome = why;
      const int attempts_done = static_cast<int>(record.attempts.size());
      if (pool.empty() || attempts_done >= rc.retry.max_attempts) {
        finalize(run.index,
                 pool.empty()
                     ? "no surviving workers to retry the job (" + why + ")"
                     : "retries exhausted after " +
                           std::to_string(attempts_done) + " attempts (" +
                           why + ")");
      } else {
        // Preemption requeues immediately (the deadline already rationed
        // the attempt); crashes and errors wait out a seeded jittered
        // exponential backoff in virtual time.
        double backoff = 0.0;
        if (!preempted) {
          const int next_attempt = attempts_done + 1;
          SplitMix64 rng(rc.retry.backoff_seed ^ stream[run.index].id ^
                         static_cast<std::uint64_t>(next_attempt));
          const double u =
              static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
          backoff = rc.retry.backoff_base_s *
                    std::pow(rc.retry.backoff_factor, next_attempt - 2) *
                    (0.5 + u);
        }
        retryq.push_back(RetryEntry{comm.now() + backoff, run.index, backoff});
        pvars.on_retry();
      }
    }

    // A completion that killed the last workers strands everything still
    // queued; resolve those jobs now instead of spinning.
    if (pool.empty()) {
      HPRS_ASSERT(running.empty());
      for (const auto& [key, job] : ready.ordered()) {
        finalize(job.index, "no surviving workers to run the job");
      }
      ready = ReadyQueue(policy);
      for (const RetryEntry& entry : retryq) {
        finalize(entry.index, "no surviving workers to retry the job");
      }
      retryq.clear();
    }
  }

  // Drain the survivors; crashed ranks get nothing (they can no longer
  // match a message, and an idle rank merely *scheduled* to crash still
  // completes the receive, so every pool member is safe to address).
  Cmd bye;
  bye.shutdown = true;
  for (int m : pool) {
    comm.send(m, bye, kCmdBaseBytes, kCmdTag);
  }
}

}  // namespace

std::size_t ScheduleResult::completed() const {
  std::size_t n = 0;
  for (const JobRecord& r : records) n += r.completed() ? 1 : 0;
  return n;
}

std::size_t ScheduleResult::rejected() const {
  std::size_t n = 0;
  for (const JobRecord& r : records) n += r.rejected ? 1 : 0;
  return n;
}

std::size_t ScheduleResult::degraded() const {
  std::size_t n = 0;
  for (const JobRecord& r : records) {
    n += r.state == JobState::kDegraded ? 1 : 0;
  }
  return n;
}

std::size_t ScheduleResult::failed() const {
  std::size_t n = 0;
  for (const JobRecord& r : records) n += r.state == JobState::kFailed ? 1 : 0;
  return n;
}

ScheduleResult run_schedule(const simnet::Platform& platform,
                            const hsi::HsiCube& scene,
                            const std::vector<JobSpec>& stream,
                            const SchedulerConfig& config,
                            vmpi::Options options) {
  HPRS_REQUIRE(platform.size() >= 2,
               "the scheduler needs a dispatcher rank plus at least one "
               "worker");
  {
    std::set<std::uint64_t> ids;
    for (const JobSpec& spec : stream) {
      HPRS_REQUIRE(ids.insert(spec.id).second,
                   "duplicate job id " + std::to_string(spec.id) +
                       " in the stream");
    }
  }

  const int root = options.root;
  HPRS_REQUIRE(root >= 0 && static_cast<std::size_t>(root) < platform.size(),
               "dispatcher (root) rank out of range");
  if (config.resilience.enabled) {
    // Fail fast at schedule construction: a crash aimed at the dispatcher
    // or a nonexistent rank is a plan bug, not a survivable fault.
    validate_cluster_fault_plan(options, platform.size());
    // Batching fan-out and quota admission are base-dispatcher features;
    // the retry control plane would need per-attempt rider re-attachment
    // to combine with them.  Tenant *labels* pass through either mode.
    HPRS_REQUIRE(!config.batch_shared_keys && config.tenant_rank_caps.empty(),
                 "batch_shared_keys / tenant_rank_caps cannot be combined "
                 "with SchedulerConfig::resilience");
  } else {
    HPRS_REQUIRE(options.fault_plan.crashes.empty(),
                 "the base scheduler cannot survive rank crashes; enable "
                 "SchedulerConfig::resilience for fault plans with crashes");
  }
  std::vector<int> pool;
  for (std::size_t r = 0; r < platform.size(); ++r) {
    if (static_cast<int>(r) != root) pool.push_back(static_cast<int>(r));
  }

  ScheduleResult result;
  result.policy = config.policy;
  result.records.resize(stream.size());
  result.outputs.resize(stream.size());

  // Memory-bound admission plus the canonical (full-pool placement)
  // estimate SJF orders the ready queue by.  Both are host-side and purely
  // arithmetic, so the engine program below is already fixed before it
  // starts -- part of the determinism argument (DESIGN.md section 11).
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const JobSpec& spec = stream[i];
    const hsi::HsiCube& job_scene = spec.scene != nullptr ? *spec.scene : scene;
    JobRecord& record = result.records[i];
    record.id = spec.id;
    record.algorithm = spec.algorithm;
    record.arrival_s = spec.arrival_s;
    record.tenant = spec.tenant;
    try {
      check_admission(platform, pool, spec, job_scene);
      std::vector<int> canonical =
          pick_members(config.policy, platform, pool, spec.ranks);
      if (config.policy == Policy::kHeteroBestFit) {
        canonical = refine_members(platform, pool, std::move(canonical), spec,
                                   job_scene);
      }
      record.est_seconds =
          estimate_job(platform, canonical, spec, job_scene).seconds;
    } catch (const AdmissionError& e) {
      record.rejected = true;
      record.error = e.what();
      record.state = JobState::kRejected;
    }
  }

  CheckpointStore store;
  CheckpointStore* gang_store =
      config.resilience.resume_from_checkpoint ? &store : nullptr;
  vmpi::Engine engine(platform, options);
  result.report = engine.run([&](vmpi::Comm& comm) {
    if (comm.rank() == comm.root()) {
      if (config.resilience.enabled) {
        resilient_dispatcher_loop(comm, stream, scene, config, result.records,
                                  store, result.lost_ranks);
      } else {
        dispatcher_loop(comm, stream, scene, config, result.records);
      }
    } else if (config.resilience.enabled) {
      resilient_worker_loop(comm, stream, scene, result.outputs,
                            config.resilience, gang_store);
    } else {
      worker_loop(comm, stream, scene, result.outputs);
    }
  });
  std::sort(result.lost_ranks.begin(), result.lost_ranks.end());
  for (JobRecord& record : result.records) {
    if (record.state == JobState::kPending) {
      record.state =
          record.completed() ? JobState::kCompleted : JobState::kFailed;
    }
  }

  // Fan batched results out: a rider's output is its leader's, bit for bit
  // (compute_equivalent guarantees the leader's run equals a solo run of
  // the rider's own spec on the same gang).
  if (config.batch_shared_keys) {
    std::map<std::uint64_t, std::size_t> index_of;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      index_of[stream[i].id] = i;
    }
    for (std::size_t i = 0; i < result.records.size(); ++i) {
      const std::uint64_t leader = result.records[i].batched_into;
      if (leader == 0) continue;
      result.outputs[i] = result.outputs[index_of.at(leader)];
    }
  }

  for (const JobRecord& record : result.records) {
    if (!record.completed()) continue;
    result.makespan_s = std::max(result.makespan_s, record.finish_s);
    result.utilization += record.busy_s;
  }
  const double span =
      result.makespan_s * static_cast<double>(pool.size());
  result.utilization = span > 0.0 ? result.utilization / span : 0.0;

  if (config.record_metrics) {
    auto& metrics = obs::Metrics::instance();
    metrics.add("sched.jobs.completed", result.completed());
    metrics.add("sched.jobs.rejected", result.rejected());
    // Batching counters only exist when the feature is on, so plain runs
    // publish exactly the historic metric set.
    if (config.batch_shared_keys) {
      std::size_t riders = 0;
      for (const JobRecord& record : result.records) {
        riders += record.batched_into != 0 ? 1 : 0;
      }
      metrics.add("sched.jobs.batched_riders", riders);
    }
    for (const JobRecord& record : result.records) {
      if (!record.completed()) continue;
      const std::string prefix =
          "sched.job." + std::to_string(record.id) + ".";
      metrics.gauge_max(prefix + "queue_wait_s", record.queue_wait_s());
      metrics.gauge_max(prefix + "makespan_s", record.makespan_s());
      metrics.gauge_max(prefix + "utilization", record.utilization());
    }
    // Resilience counters only exist in resilient mode, so base-mode runs
    // publish exactly the historic metric set.
    if (config.resilience.enabled) {
      std::size_t attempts = 0;
      std::size_t checkpoints = 0;
      std::size_t resumes = 0;
      for (const JobRecord& record : result.records) {
        attempts += record.attempts.size();
        for (const JobAttempt& attempt : record.attempts) {
          checkpoints += static_cast<std::size_t>(attempt.checkpoints);
          resumes += attempt.resumed_seq > 0 ? 1 : 0;
        }
        if (record.attempts.empty()) continue;
        metrics.add("sched.job." + std::to_string(record.id) + ".attempts",
                    record.attempts.size());
      }
      metrics.add("sched.resilience.attempts", attempts);
      metrics.add("sched.resilience.checkpoints", checkpoints);
      metrics.add("sched.resilience.resumed_attempts", resumes);
      metrics.add("sched.resilience.jobs.degraded", result.degraded());
      metrics.add("sched.resilience.jobs.failed", result.failed());
      metrics.add("sched.resilience.ranks.lost", result.lost_ranks.size());
    }
  }
  return result;
}

std::vector<obs::TraceTrackGroup> job_track_groups(
    const ScheduleResult& result) {
  std::vector<obs::TraceTrackGroup> groups;
  for (const JobRecord& record : result.records) {
    if (record.attempts.empty()) {
      // Base scheduler: one group per completed job.
      if (!record.completed()) continue;
      obs::TraceTrackGroup group;
      group.label = "job:" + std::to_string(record.id) + "/" +
                    to_string(record.algorithm);
      group.members = record.members;
      group.begin_s = record.dispatch_s;
      group.end_s = record.finish_s;
      groups.push_back(std::move(group));
      continue;
    }
    // Resilient scheduler: one group per dispatched attempt, with
    // checkpoint commits and resumed restarts as instant marks.
    for (const JobAttempt& attempt : record.attempts) {
      if (attempt.dispatch_s < 0.0) continue;
      obs::TraceTrackGroup group;
      group.label = "job:" + std::to_string(record.id) + "/" +
                    to_string(record.algorithm) + "#" +
                    std::to_string(attempt.attempt);
      group.members = attempt.members;
      group.begin_s = attempt.dispatch_s;
      group.end_s = attempt.end_s >= 0.0 ? attempt.end_s : attempt.dispatch_s;
      if (attempt.attempt > 1) {
        group.instants.push_back(obs::TraceInstant{
            attempt.resumed_seq > 0 ? "restart (resumed)" : "restart (cold)",
            attempt.dispatch_s});
      }
      for (double t : attempt.checkpoint_at_s) {
        group.instants.push_back(obs::TraceInstant{"checkpoint", t});
      }
      groups.push_back(std::move(group));
    }
  }
  return groups;
}

}  // namespace hprs::sched
