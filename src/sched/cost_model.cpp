#include "sched/cost_model.hpp"

#include <algorithm>
#include <string>

#include "core/atdca.hpp"
#include "core/morph.hpp"
#include "core/pct.hpp"
#include "core/ppi.hpp"
#include "core/ufcls.hpp"

namespace hprs::sched {
namespace {

/// Wire bytes of one per-member candidate message in the iterative gathers
/// (a Candidate is ~24 bytes; the constant only scales the communication
/// term of the estimate, so a common round number is fine).
constexpr double kRoundMsgBytes = 24.0;

}  // namespace

core::WorkloadModel job_workload(const JobSpec& spec,
                                 const hsi::HsiCube& scene) {
  core::WorkloadModel model;
  switch (spec.algorithm) {
    case JobAlgorithm::kAtdca:
      model = core::atdca_workload(scene.bands(), spec.targets);
      break;
    case JobAlgorithm::kUfcls:
      model = core::ufcls_workload(scene.bands(), spec.targets);
      break;
    case JobAlgorithm::kPct:
      model = core::pct_workload(scene.bands(), spec.classes);
      break;
    case JobAlgorithm::kMorph: {
      core::MorphConfig config;
      config.classes = spec.classes;
      config.iterations = spec.iterations;
      config.kernel_radius = spec.kernel_radius;
      model = core::morph_workload(scene.bands(), config);
      break;
    }
    case JobAlgorithm::kPpi:
      model = core::ppi_workload(scene.bands(), spec.skewers);
      break;
  }
  model.scatter_input = spec.charge_data_staging;
  return model;
}

JobEstimate estimate_job(const simnet::Platform& platform,
                         const std::vector<int>& members, const JobSpec& spec,
                         const hsi::HsiCube& scene,
                         const std::vector<double>* speed_scale) {
  HPRS_REQUIRE(!members.empty(), "estimate over an empty member list");
  const core::WorkloadModel model = job_workload(spec, scene);
  const double pixels = static_cast<double>(scene.pixel_count()) *
                        static_cast<double>(spec.replication);

  // Observed speed of rank m: the platform speed times the online
  // re-estimation scale (identity without one, keeping historic estimates
  // bit-identical).
  const auto speed_of = [&platform, speed_scale](std::size_t m) {
    const double s = platform.speed(m);
    return speed_scale == nullptr ? s : s * (*speed_scale)[m];
  };

  // Balanced divisible-load compute bound: every member finishes its WEA
  // share of total_flops simultaneously at total * 1e-6 / sum(1/w_i).
  double speed_sum = 0.0;
  bool any_accel = false;
  for (int m : members) {
    speed_sum += speed_of(static_cast<std::size_t>(m));
    any_accel |= platform.accelerated(static_cast<std::size_t>(m));
  }
  const double total_mflops = model.flops_per_pixel * pixels * 1e-6;
  const double image_bytes =
      static_cast<double>(scene.pixel_count()) *
      static_cast<double>(scene.bytes_per_pixel()) *
      static_cast<double>(spec.replication);
  double compute_s;
  // Per-member fraction of the image (used by the scatter-staging term
  // below): speed share classically, staging-aware share with accelerators.
  std::vector<double> share(members.size());
  if (!any_accel) {
    // Accelerator-free gangs keep the historic arithmetic verbatim, so
    // every pre-existing schedule and golden estimate is bit-identical.
    compute_s = total_mflops / speed_sum;
    for (std::size_t i = 0; i < members.size(); ++i) {
      share[i] = speed_of(static_cast<std::size_t>(members[i])) / speed_sum;
    }
  } else {
    // Staging-aware divisible-load bound.  Member i running fraction a_i of
    // the job takes a_i * D_i + R * L_i seconds, where
    //   D_i = total_mflops * w_i + (host<->device copy of its image share)
    //   L_i = per-invocation launch latency (one per synchronized round)
    //   R   = sync_rounds.
    // Equal finish times and sum(a_i) = 1 give the closed form
    //   T = (1 + R * sum(L_i / D_i)) / sum(1 / D_i).
    const double rounds = std::max(1.0, model.sync_rounds);
    double sum_inv_d = 0.0;
    double sum_l_over_d = 0.0;
    std::vector<double> d(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto m = static_cast<std::size_t>(members[i]);
      const auto& p = platform.processor(m);
      const double cycle =
          speed_scale == nullptr ? p.cycle_time
                                 : p.cycle_time / (*speed_scale)[m];
      const double work = total_mflops * cycle;
      const double staging =
          image_bytes * 8e-6 * p.stage_ms_per_mbit * 1e-3;
      // Streamed tiling overlaps a member's host<->device copies with its
      // compute (the engine's per-tile staging pipe), so the dominant term
      // bounds the round instead of their sum.
      d[i] = spec.tile_stream ? std::max(work, staging) : work + staging;
      sum_inv_d += 1.0 / d[i];
      sum_l_over_d += (p.stage_latency_ms * 1e-3) / d[i];
    }
    compute_s = (1.0 + rounds * sum_l_over_d) / sum_inv_d;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto m = static_cast<std::size_t>(members[i]);
      const double a =
          (compute_s -
           rounds * platform.processor(m).stage_latency_ms * 1e-3) /
          d[i];
      share[i] = std::max(0.0, a);
    }
  }

  // Serial leader section (e.g. PCT's eigensolve): every member waits while
  // the gang leader grinds through it at its own speed.
  const auto leader = static_cast<std::size_t>(members.front());
  compute_s += model.seq_flops * 1e-6 / speed_of(leader);

  // Serial root-link communication: each synchronized round gathers one
  // candidate message per non-leader member over the leader's links.
  double round_ms = 0.0;
  for (std::size_t i = 1; i < members.size(); ++i) {
    const auto m = static_cast<std::size_t>(members[i]);
    round_ms += kRoundMsgBytes * 8e-6 * platform.link_ms_per_mbit(leader, m);
  }
  double comm_s = model.sync_rounds * round_ms * 1e-3;

  // One-time block staging when the job charges data distribution: the
  // leader ships each member its WEA share of the image serially.
  if (model.scatter_input && members.size() > 1) {
    double staging_ms = 0.0;
    for (std::size_t i = 1; i < members.size(); ++i) {
      const auto m = static_cast<std::size_t>(members[i]);
      staging_ms += image_bytes * share[i] * 8e-6 *
                    platform.link_ms_per_mbit(leader, m);
    }
    comm_s += staging_ms * 1e-3;
  }

  return JobEstimate{compute_s + comm_s, image_bytes};
}

std::vector<int> refine_members(const simnet::Platform& platform,
                                const std::vector<int>& pool,
                                std::vector<int> picked, const JobSpec& spec,
                                const hsi::HsiCube& scene) {
  if (picked.empty()) return picked;
  const bool picked_accel =
      std::any_of(picked.begin(), picked.end(), [&](int m) {
        return platform.accelerated(static_cast<std::size_t>(m));
      });
  // Identity on accelerator-free picks (hence on accelerator-free
  // platforms): historic schedules are untouched.
  if (!picked_accel) return picked;

  // Candidate alternative: the fastest equally-wide all-CPU gang from the
  // pool, built with the same (cycle-time, rank) order the best-fit policy
  // uses.  For tiny jobs the accelerators' per-round launch latency
  // dominates their compute advantage, and the CPU gang wins the estimate.
  std::vector<int> cpus;
  for (int r : pool) {
    if (!platform.accelerated(static_cast<std::size_t>(r))) cpus.push_back(r);
  }
  if (cpus.size() < picked.size()) return picked;
  std::sort(cpus.begin(), cpus.end(), [&](int a, int b) {
    const double wa = platform.cycle_time(static_cast<std::size_t>(a));
    const double wb = platform.cycle_time(static_cast<std::size_t>(b));
    if (wa != wb) return wa < wb;
    return a < b;
  });
  cpus.resize(picked.size());
  std::sort(cpus.begin(), cpus.end());

  const double with_accel =
      estimate_job(platform, picked, spec, scene).seconds;
  const double cpu_only = estimate_job(platform, cpus, spec, scene).seconds;
  return cpu_only < with_accel ? cpus : picked;
}

void check_admission(const simnet::Platform& platform,
                     const std::vector<int>& workers, const JobSpec& spec,
                     const hsi::HsiCube& scene) {
  const std::string label = "job " + std::to_string(spec.id) + " (" +
                            to_string(spec.algorithm) + ")";
  if (spec.ranks < 1) {
    throw AdmissionError(label + " requests a gang of " +
                         std::to_string(spec.ranks) +
                         " ranks; the width must be at least 1");
  }
  const auto width = static_cast<std::size_t>(spec.ranks);
  if (width > workers.size()) {
    throw AdmissionError(label + " requests " + std::to_string(spec.ranks) +
                         " ranks but the worker pool has only " +
                         std::to_string(workers.size()));
  }
  if (scene.rows() < width) {
    throw AdmissionError(label + " needs at least one image row per rank: " +
                         std::to_string(scene.rows()) + " rows < " +
                         std::to_string(spec.ranks) + " ranks");
  }

  // Best-case memory bound: even the roomiest `width`-wide subset must hold
  // the scene within memory_fraction of each node (wea_partition enforces
  // the same aggregate bound at dispatch time).
  std::vector<double> budgets;
  budgets.reserve(workers.size());
  for (int w : workers) {
    budgets.push_back(
        spec.memory_fraction *
        static_cast<double>(
            platform.processor(static_cast<std::size_t>(w)).memory_mb) *
        1024.0 * 1024.0);
  }
  std::sort(budgets.begin(), budgets.end(), std::greater<>());
  double best = 0.0;
  for (std::size_t i = 0; i < width; ++i) best += budgets[i];
  const double image_bytes = static_cast<double>(scene.pixel_count()) *
                             static_cast<double>(scene.bytes_per_pixel());
  if (image_bytes > best) {
    throw AdmissionError(
        label + " does not fit in memory: the scene needs " +
        std::to_string(image_bytes / (1024.0 * 1024.0)) +
        " MB but the best " + std::to_string(spec.ranks) +
        "-rank subset offers " + std::to_string(best / (1024.0 * 1024.0)) +
        " MB at memory_fraction " + std::to_string(spec.memory_fraction));
  }
}

}  // namespace hprs::sched
