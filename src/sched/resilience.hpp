// Cluster-level resilience: gang checkpoint/restart, elastic resize, and
// per-job retry with deterministic backoff (paper Sect. 6 outlook, scaled
// from one algorithm run to the multi-job cluster of src/sched).
//
// The solo fault-tolerant framework (core/ft.hpp) survives worker crashes
// *inside* one gang whose root is the immortal engine root.  On the
// cluster, a gang leader is an ordinary worker rank and may itself crash;
// the dispatcher then has to recover the *job*, not just a chunk.  This
// layer adds the three mechanisms the scheduler needs for that:
//
//  * ResilientDriver -- a checkpointing decorator over ft::Master.  At
//    every phase boundary it appends the per-chunk results to a replay log
//    and, at seeded virtual-time intervals, snapshots (frozen chunk list +
//    log) into the job's CheckpointStore entry with two-phase begin/commit
//    semantics, so a crash inside the (virtual-time) write window tears
//    the staged snapshot and keeps the previous committed one.  A resumed
//    attempt replays the logged phases for free and recomputes only the
//    tail; because chunks are atomic and folds run in chunk-id order, the
//    resumed outputs equal an uninterrupted run bit for bit on a gang of
//    *any* width (elastic resize via Master's resume constructor).
//
//  * Attempt deadlines -- when an attempt overruns its RetryPolicy
//    deadline at a phase boundary, the driver force-checkpoints and throws
//    PreemptSignal; the leader releases its workers and reports the
//    attempt preempted, and the dispatcher immediately requeues the job
//    (checkpointed progress intact).
//
//  * run_resilient_leader / run_resilient_worker -- the gang-side runtime
//    the scheduler's resilient mode dispatches onto.  All leader<->worker
//    traffic uses try-variants (ft::resilient_worker_loop), so a leader
//    crash is detected, never deadlocked on; surviving workers report
//    themselves free to the dispatcher, which retries the job with seeded
//    exponential backoff until it completes or exhausts its attempts
//    (JobState::kDegraded when checkpoints exist, kFailed otherwise).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/ft.hpp"
#include "core/ppi.hpp"
#include "core/types.hpp"
#include "hsi/cube.hpp"
#include "sched/checkpoint.hpp"
#include "sched/job.hpp"
#include "vmpi/comm.hpp"

namespace hprs::sched {

/// Retry/timeout policy for one job's attempts.
struct RetryPolicy {
  /// Total attempts (first run included) before the job goes terminal.
  int max_attempts = 3;
  /// Backoff before retry k (k >= 2) is
  ///   backoff_base_s * backoff_factor^(k-2) * (0.5 + u),
  /// u drawn from SplitMix64(backoff_seed ^ job id ^ k) -- deterministic
  /// jittered exponential backoff in virtual time.
  double backoff_base_s = 0.05;
  double backoff_factor = 2.0;
  std::uint64_t backoff_seed = 0x5eedf00dULL;
  /// Per-attempt virtual deadline: an attempt overrunning it at a phase
  /// boundary is checkpointed and preempted (requeued without backoff).
  /// <= 0 disables preemption.
  double attempt_deadline_s = 0.0;
};

/// Scheduler-level resilience configuration (SchedulerConfig::resilience).
struct ResilienceConfig {
  /// Off by default: the base scheduler path stays bit-identical.
  bool enabled = false;
  RetryPolicy retry;
  /// Mean virtual seconds between gang checkpoints.  Each interval is
  /// jittered by (0.75 + 0.5u), u from SplitMix64(checkpoint_seed ^ job id
  /// ^ attempt), so gangs do not checkpoint in lockstep.  <= 0 disables
  /// periodic checkpoints (the baseline snapshot is still written).
  double checkpoint_interval_s = 0.25;
  std::uint64_t checkpoint_seed = 0xc0ffee11ULL;
  /// When false, retries restart from scratch (the cold-restart baseline
  /// bench_sched_resilience compares checkpoint resume against).
  bool resume_from_checkpoint = true;
};

/// Thrown by ResilientDriver when an attempt overruns its deadline.
/// Deliberately NOT an hprs::Error: the leader catches it separately from
/// algorithm failures, and nothing else may swallow it accidentally.
struct PreemptSignal {};

/// Checkpointing decorator over ft::Master (the scheduler side of the
/// PhaseDriver seam).  The algorithm master closures run against this
/// unchanged; completed phases replay from the log, live phases delegate
/// to the wrapped Master and may snapshot afterwards.
class ResilientDriver final : public core::ft::PhaseDriver {
 public:
  /// `resumed` is the committed checkpoint this attempt continues from
  /// (null for a fresh start).  When `store` is non-null and there is no
  /// resumed snapshot, a baseline checkpoint (frozen chunks, empty log) is
  /// written immediately so even a first-phase crash restarts warm.
  ResilientDriver(vmpi::Comm& comm, core::ft::Master& master,
                  CheckpointStore* store, std::uint64_t job_id, int attempt,
                  const ResilienceConfig& config, const Checkpoint* resumed);

  [[nodiscard]] std::vector<std::any> phase(
      int phase_id, const core::ft::Handler& handler,
      std::shared_ptr<const std::any> payload = nullptr,
      std::size_t payload_bytes = 0) override;

  void finish() override;

  /// Checkpoints committed by this attempt (baseline included).
  [[nodiscard]] int checkpoints() const { return checkpoints_; }
  /// Phases replayed from the resumed snapshot (0 on a fresh start).
  [[nodiscard]] int resumed_seq() const { return resumed_seq_; }
  /// Virtual seconds this attempt spent writing checkpoints.
  [[nodiscard]] double checkpoint_cost_s() const { return checkpoint_cost_s_; }
  /// Commit times of this attempt's checkpoints (virtual seconds; trace
  /// instants on the job lane).
  [[nodiscard]] const std::vector<double>& checkpoint_at_s() const {
    return checkpoint_at_s_;
  }

 private:
  void write_checkpoint();
  void schedule_next_checkpoint();

  vmpi::Comm* comm_;
  core::ft::Master* master_;
  CheckpointStore* store_;
  std::uint64_t job_id_;
  int attempt_;
  ResilienceConfig config_;
  double attempt_start_s_;
  double next_checkpoint_s_ = 0.0;
  SplitMix64 jitter_;
  /// Per-phase results in issue order (resumed prefix + live appends).
  std::vector<std::vector<std::any>> log_;
  std::size_t next_replay_ = 0;
  int resumed_seq_ = 0;
  int checkpoints_ = 0;
  double checkpoint_cost_s_ = 0.0;
  std::vector<double> checkpoint_at_s_;
};

/// One job packaged for the resilient gang runtime: the ft::Program plus
/// the heap-allocated result structs its closures write into (the Program
/// captures them by reference, so they must live exactly as long as it).
struct ProgramBundle {
  JobAlgorithm algorithm = JobAlgorithm::kAtdca;
  std::shared_ptr<core::TargetDetectionResult> target;
  std::shared_ptr<core::ClassificationResult> classification;
  std::shared_ptr<core::PpiResult> ppi;
  core::ft::Program program;

  /// Moves the algorithm's numeric result into `out` (leader side, after a
  /// completed run).
  void harvest(JobOutput& out);
};

/// Builds the job's ft::Program from its spec, with configs derived
/// exactly as the base scheduler's run_job builds them (MORPH additionally
/// forces overlap_borders, which the master/worker protocol requires).
[[nodiscard]] ProgramBundle make_job_program(const JobSpec& spec,
                                             const hsi::HsiCube& scene);

/// Leader-side report of one gang attempt.
struct AttemptOutcome {
  /// 0 = completed, 1 = preempted (deadline), 2 = failed (hprs::Error).
  int status = 0;
  std::string error;
  int checkpoints = 0;
  int resumed_seq = 0;
  double checkpoint_s = 0.0;
  std::vector<double> checkpoint_at_s;
};

/// Runs one attempt of `spec` as the gang leader (sub root) of `sub`.
/// Loads the committed checkpoint for resumes (attempt > 1, when enabled),
/// freezes a fresh WEA partition otherwise, and drives the job's Program
/// through a ResilientDriver.  Worker crashes are absorbed by the wrapped
/// Master; deadline overruns and algorithm errors are reported in the
/// outcome (the workers are released on every path, so they always return
/// to the dispatcher's pool).  A crash of *this* rank propagates as the
/// engine's crash signal -- never caught here.
[[nodiscard]] AttemptOutcome run_resilient_leader(
    vmpi::Comm& sub, const JobSpec& spec, const hsi::HsiCube& scene,
    int attempt, const ResilienceConfig& config, CheckpointStore* store,
    JobOutput& out);

/// Runs one attempt as a non-leader gang member: serves the leader's
/// commands via ft::resilient_worker_loop.  Returns true when the leader
/// released this rank, false when the leader was detected dead (the caller
/// reports itself free to the dispatcher either way).
[[nodiscard]] bool run_resilient_worker(vmpi::Comm& sub, const JobSpec& spec,
                                        const hsi::HsiCube& scene);

/// Releases a gang whose leader failed before a Master existed (WEA or
/// resume-construction error): try_sends the exit command to every
/// non-root member with Master::finish's exact accounting, so the workers
/// unblock instead of deadlocking on a command that never comes.
void release_gang(vmpi::Comm& sub);

/// Validates a cluster fault plan at schedule construction: every crash
/// must name an in-range rank other than the dispatcher root (the control
/// plane's single point of control).  Throws hprs::Error with the offending
/// plan key (e.g. "fault_plan.crashes[1].rank") in the message.
void validate_cluster_fault_plan(const vmpi::Options& options,
                                 std::size_t platform_size);

}  // namespace hprs::sched
