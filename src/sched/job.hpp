// Job descriptions and completion records for the multi-job scheduler.
//
// A job is one analysis (ATDCA / UFCLS / PCT / MORPH / PPI) over a scene,
// gang-placed onto a subset of the ranks of a shared simulated platform.
// JobSpec is what a client submits; JobRecord is the scheduler's per-job
// accounting (queue wait, placement, virtual makespan, utilization), all
// derived from virtual time so records are bit-identical across runs and
// executor modes; JobOutput carries the algorithm's numeric result, which
// must equal a solo run of the same algorithm on the same rank subset bit
// for bit (tests/sched_scheduler_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/partition.hpp"
#include "core/types.hpp"
#include "hsi/cube.hpp"

namespace hprs::sched {

/// Which analysis a job runs.  Unlike core::Algorithm this includes PPI:
/// the scheduler serves every shipped SPMD schedule.
enum class JobAlgorithm : std::uint8_t {
  kAtdca,
  kUfcls,
  kPct,
  kMorph,
  kPpi,
};

[[nodiscard]] const char* to_string(JobAlgorithm algorithm);
[[nodiscard]] JobAlgorithm parse_job_algorithm(std::string_view name);

/// One submitted analysis job.  Algorithm parameters default to the paper's
/// values (core/runner.hpp); `ranks` is the gang width -- the job runs on
/// exactly that many worker ranks, chosen by the placement policy.
struct JobSpec {
  /// Unique (per stream) job id; ties in every policy ordering break on it.
  std::uint64_t id = 0;
  JobAlgorithm algorithm = JobAlgorithm::kAtdca;
  /// Virtual submission time, seconds.
  double arrival_s = 0.0;
  /// Gang width: number of worker ranks the job is placed on.
  int ranks = 1;

  // -- algorithm parameters (see the per-algorithm config structs) --------
  std::size_t targets = 18;
  std::size_t classes = 7;
  std::size_t iterations = 5;
  std::size_t kernel_radius = 2;
  std::size_t skewers = 128;
  std::uint64_t seed = 1;
  double sad_threshold = 0.06;
  std::size_t replication = 1;
  double memory_fraction = 0.5;
  core::PartitionPolicy policy = core::PartitionPolicy::kHeterogeneous;
  bool charge_data_staging = false;
  /// Streamed per-tile staging (core tile driver): the cost model then
  /// overlaps a member's host->device copy with its compute instead of
  /// summing them.  Default false keeps historic estimates bit-identical.
  bool tile_stream = false;

  /// Scene override; the scheduler's shared scene when null.
  const hsi::HsiCube* scene = nullptr;

  /// Submitting tenant (serve layer); empty for untenanted jobs.  The
  /// dispatcher files per-tenant pvar samples under "tenant:<name>" scopes
  /// and enforces SchedulerConfig::tenant_rank_caps against it.
  std::string tenant;
  /// Shared-work key (serve/batcher.hpp): two specs with the same nonzero
  /// key *and* compute-equivalent parameters (compute_equivalent) may be
  /// served by one gang under SchedulerConfig::batch_shared_keys.  Zero
  /// (the default) never batches.
  std::uint64_t batch_key = 0;
};

/// True when `a` and `b` run the identical computation: same algorithm,
/// same algorithm parameters, same partitioning knobs, and the same scene
/// override.  Gang width and arrival metadata are placement concerns and
/// deliberately excluded -- a batched rider reuses the leader's gang, and
/// its output then equals a solo run of its own spec on that same gang bit
/// for bit.  Guards batching against batch-key hash collisions.
[[nodiscard]] bool compute_equivalent(const JobSpec& a, const JobSpec& b);

/// Terminal disposition of a job.  The base scheduler only produces
/// kCompleted / kRejected; the resilient mode (SchedulerConfig::resilience)
/// adds kDegraded (retries exhausted but checkpointed progress exists) and
/// kFailed (retries exhausted with nothing saved) instead of aborting the
/// whole schedule.
enum class JobState : std::uint8_t {
  kPending,
  kCompleted,
  kRejected,
  kDegraded,
  kFailed,
};

[[nodiscard]] const char* to_string(JobState state);

/// One dispatch attempt of a job under the resilient scheduler (empty for
/// the base scheduler).  All times are virtual seconds.
struct JobAttempt {
  /// 1-based attempt number.
  int attempt = 1;
  double dispatch_s = -1.0;
  /// When the dispatcher retired the attempt (-1 while in flight).
  double end_s = -1.0;
  /// Backoff this attempt waited in the retry queue (0 for the first
  /// attempt and for preemption requeues).
  double backoff_s = 0.0;
  /// Gang width of the attempt (elastic resize may shrink it).
  int width = 0;
  /// Engine ranks of the attempt's gang, ascending; [0] is the leader.
  std::vector<int> members;
  /// Phases replayed from the checkpoint this attempt resumed at.
  int resumed_seq = 0;
  /// Checkpoints the attempt committed.
  int checkpoints = 0;
  /// Virtual seconds the attempt spent writing checkpoints.
  double checkpoint_s = 0.0;
  /// Commit times of those checkpoints (trace instants).
  std::vector<double> checkpoint_at_s;
  /// "completed", "preempted", "leader crashed", or the failure message.
  std::string outcome;
};

/// Numeric result of a completed job (populated by the job's gang leader;
/// empty for rejected jobs).  Target extractors fill `targets` (+ `scores`
/// for PPI); classifiers fill `labels` / `label_count`.
struct JobOutput {
  std::vector<core::PixelLocation> targets;
  std::vector<std::uint32_t> scores;
  std::vector<std::uint16_t> labels;
  std::size_t label_count = 0;
};

/// Per-job completion record.  All times are virtual seconds.
struct JobRecord {
  std::uint64_t id = 0;
  JobAlgorithm algorithm = JobAlgorithm::kAtdca;
  double arrival_s = 0.0;
  /// When the dispatcher issued the gang's command messages (-1 until
  /// dispatched; stays -1 for rejected jobs).
  double dispatch_s = -1.0;
  /// The gang's aligned completion time (-1 until completed).
  double finish_s = -1.0;
  /// Cost-model estimate on the assigned members (or on the canonical
  /// full-pool members until dispatch) -- the ordering key of SJF and the
  /// backfill reservation horizon.
  double est_seconds = 0.0;
  /// Engine (world) ranks of the gang, ascending; members[0] is the leader.
  std::vector<int> members;
  /// Summed busy time (compute + active transfer) of the members between
  /// job start and the completion barrier.
  double busy_s = 0.0;
  /// Memory-bound admission verdict: rejected jobs never dispatch and
  /// carry the sched::AdmissionError message in `error`.
  bool rejected = false;
  std::string error;
  /// Terminal disposition (kPending only while the schedule is running).
  JobState state = JobState::kPending;
  /// Submitting tenant, copied from the spec ("" for untenanted jobs).
  std::string tenant;
  /// Nonzero for a batched rider: the id of the leader job whose gang
  /// computed this request's result (serve/batcher.hpp).  The rider's
  /// output is the leader's, copied after the run; its busy_s is 0 (it
  /// held no ranks).
  std::uint64_t batched_into = 0;
  /// On a batch leader: how many riders its gang's single computation
  /// served in addition to itself.
  std::size_t batch_fanout = 0;
  /// Attempt history under the resilient scheduler; empty in base mode.
  /// `dispatch_s` / `members` above describe the attempt that completed
  /// the job (the last one).
  std::vector<JobAttempt> attempts;

  [[nodiscard]] bool completed() const { return finish_s >= 0.0; }
  [[nodiscard]] double queue_wait_s() const {
    return dispatch_s >= 0.0 ? dispatch_s - arrival_s : 0.0;
  }
  [[nodiscard]] double makespan_s() const {
    return completed() ? finish_s - dispatch_s : 0.0;
  }
  /// Mean busy fraction of the gang over the job's makespan.
  [[nodiscard]] double utilization() const {
    const double span = makespan_s() * static_cast<double>(members.size());
    return span > 0.0 ? busy_s / span : 0.0;
  }
};

}  // namespace hprs::sched
