#include "sched/policy.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "sched/job.hpp"

namespace hprs::sched {

const char* to_string(JobAlgorithm algorithm) {
  switch (algorithm) {
    case JobAlgorithm::kAtdca: return "ATDCA";
    case JobAlgorithm::kUfcls: return "UFCLS";
    case JobAlgorithm::kPct: return "PCT";
    case JobAlgorithm::kMorph: return "MORPH";
    case JobAlgorithm::kPpi: return "PPI";
  }
  return "?";
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kPending: return "pending";
    case JobState::kCompleted: return "completed";
    case JobState::kRejected: return "rejected";
    case JobState::kDegraded: return "degraded";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kFifo: return "fifo";
    case Policy::kSjf: return "sjf";
    case Policy::kHeteroBestFit: return "hetero";
  }
  return "?";
}

Policy parse_policy(std::string_view name) {
  if (name == "fifo") return Policy::kFifo;
  if (name == "sjf") return Policy::kSjf;
  if (name == "hetero") return Policy::kHeteroBestFit;
  throw Error("unknown scheduling policy '" + std::string(name) +
              "' (expected fifo, sjf, or hetero)");
}

std::vector<std::size_t> policy_order(Policy policy,
                                      const std::vector<PendingJob>& ready) {
  std::vector<std::size_t> order(ready.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto by_arrival = [&ready](std::size_t a, std::size_t b) {
    if (ready[a].arrival_s != ready[b].arrival_s) {
      return ready[a].arrival_s < ready[b].arrival_s;
    }
    return ready[a].id < ready[b].id;
  };
  const auto by_estimate = [&ready](std::size_t a, std::size_t b) {
    if (ready[a].est_seconds != ready[b].est_seconds) {
      return ready[a].est_seconds < ready[b].est_seconds;
    }
    return ready[a].id < ready[b].id;
  };
  switch (policy) {
    case Policy::kFifo:
    case Policy::kHeteroBestFit:
      std::sort(order.begin(), order.end(), by_arrival);
      break;
    case Policy::kSjf:
      std::sort(order.begin(), order.end(), by_estimate);
      break;
  }
  return order;
}

std::vector<int> pick_members(Policy policy, const simnet::Platform& platform,
                              const std::vector<int>& free_ranks, int width,
                              const std::vector<double>* speed_scale) {
  HPRS_REQUIRE(width >= 1 &&
                   static_cast<std::size_t>(width) <= free_ranks.size(),
               "pick_members: gang width " + std::to_string(width) +
                   " does not fit " + std::to_string(free_ranks.size()) +
                   " free ranks");
  std::vector<int> members(free_ranks);
  if (policy == Policy::kHeteroBestFit) {
    // Effective cycle time w_i / scale_i: a rank measured faster than its
    // platform w_i (scale > 1) sorts earlier.
    const auto effective = [&platform, speed_scale](int r) {
      const double w = platform.cycle_time(static_cast<std::size_t>(r));
      if (speed_scale == nullptr) return w;
      return w / (*speed_scale)[static_cast<std::size_t>(r)];
    };
    std::sort(members.begin(), members.end(),
              [&effective](int a, int b) {
                const double wa = effective(a);
                const double wb = effective(b);
                if (wa != wb) return wa < wb;
                return a < b;
              });
  }
  members.resize(static_cast<std::size_t>(width));
  // Comm::subset wants strictly increasing ranks; members[0] is the leader.
  std::sort(members.begin(), members.end());
  return members;
}

double reservation_time(const std::vector<RunningJob>& running,
                        std::size_t free_now, int width, double now) {
  if (free_now >= static_cast<std::size_t>(width)) return now;
  // Consume completions in (est_finish, id) order -- the same order the
  // dispatcher awaits them in -- until enough ranks are free.
  std::vector<std::size_t> order(running.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&running](std::size_t a,
                                                   std::size_t b) {
    if (running[a].est_finish_s != running[b].est_finish_s) {
      return running[a].est_finish_s < running[b].est_finish_s;
    }
    return running[a].id < running[b].id;
  });
  std::size_t free = free_now;
  for (std::size_t i : order) {
    free += running[i].members.size();
    if (free >= static_cast<std::size_t>(width)) {
      return std::max(now, running[i].est_finish_s);
    }
  }
  // Unsatisfiable even with everything drained: admission rejects such
  // jobs, so a ready job can always eventually run.
  HPRS_ASSERT(false);
  return now;
}

std::optional<Selection> try_select(Policy policy,
                                    const simnet::Platform& platform,
                                    const std::vector<PendingJob>& ready,
                                    const std::vector<int>& free_ranks,
                                    const std::vector<RunningJob>& running,
                                    double now,
                                    const std::vector<double>* speed_scale) {
  if (ready.empty()) return std::nullopt;
  const std::vector<std::size_t> order = policy_order(policy, ready);
  const PendingJob& head = ready[order.front()];
  const bool head_fits =
      static_cast<std::size_t>(head.width) <= free_ranks.size();
  if (head_fits) {
    return Selection{order.front(),
                     pick_members(policy, platform, free_ranks, head.width,
                                  speed_scale)};
  }
  if (policy != Policy::kHeteroBestFit) return std::nullopt;

  // Conservative backfill: the head holds a reservation at the estimated
  // time enough ranks drain; a later job may start now only if it fits the
  // free ranks and its estimated finish does not cross the reservation, so
  // the head starts no later than it would have without backfill.
  const double horizon =
      reservation_time(running, free_ranks.size(), head.width, now);
  for (std::size_t k = 1; k < order.size(); ++k) {
    const PendingJob& job = ready[order[k]];
    if (static_cast<std::size_t>(job.width) > free_ranks.size()) continue;
    std::vector<int> members =
        pick_members(policy, platform, free_ranks, job.width, speed_scale);
    if (now + job.est_seconds <= horizon) {
      return Selection{order[k], std::move(members)};
    }
  }
  return std::nullopt;
}

}  // namespace hprs::sched
