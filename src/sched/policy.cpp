#include "sched/policy.hpp"

#include <algorithm>
#include <iterator>
#include <string>

#include "common/error.hpp"
#include "sched/job.hpp"

namespace hprs::sched {

const char* to_string(JobAlgorithm algorithm) {
  switch (algorithm) {
    case JobAlgorithm::kAtdca: return "ATDCA";
    case JobAlgorithm::kUfcls: return "UFCLS";
    case JobAlgorithm::kPct: return "PCT";
    case JobAlgorithm::kMorph: return "MORPH";
    case JobAlgorithm::kPpi: return "PPI";
  }
  return "?";
}

JobAlgorithm parse_job_algorithm(std::string_view name) {
  if (name == "ATDCA") return JobAlgorithm::kAtdca;
  if (name == "UFCLS") return JobAlgorithm::kUfcls;
  if (name == "PCT") return JobAlgorithm::kPct;
  if (name == "MORPH") return JobAlgorithm::kMorph;
  if (name == "PPI") return JobAlgorithm::kPpi;
  throw Error("unknown job algorithm '" + std::string(name) +
              "' (expected ATDCA, UFCLS, PCT, MORPH, or PPI)");
}

bool compute_equivalent(const JobSpec& a, const JobSpec& b) {
  return a.algorithm == b.algorithm && a.targets == b.targets &&
         a.classes == b.classes && a.iterations == b.iterations &&
         a.kernel_radius == b.kernel_radius && a.skewers == b.skewers &&
         a.seed == b.seed && a.sad_threshold == b.sad_threshold &&
         a.replication == b.replication &&
         a.memory_fraction == b.memory_fraction && a.policy == b.policy &&
         a.charge_data_staging == b.charge_data_staging &&
         a.tile_stream == b.tile_stream && a.scene == b.scene;
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kPending: return "pending";
    case JobState::kCompleted: return "completed";
    case JobState::kRejected: return "rejected";
    case JobState::kDegraded: return "degraded";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kFifo: return "fifo";
    case Policy::kSjf: return "sjf";
    case Policy::kHeteroBestFit: return "hetero";
  }
  return "?";
}

Policy parse_policy(std::string_view name) {
  if (name == "fifo") return Policy::kFifo;
  if (name == "sjf") return Policy::kSjf;
  if (name == "hetero") return Policy::kHeteroBestFit;
  throw Error("unknown scheduling policy '" + std::string(name) +
              "' (expected fifo, sjf, or hetero)");
}

std::vector<std::size_t> policy_order(Policy policy,
                                      const std::vector<PendingJob>& ready) {
  std::vector<std::size_t> order(ready.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto by_arrival = [&ready](std::size_t a, std::size_t b) {
    if (ready[a].arrival_s != ready[b].arrival_s) {
      return ready[a].arrival_s < ready[b].arrival_s;
    }
    return ready[a].id < ready[b].id;
  };
  const auto by_estimate = [&ready](std::size_t a, std::size_t b) {
    if (ready[a].est_seconds != ready[b].est_seconds) {
      return ready[a].est_seconds < ready[b].est_seconds;
    }
    return ready[a].id < ready[b].id;
  };
  switch (policy) {
    case Policy::kFifo:
    case Policy::kHeteroBestFit:
      std::sort(order.begin(), order.end(), by_arrival);
      break;
    case Policy::kSjf:
      std::sort(order.begin(), order.end(), by_estimate);
      break;
  }
  return order;
}

std::vector<int> pick_members(Policy policy, const simnet::Platform& platform,
                              const std::vector<int>& free_ranks, int width,
                              const std::vector<double>* speed_scale) {
  HPRS_REQUIRE(width >= 1 &&
                   static_cast<std::size_t>(width) <= free_ranks.size(),
               "pick_members: gang width " + std::to_string(width) +
                   " does not fit " + std::to_string(free_ranks.size()) +
                   " free ranks");
  std::vector<int> members(free_ranks);
  if (policy == Policy::kHeteroBestFit) {
    // Effective cycle time w_i / scale_i: a rank measured faster than its
    // platform w_i (scale > 1) sorts earlier.
    const auto effective = [&platform, speed_scale](int r) {
      const double w = platform.cycle_time(static_cast<std::size_t>(r));
      if (speed_scale == nullptr) return w;
      return w / (*speed_scale)[static_cast<std::size_t>(r)];
    };
    std::sort(members.begin(), members.end(),
              [&effective](int a, int b) {
                const double wa = effective(a);
                const double wb = effective(b);
                if (wa != wb) return wa < wb;
                return a < b;
              });
  }
  members.resize(static_cast<std::size_t>(width));
  // Comm::subset wants strictly increasing ranks; members[0] is the leader.
  std::sort(members.begin(), members.end());
  return members;
}

ReadyQueue::OrderKey ReadyQueue::key_of(const PendingJob& job) const {
  // The same primary keys policy_order sorts by; ids are unique, so the
  // total order (and hence every schedule) matches the vector-based sort.
  const double primary =
      policy_ == Policy::kSjf ? job.est_seconds : job.arrival_s;
  return OrderKey{primary, job.id};
}

void ReadyQueue::push(const PendingJob& job) {
  const OrderKey key = key_of(job);
  HPRS_REQUIRE(by_id_.emplace(job.id, key).second,
               "ReadyQueue: job id " + std::to_string(job.id) +
                   " is already queued");
  jobs_.emplace(key, job);
  if (job.batch_key != 0) by_batch_key_.emplace(job.batch_key, job.id);
}

void ReadyQueue::erase(std::uint64_t id) {
  const auto it = by_id_.find(id);
  HPRS_REQUIRE(it != by_id_.end(),
               "ReadyQueue: erasing unknown job id " + std::to_string(id));
  const auto jt = jobs_.find(it->second);
  HPRS_ASSERT(jt != jobs_.end());
  if (jt->second.batch_key != 0) {
    auto [lo, hi] = by_batch_key_.equal_range(jt->second.batch_key);
    for (auto bt = lo; bt != hi; ++bt) {
      if (bt->second == id) {
        by_batch_key_.erase(bt);
        break;
      }
    }
  }
  jobs_.erase(jt);
  by_id_.erase(it);
}

const PendingJob* ReadyQueue::find(std::uint64_t id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return nullptr;
  const auto jt = jobs_.find(it->second);
  return jt == jobs_.end() ? nullptr : &jt->second;
}

std::vector<std::uint64_t> ReadyQueue::batch_peers(std::uint64_t key) const {
  std::vector<std::uint64_t> ids;
  if (key == 0) return ids;
  auto [lo, hi] = by_batch_key_.equal_range(key);
  for (auto it = lo; it != hi; ++it) ids.push_back(it->second);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ReadyQueue::clamp_widths(int max_width) {
  for (auto& [key, job] : jobs_) {
    job.width = std::max(1, std::min(job.width, max_width));
  }
}

double reservation_time(const std::vector<RunningJob>& running,
                        std::size_t free_now, int width, double now) {
  if (free_now >= static_cast<std::size_t>(width)) return now;
  // Consume completions in (est_finish, id) order -- the same order the
  // dispatcher awaits them in -- until enough ranks are free.
  std::vector<std::size_t> order(running.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&running](std::size_t a,
                                                   std::size_t b) {
    if (running[a].est_finish_s != running[b].est_finish_s) {
      return running[a].est_finish_s < running[b].est_finish_s;
    }
    return running[a].id < running[b].id;
  });
  std::size_t free = free_now;
  for (std::size_t i : order) {
    free += running[i].members.size();
    if (free >= static_cast<std::size_t>(width)) {
      return std::max(now, running[i].est_finish_s);
    }
  }
  // Unsatisfiable even with everything drained: admission rejects such
  // jobs, so a ready job can always eventually run.
  HPRS_ASSERT(false);
  return now;
}

std::optional<QueueSelection> try_select(
    Policy policy, const simnet::Platform& platform, const ReadyQueue& ready,
    const std::vector<int>& free_ranks, const std::vector<RunningJob>& running,
    double now, const std::vector<double>* speed_scale) {
  if (ready.empty()) return std::nullopt;
  const auto& ordered = ready.ordered();
  const PendingJob& head = ordered.begin()->second;
  const bool head_fits =
      static_cast<std::size_t>(head.width) <= free_ranks.size();
  if (head_fits) {
    return QueueSelection{head.id, head.index,
                          pick_members(policy, platform, free_ranks,
                                       head.width, speed_scale)};
  }
  if (policy != Policy::kHeteroBestFit) return std::nullopt;

  // Conservative backfill: the head holds a reservation at the estimated
  // time enough ranks drain; a later job may start now only if it fits the
  // free ranks and its estimated finish does not cross the reservation, so
  // the head starts no later than it would have without backfill.
  const double horizon =
      reservation_time(running, free_ranks.size(), head.width, now);
  for (auto it = std::next(ordered.begin()); it != ordered.end(); ++it) {
    const PendingJob& job = it->second;
    if (static_cast<std::size_t>(job.width) > free_ranks.size()) continue;
    if (now + job.est_seconds <= horizon) {
      return QueueSelection{job.id, job.index,
                            pick_members(policy, platform, free_ranks,
                                         job.width, speed_scale)};
    }
  }
  return std::nullopt;
}

std::optional<Selection> try_select(Policy policy,
                                    const simnet::Platform& platform,
                                    const std::vector<PendingJob>& ready,
                                    const std::vector<int>& free_ranks,
                                    const std::vector<RunningJob>& running,
                                    double now,
                                    const std::vector<double>* speed_scale) {
  ReadyQueue queue(policy);
  for (const PendingJob& job : ready) queue.push(job);
  auto sel = try_select(policy, platform, queue, free_ranks, running, now,
                        speed_scale);
  if (!sel.has_value()) return std::nullopt;
  for (std::size_t pos = 0; pos < ready.size(); ++pos) {
    if (ready[pos].id == sel->id) {
      return Selection{pos, std::move(sel->members)};
    }
  }
  HPRS_ASSERT(false);  // the queue only holds entries of `ready`
  return std::nullopt;
}

}  // namespace hprs::sched
