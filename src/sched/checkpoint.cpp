#include "sched/checkpoint.hpp"

#include <utility>

namespace hprs::sched {

void CheckpointStore::begin(Checkpoint snapshot) {
  const std::lock_guard<std::mutex> lock(mu_);
  staged_[snapshot.job_id] = std::move(snapshot);
}

void CheckpointStore::commit(std::uint64_t job_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = staged_.find(job_id);
  if (it == staged_.end()) return;
  committed_[job_id] = std::move(it->second);
  staged_.erase(it);
  ++commits_[job_id];
}

std::optional<Checkpoint> CheckpointStore::load(std::uint64_t job_id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = committed_.find(job_id);
  if (it == committed_.end()) return std::nullopt;
  return it->second;
}

void CheckpointStore::erase(std::uint64_t job_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  staged_.erase(job_id);
  committed_.erase(job_id);
}

std::size_t CheckpointStore::committed_count(std::uint64_t job_id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = commits_.find(job_id);
  return it == commits_.end() ? 0 : it->second;
}

}  // namespace hprs::sched
