// Pluggable placement policies for the multi-job scheduler.
//
// The policy layer is pure functions over small value types so the
// decision logic is unit-testable without an engine
// (tests/sched_policy_test.cpp): given the ready queue, the free ranks,
// and the running set, a policy deterministically picks the next job to
// dispatch and the exact rank subset to place it on.  Every ordering
// breaks ties on the job id, so equal keys cannot produce run-to-run
// differences.
//
//  * kFifo           -- strict arrival order, first free ranks (lowest
//                       ids); the head of the line blocks the queue.
//  * kSjf            -- shortest estimated makespan first (job-id
//                       tie-break), first free ranks; no backfill.
//  * kHeteroBestFit  -- arrival order with heterogeneity-aware placement
//                       (the fastest free ranks by w_i) and conservative
//                       backfill: when the head does not fit, a later job
//                       may jump ahead only if its estimated finish does
//                       not exceed the head's reservation time, so the
//                       head is never delayed and no job starves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "simnet/platform.hpp"

namespace hprs::sched {

enum class Policy : std::uint8_t {
  kFifo,
  kSjf,
  kHeteroBestFit,
};

[[nodiscard]] const char* to_string(Policy policy);
[[nodiscard]] Policy parse_policy(std::string_view name);

/// Policy view of a job waiting in the ready queue.
struct PendingJob {
  std::uint64_t id = 0;
  /// Caller-side handle (stream index); opaque to the policy.
  std::size_t index = 0;
  double arrival_s = 0.0;
  double est_seconds = 0.0;
  int width = 1;
  /// Shared-work key (JobSpec::batch_key); 0 = unbatchable.  Opaque to the
  /// policy order; ReadyQueue indexes it for the dispatcher's rider attach.
  std::uint64_t batch_key = 0;
  /// Backoff this entry waited in the retry queue before re-joining
  /// (resilient dispatcher bookkeeping; 0 for first arrivals).
  double backoff_s = 0.0;
};

/// Policy view of a dispatched, not-yet-completed job.
struct RunningJob {
  std::uint64_t id = 0;
  std::size_t index = 0;
  /// dispatch_s + the cost-model estimate on the assigned members: the
  /// deterministic completion horizon policies reason against.
  double est_finish_s = 0.0;
  std::vector<int> members;
  /// Shared-work key of the gang's job (0 = unbatchable).
  std::uint64_t batch_key = 0;
  /// Stream indices of batched riders attached to this gang: requests
  /// whose compute-equivalent result this gang's single run will serve.
  std::vector<std::size_t> riders;
};

/// Indexed ready queue: the dispatcher's pending set, kept permanently in
/// the policy's dispatch-preference order (FIFO/hetero by (arrival, id),
/// SJF by (estimate, id)) with O(log n) insert/erase, plus a batch-key
/// index for the rider attach.  Replaces the O(n log n)-per-event re-sort
/// of a flat vector, which turned 1000+-job streams quadratic; the total
/// order is identical (ids are unique), so schedules are bit-identical to
/// the vector-based dispatcher.
class ReadyQueue {
 public:
  /// Sort key inside the ordered map: the policy's primary key with the
  /// job-id tie-break every policy ordering uses.
  struct OrderKey {
    double primary = 0.0;
    std::uint64_t id = 0;
    [[nodiscard]] bool operator<(const OrderKey& o) const {
      if (primary != o.primary) return primary < o.primary;
      return id < o.id;
    }
  };

  explicit ReadyQueue(Policy policy) : policy_(policy) {}

  /// Inserts `job` (its id must not already be queued).
  void push(const PendingJob& job);
  /// Removes the entry with `id` (must be queued).
  void erase(std::uint64_t id);
  [[nodiscard]] const PendingJob* find(std::uint64_t id) const;
  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

  /// The queue in dispatch-preference order.
  [[nodiscard]] const std::map<OrderKey, PendingJob>& ordered() const {
    return jobs_;
  }
  /// Ids of queued jobs sharing this nonzero batch key, ascending.
  [[nodiscard]] std::vector<std::uint64_t> batch_peers(
      std::uint64_t key) const;
  /// Clamps every queued width into [1, max_width] (elastic resize after
  /// rank loss).  Widths are not part of the sort key, so order holds.
  void clamp_widths(int max_width);

 private:
  [[nodiscard]] OrderKey key_of(const PendingJob& job) const;

  Policy policy_;
  std::map<OrderKey, PendingJob> jobs_;
  std::unordered_map<std::uint64_t, OrderKey> by_id_;
  std::multimap<std::uint64_t, std::uint64_t> by_batch_key_;
};

/// Positions of `ready` in the policy's dispatch-preference order (FIFO and
/// the hetero policy order by (arrival, id); SJF by (estimate, id)).
[[nodiscard]] std::vector<std::size_t> policy_order(
    Policy policy, const std::vector<PendingJob>& ready);

/// The rank subset the policy assigns to a gang of `width` from
/// `free_ranks` (engine ranks, ascending).  kHeteroBestFit takes the
/// fastest ranks (smallest w_i, id tie-break); the others the lowest ids.
/// The result is ascending -- the subset order Comm::subset requires.
/// `speed_scale`, when non-null, is a per-engine-rank multiplier on the
/// platform speed (the resilient scheduler's online w_i re-estimation);
/// the default null keeps historic decisions bit-identical.
[[nodiscard]] std::vector<int> pick_members(
    Policy policy, const simnet::Platform& platform,
    const std::vector<int>& free_ranks, int width,
    const std::vector<double>* speed_scale = nullptr);

/// Earliest estimated time at least `width` ranks are simultaneously free,
/// given `free_now` currently free and the running jobs' est_finish times.
/// Returns `now` when already satisfiable.
[[nodiscard]] double reservation_time(const std::vector<RunningJob>& running,
                                      std::size_t free_now, int width,
                                      double now);

struct Selection {
  /// Position in the `ready` vector handed to try_select.
  std::size_t ready_pos = 0;
  std::vector<int> members;
};

/// try_select result over a ReadyQueue: the selected job's id and stream
/// index instead of a vector position.
struct QueueSelection {
  std::uint64_t id = 0;
  std::size_t index = 0;
  std::vector<int> members;
};

/// The policy's dispatch decision at virtual time `now`: the next job to
/// start and its placement, or nullopt when nothing may start (the
/// dispatcher then waits for the next arrival or completion).
[[nodiscard]] std::optional<QueueSelection> try_select(
    Policy policy, const simnet::Platform& platform, const ReadyQueue& ready,
    const std::vector<int>& free_ranks,
    const std::vector<RunningJob>& running, double now,
    const std::vector<double>* speed_scale = nullptr);

/// Vector-based convenience overload (unit tests, callers without a
/// persistent queue): same decision, reported as a position in `ready`.
[[nodiscard]] std::optional<Selection> try_select(
    Policy policy, const simnet::Platform& platform,
    const std::vector<PendingJob>& ready, const std::vector<int>& free_ranks,
    const std::vector<RunningJob>& running, double now,
    const std::vector<double>* speed_scale = nullptr);

}  // namespace hprs::sched
