#include "sched/resilience.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "core/ft_programs.hpp"
#include "core/partition.hpp"

namespace hprs::sched {
namespace {

/// Virtual flop charge per half of a checkpoint write (the window between
/// the two halves is where a crash tears the staged snapshot).  The state-
/// dependent term grows with the snapshot: serializing more logged phases
/// over more chunks costs more.
constexpr std::uint64_t kCheckpointHalfFlops = 1'000'000;

[[nodiscard]] double u01(SplitMix64& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

}  // namespace

ResilientDriver::ResilientDriver(vmpi::Comm& comm, core::ft::Master& master,
                                 CheckpointStore* store, std::uint64_t job_id,
                                 int attempt, const ResilienceConfig& config,
                                 const Checkpoint* resumed)
    : comm_(&comm),
      master_(&master),
      store_(store),
      job_id_(job_id),
      attempt_(attempt),
      config_(config),
      attempt_start_s_(comm.now()),
      jitter_(config.checkpoint_seed ^ job_id ^
              static_cast<std::uint64_t>(attempt)) {
  if (resumed != nullptr) {
    log_ = resumed->phase_log;
    resumed_seq_ = resumed->seq;
  }
  schedule_next_checkpoint();
  // Baseline snapshot on a fresh start: even a crash inside the first
  // phase restarts with the frozen chunk list instead of a new WEA.
  if (store_ != nullptr && resumed == nullptr) write_checkpoint();
}

void ResilientDriver::schedule_next_checkpoint() {
  if (config_.checkpoint_interval_s <= 0.0) {
    next_checkpoint_s_ = -1.0;
    return;
  }
  next_checkpoint_s_ =
      comm_->now() + config_.checkpoint_interval_s * (0.75 + 0.5 * u01(jitter_));
}

void ResilientDriver::write_checkpoint() {
  const double t0 = comm_->now();
  Checkpoint snap;
  snap.job_id = job_id_;
  snap.attempt = attempt_;
  snap.seq = static_cast<int>(log_.size());
  snap.saved_at_s = t0;
  snap.chunks = master_->chunks();
  snap.phase_log = log_;
  const std::uint64_t half =
      kCheckpointHalfFlops +
      64ULL * snap.chunks.size() * static_cast<std::uint64_t>(log_.size());
  store_->begin(std::move(snap));
  // Two sequential charges model the write: a crash whose virtual time
  // lands after the first half kills the leader at the entry of the second
  // (fail-stop fires at engine-op entry), so the staged snapshot never
  // commits and load() keeps serving the previous one -- atomic-rename
  // semantics with the torn window decided purely by virtual time.
  comm_->compute(half, vmpi::Phase::kSequential);
  comm_->compute(half, vmpi::Phase::kSequential);
  store_->commit(job_id_);
  ++checkpoints_;
  checkpoint_at_s_.push_back(comm_->now());
  checkpoint_cost_s_ += comm_->now() - t0;
  schedule_next_checkpoint();
}

std::vector<std::any> ResilientDriver::phase(
    int phase_id, const core::ft::Handler& handler,
    std::shared_ptr<const std::any> payload, std::size_t payload_bytes) {
  if (next_replay_ < log_.size()) {
    // Replaying a phase the checkpoint already holds: no commands, no
    // compute -- the results were paid for by the attempt that logged them.
    return log_[next_replay_++];
  }
  std::vector<std::any> out =
      master_->phase(phase_id, handler, std::move(payload), payload_bytes);
  log_.push_back(out);
  next_replay_ = log_.size();
  if (store_ != nullptr && next_checkpoint_s_ >= 0.0 &&
      comm_->now() >= next_checkpoint_s_) {
    write_checkpoint();
  }
  const double deadline = config_.retry.attempt_deadline_s;
  if (deadline > 0.0 && comm_->now() - attempt_start_s_ >= deadline) {
    // Preempt at the phase boundary: persist everything done so far, then
    // unwind to the leader, which releases the gang and reports back.
    if (store_ != nullptr) write_checkpoint();
    throw PreemptSignal{};
  }
  return out;
}

void ResilientDriver::finish() { master_->finish(); }

void ProgramBundle::harvest(JobOutput& out) {
  switch (algorithm) {
    case JobAlgorithm::kAtdca:
    case JobAlgorithm::kUfcls:
      out.targets = std::move(target->targets);
      break;
    case JobAlgorithm::kPct:
    case JobAlgorithm::kMorph:
      out.labels = std::move(classification->labels);
      out.label_count = classification->label_count;
      break;
    case JobAlgorithm::kPpi:
      out.targets = std::move(ppi->targets);
      out.scores = std::move(ppi->scores);
      break;
  }
}

ProgramBundle make_job_program(const JobSpec& spec, const hsi::HsiCube& scene) {
  ProgramBundle bundle;
  bundle.algorithm = spec.algorithm;
  switch (spec.algorithm) {
    case JobAlgorithm::kAtdca: {
      core::AtdcaConfig config;
      config.targets = spec.targets;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      bundle.target = std::make_shared<core::TargetDetectionResult>();
      bundle.program = core::atdca_ft_program(scene, config, *bundle.target);
      break;
    }
    case JobAlgorithm::kUfcls: {
      core::UfclsConfig config;
      config.targets = spec.targets;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      bundle.target = std::make_shared<core::TargetDetectionResult>();
      bundle.program = core::ufcls_ft_program(scene, config, *bundle.target);
      break;
    }
    case JobAlgorithm::kPct: {
      core::PctConfig config;
      config.classes = spec.classes;
      config.sad_threshold = spec.sad_threshold;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      bundle.classification = std::make_shared<core::ClassificationResult>();
      bundle.program =
          core::pct_ft_program(scene, config, *bundle.classification);
      break;
    }
    case JobAlgorithm::kMorph: {
      core::MorphConfig config;
      config.classes = spec.classes;
      config.iterations = spec.iterations;
      config.kernel_radius = spec.kernel_radius;
      config.sad_threshold = spec.sad_threshold;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      // The master/worker protocol has no worker-to-worker halo exchange;
      // chunks must carry their own borders.
      config.overlap_borders = true;
      bundle.classification = std::make_shared<core::ClassificationResult>();
      bundle.program =
          core::morph_ft_program(scene, config, *bundle.classification);
      break;
    }
    case JobAlgorithm::kPpi: {
      core::PpiConfig config;
      config.targets = spec.targets;
      config.skewers = spec.skewers;
      config.seed = spec.seed;
      config.policy = spec.policy;
      config.memory_fraction = spec.memory_fraction;
      config.replication = spec.replication;
      config.charge_data_staging = spec.charge_data_staging;
      bundle.ppi = std::make_shared<core::PpiResult>();
      bundle.program = core::ppi_ft_program(scene, config, *bundle.ppi);
      break;
    }
  }
  return bundle;
}

void release_gang(vmpi::Comm& sub) {
  for (int r = 0; r < sub.size(); ++r) {
    if (r == sub.root()) continue;
    (void)sub.try_send(r, core::ft::Command{},
                       core::ft::kChunkDescriptorBytes, core::ft::kCommandTag);
  }
}

AttemptOutcome run_resilient_leader(vmpi::Comm& sub, const JobSpec& spec,
                                    const hsi::HsiCube& scene, int attempt,
                                    const ResilienceConfig& config,
                                    CheckpointStore* store, JobOutput& out) {
  AttemptOutcome outcome;
  ProgramBundle bundle = make_job_program(spec, scene);
  const core::ft::Program& prog = bundle.program;

  std::optional<Checkpoint> resumed;
  if (store != nullptr && config.resume_from_checkpoint && attempt > 1) {
    resumed = store->load(spec.id);
  }

  std::optional<core::ft::Master> master;
  std::optional<ResilientDriver> driver;
  try {
    if (resumed.has_value()) {
      // Elastic restart: adopt the frozen chunk list on whatever width this
      // gang has; Master's resume constructor spreads the chunks.
      master.emplace(sub, resumed->chunks, prog.policy, prog.memory_fraction,
                     scene.cols(), scene.bytes_per_pixel(), prog.replication,
                     prog.model.scatter_input);
    } else {
      const core::PartitionResult partition = core::wea_partition(
          sub.platform(), scene.rows(), scene.cols(), prog.model, prog.policy,
          prog.memory_fraction, prog.overlap, sub.root());
      sub.compute(64ULL * static_cast<std::uint64_t>(sub.size()),
                  vmpi::Phase::kSequential);
      master.emplace(sub, partition.parts, prog.policy, prog.memory_fraction,
                     scene.cols(), scene.bytes_per_pixel(), prog.replication,
                     prog.model.scatter_input);
    }
    driver.emplace(sub, *master, store, spec.id, attempt, config,
                   resumed.has_value() ? &*resumed : nullptr);
    prog.master(sub, *driver, prog.handlers);
    driver->finish();
    bundle.harvest(out);
    outcome.status = 0;
  } catch (const PreemptSignal&) {
    // Deadline overrun: progress is checkpointed; release the survivors so
    // they rejoin the pool while the job waits in the retry queue.  Only
    // these two handlers exist on purpose: the engine's crash signal must
    // keep propagating, so no catch-all.
    outcome.status = 1;
    master->finish();
  } catch (const Error& e) {
    outcome.status = 2;
    outcome.error = e.what();
    if (master.has_value()) {
      master->finish();
    } else {
      // The WEA or the resume construction failed before any Master owned
      // the workers; unblock them by hand.
      release_gang(sub);
    }
  }
  if (driver.has_value()) {
    outcome.checkpoints = driver->checkpoints();
    outcome.resumed_seq = driver->resumed_seq();
    outcome.checkpoint_s = driver->checkpoint_cost_s();
    outcome.checkpoint_at_s = driver->checkpoint_at_s();
  }
  return outcome;
}

bool run_resilient_worker(vmpi::Comm& sub, const JobSpec& spec,
                          const hsi::HsiCube& scene) {
  const ProgramBundle bundle = make_job_program(spec, scene);
  return core::ft::resilient_worker_loop(sub, bundle.program.handlers);
}

void validate_cluster_fault_plan(const vmpi::Options& options,
                                 std::size_t platform_size) {
  const auto& crashes = options.fault_plan.crashes;
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    const std::string key =
        "fault_plan.crashes[" + std::to_string(i) + "].rank";
    HPRS_REQUIRE(crashes[i].rank >= 0 &&
                     static_cast<std::size_t>(crashes[i].rank) < platform_size,
                 key + " = " + std::to_string(crashes[i].rank) +
                     " is out of range for a platform of " +
                     std::to_string(platform_size) + " ranks");
    HPRS_REQUIRE(crashes[i].rank != options.root,
                 key + " = " + std::to_string(crashes[i].rank) +
                     " targets the dispatcher (root) rank: the cluster "
                     "control plane must be immortal");
  }
}

}  // namespace hprs::sched
