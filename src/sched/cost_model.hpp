// WEA-backed job cost model: makespan estimates and memory-bound admission.
//
// The estimate reuses the exact per-pixel flop/byte accounting the
// algorithms charge to the engine (core::*_workload) and the platform's
// WEA parameters (w_i seconds/Mflop, c_ij ms/Mbit): compute time is the
// balanced divisible-load bound total_flops * 1e-6 / sum(1/w_i), and
// communication adds the serial root-link cost of the per-round candidate
// gathers plus (when the job charges data staging) the one-time block
// distribution.  It is an *ordering heuristic* -- placement and backfill
// decisions use it, the engine remains the source of truth for actual
// times -- but it is deterministic, which is what the scheduler needs:
// identical streams yield identical estimates, hence identical schedules.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "hsi/cube.hpp"
#include "sched/job.hpp"
#include "simnet/platform.hpp"

namespace hprs::sched {

/// Thrown by memory-bound admission when a job cannot run on any subset of
/// the worker pool (image larger than the best subset's aggregate memory
/// budget, gang wider than the pool, or fewer image rows than ranks).
class AdmissionError : public Error {
 public:
  explicit AdmissionError(const std::string& what) : Error(what) {}
};

struct JobEstimate {
  /// Estimated virtual makespan of the job on the given members, seconds.
  double seconds = 0.0;
  /// Total image bytes the gang must hold (the admission numerator).
  double image_bytes = 0.0;
};

/// The workload model the job's algorithm will charge (same functions the
/// runners use, so estimates and engine accounting share one source).
[[nodiscard]] core::WorkloadModel job_workload(const JobSpec& spec,
                                               const hsi::HsiCube& scene);

/// Estimated makespan of `spec` gang-placed on `members` (engine ranks into
/// `platform`; members[0] is the gang leader).  `speed_scale`, when
/// non-null, multiplies each rank's platform speed (the resilient
/// scheduler's online w_i re-estimation from measured gang spans); the
/// default null keeps historic estimates bit-identical.
[[nodiscard]] JobEstimate estimate_job(
    const simnet::Platform& platform, const std::vector<int>& members,
    const JobSpec& spec, const hsi::HsiCube& scene,
    const std::vector<double>* speed_scale = nullptr);

/// Accelerator-aware member refinement: when `picked` contains accelerated
/// ranks, compares its estimate against the fastest equally-wide all-CPU
/// gang from `pool` and returns whichever is cheaper (tiny jobs dodge the
/// per-round launch latency; big jobs keep the accelerators).  Identity
/// when `picked` has no accelerated member, so accelerator-free platforms
/// schedule exactly as before.
[[nodiscard]] std::vector<int> refine_members(const simnet::Platform& platform,
                                              const std::vector<int>& pool,
                                              std::vector<int> picked,
                                              const JobSpec& spec,
                                              const hsi::HsiCube& scene);

/// Memory-bound admission (WEA Algorithm 1 step 3 applied at submission):
/// throws AdmissionError unless some `spec.ranks`-wide subset of `workers`
/// can hold the scene within `spec.memory_fraction` of each node's memory
/// and the scene has at least one row per rank.
void check_admission(const simnet::Platform& platform,
                     const std::vector<int>& workers, const JobSpec& spec,
                     const hsi::HsiCube& scene);

}  // namespace hprs::sched
