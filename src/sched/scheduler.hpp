// Deterministic virtual-time multi-job scheduler over one shared engine.
//
// run_schedule starts one vmpi engine over the whole platform and runs an
// SPMD control program on it: the engine's root rank becomes the
// *dispatcher* (it never computes); every other rank is a *worker*.  The
// dispatcher paces the stream's virtual-time arrivals with sleep_until,
// picks the next job and its rank subset with the pluggable policy
// (sched/policy.hpp), and gang-dispatches the job by sending each member a
// command message; the members build a sub-communicator with Comm::subset
// and run the algorithm's unmodified SPMD body on it.  The gang leader
// reports completion (aligned finish time + summed busy time) back to the
// dispatcher, which frees the ranks and keeps going until the stream
// drains.  See DESIGN.md section 11 for the determinism argument.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hsi/cube.hpp"
#include "obs/chrome_trace.hpp"
#include "sched/job.hpp"
#include "sched/policy.hpp"
#include "sched/resilience.hpp"
#include "simnet/platform.hpp"
#include "vmpi/engine.hpp"

namespace hprs::sched {

struct SchedulerConfig {
  Policy policy = Policy::kHeteroBestFit;
  /// Publish per-job Domain::kStable metrics (queue wait, makespan,
  /// utilization) into the obs registry after the run.
  bool record_metrics = true;
  /// Cluster resilience (sched/resilience.hpp).  When enabled the
  /// dispatcher runs the checkpoint/retry control plane: gang leaders are
  /// mortal, crashed ranks leave the pool, preempted or failed jobs are
  /// retried (elastically resized, resumed from their last checkpoint)
  /// with seeded backoff, and jobs exhausting their attempts go
  /// kDegraded / kFailed instead of aborting the schedule.  Off by
  /// default: the base path stays bit-identical to previous releases.
  ResilienceConfig resilience;
  /// Compute-once batching (serve/batcher.hpp): when a job with a nonzero
  /// JobSpec::batch_key is dispatched or running, compute-equivalent jobs
  /// sharing the key attach to its gang as *riders* instead of dispatching
  /// -- the gang computes once and the scheduler fans the result out to
  /// every rider at completion (JobRecord::batched_into / batch_fanout).
  /// Base scheduler only; off by default (streams with zero keys are
  /// unaffected either way).
  bool batch_shared_keys = false;
  /// Per-tenant admission cap on in-flight ranks: the summed requested
  /// gang widths of a tenant's admitted, not-yet-finished jobs (queued +
  /// running + riders) may not exceed its cap.  A job arriving over the
  /// cap is rejected at its arrival event with a named
  /// "quota:inflight_ranks ..." reason.  Tenants without an entry (and
  /// entries <= 0) are unlimited.  Base scheduler only.
  std::map<std::string, int> tenant_rank_caps;
};

/// Outcome of scheduling one job stream.
struct ScheduleResult {
  Policy policy = Policy::kHeteroBestFit;
  /// One record / output per stream entry, in stream order.
  std::vector<JobRecord> records;
  std::vector<JobOutput> outputs;
  vmpi::RunReport report;
  /// Virtual time of the last job completion.
  double makespan_s = 0.0;
  /// Summed job busy time over (worker count x makespan): the cluster-wide
  /// busy fraction while the stream was in flight.
  double utilization = 0.0;
  /// Engine ranks the resilient dispatcher detected dead and removed from
  /// the worker pool (ascending; always empty in base mode).
  std::vector<int> lost_ranks;
  [[nodiscard]] std::size_t completed() const;
  [[nodiscard]] std::size_t rejected() const;
  /// Jobs that exhausted their retries with / without checkpointed
  /// progress (resilient mode only; zero in base mode).
  [[nodiscard]] std::size_t degraded() const;
  [[nodiscard]] std::size_t failed() const;
};

/// Admits, places, and runs `stream` on `platform` under `config.policy`.
/// Jobs that fail memory-bound admission are marked rejected (with the
/// AdmissionError message) and never dispatch; everything else completes.
/// Deterministic: identical streams produce bit-identical records,
/// outputs, and stable metrics across runs and both executor modes.
[[nodiscard]] ScheduleResult run_schedule(const simnet::Platform& platform,
                                          const hsi::HsiCube& scene,
                                          const std::vector<JobSpec>& stream,
                                          const SchedulerConfig& config = {},
                                          vmpi::Options options = {});

/// One Chrome-trace track group per completed job, labelled
/// "job:<id>/<ALG>" and windowed to [dispatch_s, finish_s), so a traced
/// schedule (Options::enable_trace) renders each gang as its own process
/// in the viewer (obs::chrome_trace_json group overload).
[[nodiscard]] std::vector<obs::TraceTrackGroup> job_track_groups(
    const ScheduleResult& result);

}  // namespace hprs::sched
