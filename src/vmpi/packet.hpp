// Type-erased message payloads for the virtual message-passing runtime.
//
// Ranks live in one address space (they are threads of the simulator), so a
// "message" is a moved std::any plus the number of bytes the transfer would
// occupy on the wire.  The byte count is explicit rather than inferred:
// algorithms frequently send *views* into shared data (e.g. a partition of
// the image cube) whose in-memory footprint is a pointer but whose modeled
// transfer is megabytes -- exactly the situation MPI derived datatypes
// address on a real cluster (the paper uses them to scatter non-contiguous
// hyperspectral structures in one communication step).
//
// A packet carries its payload in one of two representations:
//
//  - exclusive: `value` owns the payload; the single consumer moves it out
//    (point-to-point, gather contributions, scatter parts);
//  - shared-immutable: `shared` refcounts one frozen payload that every
//    fan-out destination references.  An N-rank broadcast promotes the
//    root's value once (a move, not a copy) and hands each destination a
//    refcount bump, so the collective coordinator performs zero deep
//    copies under the engine lock.  Consumers either copy out of the
//    shared storage on their own thread (`take`) or alias it outright
//    (`Comm::bcast_shared`).
#pragma once

#include <any>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace hprs::vmpi {

struct Packet {
  std::any value;                          ///< exclusive (move-out) payload
  std::shared_ptr<const std::any> shared;  ///< shared-immutable payload
  std::size_t bytes = 0;

  Packet() = default;
  Packet(std::any v, std::size_t b) : value(std::move(v)), bytes(b) {}

  /// A fan-out reference to an already-promoted payload: O(1), no copy.
  [[nodiscard]] static Packet shared_view(std::shared_ptr<const std::any> s,
                                          std::size_t b) {
    Packet p;
    p.shared = std::move(s);
    p.bytes = b;
    return p;
  }

  /// Promotes the exclusive payload into the shared-immutable
  /// representation (moving it, not copying) and returns the shared
  /// handle.  Idempotent: an already-shared packet just hands the handle
  /// back.
  [[nodiscard]] std::shared_ptr<const std::any> share() {
    if (!shared) {
      shared = std::make_shared<const std::any>(std::move(value));
      value.reset();
    }
    return shared;
  }

  /// Extracts the payload as a T: moves out of an exclusive packet, copies
  /// out of a shared one (on the caller's thread, outside any engine
  /// lock).  Throws std::bad_any_cast on a type mismatch, as any_cast
  /// always did.
  template <typename T>
  [[nodiscard]] T take() {
    if (shared) return std::any_cast<const T&>(*shared);
    return std::any_cast<T>(std::move(value));
  }
};

/// Wire size of a span of trivially copyable elements.
template <typename T>
[[nodiscard]] constexpr std::size_t byte_size(std::span<const T> s) {
  return s.size() * sizeof(T);
}

template <typename T>
[[nodiscard]] constexpr std::size_t byte_size(const std::vector<T>& v) {
  return v.size() * sizeof(T);
}

}  // namespace hprs::vmpi
