// Type-erased message payloads for the virtual message-passing runtime.
//
// Ranks live in one address space (they are threads of the simulator), so a
// "message" is a moved std::any plus the number of bytes the transfer would
// occupy on the wire.  The byte count is explicit rather than inferred:
// algorithms frequently send *views* into shared data (e.g. a partition of
// the image cube) whose in-memory footprint is a pointer but whose modeled
// transfer is megabytes -- exactly the situation MPI derived datatypes
// address on a real cluster (the paper uses them to scatter non-contiguous
// hyperspectral structures in one communication step).
#pragma once

#include <any>
#include <cstddef>
#include <span>
#include <vector>

namespace hprs::vmpi {

struct Packet {
  std::any value;
  std::size_t bytes = 0;
};

/// Wire size of a span of trivially copyable elements.
template <typename T>
[[nodiscard]] constexpr std::size_t byte_size(std::span<const T> s) {
  return s.size() * sizeof(T);
}

template <typename T>
[[nodiscard]] constexpr std::size_t byte_size(const std::vector<T>& v) {
  return v.size() * sizeof(T);
}

}  // namespace hprs::vmpi
