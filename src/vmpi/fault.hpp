// Deterministic virtual-time fault model for the vmpi engine.
//
// A FaultPlan describes everything that goes wrong during a run, in virtual
// time only, so a faulted simulation is exactly as reproducible as a
// fault-free one:
//
//  * RankCrash -- fail-stop: the rank executes normally until the first
//    engine operation it begins with its virtual clock at or past `time_s`,
//    at which point it dies silently (its clock freezes, it never posts or
//    matches another message).  This is the paper's "workstation switched
//    off / node lost" failure on networks of workstations.
//
//  * LinkDegradation -- the capacity between two communication segments
//    (or inside one, when segment_a == segment_b) is multiplied by `factor`
//    for transfers *starting* in the virtual interval [begin_s, end_s).
//    Models background traffic or a flapping switch.
//
//  * MessageLoss -- seeded transient loss of point-to-point messages: each
//    p2p transfer deterministically loses `k >= 0` attempts (a hash of the
//    seed and the per-queue sequence number), and each lost attempt delays
//    the transfer by one wire time plus `retry_backoff_s`.  Collective
//    schedules are not subjected to loss: they model a message-passing
//    layer with its own reliability, while p2p loss models the commodity
//    link layer under it.
//
// Determinism: crashes trigger on the rank's own virtual clock at operation
// boundaries, degradation keys off virtual transfer start times, and loss
// draws are a pure function of (seed, src, dst, tag, per-queue sequence
// number) -- none of which depend on host scheduling.  A fixed plan
// therefore yields bit-identical RunReports across repeats, host schedules,
// and execution modes (tests/vmpi_fault_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

namespace hprs::vmpi {

/// Fail-stop crash of one rank at a virtual time.
struct RankCrash {
  int rank = -1;
  double time_s = 0.0;
};

/// Multiplies the capacity (ms per megabit; larger = slower) between two
/// segments by `factor` for transfers starting in [begin_s, end_s).
struct LinkDegradation {
  std::size_t segment_a = 0;
  std::size_t segment_b = 0;
  double factor = 1.0;
  double begin_s = 0.0;
  double end_s = 0.0;
};

/// Seeded transient point-to-point message loss.
struct MessageLoss {
  /// Per-attempt loss probability in [0, 1).  Zero disables the model.
  double probability = 0.0;
  std::uint64_t seed = 0;
  /// Extra delay per lost attempt, on top of the wasted wire time.
  double retry_backoff_s = 5e-4;
};

struct FaultPlan {
  std::vector<RankCrash> crashes;
  std::vector<LinkDegradation> degradations;
  MessageLoss loss;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && degradations.empty() && loss.probability <= 0.0;
  }
};

/// What a recorded fault-log entry describes.
enum class FaultEventKind : std::uint8_t {
  kCrash,        ///< `rank` died (fail-stop) at its frozen clock `time_s`
  kDetection,    ///< `rank` concluded `peer` is dead at `time_s`
  kMessageLoss,  ///< a transfer peer -> rank lost attempt #`attempt`
};

/// One entry of RunReport::fault_events, sorted deterministically by
/// (time, kind, rank, peer, attempt) before the report is returned.
struct FaultEvent {
  FaultEventKind kind = FaultEventKind::kCrash;
  int rank = -1;
  int peer = -1;
  double time_s = 0.0;
  std::uint64_t attempt = 0;
};

/// Decomposition of the virtual time a run spent surviving its faults
/// (aggregated over ranks; all zero for a fault-free run).
struct RecoveryStats {
  /// Virtual time spent blocked on operations that ultimately failed
  /// (waiting out the heartbeat timeout on a dead peer).
  double detection_s = 0.0;
  /// Master-side time re-running the WEA and re-issuing work after a loss
  /// (reported by the fault-tolerant master loop via Comm::note_redistribution).
  double redistribution_s = 0.0;
  /// Compute re-executed to regenerate lost partition results.
  double recomputed_s = 0.0;
  std::uint64_t recomputed_flops = 0;
  int crashes = 0;
  int detections = 0;
  std::uint64_t messages_lost = 0;

  [[nodiscard]] double recomputed_megaflops() const {
    return static_cast<double>(recomputed_flops) * 1e-6;
  }
  [[nodiscard]] double total_overhead_s() const {
    return detection_s + redistribution_s + recomputed_s;
  }
};

}  // namespace hprs::vmpi
