// Rank-facing communicator: the typed API algorithms program against.
//
// Mirrors the MPI operations the paper's algorithms need (compute charging
// plus barrier / broadcast / gather / scatter / point-to-point), with
// explicit wire sizes per payload -- see vmpi/packet.hpp for why sizes are
// explicit.  One Comm instance exists per rank for the duration of
// Engine::run and is only ever used by that rank's execution context; its
// staging buffers give repeated collectives allocation-free steady state.
//
// A Comm is a view of one communicator (vmpi::Group): rank(), size(),
// root(), and platform() all describe the *group*, so an algorithm written
// against this API runs unmodified on a sub-communicator covering any
// subset of the engine's ranks -- the property the multi-job scheduler
// (src/sched/) relies on to gang-place jobs.  split() is the
// MPI_Comm_split analogue; subset() is the MPI_Comm_create_group analogue
// used when the member list is already agreed out of band.  All rank
// arguments (collective roots, p2p sources/destinations, exchange targets)
// are local to this communicator.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "vmpi/engine.hpp"

namespace hprs::vmpi {

class Comm {
 public:
  Comm(Engine& engine, Group& group, int rank)
      : engine_(&engine),
        group_(&group),
        local_(rank),
        rank_(group.world_rank(rank)) {}

  /// This rank's index within the communicator (0 .. size()-1).
  [[nodiscard]] int rank() const { return local_; }
  /// Number of ranks in the communicator.
  [[nodiscard]] int size() const { return group_->size(); }
  [[nodiscard]] bool is_root() const { return local_ == group_->root_local; }
  [[nodiscard]] int root() const { return group_->root_local; }
  /// The platform restricted to this communicator's members: processor i
  /// is the engine processor of member i, so w_i, memory, and segment
  /// assignments keep their world values.
  [[nodiscard]] const simnet::Platform& platform() const {
    return group_->platform;
  }
  /// This rank's index on the engine's full platform.
  [[nodiscard]] int world_rank() const { return rank_; }
  /// Engine rank of communicator member `local`.
  [[nodiscard]] int world_rank_of(int local) const {
    check_local(local);
    return group_->world_rank(local);
  }
  /// Content-derived communicator id (0 for the world communicator);
  /// identical across runs and executor modes for identical programs.
  [[nodiscard]] std::uint64_t group_id() const { return group_->id; }
  /// Current virtual time of this rank, seconds.
  [[nodiscard]] double now() const { return engine_->core_now(rank_); }

  /// Snapshot of this rank's own accumulated stats (clock, busy split,
  /// bytes, flops).  Differencing two snapshots brackets a region -- the
  /// scheduler uses this for per-job utilization accounting.
  [[nodiscard]] RankStats stats() const { return engine_->core_stats(rank_); }

  /// Advances this rank's virtual clock to at least `deadline` seconds,
  /// charging the gap as wait time (no-op when already past).  Lets a
  /// dispatcher pace work to virtual-time arrivals.
  void sleep_until(double deadline) {
    engine_->core_sleep_until(rank_, deadline);
  }

  // --- counter plane (obs/snapshot.hpp; see DESIGN.md §15) ---
  /// True when the engine's snapshot service is on.
  [[nodiscard]] bool snapshots_enabled() const {
    return engine_->options_.snapshot.enabled;
  }
  [[nodiscard]] const obs::SnapshotConfig& snapshot_config() const {
    return engine_->options_.snapshot;
  }
  /// Renames this communicator's snapshot scope (default "comm_<id>",
  /// "world" for the world communicator).  The scheduler labels each gang
  /// "job:<id>/<algorithm>" so a job's timeline survives gang reshuffles.
  /// Call it with the same label from every member before the first
  /// collective.
  void label_snapshots(std::string_view label) {
    engine_->core_label_snapshots(*group_, label);
  }
  /// Appends one caller-assembled pvar sample at this rank's current
  /// virtual clock (no-op while snapshots are disabled).  Used by the
  /// scheduler's dispatcher for queue-depth / bytes-in-flight series.
  void snapshot_sample(std::string_view scope, const obs::PvarSet& pvars) {
    engine_->core_snapshot_sample(rank_, scope, pvars);
  }

  /// Splits this communicator into disjoint sub-communicators, one per
  /// distinct `color` (the MPI_Comm_split analogue; a collective -- every
  /// member must call it).  Members of the new communicator are ordered by
  /// (key, rank in the parent), so equal keys preserve parent order.  The
  /// new communicator's id derives deterministically from the parent id,
  /// this communicator's split count, and the color: identical programs
  /// produce identical communicators on every run and in both executor
  /// modes.  Colors must be non-negative.
  [[nodiscard]] Comm split(int color, int key) {
    HPRS_REQUIRE(color >= 0, "split color must be non-negative, got " +
                                 std::to_string(color));
    const std::uint64_t seq = split_seq_++;
    // One (color, key) pair per member: 8 wire bytes each, the natural
    // cost of the allgather a real MPI_Comm_split performs.
    const auto pairs = allgather(std::pair<int, int>{color, key}, 8);
    std::vector<std::pair<int, int>> order;  // (key, parent local rank)
    for (std::size_t l = 0; l < pairs.size(); ++l) {
      if (pairs[l].first != color) continue;
      order.emplace_back(pairs[l].second, static_cast<int>(l));
    }
    std::sort(order.begin(), order.end());
    std::vector<int> members;
    members.reserve(order.size());
    int new_local = -1;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i].second == local_) new_local = static_cast<int>(i);
      members.push_back(group_->world_rank(order[i].second));
    }
    HPRS_ASSERT(new_local >= 0);
    std::uint64_t id = SplitMix64(group_->id ^ 0x9e3779b97f4a7c15ULL).next();
    id = SplitMix64(id ^ seq).next();
    id = SplitMix64(id ^ static_cast<std::uint64_t>(color)).next();
    if (id == 0) id = 1;  // 0 names the world communicator
    return Comm(*engine_, engine_->ensure_group(id, members), new_local);
  }

  /// Builds a sub-communicator over an explicit member list (the
  /// MPI_Comm_create_group analogue): `locals` are strictly increasing
  /// ranks of *this* communicator and must include the caller.  Only the
  /// listed ranks participate -- each must call subset() with the same
  /// `locals` and `uid` (the tag that, mixed with this communicator's id,
  /// names the new communicator deterministically).  No virtual messages
  /// are charged: the callers already agreed on the member list out of
  /// band, and that coordination carries the cost (the scheduler's
  /// dispatch messages, for example).
  [[nodiscard]] Comm subset(const std::vector<int>& locals,
                            std::uint64_t uid) {
    HPRS_REQUIRE(!locals.empty(),
                 "subset requires at least one member rank");
    int new_local = -1;
    std::vector<int> members;
    members.reserve(locals.size());
    for (std::size_t i = 0; i < locals.size(); ++i) {
      check_local(locals[i]);
      HPRS_REQUIRE(i == 0 || locals[i] > locals[i - 1],
                   "subset member ranks must be strictly increasing");
      if (locals[i] == local_) new_local = static_cast<int>(i);
      members.push_back(group_->world_rank(locals[i]));
    }
    HPRS_REQUIRE(new_local >= 0,
                 "the calling rank must be a member of its own subset");
    std::uint64_t id = SplitMix64(group_->id ^ 0xa24baed4963ee407ULL).next();
    id = SplitMix64(id ^ uid).next();
    if (id == 0) id = 1;
    return Comm(*engine_, engine_->ensure_group(id, members), new_local);
  }

  /// Advances this rank's virtual clock by flops * w_rank.  `phase` selects
  /// the accounting bucket (mark master-only steps kSequential).
  void compute(std::uint64_t flops, Phase phase = Phase::kParallel) {
    engine_->core_compute(rank_, flops, phase);
  }

  /// Charges the host->device copy of `bytes` of input data onto this
  /// rank's accelerator.  Exact no-op for non-accelerated ranks -- callers
  /// may invoke it unconditionally after receiving their partition.
  void stage_to_device(std::size_t bytes) {
    engine_->core_stage(rank_, static_cast<std::uint64_t>(bytes));
  }

  /// Enqueues an asynchronous host->device copy of `bytes` on this rank's
  /// staging pipe (one DMA engine; copies serialize against each other but
  /// overlap compute).  Returns the copy's virtual completion time without
  /// advancing the clock; 0.0 for non-accelerated ranks.  Pair with
  /// stage_wait before the compute that consumes the tile.
  [[nodiscard]] double stage_to_device_async(std::size_t bytes) {
    return engine_->core_stage_async(rank_,
                                     static_cast<std::uint64_t>(bytes));
  }

  /// Blocks until the staging completion time returned by
  /// stage_to_device_async; the exposed gap is charged as comm time,
  /// matching the synchronous stage_to_device accounting.
  void stage_wait(double until) { engine_->core_stage_wait(rank_, until); }

  /// Per-tile compute charge for a streamed sweep: the first tile pays the
  /// accelerator's fixed kernel-launch latency, subsequent tiles model
  /// kernels enqueued in the same batched launch and charge pure flops
  /// time.  Identical to compute() on non-accelerated ranks.
  void compute_tile(std::uint64_t flops, bool first_in_sweep,
                    Phase phase = Phase::kParallel) {
    engine_->core_compute(rank_, flops, phase, first_in_sweep);
  }

  void barrier() { engine_->core_barrier(*group_, local_); }

  /// Broadcast from `root`.  All ranks receive (a value equal to) the
  /// root's value.  The engine fans the payload out by reference; each
  /// rank materializes its own copy here, outside the engine lock.  Prefer
  /// bcast_shared for large read-only payloads -- it skips the copy
  /// entirely.
  template <typename T>
  [[nodiscard]] T bcast(int root, T value, std::size_t bytes) {
    check_local(root);
    Packet out = engine_->core_bcast(
        *group_, local_, root, Packet{std::move(value), bytes});
    return out.take<T>();
  }

  /// Broadcast from `root`, returning a shared handle to one immutable
  /// payload instead of a per-rank copy: the virtual transfers are charged
  /// exactly as bcast, but on the host all p ranks alias the root's value
  /// (zero deep copies).  Use for large payloads that downstream code only
  /// reads.
  template <typename T>
  [[nodiscard]] std::shared_ptr<const T> bcast_shared(int root, T value,
                                                      std::size_t bytes) {
    check_local(root);
    Packet out = engine_->core_bcast(
        *group_, local_, root, Packet{std::move(value), bytes});
    if (out.shared) {
      const T* typed = std::any_cast<T>(out.shared.get());
      HPRS_ASSERT(typed != nullptr);
      return std::shared_ptr<const T>(std::move(out.shared), typed);
    }
    // Exclusive payload (p == 1): promote by move.
    return std::make_shared<const T>(std::any_cast<T>(std::move(out.value)));
  }

  /// Gather to `root`: returns every rank's value, in rank order, at the
  /// root; an empty vector elsewhere.
  template <typename T>
  [[nodiscard]] std::vector<T> gather(int root, T value, std::size_t bytes) {
    check_local(root);
    std::vector<Packet> packets = engine_->core_gather(
        *group_, local_, root, Packet{std::move(value), bytes});
    std::vector<T> out;
    out.reserve(packets.size());
    for (auto& p : packets) {
      out.push_back(p.take<T>());
    }
    engine_->core_recycle_gather(rank_, std::move(packets));
    return out;
  }

  /// Scatter from `root`: the root supplies one part per rank (with wire
  /// sizes); every rank returns its own part.  Non-root ranks pass empty
  /// vectors.
  template <typename T>
  [[nodiscard]] T scatter(int root, std::vector<T> parts,
                          const std::vector<std::size_t>& bytes) {
    check_local(root);
    scatter_stage_.clear();
    if (local_ == root) {
      HPRS_REQUIRE(parts.size() == static_cast<std::size_t>(size()) &&
                       bytes.size() == parts.size(),
                   "scatter requires one part and size per rank");
      scatter_stage_.reserve(parts.size());
      for (std::size_t i = 0; i < parts.size(); ++i) {
        scatter_stage_.push_back(Packet{std::move(parts[i]), bytes[i]});
      }
    }
    Packet mine = engine_->core_scatter(*group_, local_, root, scatter_stage_);
    scatter_stage_.clear();
    return mine.take<T>();
  }

  /// Reduction to the root followed by a broadcast of the combined value
  /// (the classical NOW implementation of MPI_Allreduce; on switched
  /// fabrics both legs use the binomial-tree schedules).  `combine` folds
  /// two T into one; the root charges `combine_flops` per fold.
  template <typename T, typename F>
  [[nodiscard]] T allreduce(T value, std::size_t bytes, F combine,
                            std::uint64_t combine_flops = 0) {
    auto all = gather(root(), std::move(value), bytes);
    T result{};
    if (is_root()) {
      result = std::move(all.front());
      for (std::size_t i = 1; i < all.size(); ++i) {
        result = combine(std::move(result), std::move(all[i]));
      }
      if (combine_flops > 0 && all.size() > 1) {
        compute(combine_flops * (all.size() - 1));
      }
    }
    return bcast(root(), std::move(result), bytes);
  }

  /// Every rank receives every rank's value, in rank order (gather +
  /// broadcast of the concatenation).
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(T value, std::size_t bytes) {
    auto all = gather(root(), std::move(value), bytes);
    return bcast(root(), std::move(all),
                 bytes * static_cast<std::size_t>(size()));
  }

  /// Deterministic generalized all-to-all (a collective: every rank must
  /// call it, possibly with an empty send list).  Each send is
  /// (destination, value, wire bytes); the return value holds the packets
  /// addressed to this rank as (source, value) pairs in source order.
  template <typename T>
  [[nodiscard]] std::vector<std::pair<int, T>> exchange(
      std::vector<std::tuple<int, T, std::size_t>> sends) {
    exchange_stage_.clear();
    exchange_stage_.reserve(sends.size());
    for (auto& [dst, value, bytes] : sends) {
      exchange_stage_.emplace_back(dst, Packet{std::move(value), bytes});
    }
    auto received = engine_->core_exchange(*group_, local_, exchange_stage_);
    exchange_stage_.clear();
    std::vector<std::pair<int, T>> out;
    out.reserve(received.size());
    for (auto& [src, packet] : received) {
      out.emplace_back(src, packet.template take<T>());
    }
    engine_->core_recycle_exchange(rank_, std::move(received));
    return out;
  }

  /// Handle for a nonblocking send; pass to wait() exactly once.
  class Request {
   public:
    Request() = default;

   private:
    friend class Comm;
    explicit Request(std::uint64_t handle) : handle_(handle) {}
    std::uint64_t handle_ = 0;
  };

  /// Nonblocking send: the message is posted immediately and this rank's
  /// clock keeps running, so compute issued before the matching wait()
  /// overlaps the transfer.  Every isend must be wait()ed exactly once.
  template <typename T>
  [[nodiscard]] Request isend(int dst, T value, std::size_t bytes,
                              int tag = 0) {
    return Request(engine_->core_isend(rank_, world_rank_of(dst), tag,
                                       Packet{std::move(value), bytes},
                                       group_->id));
  }

  /// Completes a nonblocking send: blocks until the receiver matched the
  /// message, then advances this rank's clock to the transfer completion
  /// (never backwards).
  void wait(Request request) {
    HPRS_REQUIRE(request.handle_ != 0, "wait on a default-constructed Request");
    engine_->core_wait_send(rank_, request.handle_);
  }

  /// Blocking (rendezvous) point-to-point send.  Messages match on (world
  /// source, world destination, tag), so communicators over disjoint rank
  /// sets can reuse tags freely; communicators sharing a rank pair must
  /// use disjoint tags (as within a single MPI communicator).
  template <typename T>
  void send(int dst, T value, std::size_t bytes, int tag = 0) {
    engine_->core_send(rank_, world_rank_of(dst), tag,
                       Packet{std::move(value), bytes}, group_->id);
  }

  /// Blocking point-to-point receive from a specific source and tag.
  template <typename T>
  [[nodiscard]] T recv(int src, int tag = 0) {
    Packet p = engine_->core_recv(rank_, world_rank_of(src), tag);
    return p.take<T>();
  }

  // --- fault-tolerant point-to-point (see vmpi/fault.hpp) ---

  /// Rendezvous send that survives a dead peer: true when `dst` received
  /// the message; false when `dst` crashed without matching it, in which
  /// case this rank's clock advances one virtual heartbeat (`timeout_s`,
  /// or Options::fault_detection_s when negative) past the peer's death,
  /// charged as detection overhead in RunReport::recovery.
  template <typename T>
  [[nodiscard]] bool try_send(int dst, T value, std::size_t bytes, int tag = 0,
                              double timeout_s = -1.0) {
    return engine_->core_try_send(rank_, world_rank_of(dst), tag,
                                  Packet{std::move(value), bytes},
                                  resolve_timeout(timeout_s), group_->id);
  }

  /// Receive that survives a dead peer: the value when `src` delivered one
  /// (messages posted before the sender's death are still delivered);
  /// nullopt when `src` is dead with nothing pending, with the same
  /// detection accounting as try_send.
  template <typename T>
  [[nodiscard]] std::optional<T> try_recv(int src, int tag = 0,
                                          double timeout_s = -1.0) {
    std::optional<Packet> p = engine_->core_try_recv(
        rank_, world_rank_of(src), tag, resolve_timeout(timeout_s));
    if (!p.has_value()) return std::nullopt;
    return p->take<T>();
  }

  /// RAII marker for re-executed work: compute charged while at least one
  /// scope is open is additionally counted as recomputed overhead in
  /// RunReport::recovery.
  class RecoveryScope {
   public:
    explicit RecoveryScope(Comm& comm) : comm_(&comm) {
      comm_->engine_->core_set_recovery(comm_->rank_, true);
    }
    ~RecoveryScope() { comm_->engine_->core_set_recovery(comm_->rank_, false); }
    RecoveryScope(const RecoveryScope&) = delete;
    RecoveryScope& operator=(const RecoveryScope&) = delete;

   private:
    Comm* comm_;
  };

  /// Tags `seconds` of already-charged time on this rank as redistribution
  /// overhead (the fault-tolerant master calls this around re-partitioning
  /// and re-issuing lost work).
  void note_redistribution(double seconds) {
    engine_->core_note_redistribution(rank_, seconds);
  }

 private:
  [[nodiscard]] double resolve_timeout(double timeout_s) const {
    return timeout_s >= 0.0 ? timeout_s : engine_->options_.fault_detection_s;
  }

  void check_local(int local) const {
    HPRS_REQUIRE(local >= 0 && local < size(),
                 "rank " + std::to_string(local) +
                     " out of range for a communicator of size " +
                     std::to_string(size()));
  }

  Engine* engine_;
  Group* group_;
  int local_;  ///< rank within group_
  int rank_;   ///< rank on the engine's full platform
  /// Number of split() calls issued through this Comm; part of the derived
  /// child-communicator id.  split() is collective, so every member's
  /// counter agrees.
  std::uint64_t split_seq_ = 0;
  // Reused staging buffers (this Comm is single-context, see the class
  // comment): collective inputs are moved through these instead of a fresh
  // vector per call.
  std::vector<Packet> scatter_stage_;
  std::vector<std::pair<int, Packet>> exchange_stage_;
};

}  // namespace hprs::vmpi
