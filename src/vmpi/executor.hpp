// Bounded fiber executor for the virtual message-passing engine.
//
// Runs N rank bodies on at most min(N, hardware_concurrency) OS threads by
// giving each body its own ucontext fiber (stack + saved registers).  A
// blocked rank *parks*: it atomically publishes its wait, releases the
// engine lock, and switches back to the worker's scheduler context, which
// picks the next runnable fiber -- so a 256-rank simulation needs 256 small
// stacks but only as many kernel threads as the host has cores (zero extra
// threads on a single-core host, where the calling thread doubles as the
// only worker).
//
// Wakeups are targeted: notify(i) moves exactly fiber i to the ready queue
// (or absorbs into its in-flight park), replacing the engine's former
// notify_all thundering herd.
//
// Deadlock detection is exact rather than timer-based when possible: the
// executor owns every thread that could ever wake a parked fiber, so
// "ready queue empty, nothing running, not everyone done" proves no future
// wakeup can occur.  All parked fibers are then expired (park returns
// true) and re-check their predicates, which lets the engine poison the
// run immediately instead of waiting out the wall-clock deadline.  The
// per-park deadline remains as a safety net for fibers blocked while
// others still run.
//
// Host scheduling freedom (which worker resumes which fiber, in what
// order) never reaches the caller: parked fibers observe only their own
// notify/expiry, exactly like threads blocked on per-rank condition
// variables.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace hprs::vmpi {

class Executor {
 public:
  using Clock = std::chrono::steady_clock;

  struct Config {
    /// Worker thread cap; 0 means min(bodies, hardware_concurrency).
    std::size_t workers = 0;
    /// Stack size per fiber.
    std::size_t stack_bytes = std::size_t{1} << 20;
  };

  Executor();
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Runs every body to completion (bodies[i] is fiber/task i) and returns
  /// when all have finished.  Rethrows the first exception that escaped a
  /// body.  Must not be called from inside one of its own fibers.
  void run(std::vector<std::function<void()>> bodies, const Config& config);

  /// Fiber-only.  Parks the calling fiber: atomically (with respect to
  /// notify) registers the park, releases `lock`, and suspends.  `lock`
  /// is re-acquired before returning.  Returns true if the park expired --
  /// by `deadline`, or instantly via quiescent-deadlock detection -- rather
  /// than being notified; the caller must then re-check its predicate
  /// before treating the expiry as a deadlock.  Pass Clock::time_point::
  /// max() for no deadline.
  [[nodiscard]] bool park(std::unique_lock<std::mutex>& lock,
                          Clock::time_point deadline);

  /// Makes task i runnable if it is parked (or parking); no-op otherwise.
  /// Callable from any fiber or thread, including under the caller's own
  /// external lock (the engine calls it with the engine mutex held).
  void notify(std::size_t task);
  void notify_all();

 private:
  struct Task;
  struct Worker;

  void worker_loop();
  void resume(Worker& worker, Task& task);
  void switch_to_scheduler(Task& task);
  static void trampoline(unsigned hi, unsigned lo);

  /// Fiber identity for park(); saved/restored across nested executors.
  static thread_local Task* tls_current_task_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Task>> tasks_;  // stable addresses
  std::deque<Task*> ready_;
  std::size_t running_ = 0;  // fibers currently on a worker
  std::size_t done_ = 0;
  std::exception_ptr first_error_;

  // Scheduling telemetry, guarded by mu_ and published into obs::Metrics
  // (Domain::kHost -- all of it depends on host interleaving) at the end of
  // run().
  std::uint64_t obs_parks_ = 0;        // fibers suspended
  std::uint64_t obs_ready_moves_ = 0;  // notify/notify_all made a task ready
  std::uint64_t obs_expirations_ = 0;  // deadline or quiescence expiries
};

}  // namespace hprs::vmpi
