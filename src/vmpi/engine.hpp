// Discrete-event virtual message-passing engine.
//
// Executes an SPMD program -- one callable invoked once per rank -- on a
// simulated simnet::Platform.  Ranks run as host execution contexts so the
// program's *numerics* are real, while *time* is virtual:
//
//   compute  : seconds = flops * 1e-6 * w_rank        (w in s/megaflop)
//   transfer : seconds = bytes*8/1e6 * c_ij / 1000    (c in ms/megabit)
//              + a fixed per-message latency
//
// Transfers contend for two resource classes, each modeled as a
// busy-until time: the per-processor NIC (a workstation transmits or
// receives one message at a time, which makes broadcasts linear, as on a
// network of workstations), and the serial links between communication
// segments (the paper's fully heterogeneous network interconnects its four
// segments with serial links).
//
// Host execution comes in two modes with bit-identical virtual results
// (DESIGN.md §8):
//
//  - kBoundedExecutor (default): ranks are fibers multiplexed on at most
//    min(p, hardware_concurrency) worker threads by vmpi::Executor, so a
//    256-rank Thunderhead run does not spawn 256 kernel threads;
//  - kThreadPerRank: one OS thread per rank (the original scheme), kept
//    for differential testing and selectable at runtime with the
//    HPRS_THREAD_PER_RANK environment variable.
//
// Determinism: collective cost models run once -- executed by the
// last-arriving rank under the engine lock -- scheduling member transfers
// in rank order, so the coordinator's identity never affects results.  For
// point-to-point transfers the receiver computes the schedule and the
// sender applies its own half of the accounting when it completes the
// send, which keeps every rank's stats, clock, and trace owned by exactly
// one execution context at a time.  Virtual results are therefore
// bit-identical across runs, host schedules, and execution modes.
// Point-to-point send/recv is deterministic whenever, as in all the
// shipped algorithms, concurrently outstanding matches do not share
// resources.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "obs/snapshot.hpp"
#include "simnet/platform.hpp"
#include "vmpi/fault.hpp"
#include "vmpi/packet.hpp"
#include "vmpi/stats.hpp"

namespace hprs::vmpi {

class Comm;
class Executor;

/// Collective-operation tags, shared by the per-group rendezvous state and
/// the deadlock diagnostics.
enum class CollectiveKind : std::uint8_t {
  kNone,
  kBarrier,
  kBcast,
  kGather,
  kScatter,
  kExchange,
};

/// One communicator's identity and collective-rendezvous state.
///
/// A Group maps the communicator's local ranks onto engine (world) ranks
/// and owns the per-collective staging slots that used to live directly in
/// the engine; giving every communicator its own copy is what lets
/// disjoint sub-communicators run collectives *concurrently* -- the
/// MPI_Comm_split semantics the multi-job scheduler (src/sched/) gangs
/// jobs with.  The world communicator is simply the group {0..p-1} with
/// id 0.
///
/// Identity is content-derived (a SplitMix64 hash of the parent group id
/// and the split/creation key), so the same program produces the same
/// group ids on every run and in both executor modes -- nothing
/// schedule-dependent ever enters the engine's deterministic state.
///
/// All fields except `id`/`members`/`root_local`/`platform` are guarded by
/// the engine mutex; the immutable identity fields are safe to read from
/// any rank context once the group exists.
struct Group {
  Group(std::uint64_t id_, std::vector<int> members_, int root_local_,
        simnet::Platform platform_)
      : id(id_),
        members(std::move(members_)),
        root_local(root_local_),
        platform(std::move(platform_)) {}

  std::uint64_t id = 0;
  /// Local rank -> world rank, in local-rank order.
  std::vector<int> members;
  /// The rank that plays master inside this communicator (world: the
  /// engine root; sub-communicators: local rank 0).
  int root_local = 0;
  /// Restricted platform view: processor i is the spec of world rank
  /// members[i], with the segment structure of the full platform.  Lets
  /// the WEA partition over exactly the ranks of this communicator.
  simnet::Platform platform;

  [[nodiscard]] int size() const { return static_cast<int>(members.size()); }
  [[nodiscard]] int world_rank(int local) const {
    return members[static_cast<std::size_t>(local)];
  }

  // --- collective rendezvous state (engine mutex) ---
  CollectiveKind coll_kind = CollectiveKind::kNone;
  int coll_root = -1;  ///< local rank
  int arrived = 0;
  std::uint64_t generation = 0;
  std::vector<Packet> inputs;
  std::vector<std::vector<Packet>> scatter_parts;
  std::vector<std::vector<std::pair<int, Packet>>> exchange_in;
  std::vector<Packet> single_out;
  std::vector<std::vector<Packet>> multi_out;
  std::vector<std::vector<std::pair<int, Packet>>> exchange_out;

  // --- counter plane (engine mutex; see obs/snapshot.hpp) ---
  /// Scope label this group's snapshot samples are filed under; "world"
  /// for group 0, "comm_<id>" by default, overridden per job through
  /// Comm::label_snapshots.
  std::string snap_scope;
  /// Per-group stable counters, sampled at collective boundaries.  Indexed
  /// by CollectiveKind like Engine::ObsCounters; [0] stays unused.
  std::uint64_t coll_count[6] = {};
  std::uint64_t coll_bytes[6] = {};
  std::uint64_t p2p_messages = 0;
  std::uint64_t p2p_bytes = 0;
  /// Seeded virtual-time sampling schedule; initialized lazily on the
  /// group's first collective so disabled runs never draw from it.
  obs::SnapshotCadence snap_cadence;
  bool snap_init = false;
};

/// How rank bodies are mapped onto host threads.  Virtual results are
/// bit-identical across modes; only host cost differs.
enum class ExecMode : std::uint8_t {
  kBoundedExecutor,  ///< fibers on <= min(p, hardware_concurrency) threads
  kThreadPerRank,    ///< one OS thread per rank
};

struct Options {
  /// Fixed virtual latency added to every message.
  double per_message_latency_s = 1e-4;
  /// Wall-clock bound on how long a rank may block waiting for a peer
  /// before the engine declares deadlock (host seconds, not virtual).  The
  /// bounded executor additionally proves deadlocks instantly when every
  /// rank is blocked.
  double deadlock_timeout_s = 120.0;
  /// Rank that plays master in the report decomposition.
  int root = 0;
  /// Record a per-rank timeline of compute/transfer/idle intervals into
  /// RunReport::trace (see vmpi/trace.hpp).
  bool enable_trace = false;
  /// Host execution mode; HPRS_THREAD_PER_RANK (non-empty, non-"0")
  /// overrides to kThreadPerRank.
  ExecMode exec_mode = ExecMode::kBoundedExecutor;
  /// Worker-thread cap for kBoundedExecutor; 0 means
  /// min(p, hardware_concurrency).
  std::size_t executor_workers = 0;
  /// Per-rank fiber stack for kBoundedExecutor; 0 means 1 MiB.  The
  /// HPRS_FIBER_STACK_KB environment variable overrides.
  std::size_t fiber_stack_bytes = 0;
  /// Injected failures, all in virtual time (see vmpi/fault.hpp).  An empty
  /// plan leaves every run bit-identical to a fault-free engine.
  FaultPlan fault_plan;
  /// Default virtual-time heartbeat for Comm::try_send / try_recv: how long
  /// a rank waits past a dead peer's death before declaring it lost.
  double fault_detection_s = 0.1;
  /// Counter-plane snapshot service (off by default).  Enabling it samples
  /// per-communicator stable pvars on a seeded virtual-time cadence into
  /// RunReport::snapshots; virtual results are unaffected either way.
  obs::SnapshotConfig snapshot;
};

class Engine {
 public:
  explicit Engine(simnet::Platform platform, Options options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `program` once per rank and returns the timing report.  Rethrows
  /// the first exception thrown by any rank.
  RunReport run(const std::function<void(Comm&)>& program);

  [[nodiscard]] const simnet::Platform& platform() const { return platform_; }
  [[nodiscard]] int size() const { return static_cast<int>(platform_.size()); }

 private:
  friend class Comm;

  // --- type-erased operation core, called via Comm ---
  /// `charge_launch` lets streamed sweeps model one batched kernel launch:
  /// only the first tile of a sweep pays the accelerator's fixed launch
  /// latency; later tiles charge pure flops time.  Default true keeps every
  /// historic call site's arithmetic untouched.
  void core_compute(int rank, std::uint64_t flops, Phase phase,
                    bool charge_launch = true);
  /// Charges `rank` the host->device staging time for copying `bytes` of
  /// input onto its accelerator (comm bucket).  Exact no-op on
  /// non-accelerated ranks, so historic platforms keep their clocks.
  void core_stage(int rank, std::uint64_t bytes);
  /// Enqueues an asynchronous host->device tile copy on `rank`'s staging
  /// pipe (one DMA engine: tiles serialize on the pipe but overlap the
  /// rank's compute).  Returns the virtual completion time of the copy
  /// without advancing the rank's clock; 0.0 on non-accelerated ranks.
  [[nodiscard]] double core_stage_async(int rank, std::uint64_t bytes);
  /// Blocks `rank` until the staging completion time `until` (as returned
  /// by core_stage_async): any exposed gap is charged to the comm bucket,
  /// matching the synchronous core_stage accounting.  No-op when the clock
  /// is already past `until`.
  void core_stage_wait(int rank, double until);
  /// Advances `rank`'s clock to at least `deadline` (virtual seconds),
  /// charging the gap as wait time.  A no-op when the clock is already
  /// past the deadline.  Used by the scheduler to pace job arrivals.
  void core_sleep_until(int rank, double deadline);
  /// Snapshot of `rank`'s own stats (rank-confined, safe without the
  /// engine lock from the rank's execution context).
  [[nodiscard]] RankStats core_stats(int rank) const;
  // Collectives take the communicator's Group and the caller's *local*
  // rank; roots and exchange destinations are local too.  The group maps
  // them onto world ranks for transfer scheduling and accounting.
  void core_barrier(Group& group, int rank);
  Packet core_bcast(Group& group, int rank, int root, Packet payload);
  std::vector<Packet> core_gather(Group& group, int rank, int root,
                                  Packet payload);
  /// Scatter: the root fills `parts` (one per member); the engine moves the
  /// elements out and leaves the vector's capacity with the caller for
  /// reuse.
  Packet core_scatter(Group& group, int rank, int root,
                      std::vector<Packet>& parts);
  /// Deterministic generalized all-to-all: every member contributes a list
  /// of (destination, packet) sends; the coordinator schedules all
  /// transfers in (src, dst) order and each member receives its incoming
  /// packets tagged with their source rank.  Used for halo exchanges.
  /// Element contents are moved out of `sends`; its capacity stays with the
  /// caller.
  std::vector<std::pair<int, Packet>> core_exchange(
      Group& group, int rank, std::vector<std::pair<int, Packet>>& sends);
  /// Idempotent registration of a sub-communicator: returns the existing
  /// group when `id` is already known (validating that `members` match) or
  /// creates it with a platform restricted to `members`.  Every member of a
  /// new communicator calls this with identical arguments; the first caller
  /// creates, the rest attach.
  Group& ensure_group(std::uint64_t id, const std::vector<int>& members);
  // P2p send-side entry points take the communicator's group id as
  // `channel`: inter-segment link serialization is scoped per communicator
  // (see schedule_transfer_locked), and a message contends on the channel
  // of the communicator it was sent over.
  void core_send(int rank, int dst, int tag, Packet payload,
                 std::uint64_t channel);
  Packet core_recv(int rank, int src, int tag);
  /// Fault-aware rendezvous send: true when `dst` matched the message,
  /// false when `dst` is dead (the posting is withdrawn and this rank's
  /// clock advances past the peer's death by `timeout_s` -- the virtual
  /// heartbeat -- charged as detection overhead).
  [[nodiscard]] bool core_try_send(int rank, int dst, int tag, Packet payload,
                                   double timeout_s, std::uint64_t channel);
  /// Fault-aware receive: the payload when `src` delivered one, nullopt
  /// when `src` is dead with nothing pending (same detection accounting as
  /// core_try_send).
  [[nodiscard]] std::optional<Packet> core_try_recv(int rank, int src, int tag,
                                                    double timeout_s);
  /// Renames the snapshot scope of `group` (e.g. "job:7/atdca" instead of
  /// the default "comm_<id>"); every member calls it with the same label
  /// right after creating the communicator, so it lands before the group's
  /// first sample.
  void core_label_snapshots(Group& group, std::string_view label);
  /// Appends one caller-assembled pvar sample at `rank`'s current virtual
  /// clock (used by the scheduler's dispatcher for queue-depth series).
  void core_snapshot_sample(int rank, std::string_view scope,
                            const obs::PvarSet& pvars);
  /// Tags `seconds` of already-charged master time as redistribution
  /// overhead in the recovery decomposition.
  void core_note_redistribution(int rank, double seconds);
  /// Enters/leaves a recovery scope: compute charged while the scope is
  /// open is additionally counted as recomputed work.  Nestable.
  void core_set_recovery(int rank, bool on);
  /// Nonblocking send: posts the message and returns a handle immediately;
  /// the sender's clock does not advance until core_wait_send, which
  /// blocks until the receiver has matched the message and then advances
  /// the sender's clock to the transfer completion (never backwards, so
  /// compute performed between isend and wait overlaps the transfer).
  [[nodiscard]] std::uint64_t core_isend(int rank, int dst, int tag,
                                         Packet payload,
                                         std::uint64_t channel);
  void core_wait_send(int rank, std::uint64_t handle);
  [[nodiscard]] double core_now(int rank) const;

  // --- scratch recycling (rank-confined; see the pool comments below) ---
  void core_recycle_gather(int rank, std::vector<Packet> buffer);
  void core_recycle_exchange(int rank,
                             std::vector<std::pair<int, Packet>> buffer);

  // --- collective machinery (all called with mutex_ held) ---
  void begin_collective(Group& group, int rank, CollectiveKind kind,
                        int root);
  void finish_collective_locked(Group& group);
  void wait_for_generation(std::unique_lock<std::mutex>& lock, Group& group,
                           int rank, std::uint64_t generation);

  // --- host-side blocking layer (two implementations, one protocol) ---
  /// Blocks `rank` until woken or the deadline expires; returns true on
  /// expiry (which, like a spurious wakeup, obliges the caller to re-check
  /// its predicate before concluding deadlock).
  bool wait_rank(std::unique_lock<std::mutex>& lock, int rank,
                 std::chrono::steady_clock::time_point deadline);
  void wake_rank_locked(int rank);
  void wake_all_locked();

  /// Schedules one transfer src -> dst: claims NIC and inter-segment
  /// resources, advances them, and returns the completion time.  `ready` is
  /// the earliest the sender-side data is available.  When `active_out` is
  /// non-null it receives the wire seconds of this transfer (computed with
  /// the link capacity in effect at the transfer's start, so degradation
  /// windows apply consistently to schedule and accounting).
  ///
  /// `channel` scopes the inter-segment link serialization: transfers of
  /// the same communicator serialize on the backbone in the deterministic
  /// order their coordinator schedules them, while communicators with
  /// disjoint members (concurrent scheduler gangs) get independent
  /// backbone reservations.  Cross-communicator serialization would make
  /// virtual time depend on which gang's host thread reached the engine
  /// lock first -- the one ordering the discrete-event core cannot make
  /// deterministic without a global event queue.  Per-rank NICs
  /// (nic_free_) stay globally shared: a rank executes its operations in
  /// program order, so that state is race-free by construction.
  double schedule_transfer_locked(std::uint64_t channel, int src, int dst,
                                  std::size_t bytes, double ready,
                                  double* active_out = nullptr);

  /// Charges comm/wait stats for a rank that participated in a transfer
  /// finishing at `end`, having been ready at `ready`, with `active`
  /// seconds of actual wire time.
  void account_transfer_locked(int rank, double ready, double end,
                               double active, std::uint64_t bytes_out,
                               std::uint64_t bytes_in);

  /// Samples `group`'s counter plane into timeline_ if its snapshot
  /// cadence has come due at the group's current collective boundary.
  /// Called from finish_collective_locked with every member blocked, so
  /// the sampled values are a pure function of the group's program order.
  void maybe_snapshot_group_locked(Group& group);
  /// Assembles the pvar sample for `group` (collective/p2p counters plus
  /// member stats totals).
  [[nodiscard]] obs::PvarSet group_pvars_locked(const Group& group) const;

  void poison_locked(const std::string& reason);
  void check_poison_locked() const;

  /// Publishes the per-run ObsCounters (and report-derived totals) into
  /// obs::Metrics.  Called once at the end of run(); a disabled registry
  /// returns immediately.
  void publish_metrics(const RunReport& report) const;

  // --- fault machinery (see vmpi/fault.hpp for the model) ---
  /// Lifecycle of a rank's execution context during one run.
  enum class RankState : std::uint8_t { kRunning, kCrashed, kFinished };
  /// What a parked rank is blocked on, for deadlock diagnostics.  Written
  /// by the owning rank under the engine lock, read by whichever rank
  /// declares deadlock.
  struct WaitInfo {
    enum class What : std::uint8_t {
      kNone,
      kCollective,
      kSend,
      kRecv,
      kWaitSend,
      kTrySend,
      kTryRecv,
    };
    What what = What::kNone;
    int peer = -1;  ///< p2p peer, or the collective root
    int tag = 0;
    CollectiveKind coll = CollectiveKind::kNone;
  };

  /// Kills `rank` (fail-stop) if its clock has reached its planned crash
  /// time: records the death, wakes peers (or poisons a pending
  /// collective), and unwinds the rank body via an internal signal that
  /// run() absorbs without treating it as an error.
  void maybe_crash_locked(int rank);
  [[noreturn]] void die_locked(int rank);
  /// Link capacity src-segment -> dst-segment for a transfer starting at
  /// virtual time `at`, with any matching degradation windows applied.
  [[nodiscard]] double effective_link_ms_locked(std::size_t s, std::size_t d,
                                                double at) const;
  /// Number of consecutive lost attempts for the next transfer on the
  /// (src, dst, tag) queue (0 when the loss model is off): a pure function
  /// of the plan seed and the per-queue sequence number.
  std::uint64_t loss_attempts_locked(int src, int dst, int tag);
  /// Receiver's half of matching a pending send: applies the loss model,
  /// schedules and accounts the transfer, and records the sender's half on
  /// the posting.  Shared by core_recv and core_try_recv.
  struct PendingSend;
  Packet match_recv_locked(int rank, int src, int tag, PendingSend& ps);
  /// Charges the virtual heartbeat wait for discovering `peer` dead and
  /// logs the detection event.
  void charge_detection_locked(int rank, int peer, double timeout_s);
  /// One-line-per-rank description of every blocked or crashed rank, for
  /// deadlock diagnostics.
  [[nodiscard]] std::string describe_blocked_locked() const;
  [[nodiscard]] std::string peer_failure_locked(const char* op, int rank,
                                                int peer, int tag) const;

  simnet::Platform platform_;
  Options options_;

  mutable std::mutex mutex_;
  /// Thread-per-rank mode: one condition slot per rank, so a wakeup
  /// targets exactly the rank it is for.  Unused in executor mode.
  std::unique_ptr<std::condition_variable[]> rank_cvs_;
  /// Bounded-executor mode: set for the duration of run(); park/notify
  /// replace the condition variables.
  Executor* executor_ = nullptr;

  // Virtual state.  A rank's clock/stats are mutated either by its own
  // execution context (while running) or by the collective coordinator
  // (while the rank is blocked), never concurrently.
  std::vector<RankStats> stats_;
  /// Per-rank trace buffers (only filled when options_.enable_trace); a
  /// rank's buffer is mutated by its own context or by the collective
  /// coordinator while the rank is blocked, like its clock.
  std::vector<std::vector<TraceEvent>> trace_;
  std::vector<double> nic_free_;  // per-processor NIC busy-until
  /// Per-rank staging-pipe busy-until for core_stage_async (the accelerator
  /// DMA engine).  Rank-confined like stats_: only rank r's context issues
  /// stages on pipe r, so no lock is needed.
  std::vector<double> stage_pipe_free_;
  /// Rank-confined counters of async-staged tiles/bytes, published as
  /// vmpi.stage.* metrics (gated on nonzero so historic goldens keep their
  /// exact key sets).
  std::vector<std::uint64_t> stage_tiles_;
  std::vector<std::uint64_t> stage_bytes_;
  /// Inter-segment serial link busy-until, keyed by (communicator channel,
  /// ordered segment pair) -- see schedule_transfer_locked for why the
  /// backbone reservation is scoped per communicator.
  std::map<std::tuple<std::uint64_t, std::size_t, std::size_t>, double>
      xlink_free_;

  // Communicator groups, keyed by content-derived id.  Group 0 is the
  // world communicator, created at the top of run(); sub-communicators are
  // registered through ensure_group and live until the run ends.  Each
  // group carries its own collective-rendezvous state (the out/in vectors
  // persist across generations -- only elements are moved through them --
  // so a long run's collectives stop allocating once warm).
  std::map<std::uint64_t, std::unique_ptr<Group>> groups_;
  Group* world_ = nullptr;

  // Recycled gather-result / exchange-result buffers.  Slot r is only ever
  // touched by rank r (its Comm returns a drained vector here; its next
  // core_gather/core_exchange adopts the capacity), so the slots are
  // rank-confined and need no locking of their own.
  std::vector<std::vector<Packet>> gather_pool_;
  std::vector<std::vector<std::pair<int, Packet>>> exchange_pool_;

  // Point-to-point mailboxes keyed by (src, dst, tag).  std::list gives the
  // sender a stable element to block on while the receiver matches it.  The
  // receiver computes the transfer schedule and records the sender's half
  // (end/active/bytes); the sender applies it to its own stats when it
  // completes the send, so no context ever touches a running rank's stats.
  struct PendingSend {
    Packet payload;
    double ready = 0.0;
    bool matched = false;     // receiver has taken the payload and timed it
    double sender_end = 0.0;  // sender's completion time once matched
    double active = 0.0;      // wire seconds, for the sender's accounting
    std::uint64_t bytes = 0;  // wire bytes, for the sender's accounting
    std::uint64_t handle = 0;  // nonzero for isend postings
    std::uint64_t channel = 0;  // communicator id, scopes xlink contention
  };
  std::map<std::tuple<int, int, int>, std::list<PendingSend>> mailbox_;
  std::uint64_t next_send_handle_ = 1;

  // Fault state.  crash_time_ is written once before the rank contexts
  // start and read lock-free by each rank's own context; everything else is
  // mutated under the engine lock, except the rank-confined recovery
  // accumulators (slot r is only touched from rank r's context, like
  // stats_).
  std::vector<RankState> rank_state_;
  std::vector<double> crash_time_;  ///< earliest clock at which a rank dies
  std::vector<double> death_time_;  ///< frozen clock of a crashed rank
  int crashed_count_ = 0;
  std::vector<FaultEvent> fault_log_;
  std::vector<RecoveryStats> recovery_;    // rank-confined accumulators
  std::vector<std::uint8_t> in_recovery_;  // rank-confined scope depth
  std::vector<WaitInfo> waiting_;
  /// Per-(src, dst, tag) transfer sequence numbers for the loss model.
  std::map<std::tuple<int, int, int>, std::uint64_t> loss_seq_;

  // Per-run observability accumulators (published into obs::Metrics once at
  // the end of run()).  Bumped only on paths that already hold mutex_, so
  // telemetry never adds a lock acquisition to a hot path; plain integers
  // keep the cost of the disabled case to a handful of increments.
  struct ObsCounters {
    // Indexed by CollectiveKind; [0] (kNone) stays unused.
    std::uint64_t collectives[6] = {};
    std::uint64_t collective_wire_bytes[6] = {};
    std::uint64_t p2p_messages = 0;
    std::uint64_t p2p_wire_bytes = 0;
    // Host-domain (scheduling-dependent) observations.
    std::uint64_t wakeups_targeted = 0;
    std::uint64_t wakeups_broadcast = 0;
    std::uint64_t mailbox_depth_max = 0;
  };
  ObsCounters obs_;
  /// Counter-plane snapshot timeline (engine mutex); cleared at the top of
  /// run() and moved into RunReport::snapshots at the end.
  obs::SnapshotTimeline timeline_;
  /// Wire bytes of every transfer scheduled since run() started;
  /// finish_collective_locked differences it around the fan-out to obtain
  /// per-collective-kind byte totals.
  std::uint64_t obs_scheduled_bytes_ = 0;

  bool poisoned_ = false;
  std::string poison_reason_;
};

}  // namespace hprs::vmpi
