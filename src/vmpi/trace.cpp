#include "vmpi/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace hprs::vmpi {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kCompute: return "compute";
    case TraceKind::kTransmit: return "transmit";
    case TraceKind::kReceive: return "receive";
    case TraceKind::kIdle: return "idle";
    case TraceKind::kStage: return "stage";
  }
  return "?";
}

std::string trace_csv(const RunReport& report) {
  std::ostringstream out;
  out << "rank,kind,begin,end,amount\n";
  for (const auto& e : report.trace) {
    out << e.rank << ',' << to_string(e.kind) << ',' << e.begin << ','
        << e.end << ',' << e.amount << '\n';
  }
  return out.str();
}

std::string render_gantt(const RunReport& report, std::size_t width) {
  HPRS_REQUIRE(width >= 8, "gantt width too small");
  const double total = report.total_time;
  std::ostringstream out;
  out << "virtual timeline, 0 .. " << total
      << " s (c=compute s=send r=receive d=stage .=idle)\n";
  if (total <= 0.0) return out.str();

  // Priority per glyph: compute paints over transfers over idle.
  const auto glyph_rank = [](char g) {
    switch (g) {
      case 'c': return 3;
      case 's': return 2;
      case 'r': return 2;
      case 'd': return 2;
      case '.': return 1;
      default: return 0;
    }
  };
  std::vector<std::string> rows(report.ranks.size(),
                                std::string(width, ' '));
  for (const auto& e : report.trace) {
    char g = ' ';
    switch (e.kind) {
      case TraceKind::kCompute: g = 'c'; break;
      case TraceKind::kTransmit: g = 's'; break;
      case TraceKind::kReceive: g = 'r'; break;
      case TraceKind::kIdle: g = '.'; break;
      case TraceKind::kStage: g = 'd'; break;
    }
    const auto col = [&](double t) {
      return std::min(width - 1, static_cast<std::size_t>(
                                     t / total * static_cast<double>(width)));
    };
    auto& row = rows[static_cast<std::size_t>(e.rank)];
    for (std::size_t c = col(e.begin); c <= col(e.end); ++c) {
      if (glyph_rank(g) > glyph_rank(row[c])) row[c] = g;
    }
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out << (static_cast<int>(r) == report.root ? "root " : "     ");
    out << 'r';
    if (r < 10) out << '0';
    out << r << " |" << rows[r] << "|\n";
  }
  return out.str();
}

}  // namespace hprs::vmpi
