// Per-rank accounting and the run report the benches consume.
//
// The paper decomposes each run into COM (communication), SEQ (computations
// performed by the root with no other parallel task active) and PAR (all
// other computation, including worker idle time), and reports the imbalance
// D = R_max / R_min over processor run times, both over all processors
// (D_all) and excluding the root (D_minus).  RunReport reproduces those
// definitions.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/snapshot.hpp"
#include "vmpi/fault.hpp"

namespace hprs::vmpi {

/// Accounting bucket for compute charges.  Algorithms mark master-only
/// steps as kSequential; everything else is kParallel.
enum class Phase : std::uint8_t { kParallel, kSequential };

struct RankStats {
  double clock = 0.0;        ///< virtual time at program end (seconds)
  double compute_par = 0.0;  ///< compute charged in Phase::kParallel
  double compute_seq = 0.0;  ///< compute charged in Phase::kSequential
  double comm = 0.0;         ///< active transfer time (sending/receiving)
  double wait = 0.0;         ///< idle time blocked at operations
  std::uint64_t flops = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  /// Time the processor was doing useful work (the "run time" of the
  /// paper's imbalance metric).
  [[nodiscard]] double busy() const { return compute_par + compute_seq + comm; }
};

/// What a trace interval represents (see vmpi/trace.hpp for rendering).
enum class TraceKind : std::uint8_t {
  kCompute,   ///< flops charged (amount = flops)
  kTransmit,  ///< active wire time sending (amount = bytes)
  kReceive,   ///< active wire time receiving (amount = bytes)
  kIdle,      ///< blocked at a collective or rendezvous
  kStage,     ///< host->device copy on the staging pipe (amount = bytes);
              ///< asynchronous spans may overlap the rank's compute spans
};

/// One recorded interval of a rank's virtual timeline (only collected when
/// Options::enable_trace is set).
struct TraceEvent {
  int rank = 0;
  TraceKind kind = TraceKind::kCompute;
  double begin = 0.0;  ///< virtual seconds
  double end = 0.0;
  std::uint64_t amount = 0;  ///< flops or bytes
};

struct RunReport {
  double total_time = 0.0;  ///< max final virtual clock over ranks
  int root = 0;
  std::vector<RankStats> ranks;
  /// Chronological event log (empty unless tracing was enabled).
  std::vector<TraceEvent> trace;
  /// Injected faults and their consequences (crashes, detections, lost
  /// message attempts), sorted by (time, kind, rank, peer, attempt) so the
  /// log is bit-identical across host schedules.  Empty for fault-free runs.
  std::vector<FaultEvent> fault_events;
  /// Recovery-overhead decomposition summed over ranks (all zero without
  /// faults): detection waits, master redistribution time, recomputed work.
  RecoveryStats recovery;
  /// Counter-plane snapshot timeline in canonical (t_s, scope, seq) order
  /// (empty unless Options::snapshot.enabled); see obs/snapshot.hpp.
  obs::SnapshotTimeline snapshots;

  /// COM: the root's communication time.  In the master/worker algorithms
  /// every transfer touches the root, so this is the communication span of
  /// the run.
  [[nodiscard]] double com() const { return ranks[size_t(root)].comm; }
  /// SEQ: root-only computation.
  [[nodiscard]] double seq() const { return ranks[size_t(root)].compute_seq; }
  /// PAR: the rest of the timeline (includes worker idle time, as in the
  /// paper).
  [[nodiscard]] double par() const {
    const double p = total_time - com() - seq();
    return p > 0.0 ? p : 0.0;
  }

  [[nodiscard]] double imbalance_all() const;
  [[nodiscard]] double imbalance_minus_root() const;

  [[nodiscard]] std::uint64_t total_bytes_moved() const;
  [[nodiscard]] std::uint64_t total_flops() const;
};

}  // namespace hprs::vmpi
