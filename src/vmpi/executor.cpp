#include "vmpi/executor.hpp"

#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>

#include <ucontext.h>

#include "common/error.hpp"
#include "obs/metrics.hpp"

// --- sanitizer fiber support ------------------------------------------------
// Stack-switching confuses ASan (stack bounds) and TSan (which "thread" is
// running) unless every switch is announced.  The hooks compile to no-ops in
// plain builds.
#if defined(__SANITIZE_ADDRESS__)
#define HPRS_ASAN_FIBERS 1
#endif
#if defined(__SANITIZE_THREAD__)
#define HPRS_TSAN_FIBERS 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HPRS_ASAN_FIBERS 1
#endif
#if __has_feature(thread_sanitizer)
#define HPRS_TSAN_FIBERS 1
#endif
#endif

#if defined(HPRS_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(HPRS_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

namespace hprs::vmpi {

namespace {

void asan_start_switch([[maybe_unused]] void** fake_stack_save,
                       [[maybe_unused]] const void* target_bottom,
                       [[maybe_unused]] std::size_t target_size) {
#if defined(HPRS_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(fake_stack_save, target_bottom, target_size);
#endif
}

void asan_finish_switch([[maybe_unused]] void* fake_stack_save,
                        [[maybe_unused]] const void** from_bottom,
                        [[maybe_unused]] std::size_t* from_size) {
#if defined(HPRS_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(fake_stack_save, from_bottom, from_size);
#endif
}

void* tsan_create_fiber() {
#if defined(HPRS_TSAN_FIBERS)
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

void* tsan_current_fiber() {
#if defined(HPRS_TSAN_FIBERS)
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

void tsan_switch_fiber([[maybe_unused]] void* fiber) {
#if defined(HPRS_TSAN_FIBERS)
  __tsan_switch_to_fiber(fiber, 0);
#endif
}

void tsan_destroy_fiber([[maybe_unused]] void* fiber) {
#if defined(HPRS_TSAN_FIBERS)
  __tsan_destroy_fiber(fiber);
#endif
}

}  // namespace

struct Executor::Task {
  enum class Phase : std::uint8_t {
    kReady,    // in the ready queue
    kRunning,  // on a worker
    kParking,  // announced a park; the swap out has not yet been observed
    kParked,   // off-worker, waiting for notify / expiry
    kDone,
  };

  Executor* exec = nullptr;
  std::size_t index = 0;
  std::function<void()> body;

  // Scheduling state, guarded by Executor::mu_.
  Phase phase = Phase::kReady;
  bool notified = false;   // notify() landed during the kParking window
  bool timed_out = false;  // resumed by deadline expiry / deadlock detection
  Clock::time_point deadline = Clock::time_point::max();

  // Context state, touched only by the worker currently running the fiber
  // (successive runs are ordered through mu_).
  bool started = false;
  std::unique_ptr<char[]> stack;  // default-init: pages commit lazily
  std::size_t stack_bytes = 0;
  ucontext_t ctx{};
  Worker* resumer = nullptr;  // worker to switch back to

  // Sanitizer bookkeeping.
  void* tsan_fiber = nullptr;
  void* asan_fake_stack = nullptr;
  const void* caller_stack_bottom = nullptr;
  std::size_t caller_stack_size = 0;
};

struct Executor::Worker {
  ucontext_t sched_ctx{};
  void* tsan_fiber = nullptr;
  void* asan_fake_stack = nullptr;
};

thread_local Executor::Task* Executor::tls_current_task_ = nullptr;

Executor::Executor() = default;
Executor::~Executor() = default;

void Executor::run(std::vector<std::function<void()>> bodies,
                   const Config& config) {
  const std::size_t n = bodies.size();
  if (n == 0) return;

  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const std::size_t workers =
      std::min(config.workers != 0 ? config.workers : hw, n);
  const std::size_t stack_bytes =
      std::max<std::size_t>(config.stack_bytes, std::size_t{64} << 10);

  tasks_.clear();
  tasks_.reserve(n);
  ready_.clear();
  running_ = 0;
  done_ = 0;
  first_error_ = nullptr;
  obs_parks_ = 0;
  obs_ready_moves_ = 0;
  obs_expirations_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto task = std::make_unique<Task>();
    task->exec = this;
    task->index = i;
    task->body = std::move(bodies[i]);
    task->stack_bytes = stack_bytes;
    ready_.push_back(task.get());
    tasks_.push_back(std::move(task));
  }

  // The calling thread is worker 0, so a single-worker run (the whole
  // story on a single-core host) spawns no threads at all.
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    pool.emplace_back([this] { worker_loop(); });
  }
  worker_loop();
  for (auto& t : pool) t.join();

  tasks_.clear();

  auto& metrics = obs::Metrics::instance();
  if (metrics.enabled()) {
    using obs::Domain;
    metrics.add("vmpi.host.executor.parks", obs_parks_, Domain::kHost);
    metrics.add("vmpi.host.executor.ready_moves", obs_ready_moves_,
                Domain::kHost);
    metrics.add("vmpi.host.executor.expirations", obs_expirations_,
                Domain::kHost);
    metrics.gauge_max("vmpi.host.executor.workers",
                      static_cast<double>(workers), Domain::kHost);
  }

  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    std::rethrow_exception(err);
  }
}

void Executor::worker_loop() {
  Worker worker;
  worker.tsan_fiber = tsan_current_fiber();

  std::unique_lock<std::mutex> g(mu_);
  for (;;) {
    if (!ready_.empty()) {
      Task* task = ready_.front();
      ready_.pop_front();
      task->phase = Task::Phase::kRunning;
      ++running_;
      g.unlock();
      resume(worker, *task);
      g.lock();
      // The fiber swapped back: it either parked or finished.
      if (task->phase == Task::Phase::kParking) {
        if (task->notified) {
          // A notify raced with the park; absorb it.
          task->notified = false;
          task->timed_out = false;
          task->phase = Task::Phase::kReady;
          ready_.push_back(task);
        } else {
          task->phase = Task::Phase::kParked;
        }
      } else {
        HPRS_ASSERT(task->phase == Task::Phase::kDone);
        ++done_;
        tsan_destroy_fiber(task->tsan_fiber);
        task->tsan_fiber = nullptr;
        task->stack.reset();
      }
      --running_;
      cv_.notify_all();
      continue;
    }

    if (done_ == tasks_.size()) {
      cv_.notify_all();
      return;
    }

    // Expire parked fibers whose wall-clock deadline passed, and find the
    // next deadline to sleep until.
    const Clock::time_point now = Clock::now();
    Clock::time_point next = Clock::time_point::max();
    bool expired_any = false;
    for (const auto& tp : tasks_) {
      Task& t = *tp;
      if (t.phase != Task::Phase::kParked) continue;
      if (t.deadline <= now) {
        t.timed_out = true;
        t.phase = Task::Phase::kReady;
        ready_.push_back(&t);
        ++obs_expirations_;
        expired_any = true;
      } else {
        next = std::min(next, t.deadline);
      }
    }
    if (expired_any) continue;

    if (running_ == 0) {
      // Quiescence: every live fiber is parked and this executor owns every
      // thread that could notify one -- no future wakeup is possible.  This
      // is a proven deadlock; expire everyone so they can re-check their
      // predicates and report it, without waiting out the deadline.
      for (const auto& tp : tasks_) {
        Task& t = *tp;
        if (t.phase == Task::Phase::kParked) {
          t.timed_out = true;
          t.phase = Task::Phase::kReady;
          ready_.push_back(&t);
          ++obs_expirations_;
        }
      }
      HPRS_ASSERT(!ready_.empty());
      continue;
    }

    if (next != Clock::time_point::max()) {
      cv_.wait_until(g, next);
    } else {
      cv_.wait(g);
    }
  }
}

void Executor::resume(Worker& worker, Task& task) {
  Task* const saved = std::exchange(tls_current_task_, &task);
  task.resumer = &worker;
  if (!task.started) {
    task.started = true;
    task.stack.reset(new char[task.stack_bytes]);
    getcontext(&task.ctx);
    task.ctx.uc_stack.ss_sp = task.stack.get();
    task.ctx.uc_stack.ss_size = task.stack_bytes;
    task.ctx.uc_link = nullptr;
    const auto ptr = reinterpret_cast<std::uintptr_t>(&task);
    makecontext(&task.ctx, reinterpret_cast<void (*)()>(&Executor::trampoline),
                2, static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xffffffffu));
    task.tsan_fiber = tsan_create_fiber();
  }
  asan_start_switch(&worker.asan_fake_stack, task.stack.get(),
                    task.stack_bytes);
  tsan_switch_fiber(task.tsan_fiber);
  swapcontext(&worker.sched_ctx, &task.ctx);
  asan_finish_switch(worker.asan_fake_stack, nullptr, nullptr);
  tls_current_task_ = saved;
}

void Executor::switch_to_scheduler(Task& task) {
  asan_start_switch(&task.asan_fake_stack, task.caller_stack_bottom,
                    task.caller_stack_size);
  tsan_switch_fiber(task.resumer->tsan_fiber);
  swapcontext(&task.ctx, &task.resumer->sched_ctx);
  // Resumed, possibly by a different worker.
  asan_finish_switch(task.asan_fake_stack, &task.caller_stack_bottom,
                     &task.caller_stack_size);
}

void Executor::trampoline(unsigned hi, unsigned lo) {
  auto* task = reinterpret_cast<Task*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  asan_finish_switch(nullptr, &task->caller_stack_bottom,
                     &task->caller_stack_size);
  Executor* const exec = task->exec;
  try {
    task->body();
  } catch (...) {
    std::lock_guard<std::mutex> g(exec->mu_);
    if (!exec->first_error_) exec->first_error_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> g(exec->mu_);
    task->phase = Task::Phase::kDone;
  }
  // Final switch out; passing a null save slot tells ASan to free this
  // fiber's fake stack.  Never returns.
  asan_start_switch(nullptr, task->caller_stack_bottom,
                    task->caller_stack_size);
  tsan_switch_fiber(task->resumer->tsan_fiber);
  swapcontext(&task->ctx, &task->resumer->sched_ctx);
  HPRS_ASSERT(false);  // unreachable
}

bool Executor::park(std::unique_lock<std::mutex>& lock,
                    Clock::time_point deadline) {
  Task* const task = tls_current_task_;
  HPRS_ASSERT(task != nullptr && task->exec == this);
  {
    std::lock_guard<std::mutex> g(mu_);
    task->phase = Task::Phase::kParking;
    task->notified = false;
    task->timed_out = false;
    task->deadline = deadline;
    ++obs_parks_;
  }
  // The fiber releases the caller's lock itself (a cross-thread unlock
  // would be undefined), then yields to the scheduler.  A notify between
  // the unlock and the swap lands in the kParking window and is absorbed
  // by the worker when it observes the swap-out.
  lock.unlock();
  switch_to_scheduler(*task);
  lock.lock();
  return task->timed_out;
}

void Executor::notify(std::size_t task_index) {
  HPRS_ASSERT(task_index < tasks_.size());
  Task& task = *tasks_[task_index];
  std::lock_guard<std::mutex> g(mu_);
  if (task.phase == Task::Phase::kParked) {
    task.phase = Task::Phase::kReady;
    task.notified = false;
    task.timed_out = false;
    ready_.push_back(&task);
    ++obs_ready_moves_;
    cv_.notify_one();
  } else if (task.phase == Task::Phase::kParking) {
    task.notified = true;
  }
  // kReady / kRunning / kDone: nothing to do -- a running task re-checks
  // its predicate (under the caller's lock) before it can park.
}

void Executor::notify_all() {
  std::lock_guard<std::mutex> g(mu_);
  bool woke = false;
  for (const auto& tp : tasks_) {
    Task& task = *tp;
    if (task.phase == Task::Phase::kParked) {
      task.phase = Task::Phase::kReady;
      task.notified = false;
      task.timed_out = false;
      ready_.push_back(&task);
      ++obs_ready_moves_;
      woke = true;
    } else if (task.phase == Task::Phase::kParking) {
      task.notified = true;
    }
  }
  if (woke) cv_.notify_all();
}

}  // namespace hprs::vmpi
