#include "vmpi/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <limits>
#include <thread>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/host_profile.hpp"
#include "obs/metrics.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/executor.hpp"

namespace hprs::vmpi {

namespace {

/// Internal unwind signal for a fail-stop crash: thrown by die_locked,
/// absorbed by run()'s rank body.  Deliberately not derived from
/// std::exception so a program's own catch blocks cannot swallow a death.
struct RankCrashedSignal {};

/// Wire duration of a `bytes`-byte message on a c ms-per-megabit link.
double transfer_seconds(std::size_t bytes, double c_ms_per_mbit,
                        double latency_s) {
  const double megabits = static_cast<double>(bytes) * 8.0 / 1e6;
  return megabits * c_ms_per_mbit / 1000.0 + latency_s;
}

std::chrono::steady_clock::time_point deadline_after(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

/// HPRS_THREAD_PER_RANK (non-empty, non-"0") forces the legacy
/// thread-per-rank mode, e.g. for differential testing of the executor.
bool env_thread_per_rank() {
  const char* v = std::getenv("HPRS_THREAD_PER_RANK");
  if (v == nullptr || *v == '\0') return false;
  return !(v[0] == '0' && v[1] == '\0');
}

std::size_t resolve_fiber_stack_bytes(std::size_t option_bytes) {
  // Validated parse: a malformed HPRS_FIBER_STACK_KB throws with the
  // variable named rather than silently running on the default stack.
  if (const auto kb = env_int_or("HPRS_FIBER_STACK_KB", 0, 1, 1 << 20);
      kb > 0) {
    return static_cast<std::size_t>(kb) * 1024;
  }
  return option_bytes != 0 ? option_bytes : (std::size_t{1} << 20);
}

/// resize-without-deallocating: keeps each element's capacity so collective
/// scratch survives across runs as well as across generations.
template <typename Vec>
void resize_and_clear(Vec& v, std::size_t n) {
  v.resize(n);
  for (auto& e : v) e.clear();
}

}  // namespace

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

double RunReport::imbalance_all() const {
  double lo = ranks[0].busy();
  double hi = lo;
  for (const auto& r : ranks) {
    lo = std::min(lo, r.busy());
    hi = std::max(hi, r.busy());
  }
  return lo > 0.0 ? hi / lo : 1.0;
}

double RunReport::imbalance_minus_root() const {
  if (ranks.size() <= 1) return 1.0;
  double lo = -1.0;
  double hi = 0.0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (static_cast<int>(i) == root) continue;
    const double b = ranks[i].busy();
    if (lo < 0.0 || b < lo) lo = b;
    hi = std::max(hi, b);
  }
  return lo > 0.0 ? hi / lo : 1.0;
}

std::uint64_t RunReport::total_bytes_moved() const {
  std::uint64_t b = 0;
  for (const auto& r : ranks) b += r.bytes_sent;
  return b;
}

std::uint64_t RunReport::total_flops() const {
  std::uint64_t f = 0;
  for (const auto& r : ranks) f += r.flops;
  return f;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(simnet::Platform platform, Options options)
    : platform_(std::move(platform)), options_(std::move(options)) {
  HPRS_REQUIRE(platform_.size() > 0,
               "platform '" + platform_.name() +
                   "' has zero processors; an engine needs at least one rank");
  HPRS_REQUIRE(options_.root >= 0 && options_.root < size(),
               "root rank " + std::to_string(options_.root) +
                   " out of range for a " + std::to_string(size()) +
                   "-rank platform");
  HPRS_REQUIRE(std::isfinite(options_.per_message_latency_s) &&
                   options_.per_message_latency_s >= 0.0,
               "per_message_latency_s must be finite and non-negative, got " +
                   std::to_string(options_.per_message_latency_s));
  HPRS_REQUIRE(options_.deadlock_timeout_s > 0.0,
               "deadlock_timeout_s must be positive, got " +
                   std::to_string(options_.deadlock_timeout_s));
  HPRS_REQUIRE(std::isfinite(options_.fault_detection_s) &&
                   options_.fault_detection_s >= 0.0,
               "fault_detection_s must be finite and non-negative, got " +
                   std::to_string(options_.fault_detection_s));
  for (const auto& c : options_.fault_plan.crashes) {
    HPRS_REQUIRE(c.rank >= 0 && c.rank < size(),
                 "fault plan crashes rank " + std::to_string(c.rank) +
                     ", which does not exist on a " + std::to_string(size()) +
                     "-rank platform");
    HPRS_REQUIRE(std::isfinite(c.time_s) && c.time_s >= 0.0,
                 "crash time for rank " + std::to_string(c.rank) +
                     " must be finite and non-negative, got " +
                     std::to_string(c.time_s));
  }
  for (const auto& d : options_.fault_plan.degradations) {
    HPRS_REQUIRE(d.segment_a < platform_.segment_count() &&
                     d.segment_b < platform_.segment_count(),
                 "degradation names segment pair (" +
                     std::to_string(d.segment_a) + ", " +
                     std::to_string(d.segment_b) + ") but platform '" +
                     platform_.name() + "' has " +
                     std::to_string(platform_.segment_count()) + " segments");
    HPRS_REQUIRE(std::isfinite(d.factor) && d.factor > 0.0,
                 "degradation factor must be finite and positive, got " +
                     std::to_string(d.factor));
    HPRS_REQUIRE(std::isfinite(d.begin_s) && d.begin_s >= 0.0 &&
                     d.end_s >= d.begin_s,
                 "degradation window [" + std::to_string(d.begin_s) + ", " +
                     std::to_string(d.end_s) +
                     ") must satisfy 0 <= begin <= end");
  }
  const auto& loss = options_.fault_plan.loss;
  HPRS_REQUIRE(loss.probability >= 0.0 && loss.probability < 1.0,
               "message-loss probability must lie in [0, 1), got " +
                   std::to_string(loss.probability));
  HPRS_REQUIRE(std::isfinite(loss.retry_backoff_s) &&
                   loss.retry_backoff_s >= 0.0,
               "message-loss retry backoff must be finite and non-negative, "
               "got " +
                   std::to_string(loss.retry_backoff_s));
}

RunReport Engine::run(const std::function<void(Comm&)>& program) {
  obs::ScopedHostTimer run_timer("vmpi.engine.run");
  const int p = size();
  const auto pu = static_cast<std::size_t>(p);
  const bool thread_per_rank =
      options_.exec_mode == ExecMode::kThreadPerRank || env_thread_per_rank();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    obs_ = ObsCounters{};
    obs_scheduled_bytes_ = 0;
    timeline_.clear();
    stats_.assign(pu, RankStats{});
    trace_.assign(pu, {});
    nic_free_.assign(pu, 0.0);
    stage_pipe_free_.assign(pu, 0.0);
    stage_tiles_.assign(pu, 0);
    stage_bytes_.assign(pu, 0);
    xlink_free_.clear();
    mailbox_.clear();
    // The world communicator is group 0: every rank, rooted at the engine
    // root, over the unrestricted platform.  Sub-communicators registered
    // by a previous run are dropped here.
    groups_.clear();
    {
      std::vector<int> everyone(pu);
      for (int r = 0; r < p; ++r) everyone[static_cast<std::size_t>(r)] = r;
      auto world = std::make_unique<Group>(0, std::move(everyone),
                                           options_.root, platform_);
      world->snap_scope = "world";
      world->inputs.assign(pu, Packet{});
      world->single_out.assign(pu, Packet{});
      resize_and_clear(world->scatter_parts, pu);
      resize_and_clear(world->exchange_in, pu);
      resize_and_clear(world->multi_out, pu);
      resize_and_clear(world->exchange_out, pu);
      world_ = world.get();
      groups_.emplace(0, std::move(world));
    }
    resize_and_clear(gather_pool_, pu);
    resize_and_clear(exchange_pool_, pu);
    next_send_handle_ = 1;
    rank_state_.assign(pu, RankState::kRunning);
    crash_time_.assign(pu, std::numeric_limits<double>::infinity());
    for (const auto& c : options_.fault_plan.crashes) {
      auto& t = crash_time_[static_cast<std::size_t>(c.rank)];
      t = std::min(t, c.time_s);
    }
    death_time_.assign(pu, std::numeric_limits<double>::infinity());
    crashed_count_ = 0;
    fault_log_.clear();
    recovery_.assign(pu, RecoveryStats{});
    in_recovery_.assign(pu, 0);
    waiting_.assign(pu, WaitInfo{});
    loss_seq_.clear();
    poisoned_ = false;
    poison_reason_.clear();
    if (thread_per_rank && !rank_cvs_) {
      rank_cvs_ = std::make_unique<std::condition_variable[]>(pu);
    }
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto rank_body = [&](int r) {
    Comm comm(*this, *world_, r);
    try {
      program(comm);
      // Mark completion and wake peers: a rank blocked on this one can now
      // conclude its operation will never match instead of timing out.
      std::lock_guard<std::mutex> lock(mutex_);
      rank_state_[static_cast<std::size_t>(r)] = RankState::kFinished;
      wake_all_locked();
    } catch (const RankCrashedSignal&) {
      // Fail-stop death, not an error: die_locked already recorded the
      // event, froze the clock, and woke the peers.
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (!poisoned_) poison_locked("a rank threw an exception");
    }
  };

  if (thread_per_rank) {
    obs::ScopedHostTimer ranks_timer("vmpi.engine.ranks");
    std::vector<std::thread> threads;
    threads.reserve(pu);
    for (int r = 0; r < p; ++r) {
      threads.emplace_back([&rank_body, r] { rank_body(r); });
    }
    for (auto& t : threads) t.join();
  } else {
    obs::ScopedHostTimer ranks_timer("vmpi.engine.ranks");
    Executor exec;
    Executor::Config cfg;
    cfg.workers = options_.executor_workers;
    cfg.stack_bytes = resolve_fiber_stack_bytes(options_.fiber_stack_bytes);
    std::vector<std::function<void()>> bodies;
    bodies.reserve(pu);
    for (int r = 0; r < p; ++r) {
      bodies.emplace_back([&rank_body, r] { rank_body(r); });
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      executor_ = &exec;
    }
    try {
      exec.run(std::move(bodies), cfg);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      executor_ = nullptr;
      throw;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    executor_ = nullptr;
  }

  if (first_error) std::rethrow_exception(first_error);

  RunReport report;
  report.root = options_.root;
  report.ranks = stats_;
  for (const auto& s : stats_) {
    report.total_time = std::max(report.total_time, s.clock);
  }
  if (options_.enable_trace) {
    for (auto& per_rank : trace_) {
      report.trace.insert(report.trace.end(), per_rank.begin(),
                          per_rank.end());
    }
    std::sort(report.trace.begin(), report.trace.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.rank < b.rank;
              });
  }
  // Fault log entries were appended in host order; sort on virtual keys so
  // the report is bit-identical across runs, schedules, and exec modes.
  std::sort(fault_log_.begin(), fault_log_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.peer != b.peer) return a.peer < b.peer;
              return a.attempt < b.attempt;
            });
  report.fault_events = fault_log_;
  for (const auto& r : recovery_) {
    report.recovery.detection_s += r.detection_s;
    report.recovery.redistribution_s += r.redistribution_s;
    report.recovery.recomputed_s += r.recomputed_s;
    report.recovery.recomputed_flops += r.recomputed_flops;
    report.recovery.detections += r.detections;
  }
  for (const auto& e : report.fault_events) {
    if (e.kind == FaultEventKind::kCrash) ++report.recovery.crashes;
    if (e.kind == FaultEventKind::kMessageLoss) ++report.recovery.messages_lost;
  }
  // The counter-plane timeline was appended under the engine mutex in
  // host order; finalize() imposes the canonical (t_s, scope, seq) order
  // so the export is bit-identical across runs and exec modes.
  timeline_.finalize();
  report.snapshots = std::move(timeline_);
  timeline_.clear();
  publish_metrics(report);
  return report;
}

void Engine::maybe_snapshot_group_locked(Group& group) {
  const obs::SnapshotConfig& cfg = options_.snapshot;
  if (!cfg.enabled) return;
  // The sample point is the collective boundary every member has reached:
  // the max member clock after the collective's accounting.
  double t = 0.0;
  for (const int m : group.members) {
    t = std::max(t, stats_[static_cast<std::size_t>(m)].clock);
  }
  if (!group.snap_init) {
    group.snap_cadence = obs::SnapshotCadence(cfg.interval_s, cfg.seed,
                                              group.id);
    group.snap_init = true;
  }
  if (!group.snap_cadence.due(t)) return;
  group.snap_cadence.advance_past(t);
  timeline_.append(group.snap_scope, t, group_pvars_locked(group));
}

obs::PvarSet Engine::group_pvars_locked(const Group& group) const {
  static constexpr const char* kCollNames[] = {"none",    "barrier", "bcast",
                                               "gather",  "scatter",
                                               "exchange"};
  obs::PvarSet set;
  // Emit every collective kind unconditionally (zeros included) so each
  // scope's samples share one schema and the flat diff never sees a key
  // appear mid-run.
  for (std::size_t k = 1; k < 6; ++k) {
    set.counter(std::string("collectives.") + kCollNames[k],
                group.coll_count[k]);
    set.counter(std::string("collective_wire_bytes.") + kCollNames[k],
                group.coll_bytes[k]);
  }
  set.counter("p2p.messages", group.p2p_messages);
  set.counter("p2p.wire_bytes", group.p2p_bytes);
  std::uint64_t flops = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  double compute = 0.0;
  double comm = 0.0;
  double wait = 0.0;
  for (const int m : group.members) {
    const RankStats& s = stats_[static_cast<std::size_t>(m)];
    flops += s.flops;
    sent += s.bytes_sent;
    received += s.bytes_received;
    compute += s.compute_par + s.compute_seq;
    comm += s.comm;
    wait += s.wait;
  }
  set.counter("ranks.flops", flops);
  set.counter("ranks.bytes_sent", sent);
  set.counter("ranks.bytes_received", received);
  set.level("ranks.compute_s", compute);
  set.level("ranks.comm_s", comm);
  set.level("ranks.wait_s", wait);
  return set;
}

void Engine::core_label_snapshots(Group& group, std::string_view label) {
  std::lock_guard<std::mutex> lock(mutex_);
  group.snap_scope = obs::sanitize_scope(label);
}

void Engine::core_snapshot_sample(int rank, std::string_view scope,
                                  const obs::PvarSet& pvars) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!options_.snapshot.enabled) return;
  timeline_.append(scope, stats_[static_cast<std::size_t>(rank)].clock,
                   pvars);
}

void Engine::publish_metrics(const RunReport& report) const {
  auto& metrics = obs::Metrics::instance();
  if (!metrics.enabled()) return;
  using obs::Domain;
  // Stable domain: everything below the host section derives from the
  // virtual protocol and byte/flop counts, so it is golden-comparable.
  static constexpr const char* kCollNames[] = {"none",    "barrier", "bcast",
                                               "gather",  "scatter", "exchange"};
  for (std::size_t k = 1; k < 6; ++k) {
    if (obs_.collectives[k] == 0) continue;
    const std::string name = kCollNames[k];
    metrics.add("vmpi.collectives." + name, obs_.collectives[k]);
    metrics.add("vmpi.collective_wire_bytes." + name,
                obs_.collective_wire_bytes[k]);
  }
  metrics.add("vmpi.p2p.messages", obs_.p2p_messages);
  metrics.add("vmpi.p2p.wire_bytes", obs_.p2p_wire_bytes);
  for (std::size_t r = 0; r < report.ranks.size(); ++r) {
    const RankStats& s = report.ranks[r];
    metrics.add("vmpi.bytes_sent", s.bytes_sent, Domain::kStable,
                static_cast<int>(r));
    metrics.add("vmpi.bytes_received", s.bytes_received, Domain::kStable,
                static_cast<int>(r));
    metrics.add("vmpi.flops", s.flops, Domain::kStable, static_cast<int>(r));
  }
  std::uint64_t staged_tiles = 0;
  for (const auto t : stage_tiles_) staged_tiles += t;
  if (staged_tiles != 0) {
    for (std::size_t r = 0; r < stage_tiles_.size(); ++r) {
      if (stage_tiles_[r] == 0) continue;
      metrics.add("vmpi.stage.tiles", stage_tiles_[r], Domain::kStable,
                  static_cast<int>(r));
      metrics.add("vmpi.stage.bytes", stage_bytes_[r], Domain::kStable,
                  static_cast<int>(r));
    }
  }
  const RecoveryStats& rec = report.recovery;
  if (rec.crashes != 0 || rec.detections != 0 || rec.messages_lost != 0) {
    metrics.add("vmpi.fault.crashes", static_cast<std::uint64_t>(rec.crashes));
    metrics.add("vmpi.fault.heartbeat_detections",
                static_cast<std::uint64_t>(rec.detections));
    metrics.add("vmpi.fault.messages_lost", rec.messages_lost);
  }
  // Host domain: wakeup traffic and mailbox pressure depend on how the OS
  // interleaved the rank contexts; never golden-compared.
  metrics.add("vmpi.host.wakeups_targeted", obs_.wakeups_targeted,
              Domain::kHost);
  metrics.add("vmpi.host.wakeups_broadcast", obs_.wakeups_broadcast,
              Domain::kHost);
  metrics.gauge_max("vmpi.host.mailbox_depth_max",
                    static_cast<double>(obs_.mailbox_depth_max), Domain::kHost);
}

double Engine::core_now(int rank) const {
  // The rank only queries its own clock, which no other context mutates
  // while the rank is running; see the ownership note in the header.
  return stats_[static_cast<std::size_t>(rank)].clock;
}

void Engine::core_compute(int rank, std::uint64_t flops, Phase phase,
                          bool charge_launch) {
  const auto r = static_cast<std::size_t>(rank);
  auto& s = stats_[r];
  // Fail-stop boundary: crash_time_ is immutable during the run and the
  // clock is rank-confined, so this check needs no lock until it fires.
  if (s.clock >= crash_time_[r]) {
    std::lock_guard<std::mutex> lock(mutex_);
    die_locked(rank);
  }
  double seconds = static_cast<double>(flops) * 1e-6 *
                   platform_.cycle_time(static_cast<std::size_t>(rank));
  // Accelerated nodes pay a fixed host<->device launch latency on every
  // non-empty kernel invocation, on top of the (fast) on-device compute.
  // Plain CPU ranks charge exactly what they always did, so platforms
  // without accelerators reproduce historic clocks bit-for-bit.
  if (flops > 0 && charge_launch && platform_.accelerated(r)) {
    seconds += platform_.stage_latency_s(r);
  }
  if (options_.enable_trace && seconds > 0.0) {
    trace_[static_cast<std::size_t>(rank)].push_back(TraceEvent{
        rank, TraceKind::kCompute, s.clock, s.clock + seconds, flops});
  }
  s.clock += seconds;
  s.flops += flops;
  if (phase == Phase::kSequential) {
    s.compute_seq += seconds;
  } else {
    s.compute_par += seconds;
  }
  if (in_recovery_[r] != 0) {
    recovery_[r].recomputed_s += seconds;
    recovery_[r].recomputed_flops += flops;
  }
}

void Engine::core_stage(int rank, std::uint64_t bytes) {
  const auto r = static_cast<std::size_t>(rank);
  const double seconds =
      platform_.stage_seconds(r, static_cast<std::size_t>(bytes));
  if (seconds <= 0.0) return;  // plain CPU rank, or nothing to copy
  auto& s = stats_[r];
  // Same fail-stop boundary as core_compute: crash_time_ is immutable
  // during the run and the clock is rank-confined.
  if (s.clock >= crash_time_[r]) {
    std::lock_guard<std::mutex> lock(mutex_);
    die_locked(rank);
  }
  if (options_.enable_trace) {
    trace_[r].push_back(TraceEvent{rank, TraceKind::kTransmit, s.clock,
                                   s.clock + seconds, bytes});
  }
  // The copy crosses the PCIe-style host<->device path, not the network:
  // charge comm time but no wire byte counters.
  s.clock += seconds;
  s.comm += seconds;
}

double Engine::core_stage_async(int rank, std::uint64_t bytes) {
  const auto r = static_cast<std::size_t>(rank);
  const double seconds =
      platform_.stage_seconds(r, static_cast<std::size_t>(bytes));
  if (seconds <= 0.0) return 0.0;  // plain CPU rank, or nothing to copy
  auto& s = stats_[r];
  // Same fail-stop boundary as core_stage: a dead rank never enqueues DMA.
  if (s.clock >= crash_time_[r]) {
    std::lock_guard<std::mutex> lock(mutex_);
    die_locked(rank);
  }
  // One DMA engine per accelerator: copies serialize on the staging pipe
  // but run in the background, so the rank's clock does not advance here.
  const double begin = std::max(s.clock, stage_pipe_free_[r]);
  const double end = begin + seconds;
  stage_pipe_free_[r] = end;
  ++stage_tiles_[r];
  stage_bytes_[r] += bytes;
  if (options_.enable_trace) {
    trace_[r].push_back(TraceEvent{rank, TraceKind::kStage, begin, end, bytes});
  }
  return end;
}

void Engine::core_stage_wait(int rank, double until) {
  const auto r = static_cast<std::size_t>(rank);
  auto& s = stats_[r];
  if (s.clock >= crash_time_[r]) {
    std::lock_guard<std::mutex> lock(mutex_);
    die_locked(rank);
  }
  if (until <= s.clock) return;  // the copy already finished in the shadow
  // The exposed remainder of the copy is host<->device transfer time the
  // rank actually waits out, so it lands in the comm bucket exactly like
  // the synchronous core_stage charge (no extra trace span: the kStage
  // interval from core_stage_async already covers it).
  s.comm += until - s.clock;
  s.clock = until;
}

// --- fault machinery --------------------------------------------------------

void Engine::maybe_crash_locked(int rank) {
  const auto r = static_cast<std::size_t>(rank);
  if (rank_state_[r] == RankState::kRunning &&
      stats_[r].clock >= crash_time_[r]) {
    die_locked(rank);
  }
}

void Engine::die_locked(int rank) {
  const auto r = static_cast<std::size_t>(rank);
  rank_state_[r] = RankState::kCrashed;
  death_time_[r] = stats_[r].clock;
  ++crashed_count_;
  fault_log_.push_back(FaultEvent{FaultEventKind::kCrash, rank, -1,
                                  stats_[r].clock, 0});
  // Peers already committed to a collective on a communicator containing
  // this rank will never see it join; that communicator -- and with it the
  // run -- cannot proceed.  Collectives on groups the dead rank is *not* a
  // member of are unaffected.
  bool poisons_collective = false;
  for (const auto& [id, g] : groups_) {
    if (g->arrived > 0 &&
        std::find(g->members.begin(), g->members.end(), rank) !=
            g->members.end()) {
      poisons_collective = true;
      break;
    }
  }
  if (poisons_collective && !poisoned_) {
    poison_locked("rank " + std::to_string(rank) +
                  " crashed (fail-stop) at t=" +
                  std::to_string(stats_[r].clock) +
                  "s during a pending collective; " +
                  describe_blocked_locked());
  } else {
    wake_all_locked();
  }
  throw RankCrashedSignal{};
}

double Engine::effective_link_ms_locked(std::size_t s, std::size_t d,
                                        double at) const {
  double c = platform_.link_ms_per_mbit(s, d);
  if (options_.fault_plan.degradations.empty()) return c;
  const std::size_t seg_s = platform_.segment_of(s);
  const std::size_t seg_d = platform_.segment_of(d);
  const std::size_t lo = std::min(seg_s, seg_d);
  const std::size_t hi = std::max(seg_s, seg_d);
  for (const auto& deg : options_.fault_plan.degradations) {
    if (std::min(deg.segment_a, deg.segment_b) != lo ||
        std::max(deg.segment_a, deg.segment_b) != hi) {
      continue;
    }
    if (at >= deg.begin_s && at < deg.end_s) c *= deg.factor;
  }
  return c;
}

std::uint64_t Engine::loss_attempts_locked(int src, int dst, int tag) {
  const auto& loss = options_.fault_plan.loss;
  if (loss.probability <= 0.0) return 0;
  auto& seq = loss_seq_[std::make_tuple(src, dst, tag)];
  std::uint64_t lost = 0;
  for (;;) {
    // One decorrelated draw per attempt, a pure function of (seed, src,
    // dst, tag, sequence number) -- independent of host scheduling.
    std::uint64_t h = loss.seed;
    for (const std::uint64_t v :
         {static_cast<std::uint64_t>(src), static_cast<std::uint64_t>(dst),
          static_cast<std::uint64_t>(tag), seq}) {
      h = SplitMix64(h ^ v).next();
    }
    ++seq;
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u >= loss.probability) break;
    ++lost;
  }
  return lost;
}

Packet Engine::match_recv_locked(int rank, int src, int tag, PendingSend& ps) {
  const auto su = static_cast<std::size_t>(src);
  const auto du = static_cast<std::size_t>(rank);
  auto& me = stats_[du];
  double ready = std::max(ps.ready, me.clock);
  const std::size_t bytes = ps.payload.bytes;
  const auto& loss = options_.fault_plan.loss;
  if (loss.probability > 0.0) {
    const std::uint64_t lost = loss_attempts_locked(src, rank, tag);
    for (std::uint64_t k = 0; k < lost; ++k) {
      fault_log_.push_back(
          FaultEvent{FaultEventKind::kMessageLoss, rank, src, ready, k});
      // Each lost attempt wastes one wire time (at the capacity in effect
      // when it started) plus the retry backoff before the next attempt.
      ready += transfer_seconds(bytes, effective_link_ms_locked(su, du, ready),
                                options_.per_message_latency_s) +
               loss.retry_backoff_s;
    }
  }
  double active = 0.0;
  const double end =
      schedule_transfer_locked(ps.channel, src, rank, bytes, ready, &active);
  ++obs_.p2p_messages;
  obs_.p2p_wire_bytes += bytes;
  // The message was sent over the communicator identified by ps.channel;
  // file it on that group's counter plane (the group can already be gone
  // only for world-tag traffic of a finished run, never mid-collective).
  if (auto git = groups_.find(ps.channel); git != groups_.end()) {
    ++git->second->p2p_messages;
    git->second->p2p_bytes += bytes;
  }
  account_transfer_locked(rank, me.clock, end, active, 0, bytes);
  // Record the sender's half for it to apply itself (core_send /
  // core_wait_send); writing stats_[src] here would race with a sender
  // that is still computing after an isend.
  Packet out = std::move(ps.payload);
  ps.matched = true;
  ps.sender_end = end;
  ps.active = active;
  ps.bytes = bytes;
  wake_rank_locked(src);
  return out;
}

void Engine::charge_detection_locked(int rank, int peer, double timeout_s) {
  const auto r = static_cast<std::size_t>(rank);
  auto& s = stats_[r];
  const double start = s.clock;
  // The failure is discovered one virtual heartbeat after the later of
  // "this rank started waiting" and "the peer actually died".
  const double detect =
      std::max(start, death_time_[static_cast<std::size_t>(peer)]) + timeout_s;
  if (options_.enable_trace && detect > start) {
    trace_[r].push_back(TraceEvent{rank, TraceKind::kIdle, start, detect, 0});
  }
  s.wait += detect - start;
  s.clock = detect;
  recovery_[r].detection_s += detect - start;
  ++recovery_[r].detections;
  fault_log_.push_back(
      FaultEvent{FaultEventKind::kDetection, rank, peer, detect, 0});
}

void Engine::core_note_redistribution(int rank, double seconds) {
  if (seconds > 0.0) {
    recovery_[static_cast<std::size_t>(rank)].redistribution_s += seconds;
  }
}

void Engine::core_set_recovery(int rank, bool on) {
  auto& depth = in_recovery_[static_cast<std::size_t>(rank)];
  if (on) {
    ++depth;
  } else if (depth > 0) {
    --depth;
  }
}

std::string Engine::describe_blocked_locked() const {
  static constexpr const char* kCollNames[] = {"none",    "barrier", "bcast",
                                               "gather",  "scatter", "exchange"};
  std::string out;
  const auto add = [&out](int rank, const std::string& what) {
    if (!out.empty()) out += "; ";
    out += "rank " + std::to_string(rank) + ": " + what;
  };
  for (int rnk = 0; rnk < size(); ++rnk) {
    const auto r = static_cast<std::size_t>(rnk);
    if (rank_state_[r] == RankState::kCrashed) {
      add(rnk, "crashed at t=" + std::to_string(death_time_[r]) + "s");
      continue;
    }
    if (rank_state_[r] == RankState::kFinished) continue;
    const WaitInfo& w = waiting_[r];
    const std::string peer = std::to_string(w.peer);
    const std::string tag = std::to_string(w.tag);
    switch (w.what) {
      case WaitInfo::What::kNone:
        break;
      case WaitInfo::What::kCollective:
        add(rnk, std::string("in collective ") +
                     kCollNames[static_cast<std::size_t>(w.coll)] + " (root " +
                     peer + ")");
        break;
      case WaitInfo::What::kSend:
        add(rnk, "send to rank " + peer + " (tag " + tag + ")");
        break;
      case WaitInfo::What::kRecv:
        add(rnk, "recv from rank " + peer + " (tag " + tag + ")");
        break;
      case WaitInfo::What::kWaitSend:
        add(rnk, "wait on isend to rank " + peer + " (tag " + tag + ")");
        break;
      case WaitInfo::What::kTrySend:
        add(rnk, "try_send to rank " + peer + " (tag " + tag + ")");
        break;
      case WaitInfo::What::kTryRecv:
        add(rnk, "try_recv from rank " + peer + " (tag " + tag + ")");
        break;
    }
  }
  if (out.empty()) out = "no ranks blocked at engine operations";
  return "blocked ranks: [" + out + "]";
}

std::string Engine::peer_failure_locked(const char* op, int rank, int peer,
                                        int tag) const {
  const auto p = static_cast<std::size_t>(peer);
  std::string why =
      rank_state_[p] == RankState::kCrashed
          ? "crashed (fail-stop) at t=" + std::to_string(death_time_[p]) + "s"
          : "finished without matching it";
  return "rank " + std::to_string(rank) + ": " + op + " involving rank " +
         std::to_string(peer) + " (tag " + std::to_string(tag) +
         ") can never complete: rank " + std::to_string(peer) + " " + why +
         "; " + describe_blocked_locked();
}

// --- host-side blocking layer ----------------------------------------------

bool Engine::wait_rank(std::unique_lock<std::mutex>& lock, int rank,
                       std::chrono::steady_clock::time_point deadline) {
  if (executor_ != nullptr) return executor_->park(lock, deadline);
  return rank_cvs_[static_cast<std::size_t>(rank)].wait_until(lock, deadline) ==
         std::cv_status::timeout;
}

void Engine::wake_rank_locked(int rank) {
  ++obs_.wakeups_targeted;
  if (executor_ != nullptr) {
    executor_->notify(static_cast<std::size_t>(rank));
  } else if (rank_cvs_) {
    rank_cvs_[static_cast<std::size_t>(rank)].notify_one();
  }
}

void Engine::wake_all_locked() {
  ++obs_.wakeups_broadcast;
  if (executor_ != nullptr) {
    executor_->notify_all();
  } else if (rank_cvs_) {
    const auto pu = static_cast<std::size_t>(size());
    for (std::size_t r = 0; r < pu; ++r) rank_cvs_[r].notify_all();
  }
}

// --- collectives -----------------------------------------------------------

void Engine::begin_collective(Group& group, int rank, CollectiveKind kind,
                              int root) {
  const int grank = group.world_rank(rank);
  maybe_crash_locked(grank);
  check_poison_locked();
  if (crashed_count_ > 0) {
    // A collective needs every member of its communicator; fail fast when
    // one is dead (instead of a wall-clock timeout) so non-fault-tolerant
    // programs stay fast to diagnose.  Fault-tolerant code uses
    // try_send/try_recv and never reaches a collective after a crash.
    // Crashes of non-members leave this group's collectives untouched.
    for (const int m : group.members) {
      if (rank_state_[static_cast<std::size_t>(m)] == RankState::kCrashed) {
        poison_locked(
            group.id == 0
                ? "a full-world collective can never complete after a "
                  "fail-stop crash; " +
                      describe_blocked_locked()
                : "a collective on a sub-communicator with a crashed member "
                  "can never complete; " +
                      describe_blocked_locked());
        check_poison_locked();
      }
    }
  }
  if (group.arrived == 0) {
    group.coll_kind = kind;
    group.coll_root = root;
  } else if (group.coll_kind != kind || group.coll_root != root) {
    poison_locked("mismatched collective operations across ranks");
    check_poison_locked();
  }
  ++group.arrived;
}

void Engine::wait_for_generation(std::unique_lock<std::mutex>& lock,
                                 Group& group, int rank,
                                 std::uint64_t generation) {
  const int grank = group.world_rank(rank);
  // Lock held since begin_collective, so the group's coll_kind/coll_root
  // still describe the collective this rank is parked in.
  waiting_[static_cast<std::size_t>(grank)] =
      WaitInfo{WaitInfo::What::kCollective, group.world_rank(group.coll_root),
               0, group.coll_kind};
  const auto deadline = deadline_after(options_.deadlock_timeout_s);
  bool deadline_expired = false;
  while (group.generation == generation && !poisoned_) {
    if (deadline_expired) {
      // The deadline passed *and* a fresh predicate check still failed:
      // only now is it a deadlock (a wakeup racing the deadline is not).
      poison_locked("collective operation timed out (virtual MPI deadlock?); " +
                    describe_blocked_locked());
      break;
    }
    deadline_expired = wait_rank(lock, grank, deadline);
  }
  check_poison_locked();
  waiting_[static_cast<std::size_t>(grank)] = WaitInfo{};
}

void Engine::poison_locked(const std::string& reason) {
  poisoned_ = true;
  poison_reason_ = reason;
  wake_all_locked();
}

void Engine::check_poison_locked() const {
  if (poisoned_) {
    throw Error("virtual MPI engine aborted: " + poison_reason_);
  }
}

double Engine::schedule_transfer_locked(std::uint64_t channel, int src,
                                        int dst, std::size_t bytes,
                                        double ready, double* active_out) {
  const auto s = static_cast<std::size_t>(src);
  const auto d = static_cast<std::size_t>(dst);
  double start = std::max({ready, nic_free_[s], nic_free_[d]});
  const std::size_t seg_s = platform_.segment_of(s);
  const std::size_t seg_d = platform_.segment_of(d);
  const auto xkey = std::make_tuple(channel, std::min(seg_s, seg_d),
                                    std::max(seg_s, seg_d));
  if (seg_s != seg_d) {
    const auto it = xlink_free_.find(xkey);
    if (it != xlink_free_.end()) start = std::max(start, it->second);
  }
  // Capacity is evaluated at the transfer's start so degradation windows
  // affect schedule and accounting identically; without degradations this
  // is exactly the platform capacity.
  const double dur = transfer_seconds(bytes,
                                      effective_link_ms_locked(s, d, start),
                                      options_.per_message_latency_s);
  const double end = start + dur;
  nic_free_[s] = end;
  nic_free_[d] = end;
  if (seg_s != seg_d) xlink_free_[xkey] = end;
  if (active_out != nullptr) *active_out = dur;
  obs_scheduled_bytes_ += bytes;
  return end;
}

void Engine::account_transfer_locked(int rank, double ready, double end,
                                     double active, std::uint64_t bytes_out,
                                     std::uint64_t bytes_in) {
  auto& s = stats_[static_cast<std::size_t>(rank)];
  s.comm += active;
  const double elapsed = end - ready;
  if (elapsed > active) s.wait += elapsed - active;
  s.bytes_sent += bytes_out;
  s.bytes_received += bytes_in;
  if (options_.enable_trace) {
    auto& log = trace_[static_cast<std::size_t>(rank)];
    if (elapsed > active) {
      log.push_back(
          TraceEvent{rank, TraceKind::kIdle, ready, end - active, 0});
    }
    if (active > 0.0) {
      log.push_back(TraceEvent{
          rank, bytes_out > 0 ? TraceKind::kTransmit : TraceKind::kReceive,
          end - active, end, bytes_out > 0 ? bytes_out : bytes_in});
    }
  }
  s.clock = std::max(s.clock, end);
}

void Engine::finish_collective_locked(Group& group) {
  // All rank indices in this function are *local* to the group; `gr`
  // translates to world ranks at the points that touch engine-wide state
  // (stats_, trace_, and the transfer scheduler).  For the world group the
  // translation is the identity, so world collectives cost exactly what
  // they did before sub-communicators existed.
  const int p = group.size();
  const int root = group.coll_root;
  const auto ru = static_cast<std::size_t>(root);
  const auto obs_kind = static_cast<std::size_t>(group.coll_kind);
  const std::uint64_t obs_bytes_before = obs_scheduled_bytes_;
  const auto gr = [&group](int local) { return group.world_rank(local); };

  std::vector<double> arrival(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    arrival[static_cast<std::size_t>(r)] =
        stats_[static_cast<std::size_t>(gr(r))].clock;
  }

  switch (group.coll_kind) {
    case CollectiveKind::kBarrier: {
      double t = 0.0;
      for (double a : arrival) t = std::max(t, a);
      for (int r = 0; r < p; ++r) {
        const int w = gr(r);
        auto& s = stats_[static_cast<std::size_t>(w)];
        if (options_.enable_trace && t > s.clock) {
          trace_[static_cast<std::size_t>(w)].push_back(
              TraceEvent{w, TraceKind::kIdle, s.clock, t, 0});
        }
        s.wait += t - s.clock;
        s.clock = t;
      }
      break;
    }

    case CollectiveKind::kBcast: {
      Packet& payload = group.inputs[ru];
      const std::size_t bytes = payload.bytes;
      // Freeze the root's payload once (a move, not a copy); every
      // destination below takes a refcounted view, so the fan-out performs
      // zero deep copies regardless of p.  With p == 1 there is no fan-out
      // and the root's value passes through exclusively (pure move).
      std::shared_ptr<const std::any> shared;
      if (p > 1) shared = payload.share();
      if (platform_.switched_fabric()) {
        // Binomial-tree broadcast (cluster message-passing layers).  vrank
        // is the rank rotated so the root is 0; in step k every holder
        // vsrc < 2^k forwards to vsrc + 2^k.
        std::vector<double> known(static_cast<std::size_t>(p), 0.0);
        known[0] = arrival[ru];
        for (int step = 1; step < p; step <<= 1) {
          for (int vsrc = 0; vsrc < step && vsrc + step < p; ++vsrc) {
            const int vdst = vsrc + step;
            const int src = (vsrc + root) % p;
            const int dst = (vdst + root) % p;
            const auto du = static_cast<std::size_t>(dst);
            double active = 0.0;
            const double end = schedule_transfer_locked(group.id, 
                gr(src), gr(dst), bytes, known[static_cast<std::size_t>(vsrc)],
                &active);
            account_transfer_locked(gr(src),
                                    known[static_cast<std::size_t>(vsrc)],
                                    end, active, bytes, 0);
            account_transfer_locked(gr(dst), arrival[du],
                                    std::max(end, arrival[du]), active, 0,
                                    bytes);
            known[static_cast<std::size_t>(vdst)] = std::max(end, arrival[du]);
            group.single_out[du] = Packet::shared_view(shared, bytes);
          }
        }
      } else {
        // Linear broadcast: the root transmits to each worker in rank
        // order; its NIC serializes the sends (network-of-workstations
        // behavior).
        double root_busy_from = arrival[ru];
        for (int dst = 0; dst < p; ++dst) {
          if (dst == root) continue;
          const auto du = static_cast<std::size_t>(dst);
          double active = 0.0;
          const double end = schedule_transfer_locked(group.id, gr(root), gr(dst), bytes,
                                                      arrival[ru], &active);
          account_transfer_locked(gr(dst), arrival[du],
                                  std::max(end, arrival[du]), active, 0,
                                  bytes);
          account_transfer_locked(gr(root), root_busy_from, end, active, bytes,
                                  0);
          root_busy_from = end;
          group.single_out[du] = Packet::shared_view(shared, bytes);
        }
      }
      group.single_out[ru] = std::move(group.inputs[ru]);
      break;
    }

    case CollectiveKind::kGather: {
      auto& gathered = group.multi_out[ru];
      gathered.resize(static_cast<std::size_t>(p));
      if (platform_.switched_fabric()) {
        // Binomial-tree gather: in step k, every vrank whose low k bits are
        // zero and whose k-th bit is one forwards its accumulated buffer to
        // vrank - 2^k.  Intermediate nodes concatenate, so transferred
        // bytes grow with the subtree.
        std::vector<double> ready(static_cast<std::size_t>(p));
        std::vector<std::size_t> acc(static_cast<std::size_t>(p));
        for (int v = 0; v < p; ++v) {
          const int r = (v + root) % p;
          ready[static_cast<std::size_t>(v)] =
              arrival[static_cast<std::size_t>(r)];
          acc[static_cast<std::size_t>(v)] =
              group.inputs[static_cast<std::size_t>(r)].bytes;
        }
        for (int step = 1; step < p; step <<= 1) {
          for (int vsrc = step; vsrc < p; vsrc += 2 * step) {
            const int vdst = vsrc - step;
            const int src = (vsrc + root) % p;
            const int dst = (vdst + root) % p;
            const std::size_t bytes = acc[static_cast<std::size_t>(vsrc)];
            double active = 0.0;
            const double end = schedule_transfer_locked(group.id, 
                gr(src), gr(dst), bytes, ready[static_cast<std::size_t>(vsrc)],
                &active);
            account_transfer_locked(gr(src),
                                    ready[static_cast<std::size_t>(vsrc)],
                                    end, active, bytes, 0);
            account_transfer_locked(gr(dst),
                                    ready[static_cast<std::size_t>(vdst)],
                                    end, active, 0, bytes);
            ready[static_cast<std::size_t>(vdst)] =
                std::max(ready[static_cast<std::size_t>(vdst)], end);
            acc[static_cast<std::size_t>(vdst)] += bytes;
          }
        }
        for (int src = 0; src < p; ++src) {
          gathered[static_cast<std::size_t>(src)] =
              std::move(group.inputs[static_cast<std::size_t>(src)]);
        }
      } else {
        // Workers transmit to the root in rank order; the root's NIC is the
        // serializing resource.
        double root_busy_from = arrival[ru];
        for (int src = 0; src < p; ++src) {
          const auto su = static_cast<std::size_t>(src);
          if (src == root) {
            gathered[su] = std::move(group.inputs[su]);
            continue;
          }
          const std::size_t bytes = group.inputs[su].bytes;
          double active = 0.0;
          const double end = schedule_transfer_locked(group.id, gr(src), gr(root), bytes,
                                                      arrival[su], &active);
          account_transfer_locked(gr(src), arrival[su], end, active, bytes, 0);
          account_transfer_locked(gr(root), root_busy_from, end, active, 0,
                                  bytes);
          root_busy_from = end;
          gathered[su] = std::move(group.inputs[su]);
        }
      }
      break;
    }

    case CollectiveKind::kScatter: {
      auto& parts = group.scatter_parts[ru];
      HPRS_ASSERT(parts.size() == static_cast<std::size_t>(p));
      if (platform_.switched_fabric()) {
        // Binomial-tree scatter (mirror of the tree gather): holders pass
        // the byte-sum of the destination subtree down in halving steps.
        const auto vbytes = [&](int v) {
          return parts[static_cast<std::size_t>((v + root) % p)].bytes;
        };
        std::vector<double> known(static_cast<std::size_t>(p), 0.0);
        known[0] = arrival[ru];
        int top = 1;
        while (top < p) top <<= 1;
        for (int step = top >> 1; step >= 1; step >>= 1) {
          for (int vsrc = 0; vsrc < p; vsrc += 2 * step) {
            const int vdst = vsrc + step;
            if (vdst >= p) continue;
            std::size_t bytes = 0;
            for (int v = vdst; v < std::min(vdst + step, p); ++v) {
              bytes += vbytes(v);
            }
            const int src = (vsrc + root) % p;
            const int dst = (vdst + root) % p;
            const auto du = static_cast<std::size_t>(dst);
            double active = 0.0;
            const double end = schedule_transfer_locked(group.id, 
                gr(src), gr(dst), bytes, known[static_cast<std::size_t>(vsrc)],
                &active);
            account_transfer_locked(gr(src),
                                    known[static_cast<std::size_t>(vsrc)],
                                    end, active, bytes, 0);
            account_transfer_locked(gr(dst), arrival[du],
                                    std::max(end, arrival[du]), active, 0,
                                    bytes);
            known[static_cast<std::size_t>(vdst)] = std::max(end, arrival[du]);
          }
        }
        for (int dst = 0; dst < p; ++dst) {
          group.single_out[static_cast<std::size_t>(dst)] =
              std::move(parts[static_cast<std::size_t>(dst)]);
        }
      } else {
        double root_busy_from = arrival[ru];
        for (int dst = 0; dst < p; ++dst) {
          const auto du = static_cast<std::size_t>(dst);
          if (dst == root) {
            group.single_out[du] = std::move(parts[du]);
            continue;
          }
          const std::size_t bytes = parts[du].bytes;
          double active = 0.0;
          const double end = schedule_transfer_locked(group.id, gr(root), gr(dst), bytes,
                                                      arrival[ru], &active);
          account_transfer_locked(gr(dst), arrival[du],
                                  std::max(end, arrival[du]), active, 0,
                                  bytes);
          account_transfer_locked(gr(root), root_busy_from, end, active, bytes,
                                  0);
          root_busy_from = end;
          group.single_out[du] = std::move(parts[du]);
        }
      }
      break;
    }

    case CollectiveKind::kExchange: {
      // All pairwise transfers scheduled in (src, dst) order; a rank's
      // clock advances to the end of the last transfer it participates in.
      // Destinations in the staged sends are local ranks.
      for (int src = 0; src < p; ++src) {
        const auto su = static_cast<std::size_t>(src);
        for (auto& [dst, packet] : group.exchange_in[su]) {
          HPRS_ASSERT(dst >= 0 && dst < p && dst != src);
          const auto du = static_cast<std::size_t>(dst);
          const std::size_t bytes = packet.bytes;
          double active = 0.0;
          const double end = schedule_transfer_locked(group.id, gr(src), gr(dst), bytes,
                                                      arrival[su], &active);
          account_transfer_locked(gr(src), arrival[su], end, active, bytes, 0);
          account_transfer_locked(gr(dst), arrival[du],
                                  std::max(end, arrival[du]), active, 0,
                                  bytes);
          group.exchange_out[du].emplace_back(src, std::move(packet));
        }
        group.exchange_in[su].clear();
      }
      break;
    }

    case CollectiveKind::kNone:
      HPRS_ASSERT(false);
  }

  ++obs_.collectives[obs_kind];
  const std::uint64_t wire = obs_scheduled_bytes_ - obs_bytes_before;
  obs_.collective_wire_bytes[obs_kind] += wire;
  ++group.coll_count[obs_kind];
  group.coll_bytes[obs_kind] += wire;
  // Sample the group's counter plane while every member is still blocked
  // at this boundary: the values are then a pure function of the group's
  // program order and virtual clocks (DESIGN.md §15).
  maybe_snapshot_group_locked(group);
  group.coll_kind = CollectiveKind::kNone;
  group.coll_root = -1;
  group.arrived = 0;
  ++group.generation;
  wake_all_locked();
}

void Engine::core_barrier(Group& group, int rank) {
  std::unique_lock<std::mutex> lock(mutex_);
  begin_collective(group, rank, CollectiveKind::kBarrier, group.root_local);
  if (group.arrived == group.size()) {
    finish_collective_locked(group);
    return;
  }
  wait_for_generation(lock, group, rank, group.generation);
}

Packet Engine::core_bcast(Group& group, int rank, int root, Packet payload) {
  std::unique_lock<std::mutex> lock(mutex_);
  begin_collective(group, rank, CollectiveKind::kBcast, root);
  const auto r = static_cast<std::size_t>(rank);
  if (rank == root) group.inputs[r] = std::move(payload);
  if (group.arrived == group.size()) {
    finish_collective_locked(group);
  } else {
    wait_for_generation(lock, group, rank, group.generation);
  }
  return std::move(group.single_out[r]);
}

std::vector<Packet> Engine::core_gather(Group& group, int rank, int root,
                                        Packet payload) {
  std::unique_lock<std::mutex> lock(mutex_);
  begin_collective(group, rank, CollectiveKind::kGather, root);
  const auto r = static_cast<std::size_t>(rank);
  const auto w = static_cast<std::size_t>(group.world_rank(rank));
  // Adopt this rank's recycled result buffer so the coordinator's resize
  // reuses capacity from a previous generation instead of allocating.  The
  // pool is indexed by world rank (it is rank-confined host scratch, not
  // communicator state).
  auto& out_slot = group.multi_out[r];
  out_slot.clear();
  if (gather_pool_[w].capacity() > out_slot.capacity()) {
    out_slot.swap(gather_pool_[w]);
  }
  group.inputs[r] = std::move(payload);
  if (group.arrived == group.size()) {
    finish_collective_locked(group);
  } else {
    wait_for_generation(lock, group, rank, group.generation);
  }
  return std::move(group.multi_out[r]);
}

Packet Engine::core_scatter(Group& group, int rank, int root,
                            std::vector<Packet>& parts) {
  std::unique_lock<std::mutex> lock(mutex_);
  begin_collective(group, rank, CollectiveKind::kScatter, root);
  const auto r = static_cast<std::size_t>(rank);
  if (rank == root) {
    // Move element contents into the (capacity-retaining) staging slot;
    // the caller keeps its vector's capacity for the next scatter.
    auto& staged = group.scatter_parts[r];
    staged.resize(parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
      staged[i] = std::move(parts[i]);
    }
  }
  if (group.arrived == group.size()) {
    finish_collective_locked(group);
  } else {
    wait_for_generation(lock, group, rank, group.generation);
  }
  return std::move(group.single_out[r]);
}

std::vector<std::pair<int, Packet>> Engine::core_exchange(
    Group& group, int rank, std::vector<std::pair<int, Packet>>& sends) {
  std::unique_lock<std::mutex> lock(mutex_);
  begin_collective(group, rank, CollectiveKind::kExchange, group.root_local);
  const auto r = static_cast<std::size_t>(rank);
  const auto w = static_cast<std::size_t>(group.world_rank(rank));
  auto& in_slot = group.exchange_in[r];
  in_slot.resize(sends.size());
  for (std::size_t i = 0; i < sends.size(); ++i) {
    in_slot[i] = std::move(sends[i]);
  }
  auto& out_slot = group.exchange_out[r];
  out_slot.clear();
  if (exchange_pool_[w].capacity() > out_slot.capacity()) {
    out_slot.swap(exchange_pool_[w]);
  }
  if (group.arrived == group.size()) {
    finish_collective_locked(group);
  } else {
    wait_for_generation(lock, group, rank, group.generation);
  }
  return std::move(group.exchange_out[r]);
}

Group& Engine::ensure_group(std::uint64_t id, const std::vector<int>& members) {
  HPRS_REQUIRE(!members.empty(), "a communicator group needs at least one member");
  for (const int m : members) {
    HPRS_REQUIRE(m >= 0 && m < size(),
                 "communicator member rank " + std::to_string(m) +
                     " does not exist on a " + std::to_string(size()) +
                     "-rank platform");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = groups_.find(id);
  if (it != groups_.end()) {
    HPRS_REQUIRE(it->second->members == members,
                 "communicator id collision: group " + std::to_string(id) +
                     " already exists with a different member list");
    return *it->second;
  }
  // Restricted platform view: the members' own specs (segment indices
  // preserved) over the full segment-capacity matrix, so w_i and c_ij keep
  // their world values and the WEA sees exactly this communicator.
  std::vector<simnet::ProcessorSpec> specs;
  specs.reserve(members.size());
  for (const int m : members) {
    specs.push_back(platform_.processor(static_cast<std::size_t>(m)));
  }
  std::vector<std::vector<double>> seg(platform_.segment_count());
  for (std::size_t a = 0; a < platform_.segment_count(); ++a) {
    seg[a].resize(platform_.segment_count());
    for (std::size_t b = 0; b < platform_.segment_count(); ++b) {
      seg[a][b] = platform_.segment_capacity_ms_per_mbit(a, b);
    }
  }
  simnet::Platform sub(platform_.name(), std::move(specs), std::move(seg),
                       platform_.switched_fabric());
  auto group = std::make_unique<Group>(id, members, 0, std::move(sub));
  group->snap_scope = "comm_" + std::to_string(id);
  const auto n = members.size();
  group->inputs.assign(n, Packet{});
  group->single_out.assign(n, Packet{});
  resize_and_clear(group->scatter_parts, n);
  resize_and_clear(group->exchange_in, n);
  resize_and_clear(group->multi_out, n);
  resize_and_clear(group->exchange_out, n);
  Group& ref = *group;
  groups_.emplace(id, std::move(group));
  return ref;
}

void Engine::core_sleep_until(int rank, double deadline) {
  const auto r = static_cast<std::size_t>(rank);
  auto& s = stats_[r];
  // Same fail-stop boundary as core_compute: crash_time_ is immutable
  // during the run and the clock is rank-confined, so no lock is needed
  // until a death actually fires.
  if (s.clock >= crash_time_[r]) {
    std::lock_guard<std::mutex> lock(mutex_);
    die_locked(rank);
  }
  if (deadline <= s.clock) return;
  if (options_.enable_trace) {
    trace_[r].push_back(
        TraceEvent{rank, TraceKind::kIdle, s.clock, deadline, 0});
  }
  s.wait += deadline - s.clock;
  s.clock = deadline;
  if (s.clock >= crash_time_[r]) {
    std::lock_guard<std::mutex> lock(mutex_);
    die_locked(rank);
  }
}

RankStats Engine::core_stats(int rank) const {
  // Rank-confined like core_now: a rank only snapshots its own stats.
  return stats_[static_cast<std::size_t>(rank)];
}

// --- scratch recycling ------------------------------------------------------
// The pool slots are rank-confined (slot r is only touched from rank r's
// execution context), so these run without the engine lock.

void Engine::core_recycle_gather(int rank, std::vector<Packet> buffer) {
  buffer.clear();
  auto& slot = gather_pool_[static_cast<std::size_t>(rank)];
  if (buffer.capacity() > slot.capacity()) slot = std::move(buffer);
}

void Engine::core_recycle_exchange(
    int rank, std::vector<std::pair<int, Packet>> buffer) {
  buffer.clear();
  auto& slot = exchange_pool_[static_cast<std::size_t>(rank)];
  if (buffer.capacity() > slot.capacity()) slot = std::move(buffer);
}

// --- point-to-point ---------------------------------------------------------

void Engine::core_send(int rank, int dst, int tag, Packet payload,
                       std::uint64_t channel) {
  HPRS_REQUIRE(dst >= 0 && dst < size() && dst != rank,
               "invalid destination rank");
  std::unique_lock<std::mutex> lock(mutex_);
  maybe_crash_locked(rank);
  check_poison_locked();
  auto& queue = mailbox_[{rank, dst, tag}];
  PendingSend ps;
  ps.payload = std::move(payload);
  ps.ready = stats_[static_cast<std::size_t>(rank)].clock;
  ps.channel = channel;
  queue.push_back(std::move(ps));
  obs_.mailbox_depth_max = std::max<std::uint64_t>(obs_.mailbox_depth_max,
                                                   queue.size());
  auto it = std::prev(queue.end());
  wake_rank_locked(dst);

  // Rendezvous: block until the receiver matches and times the transfer.
  waiting_[static_cast<std::size_t>(rank)] =
      WaitInfo{WaitInfo::What::kSend, dst, tag, CollectiveKind::kNone};
  const auto deadline = deadline_after(options_.deadlock_timeout_s);
  bool deadline_expired = false;
  while (!it->matched && !poisoned_) {
    if (rank_state_[static_cast<std::size_t>(dst)] != RankState::kRunning) {
      // Dead or finished receiver: a plain send can never complete.  The
      // fault-tolerant path uses core_try_send, which survives this.
      poison_locked(peer_failure_locked("send", rank, dst, tag));
      break;
    }
    if (deadline_expired) {
      poison_locked("send never matched (virtual MPI deadlock?); " +
                    describe_blocked_locked());
      break;
    }
    deadline_expired = wait_rank(lock, rank, deadline);
  }
  check_poison_locked();
  waiting_[static_cast<std::size_t>(rank)] = WaitInfo{};
  // Apply this side of the transfer (the receiver computed it at match
  // time but deliberately left the sender's stats to the sender).
  account_transfer_locked(rank, it->ready, it->sender_end, it->active,
                          it->bytes, 0);
  queue.erase(it);
}

bool Engine::core_try_send(int rank, int dst, int tag, Packet payload,
                           double timeout_s, std::uint64_t channel) {
  HPRS_REQUIRE(dst >= 0 && dst < size() && dst != rank,
               "invalid destination rank");
  std::unique_lock<std::mutex> lock(mutex_);
  maybe_crash_locked(rank);
  check_poison_locked();
  auto& queue = mailbox_[{rank, dst, tag}];
  PendingSend ps;
  ps.payload = std::move(payload);
  ps.ready = stats_[static_cast<std::size_t>(rank)].clock;
  ps.channel = channel;
  queue.push_back(std::move(ps));
  obs_.mailbox_depth_max = std::max<std::uint64_t>(obs_.mailbox_depth_max,
                                                   queue.size());
  auto it = std::prev(queue.end());
  wake_rank_locked(dst);

  waiting_[static_cast<std::size_t>(rank)] =
      WaitInfo{WaitInfo::What::kTrySend, dst, tag, CollectiveKind::kNone};
  const auto deadline = deadline_after(options_.deadlock_timeout_s);
  bool deadline_expired = false;
  while (!it->matched && !poisoned_) {
    const RankState peer = rank_state_[static_cast<std::size_t>(dst)];
    if (peer == RankState::kCrashed) break;
    if (peer == RankState::kFinished) {
      // Finishing without receiving is a protocol bug, not a failure the
      // caller can recover from.
      poison_locked(peer_failure_locked("try_send", rank, dst, tag));
      break;
    }
    if (deadline_expired) {
      poison_locked("try_send never matched (virtual MPI deadlock?); " +
                    describe_blocked_locked());
      break;
    }
    deadline_expired = wait_rank(lock, rank, deadline);
  }
  check_poison_locked();
  waiting_[static_cast<std::size_t>(rank)] = WaitInfo{};
  if (it->matched) {
    account_transfer_locked(rank, it->ready, it->sender_end, it->active,
                            it->bytes, 0);
    queue.erase(it);
    return true;
  }
  // The receiver died without matching: withdraw the posting and charge the
  // virtual heartbeat that discovered the death.
  queue.erase(it);
  charge_detection_locked(rank, dst, timeout_s);
  return false;
}

std::uint64_t Engine::core_isend(int rank, int dst, int tag, Packet payload,
                                 std::uint64_t channel) {
  HPRS_REQUIRE(dst >= 0 && dst < size() && dst != rank,
               "invalid destination rank");
  std::unique_lock<std::mutex> lock(mutex_);
  maybe_crash_locked(rank);
  check_poison_locked();
  const std::uint64_t handle = next_send_handle_++;
  PendingSend ps;
  ps.payload = std::move(payload);
  ps.ready = stats_[static_cast<std::size_t>(rank)].clock;
  ps.handle = handle;
  ps.channel = channel;
  auto& queue = mailbox_[{rank, dst, tag}];
  queue.push_back(std::move(ps));
  obs_.mailbox_depth_max = std::max<std::uint64_t>(obs_.mailbox_depth_max,
                                                   queue.size());
  wake_rank_locked(dst);
  return handle;
}

void Engine::core_wait_send(int rank, std::uint64_t handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  maybe_crash_locked(rank);
  // Find the posting by handle (it is keyed by (rank, dst, tag), so scan
  // this rank's outgoing queues; queues are short-lived).
  const auto deadline = deadline_after(options_.deadlock_timeout_s);
  bool deadline_expired = false;
  while (true) {
    check_poison_locked();
    bool found = false;
    int pending_dst = -1;
    int pending_tag = 0;
    for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
      if (std::get<0>(it->first) != rank) continue;
      for (auto ps = it->second.begin(); ps != it->second.end(); ++ps) {
        if (ps->handle != handle) continue;
        found = true;
        if (!ps->matched) {
          pending_dst = std::get<1>(it->first);
          pending_tag = std::get<2>(it->first);
          break;
        }
        // The receiver matched: apply the sender's half of the transfer.
        // The clock can only move forward, so compute performed between
        // isend and wait overlaps the wire time.
        account_transfer_locked(rank, ps->ready, ps->sender_end, ps->active,
                                ps->bytes, 0);
        it->second.erase(ps);
        if (it->second.empty()) mailbox_.erase(it);
        waiting_[static_cast<std::size_t>(rank)] = WaitInfo{};
        return;
      }
      if (found) break;
    }
    if (!found) {
      // Handle not found at all: already waited (or never posted).
      throw Error("wait on an unknown or already-completed send handle");
    }
    if (rank_state_[static_cast<std::size_t>(pending_dst)] !=
        RankState::kRunning) {
      poison_locked(
          peer_failure_locked("wait on isend", rank, pending_dst, pending_tag));
      check_poison_locked();
    }
    waiting_[static_cast<std::size_t>(rank)] = WaitInfo{
        WaitInfo::What::kWaitSend, pending_dst, pending_tag,
        CollectiveKind::kNone};
    if (deadline_expired) {
      // Deadline passed and the re-scan above still found no match.
      poison_locked("isend never matched (virtual MPI deadlock?); " +
                    describe_blocked_locked());
      check_poison_locked();
    }
    deadline_expired = wait_rank(lock, rank, deadline);
  }
}

Packet Engine::core_recv(int rank, int src, int tag) {
  HPRS_REQUIRE(src >= 0 && src < size() && src != rank, "invalid source rank");
  std::unique_lock<std::mutex> lock(mutex_);
  maybe_crash_locked(rank);
  const auto key = std::make_tuple(src, rank, tag);

  waiting_[static_cast<std::size_t>(rank)] =
      WaitInfo{WaitInfo::What::kRecv, src, tag, CollectiveKind::kNone};
  const auto deadline = deadline_after(options_.deadlock_timeout_s);
  bool deadline_expired = false;
  std::list<PendingSend>::iterator it;
  while (true) {
    check_poison_locked();
    const auto q = mailbox_.find(key);
    if (q != mailbox_.end()) {
      it = std::find_if(q->second.begin(), q->second.end(),
                        [](const PendingSend& ps) { return !ps.matched; });
      if (it != q->second.end()) break;
    }
    if (rank_state_[static_cast<std::size_t>(src)] != RankState::kRunning) {
      // Nothing pending and the sender is dead or finished: a plain recv
      // can never match.  The fault-tolerant path uses core_try_recv.
      poison_locked(peer_failure_locked("recv", rank, src, tag));
      check_poison_locked();
    }
    if (deadline_expired) {
      // Deadline passed and the re-check above still found no posting.
      poison_locked("recv never matched (virtual MPI deadlock?); " +
                    describe_blocked_locked());
      check_poison_locked();
    }
    deadline_expired = wait_rank(lock, rank, deadline);
  }
  waiting_[static_cast<std::size_t>(rank)] = WaitInfo{};
  return match_recv_locked(rank, src, tag, *it);
}

std::optional<Packet> Engine::core_try_recv(int rank, int src, int tag,
                                            double timeout_s) {
  HPRS_REQUIRE(src >= 0 && src < size() && src != rank, "invalid source rank");
  std::unique_lock<std::mutex> lock(mutex_);
  maybe_crash_locked(rank);
  const auto key = std::make_tuple(src, rank, tag);

  waiting_[static_cast<std::size_t>(rank)] =
      WaitInfo{WaitInfo::What::kTryRecv, src, tag, CollectiveKind::kNone};
  const auto deadline = deadline_after(options_.deadlock_timeout_s);
  bool deadline_expired = false;
  while (true) {
    check_poison_locked();
    const auto q = mailbox_.find(key);
    if (q != mailbox_.end()) {
      // A message posted before the sender's death is still delivered (the
      // data already left the sender); only silence is a failure.
      const auto it =
          std::find_if(q->second.begin(), q->second.end(),
                       [](const PendingSend& ps) { return !ps.matched; });
      if (it != q->second.end()) {
        waiting_[static_cast<std::size_t>(rank)] = WaitInfo{};
        return match_recv_locked(rank, src, tag, *it);
      }
    }
    const RankState peer = rank_state_[static_cast<std::size_t>(src)];
    if (peer == RankState::kCrashed) {
      waiting_[static_cast<std::size_t>(rank)] = WaitInfo{};
      charge_detection_locked(rank, src, timeout_s);
      return std::nullopt;
    }
    if (peer == RankState::kFinished) {
      // Finishing without sending is a protocol bug, not a failure the
      // caller can recover from.
      poison_locked(peer_failure_locked("try_recv", rank, src, tag));
      check_poison_locked();
    }
    if (deadline_expired) {
      poison_locked("try_recv never matched (virtual MPI deadlock?); " +
                    describe_blocked_locked());
      check_poison_locked();
    }
    deadline_expired = wait_rank(lock, rank, deadline);
  }
}

}  // namespace hprs::vmpi
