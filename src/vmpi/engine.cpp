#include "vmpi/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>

#include "common/error.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/executor.hpp"

namespace hprs::vmpi {

namespace {

/// Wire duration of a `bytes`-byte message on a c ms-per-megabit link.
double transfer_seconds(std::size_t bytes, double c_ms_per_mbit,
                        double latency_s) {
  const double megabits = static_cast<double>(bytes) * 8.0 / 1e6;
  return megabits * c_ms_per_mbit / 1000.0 + latency_s;
}

std::chrono::steady_clock::time_point deadline_after(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

/// HPRS_THREAD_PER_RANK (non-empty, non-"0") forces the legacy
/// thread-per-rank mode, e.g. for differential testing of the executor.
bool env_thread_per_rank() {
  const char* v = std::getenv("HPRS_THREAD_PER_RANK");
  if (v == nullptr || *v == '\0') return false;
  return !(v[0] == '0' && v[1] == '\0');
}

std::size_t resolve_fiber_stack_bytes(std::size_t option_bytes) {
  if (const char* v = std::getenv("HPRS_FIBER_STACK_KB");
      v != nullptr && *v != '\0') {
    const long kb = std::strtol(v, nullptr, 10);
    if (kb > 0) return static_cast<std::size_t>(kb) * 1024;
  }
  return option_bytes != 0 ? option_bytes : (std::size_t{1} << 20);
}

/// resize-without-deallocating: keeps each element's capacity so collective
/// scratch survives across runs as well as across generations.
template <typename Vec>
void resize_and_clear(Vec& v, std::size_t n) {
  v.resize(n);
  for (auto& e : v) e.clear();
}

}  // namespace

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

double RunReport::imbalance_all() const {
  double lo = ranks[0].busy();
  double hi = lo;
  for (const auto& r : ranks) {
    lo = std::min(lo, r.busy());
    hi = std::max(hi, r.busy());
  }
  return lo > 0.0 ? hi / lo : 1.0;
}

double RunReport::imbalance_minus_root() const {
  if (ranks.size() <= 1) return 1.0;
  double lo = -1.0;
  double hi = 0.0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (static_cast<int>(i) == root) continue;
    const double b = ranks[i].busy();
    if (lo < 0.0 || b < lo) lo = b;
    hi = std::max(hi, b);
  }
  return lo > 0.0 ? hi / lo : 1.0;
}

std::uint64_t RunReport::total_bytes_moved() const {
  std::uint64_t b = 0;
  for (const auto& r : ranks) b += r.bytes_sent;
  return b;
}

std::uint64_t RunReport::total_flops() const {
  std::uint64_t f = 0;
  for (const auto& r : ranks) f += r.flops;
  return f;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(simnet::Platform platform, Options options)
    : platform_(std::move(platform)), options_(options) {
  HPRS_REQUIRE(options_.root >= 0 && options_.root < size(),
               "root rank out of range");
  HPRS_REQUIRE(options_.per_message_latency_s >= 0.0,
               "latency must be non-negative");
}

RunReport Engine::run(const std::function<void(Comm&)>& program) {
  const int p = size();
  const auto pu = static_cast<std::size_t>(p);
  const bool thread_per_rank =
      options_.exec_mode == ExecMode::kThreadPerRank || env_thread_per_rank();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.assign(pu, RankStats{});
    trace_.assign(pu, {});
    nic_free_.assign(pu, 0.0);
    xlink_free_.clear();
    mailbox_.clear();
    coll_kind_ = CollectiveKind::kNone;
    coll_root_ = -1;
    coll_arrived_ = 0;
    coll_generation_ = 0;
    coll_inputs_.assign(pu, Packet{});
    coll_single_out_.assign(pu, Packet{});
    resize_and_clear(coll_scatter_parts_, pu);
    resize_and_clear(coll_exchange_in_, pu);
    resize_and_clear(coll_multi_out_, pu);
    resize_and_clear(coll_exchange_out_, pu);
    resize_and_clear(gather_pool_, pu);
    resize_and_clear(exchange_pool_, pu);
    next_send_handle_ = 1;
    poisoned_ = false;
    poison_reason_.clear();
    if (thread_per_rank && !rank_cvs_) {
      rank_cvs_ = std::make_unique<std::condition_variable[]>(pu);
    }
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto rank_body = [&](int r) {
    Comm comm(*this, r);
    try {
      program(comm);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (!poisoned_) poison_locked("a rank threw an exception");
    }
  };

  if (thread_per_rank) {
    std::vector<std::thread> threads;
    threads.reserve(pu);
    for (int r = 0; r < p; ++r) {
      threads.emplace_back([&rank_body, r] { rank_body(r); });
    }
    for (auto& t : threads) t.join();
  } else {
    Executor exec;
    Executor::Config cfg;
    cfg.workers = options_.executor_workers;
    cfg.stack_bytes = resolve_fiber_stack_bytes(options_.fiber_stack_bytes);
    std::vector<std::function<void()>> bodies;
    bodies.reserve(pu);
    for (int r = 0; r < p; ++r) {
      bodies.emplace_back([&rank_body, r] { rank_body(r); });
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      executor_ = &exec;
    }
    try {
      exec.run(std::move(bodies), cfg);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      executor_ = nullptr;
      throw;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    executor_ = nullptr;
  }

  if (first_error) std::rethrow_exception(first_error);

  RunReport report;
  report.root = options_.root;
  report.ranks = stats_;
  for (const auto& s : stats_) {
    report.total_time = std::max(report.total_time, s.clock);
  }
  if (options_.enable_trace) {
    for (auto& per_rank : trace_) {
      report.trace.insert(report.trace.end(), per_rank.begin(),
                          per_rank.end());
    }
    std::sort(report.trace.begin(), report.trace.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                return a.rank < b.rank;
              });
  }
  return report;
}

double Engine::core_now(int rank) const {
  // The rank only queries its own clock, which no other context mutates
  // while the rank is running; see the ownership note in the header.
  return stats_[static_cast<std::size_t>(rank)].clock;
}

void Engine::core_compute(int rank, std::uint64_t flops, Phase phase) {
  auto& s = stats_[static_cast<std::size_t>(rank)];
  const double seconds = static_cast<double>(flops) * 1e-6 *
                         platform_.cycle_time(static_cast<std::size_t>(rank));
  if (options_.enable_trace && seconds > 0.0) {
    trace_[static_cast<std::size_t>(rank)].push_back(TraceEvent{
        rank, TraceKind::kCompute, s.clock, s.clock + seconds, flops});
  }
  s.clock += seconds;
  s.flops += flops;
  if (phase == Phase::kSequential) {
    s.compute_seq += seconds;
  } else {
    s.compute_par += seconds;
  }
}

// --- host-side blocking layer ----------------------------------------------

bool Engine::wait_rank(std::unique_lock<std::mutex>& lock, int rank,
                       std::chrono::steady_clock::time_point deadline) {
  if (executor_ != nullptr) return executor_->park(lock, deadline);
  return rank_cvs_[static_cast<std::size_t>(rank)].wait_until(lock, deadline) ==
         std::cv_status::timeout;
}

void Engine::wake_rank_locked(int rank) {
  if (executor_ != nullptr) {
    executor_->notify(static_cast<std::size_t>(rank));
  } else if (rank_cvs_) {
    rank_cvs_[static_cast<std::size_t>(rank)].notify_one();
  }
}

void Engine::wake_all_locked() {
  if (executor_ != nullptr) {
    executor_->notify_all();
  } else if (rank_cvs_) {
    const auto pu = static_cast<std::size_t>(size());
    for (std::size_t r = 0; r < pu; ++r) rank_cvs_[r].notify_all();
  }
}

// --- collectives -----------------------------------------------------------

void Engine::begin_collective(int rank, CollectiveKind kind, int root) {
  check_poison_locked();
  if (coll_arrived_ == 0) {
    coll_kind_ = kind;
    coll_root_ = root;
  } else if (coll_kind_ != kind || coll_root_ != root) {
    poison_locked("mismatched collective operations across ranks");
    check_poison_locked();
  }
  const auto r = static_cast<std::size_t>(rank);
  ++coll_arrived_;
  (void)r;
}

void Engine::wait_for_generation(std::unique_lock<std::mutex>& lock, int rank,
                                 std::uint64_t generation) {
  const auto deadline = deadline_after(options_.deadlock_timeout_s);
  bool deadline_expired = false;
  while (coll_generation_ == generation && !poisoned_) {
    if (deadline_expired) {
      // The deadline passed *and* a fresh predicate check still failed:
      // only now is it a deadlock (a wakeup racing the deadline is not).
      poison_locked("collective operation timed out (virtual MPI deadlock?)");
      break;
    }
    deadline_expired = wait_rank(lock, rank, deadline);
  }
  check_poison_locked();
}

void Engine::poison_locked(const std::string& reason) {
  poisoned_ = true;
  poison_reason_ = reason;
  wake_all_locked();
}

void Engine::check_poison_locked() const {
  if (poisoned_) {
    throw Error("virtual MPI engine aborted: " + poison_reason_);
  }
}

double Engine::schedule_transfer_locked(int src, int dst, std::size_t bytes,
                                        double ready) {
  const auto s = static_cast<std::size_t>(src);
  const auto d = static_cast<std::size_t>(dst);
  const double dur = transfer_seconds(
      bytes, platform_.link_ms_per_mbit(s, d), options_.per_message_latency_s);
  double start = std::max({ready, nic_free_[s], nic_free_[d]});
  const std::size_t seg_s = platform_.segment_of(s);
  const std::size_t seg_d = platform_.segment_of(d);
  const auto xkey = std::make_pair(std::min(seg_s, seg_d),
                                   std::max(seg_s, seg_d));
  if (seg_s != seg_d) {
    const auto it = xlink_free_.find(xkey);
    if (it != xlink_free_.end()) start = std::max(start, it->second);
  }
  const double end = start + dur;
  nic_free_[s] = end;
  nic_free_[d] = end;
  if (seg_s != seg_d) xlink_free_[xkey] = end;
  return end;
}

void Engine::account_transfer_locked(int rank, double ready, double end,
                                     double active, std::uint64_t bytes_out,
                                     std::uint64_t bytes_in) {
  auto& s = stats_[static_cast<std::size_t>(rank)];
  s.comm += active;
  const double elapsed = end - ready;
  if (elapsed > active) s.wait += elapsed - active;
  s.bytes_sent += bytes_out;
  s.bytes_received += bytes_in;
  if (options_.enable_trace) {
    auto& log = trace_[static_cast<std::size_t>(rank)];
    if (elapsed > active) {
      log.push_back(
          TraceEvent{rank, TraceKind::kIdle, ready, end - active, 0});
    }
    if (active > 0.0) {
      log.push_back(TraceEvent{
          rank, bytes_out > 0 ? TraceKind::kTransmit : TraceKind::kReceive,
          end - active, end, bytes_out > 0 ? bytes_out : bytes_in});
    }
  }
  s.clock = std::max(s.clock, end);
}

void Engine::finish_collective_locked() {
  const int p = size();
  const int root = coll_root_;
  const auto ru = static_cast<std::size_t>(root);
  const double latency = options_.per_message_latency_s;

  std::vector<double> arrival(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    arrival[static_cast<std::size_t>(r)] =
        stats_[static_cast<std::size_t>(r)].clock;
  }

  switch (coll_kind_) {
    case CollectiveKind::kBarrier: {
      double t = 0.0;
      for (double a : arrival) t = std::max(t, a);
      for (int r = 0; r < p; ++r) {
        auto& s = stats_[static_cast<std::size_t>(r)];
        if (options_.enable_trace && t > s.clock) {
          trace_[static_cast<std::size_t>(r)].push_back(
              TraceEvent{r, TraceKind::kIdle, s.clock, t, 0});
        }
        s.wait += t - s.clock;
        s.clock = t;
      }
      break;
    }

    case CollectiveKind::kBcast: {
      Packet& payload = coll_inputs_[ru];
      const std::size_t bytes = payload.bytes;
      // Freeze the root's payload once (a move, not a copy); every
      // destination below takes a refcounted view, so the fan-out performs
      // zero deep copies regardless of p.  With p == 1 there is no fan-out
      // and the root's value passes through exclusively (pure move).
      std::shared_ptr<const std::any> shared;
      if (p > 1) shared = payload.share();
      if (platform_.switched_fabric()) {
        // Binomial-tree broadcast (cluster message-passing layers).  vrank
        // is the rank rotated so the root is 0; in step k every holder
        // vsrc < 2^k forwards to vsrc + 2^k.
        std::vector<double> known(static_cast<std::size_t>(p), 0.0);
        known[0] = arrival[ru];
        for (int step = 1; step < p; step <<= 1) {
          for (int vsrc = 0; vsrc < step && vsrc + step < p; ++vsrc) {
            const int vdst = vsrc + step;
            const int src = (vsrc + root) % p;
            const int dst = (vdst + root) % p;
            const auto su = static_cast<std::size_t>(src);
            const auto du = static_cast<std::size_t>(dst);
            const double end = schedule_transfer_locked(
                src, dst, bytes, known[static_cast<std::size_t>(vsrc)]);
            const double active = transfer_seconds(
                bytes, platform_.link_ms_per_mbit(su, du), latency);
            account_transfer_locked(src, known[static_cast<std::size_t>(vsrc)],
                                    end, active, bytes, 0);
            account_transfer_locked(dst, arrival[du],
                                    std::max(end, arrival[du]), active, 0,
                                    bytes);
            known[static_cast<std::size_t>(vdst)] = std::max(end, arrival[du]);
            coll_single_out_[du] = Packet::shared_view(shared, bytes);
          }
        }
      } else {
        // Linear broadcast: the root transmits to each worker in rank
        // order; its NIC serializes the sends (network-of-workstations
        // behavior).
        double root_busy_from = arrival[ru];
        for (int dst = 0; dst < p; ++dst) {
          if (dst == root) continue;
          const auto du = static_cast<std::size_t>(dst);
          const double end =
              schedule_transfer_locked(root, dst, bytes, arrival[ru]);
          const double active = transfer_seconds(
              bytes, platform_.link_ms_per_mbit(ru, du), latency);
          account_transfer_locked(dst, arrival[du], std::max(end, arrival[du]),
                                  active, 0, bytes);
          account_transfer_locked(root, root_busy_from, end, active, bytes, 0);
          root_busy_from = end;
          coll_single_out_[du] = Packet::shared_view(shared, bytes);
        }
      }
      coll_single_out_[ru] = std::move(coll_inputs_[ru]);
      break;
    }

    case CollectiveKind::kGather: {
      auto& gathered = coll_multi_out_[ru];
      gathered.resize(static_cast<std::size_t>(p));
      if (platform_.switched_fabric()) {
        // Binomial-tree gather: in step k, every vrank whose low k bits are
        // zero and whose k-th bit is one forwards its accumulated buffer to
        // vrank - 2^k.  Intermediate nodes concatenate, so transferred
        // bytes grow with the subtree.
        std::vector<double> ready(static_cast<std::size_t>(p));
        std::vector<std::size_t> acc(static_cast<std::size_t>(p));
        for (int v = 0; v < p; ++v) {
          const int r = (v + root) % p;
          ready[static_cast<std::size_t>(v)] =
              arrival[static_cast<std::size_t>(r)];
          acc[static_cast<std::size_t>(v)] =
              coll_inputs_[static_cast<std::size_t>(r)].bytes;
        }
        for (int step = 1; step < p; step <<= 1) {
          for (int vsrc = step; vsrc < p; vsrc += 2 * step) {
            const int vdst = vsrc - step;
            const int src = (vsrc + root) % p;
            const int dst = (vdst + root) % p;
            const auto su = static_cast<std::size_t>(src);
            const auto du = static_cast<std::size_t>(dst);
            const std::size_t bytes = acc[static_cast<std::size_t>(vsrc)];
            const double end = schedule_transfer_locked(
                src, dst, bytes, ready[static_cast<std::size_t>(vsrc)]);
            const double active = transfer_seconds(
                bytes, platform_.link_ms_per_mbit(su, du), latency);
            account_transfer_locked(src, ready[static_cast<std::size_t>(vsrc)],
                                    end, active, bytes, 0);
            account_transfer_locked(dst, ready[static_cast<std::size_t>(vdst)],
                                    end, active, 0, bytes);
            ready[static_cast<std::size_t>(vdst)] =
                std::max(ready[static_cast<std::size_t>(vdst)], end);
            acc[static_cast<std::size_t>(vdst)] += bytes;
          }
        }
        for (int src = 0; src < p; ++src) {
          gathered[static_cast<std::size_t>(src)] =
              std::move(coll_inputs_[static_cast<std::size_t>(src)]);
        }
      } else {
        // Workers transmit to the root in rank order; the root's NIC is the
        // serializing resource.
        double root_busy_from = arrival[ru];
        for (int src = 0; src < p; ++src) {
          const auto su = static_cast<std::size_t>(src);
          if (src == root) {
            gathered[su] = std::move(coll_inputs_[su]);
            continue;
          }
          const std::size_t bytes = coll_inputs_[su].bytes;
          const double end =
              schedule_transfer_locked(src, root, bytes, arrival[su]);
          const double active = transfer_seconds(
              bytes, platform_.link_ms_per_mbit(su, ru), latency);
          account_transfer_locked(src, arrival[su], end, active, bytes, 0);
          account_transfer_locked(root, root_busy_from, end, active, 0, bytes);
          root_busy_from = end;
          gathered[su] = std::move(coll_inputs_[su]);
        }
      }
      break;
    }

    case CollectiveKind::kScatter: {
      auto& parts = coll_scatter_parts_[ru];
      HPRS_ASSERT(parts.size() == static_cast<std::size_t>(p));
      if (platform_.switched_fabric()) {
        // Binomial-tree scatter (mirror of the tree gather): holders pass
        // the byte-sum of the destination subtree down in halving steps.
        const auto vbytes = [&](int v) {
          return parts[static_cast<std::size_t>((v + root) % p)].bytes;
        };
        std::vector<double> known(static_cast<std::size_t>(p), 0.0);
        known[0] = arrival[ru];
        int top = 1;
        while (top < p) top <<= 1;
        for (int step = top >> 1; step >= 1; step >>= 1) {
          for (int vsrc = 0; vsrc < p; vsrc += 2 * step) {
            const int vdst = vsrc + step;
            if (vdst >= p) continue;
            std::size_t bytes = 0;
            for (int v = vdst; v < std::min(vdst + step, p); ++v) {
              bytes += vbytes(v);
            }
            const int src = (vsrc + root) % p;
            const int dst = (vdst + root) % p;
            const auto su = static_cast<std::size_t>(src);
            const auto du = static_cast<std::size_t>(dst);
            const double end = schedule_transfer_locked(
                src, dst, bytes, known[static_cast<std::size_t>(vsrc)]);
            const double active = transfer_seconds(
                bytes, platform_.link_ms_per_mbit(su, du), latency);
            account_transfer_locked(src, known[static_cast<std::size_t>(vsrc)],
                                    end, active, bytes, 0);
            account_transfer_locked(dst, arrival[du],
                                    std::max(end, arrival[du]), active, 0,
                                    bytes);
            known[static_cast<std::size_t>(vdst)] = std::max(end, arrival[du]);
          }
        }
        for (int dst = 0; dst < p; ++dst) {
          coll_single_out_[static_cast<std::size_t>(dst)] =
              std::move(parts[static_cast<std::size_t>(dst)]);
        }
      } else {
        double root_busy_from = arrival[ru];
        for (int dst = 0; dst < p; ++dst) {
          const auto du = static_cast<std::size_t>(dst);
          if (dst == root) {
            coll_single_out_[du] = std::move(parts[du]);
            continue;
          }
          const std::size_t bytes = parts[du].bytes;
          const double end =
              schedule_transfer_locked(root, dst, bytes, arrival[ru]);
          const double active = transfer_seconds(
              bytes, platform_.link_ms_per_mbit(ru, du), latency);
          account_transfer_locked(dst, arrival[du], std::max(end, arrival[du]),
                                  active, 0, bytes);
          account_transfer_locked(root, root_busy_from, end, active, bytes, 0);
          root_busy_from = end;
          coll_single_out_[du] = std::move(parts[du]);
        }
      }
      break;
    }

    case CollectiveKind::kExchange: {
      // All pairwise transfers scheduled in (src, dst) order; a rank's
      // clock advances to the end of the last transfer it participates in.
      for (int src = 0; src < p; ++src) {
        const auto su = static_cast<std::size_t>(src);
        for (auto& [dst, packet] : coll_exchange_in_[su]) {
          HPRS_ASSERT(dst >= 0 && dst < p && dst != src);
          const auto du = static_cast<std::size_t>(dst);
          const std::size_t bytes = packet.bytes;
          const double end =
              schedule_transfer_locked(src, dst, bytes, arrival[su]);
          const double active = transfer_seconds(
              bytes, platform_.link_ms_per_mbit(su, du), latency);
          account_transfer_locked(src, arrival[su], end, active, bytes, 0);
          account_transfer_locked(dst, arrival[du], std::max(end, arrival[du]),
                                  active, 0, bytes);
          coll_exchange_out_[du].emplace_back(src, std::move(packet));
        }
        coll_exchange_in_[su].clear();
      }
      break;
    }

    case CollectiveKind::kNone:
      HPRS_ASSERT(false);
  }

  coll_kind_ = CollectiveKind::kNone;
  coll_root_ = -1;
  coll_arrived_ = 0;
  ++coll_generation_;
  wake_all_locked();
}

void Engine::core_barrier(int rank) {
  std::unique_lock<std::mutex> lock(mutex_);
  begin_collective(rank, CollectiveKind::kBarrier, options_.root);
  if (coll_arrived_ == size()) {
    finish_collective_locked();
    return;
  }
  wait_for_generation(lock, rank, coll_generation_);
}

Packet Engine::core_bcast(int rank, int root, Packet payload) {
  std::unique_lock<std::mutex> lock(mutex_);
  begin_collective(rank, CollectiveKind::kBcast, root);
  const auto r = static_cast<std::size_t>(rank);
  if (rank == root) coll_inputs_[r] = std::move(payload);
  if (coll_arrived_ == size()) {
    finish_collective_locked();
  } else {
    wait_for_generation(lock, rank, coll_generation_);
  }
  return std::move(coll_single_out_[r]);
}

std::vector<Packet> Engine::core_gather(int rank, int root, Packet payload) {
  std::unique_lock<std::mutex> lock(mutex_);
  begin_collective(rank, CollectiveKind::kGather, root);
  const auto r = static_cast<std::size_t>(rank);
  // Adopt this rank's recycled result buffer so the coordinator's resize
  // reuses capacity from a previous generation instead of allocating.
  auto& out_slot = coll_multi_out_[r];
  out_slot.clear();
  if (gather_pool_[r].capacity() > out_slot.capacity()) {
    out_slot.swap(gather_pool_[r]);
  }
  coll_inputs_[r] = std::move(payload);
  if (coll_arrived_ == size()) {
    finish_collective_locked();
  } else {
    wait_for_generation(lock, rank, coll_generation_);
  }
  return std::move(coll_multi_out_[r]);
}

Packet Engine::core_scatter(int rank, int root, std::vector<Packet>& parts) {
  std::unique_lock<std::mutex> lock(mutex_);
  begin_collective(rank, CollectiveKind::kScatter, root);
  const auto r = static_cast<std::size_t>(rank);
  if (rank == root) {
    // Move element contents into the (capacity-retaining) staging slot;
    // the caller keeps its vector's capacity for the next scatter.
    auto& staged = coll_scatter_parts_[r];
    staged.resize(parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
      staged[i] = std::move(parts[i]);
    }
  }
  if (coll_arrived_ == size()) {
    finish_collective_locked();
  } else {
    wait_for_generation(lock, rank, coll_generation_);
  }
  return std::move(coll_single_out_[r]);
}

std::vector<std::pair<int, Packet>> Engine::core_exchange(
    int rank, std::vector<std::pair<int, Packet>>& sends) {
  std::unique_lock<std::mutex> lock(mutex_);
  begin_collective(rank, CollectiveKind::kExchange, options_.root);
  const auto r = static_cast<std::size_t>(rank);
  auto& in_slot = coll_exchange_in_[r];
  in_slot.resize(sends.size());
  for (std::size_t i = 0; i < sends.size(); ++i) {
    in_slot[i] = std::move(sends[i]);
  }
  auto& out_slot = coll_exchange_out_[r];
  out_slot.clear();
  if (exchange_pool_[r].capacity() > out_slot.capacity()) {
    out_slot.swap(exchange_pool_[r]);
  }
  if (coll_arrived_ == size()) {
    finish_collective_locked();
  } else {
    wait_for_generation(lock, rank, coll_generation_);
  }
  return std::move(coll_exchange_out_[r]);
}

// --- scratch recycling ------------------------------------------------------
// The pool slots are rank-confined (slot r is only touched from rank r's
// execution context), so these run without the engine lock.

void Engine::core_recycle_gather(int rank, std::vector<Packet> buffer) {
  buffer.clear();
  auto& slot = gather_pool_[static_cast<std::size_t>(rank)];
  if (buffer.capacity() > slot.capacity()) slot = std::move(buffer);
}

void Engine::core_recycle_exchange(
    int rank, std::vector<std::pair<int, Packet>> buffer) {
  buffer.clear();
  auto& slot = exchange_pool_[static_cast<std::size_t>(rank)];
  if (buffer.capacity() > slot.capacity()) slot = std::move(buffer);
}

// --- point-to-point ---------------------------------------------------------

void Engine::core_send(int rank, int dst, int tag, Packet payload) {
  HPRS_REQUIRE(dst >= 0 && dst < size() && dst != rank,
               "invalid destination rank");
  std::unique_lock<std::mutex> lock(mutex_);
  check_poison_locked();
  auto& queue = mailbox_[{rank, dst, tag}];
  PendingSend ps;
  ps.payload = std::move(payload);
  ps.ready = stats_[static_cast<std::size_t>(rank)].clock;
  queue.push_back(std::move(ps));
  auto it = std::prev(queue.end());
  wake_rank_locked(dst);

  // Rendezvous: block until the receiver matches and times the transfer.
  const auto deadline = deadline_after(options_.deadlock_timeout_s);
  bool deadline_expired = false;
  while (!it->matched && !poisoned_) {
    if (deadline_expired) {
      poison_locked("send never matched (virtual MPI deadlock?)");
      break;
    }
    deadline_expired = wait_rank(lock, rank, deadline);
  }
  check_poison_locked();
  // Apply this side of the transfer (the receiver computed it at match
  // time but deliberately left the sender's stats to the sender).
  account_transfer_locked(rank, it->ready, it->sender_end, it->active,
                          it->bytes, 0);
  queue.erase(it);
}

std::uint64_t Engine::core_isend(int rank, int dst, int tag,
                                 Packet payload) {
  HPRS_REQUIRE(dst >= 0 && dst < size() && dst != rank,
               "invalid destination rank");
  std::unique_lock<std::mutex> lock(mutex_);
  check_poison_locked();
  const std::uint64_t handle = next_send_handle_++;
  PendingSend ps;
  ps.payload = std::move(payload);
  ps.ready = stats_[static_cast<std::size_t>(rank)].clock;
  ps.handle = handle;
  mailbox_[{rank, dst, tag}].push_back(std::move(ps));
  wake_rank_locked(dst);
  return handle;
}

void Engine::core_wait_send(int rank, std::uint64_t handle) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Find the posting by handle (it is keyed by (rank, dst, tag), so scan
  // this rank's outgoing queues; queues are short-lived).
  const auto deadline = deadline_after(options_.deadlock_timeout_s);
  bool deadline_expired = false;
  while (true) {
    check_poison_locked();
    bool found = false;
    for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
      if (std::get<0>(it->first) != rank) continue;
      for (auto ps = it->second.begin(); ps != it->second.end(); ++ps) {
        if (ps->handle != handle) continue;
        found = true;
        if (!ps->matched) break;
        // The receiver matched: apply the sender's half of the transfer.
        // The clock can only move forward, so compute performed between
        // isend and wait overlaps the wire time.
        account_transfer_locked(rank, ps->ready, ps->sender_end, ps->active,
                                ps->bytes, 0);
        it->second.erase(ps);
        if (it->second.empty()) mailbox_.erase(it);
        return;
      }
      if (found) break;
    }
    if (!found) {
      // Handle not found at all: already waited (or never posted).
      throw Error("wait on an unknown or already-completed send handle");
    }
    if (deadline_expired) {
      // Deadline passed and the re-scan above still found no match.
      poison_locked("isend never matched (virtual MPI deadlock?)");
      check_poison_locked();
    }
    deadline_expired = wait_rank(lock, rank, deadline);
  }
}

Packet Engine::core_recv(int rank, int src, int tag) {
  HPRS_REQUIRE(src >= 0 && src < size() && src != rank, "invalid source rank");
  std::unique_lock<std::mutex> lock(mutex_);
  const auto key = std::make_tuple(src, rank, tag);

  const auto deadline = deadline_after(options_.deadlock_timeout_s);
  bool deadline_expired = false;
  std::list<PendingSend>::iterator it;
  while (true) {
    check_poison_locked();
    const auto q = mailbox_.find(key);
    if (q != mailbox_.end()) {
      it = std::find_if(q->second.begin(), q->second.end(),
                        [](const PendingSend& ps) { return !ps.matched; });
      if (it != q->second.end()) break;
    }
    if (deadline_expired) {
      // Deadline passed and the re-check above still found no posting.
      poison_locked("recv never matched (virtual MPI deadlock?)");
      check_poison_locked();
    }
    deadline_expired = wait_rank(lock, rank, deadline);
  }

  auto& me = stats_[static_cast<std::size_t>(rank)];
  const double ready = std::max(it->ready, me.clock);
  const std::size_t bytes = it->payload.bytes;
  const double end = schedule_transfer_locked(src, rank, bytes, ready);
  const double active =
      transfer_seconds(bytes,
                       platform_.link_ms_per_mbit(static_cast<std::size_t>(src),
                                                  static_cast<std::size_t>(rank)),
                       options_.per_message_latency_s);
  account_transfer_locked(rank, me.clock, end, active, 0, bytes);

  // Record the sender's half for it to apply itself (core_send /
  // core_wait_send); writing stats_[src] here would race with a sender
  // that is still computing after an isend.
  Packet out = std::move(it->payload);
  it->matched = true;
  it->sender_end = end;
  it->active = active;
  it->bytes = bytes;
  wake_rank_locked(src);
  return out;
}

}  // namespace hprs::vmpi
