// Execution tracing for the virtual message-passing engine.
//
// With Options::enable_trace the engine records every compute charge and
// transfer participation as a timestamped interval per rank.  The helpers
// here turn a traced RunReport into a CSV (for external tooling) or an
// ASCII Gantt chart (for eyeballing load balance and communication phases
// straight from a terminal -- the fastest way to *see* why Homo-ATDCA
// stalls on processor p10).
#pragma once

#include <cstdint>
#include <string>

#include "vmpi/stats.hpp"

namespace hprs::vmpi {

[[nodiscard]] const char* to_string(TraceKind kind);

/// One line per event: rank,kind,begin,end,amount.
[[nodiscard]] std::string trace_csv(const RunReport& report);

/// Fixed-width ASCII Gantt chart: one row per rank, `width` columns across
/// [0, total_time]; c = compute, s = send, r = receive, . = idle.  When
/// intervals of different kinds share a column, compute wins, then
/// transfers, then idle.
[[nodiscard]] std::string render_gantt(const RunReport& report,
                                       std::size_t width = 72);

}  // namespace hprs::vmpi
