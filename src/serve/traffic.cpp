#include "serve/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/report_diff.hpp"
#include "obs/run_summary.hpp"
#include "serve/batcher.hpp"

namespace hprs::serve {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Integrated diurnal rate Lambda(t) = t + (a/w) sin(w t) for
/// rate(t) = 1 + a cos(w t); strictly increasing while a < 1.
double diurnal_integral(double t, double amplitude, double omega) {
  return t + (amplitude / omega) * std::sin(omega * t);
}

/// Inverts Lambda on [0, duration] by bisection (Lambda is monotone).
double diurnal_invert(double target, double duration, double amplitude,
                      double omega) {
  double lo = 0.0;
  double hi = duration;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (diurnal_integral(mid, amplitude, omega) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<double> make_arrivals(const TraceConfig& config,
                                  Xoshiro256& rng) {
  const double duration = config.duration_s;
  std::vector<double> arrivals;
  arrivals.reserve(config.jobs);
  switch (config.shape) {
    case TrafficShape::kSteady:
    case TrafficShape::kTenantMix: {
      for (std::size_t k = 0; k < config.jobs; ++k) {
        arrivals.push_back(rng.uniform(0.0, duration));
      }
      break;
    }
    case TrafficShape::kDiurnal: {
      const double amplitude =
          std::min(std::max(config.diurnal_amplitude, 0.0), 0.999);
      const double omega = kTwoPi * config.diurnal_cycles / duration;
      const double total = diurnal_integral(duration, amplitude, omega);
      for (std::size_t k = 0; k < config.jobs; ++k) {
        arrivals.push_back(diurnal_invert(rng.uniform() * total, duration,
                                          amplitude, omega));
      }
      break;
    }
    case TrafficShape::kBursty: {
      const double fraction =
          std::min(std::max(config.burst_fraction, 0.0), 1.0);
      const std::size_t bursts = std::max<std::size_t>(config.bursts, 1);
      const auto in_bursts = static_cast<std::size_t>(
          fraction * static_cast<double>(config.jobs));
      std::vector<double> centers;
      for (std::size_t b = 0; b < bursts; ++b) {
        centers.push_back(rng.uniform(0.1 * duration, 0.9 * duration));
      }
      for (std::size_t k = 0; k < in_bursts; ++k) {
        const std::size_t b = rng.uniform_int(bursts);
        const double t = centers[b] + rng.normal(0.0, config.burst_width_s);
        arrivals.push_back(std::min(std::max(t, 0.0), duration));
      }
      for (std::size_t k = in_bursts; k < config.jobs; ++k) {
        arrivals.push_back(rng.uniform(0.0, duration));
      }
      break;
    }
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

/// Weighted tenant pick: cumulative weights scanned with one uniform draw.
std::size_t pick_tenant(const std::vector<TenantProfile>& tenants,
                        Xoshiro256& rng) {
  double total = 0.0;
  for (const TenantProfile& t : tenants) total += std::max(t.weight, 0.0);
  if (total <= 0.0) return 0;
  const double draw = rng.uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    acc += std::max(tenants[i].weight, 0.0);
    if (draw < acc) return i;
  }
  return tenants.size() - 1;
}

std::string req_key(std::size_t pos, const char* field) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "req.%06zu.", pos);
  return std::string(buf) + field;
}

/// Raw-token readers for the flat-JSON dialect (throwing on misses, so a
/// truncated document cannot silently replay as a shorter trace).
const std::string& token_of(const std::map<std::string, std::string>& flat,
                            const std::string& key) {
  const auto it = flat.find(key);
  if (it == flat.end()) throw Error("trace JSON: missing key '" + key + "'");
  return it->second;
}

std::uint64_t count_of(const std::map<std::string, std::string>& flat,
                       const std::string& key) {
  return std::strtoull(token_of(flat, key).c_str(), nullptr, 10);
}

double number_of(const std::map<std::string, std::string>& flat,
                 const std::string& key) {
  return std::strtod(token_of(flat, key).c_str(), nullptr);
}

std::string string_of(const std::map<std::string, std::string>& flat,
                      const std::string& key) {
  const std::string& token = token_of(flat, key);
  if (token.size() < 2 || token.front() != '"' || token.back() != '"') {
    throw Error("trace JSON: key '" + key + "' is not a string token");
  }
  std::string out;
  for (std::size_t i = 1; i + 1 < token.size(); ++i) {
    if (token[i] == '\\' && i + 2 < token.size()) {
      ++i;
      switch (token[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        default: out += token[i];
      }
    } else {
      out += token[i];
    }
  }
  return out;
}

}  // namespace

const char* to_string(TrafficShape shape) {
  switch (shape) {
    case TrafficShape::kSteady: return "steady";
    case TrafficShape::kDiurnal: return "diurnal";
    case TrafficShape::kBursty: return "bursty";
    case TrafficShape::kTenantMix: return "tenant-mix";
  }
  return "?";
}

TrafficShape parse_traffic_shape(std::string_view name) {
  if (name == "steady") return TrafficShape::kSteady;
  if (name == "diurnal") return TrafficShape::kDiurnal;
  if (name == "bursty") return TrafficShape::kBursty;
  if (name == "tenant-mix") return TrafficShape::kTenantMix;
  throw Error("unknown traffic shape '" + std::string(name) +
              "' (expected steady, diurnal, bursty, or tenant-mix)");
}

std::vector<TenantProfile> default_tenant_mix() {
  // A heavy survey tenant whose requests all ask the same question of the
  // same scene (maximally batchable), a tasking tenant with wide gangs and
  // varied algorithms, and a light ad-hoc tail.
  TenantProfile survey;
  survey.name = "survey";
  survey.weight = 3.0;
  survey.algorithms = {sched::JobAlgorithm::kAtdca};
  survey.min_ranks = 2;
  survey.max_ranks = 3;
  survey.scene_uid = 0xa11ce5;
  TenantProfile tasking;
  tasking.name = "tasking";
  tasking.weight = 2.0;
  tasking.algorithms = {sched::JobAlgorithm::kPct, sched::JobAlgorithm::kPpi,
                        sched::JobAlgorithm::kUfcls};
  tasking.min_ranks = 3;
  tasking.max_ranks = 6;
  tasking.scene_uid = 0xbead;
  tasking.seed = 7;
  TenantProfile adhoc;
  adhoc.name = "adhoc";
  adhoc.weight = 1.0;
  adhoc.algorithms = {sched::JobAlgorithm::kMorph,
                      sched::JobAlgorithm::kAtdca};
  adhoc.min_ranks = 1;
  adhoc.max_ranks = 2;
  adhoc.scene_uid = 0xcafe;
  adhoc.seed = 13;
  adhoc.targets = 6;
  return {survey, tasking, adhoc};
}

TraceConfig preset_trace(std::string_view name) {
  TraceConfig config;
  config.shape = parse_traffic_shape(name);
  if (config.shape == TrafficShape::kTenantMix) {
    config.tenants = default_tenant_mix();
  }
  return config;
}

std::vector<sched::JobSpec> generate_trace(const TraceConfig& config) {
  std::vector<TenantProfile> tenants = config.tenants;
  if (tenants.empty()) {
    tenants = config.shape == TrafficShape::kTenantMix
                  ? default_tenant_mix()
                  : std::vector<TenantProfile>{TenantProfile{}};
  }
  Xoshiro256 rng(SplitMix64(config.seed).next());
  const std::vector<double> arrivals = make_arrivals(config, rng);

  std::vector<std::size_t> algo_cursor(tenants.size(), 0);
  std::vector<sched::JobSpec> trace;
  trace.reserve(arrivals.size());
  for (std::size_t k = 0; k < arrivals.size(); ++k) {
    const std::size_t ti = pick_tenant(tenants, rng);
    const TenantProfile& tenant = tenants[ti];
    sched::JobSpec spec;
    spec.id = k + 1;
    spec.arrival_s = arrivals[k];
    spec.tenant = tenant.name;
    const std::vector<sched::JobAlgorithm>& algos =
        tenant.algorithms.empty()
            ? std::vector<sched::JobAlgorithm>{sched::JobAlgorithm::kAtdca}
            : tenant.algorithms;
    spec.algorithm = algos[algo_cursor[ti]++ % algos.size()];
    const int lo = std::max(tenant.min_ranks, 1);
    const int hi = std::max(tenant.max_ranks, lo);
    spec.ranks =
        lo + static_cast<int>(rng.uniform_int(
                 static_cast<std::uint64_t>(hi - lo) + 1));
    spec.targets = tenant.targets;
    spec.classes = tenant.classes;
    spec.iterations = tenant.iterations;
    spec.kernel_radius = tenant.kernel_radius;
    spec.skewers = tenant.skewers;
    spec.seed = tenant.seed;
    spec.replication = tenant.replication;
    spec.batch_key = batch_key(spec, tenant.scene_uid);
    trace.push_back(std::move(spec));
  }
  return trace;
}

std::string trace_json(const std::vector<sched::JobSpec>& trace) {
  obs::RunSummary doc;
  doc.set_count("trace.jobs", trace.size());
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const sched::JobSpec& spec = trace[k];
    doc.set_count(req_key(k, "id"), spec.id);
    doc.set_string(req_key(k, "algorithm"), to_string(spec.algorithm));
    doc.set_number(req_key(k, "arrival_s"), spec.arrival_s);
    doc.set_count(req_key(k, "ranks"), static_cast<std::uint64_t>(spec.ranks));
    doc.set_count(req_key(k, "targets"), spec.targets);
    doc.set_count(req_key(k, "classes"), spec.classes);
    doc.set_count(req_key(k, "iterations"), spec.iterations);
    doc.set_count(req_key(k, "kernel_radius"), spec.kernel_radius);
    doc.set_count(req_key(k, "skewers"), spec.skewers);
    doc.set_count(req_key(k, "seed"), spec.seed);
    doc.set_number(req_key(k, "sad_threshold"), spec.sad_threshold);
    doc.set_count(req_key(k, "replication"), spec.replication);
    doc.set_string(req_key(k, "tenant"), spec.tenant);
    doc.set_count(req_key(k, "batch_key"), spec.batch_key);
  }
  return doc.to_json();
}

std::vector<sched::JobSpec> parse_trace_json(std::string_view text) {
  std::map<std::string, std::string> flat;
  std::string error;
  if (!obs::parse_flat_json(text, flat, error)) {
    throw Error("trace JSON: " + error);
  }
  const std::uint64_t jobs = count_of(flat, "trace.jobs");
  std::vector<sched::JobSpec> trace;
  trace.reserve(jobs);
  for (std::uint64_t k = 0; k < jobs; ++k) {
    const auto pos = static_cast<std::size_t>(k);
    sched::JobSpec spec;
    spec.id = count_of(flat, req_key(pos, "id"));
    spec.algorithm =
        sched::parse_job_algorithm(string_of(flat, req_key(pos, "algorithm")));
    spec.arrival_s = number_of(flat, req_key(pos, "arrival_s"));
    spec.ranks = static_cast<int>(count_of(flat, req_key(pos, "ranks")));
    spec.targets = count_of(flat, req_key(pos, "targets"));
    spec.classes = count_of(flat, req_key(pos, "classes"));
    spec.iterations = count_of(flat, req_key(pos, "iterations"));
    spec.kernel_radius = count_of(flat, req_key(pos, "kernel_radius"));
    spec.skewers = count_of(flat, req_key(pos, "skewers"));
    spec.seed = count_of(flat, req_key(pos, "seed"));
    spec.sad_threshold = number_of(flat, req_key(pos, "sad_threshold"));
    spec.replication = count_of(flat, req_key(pos, "replication"));
    spec.tenant = string_of(flat, req_key(pos, "tenant"));
    spec.batch_key = count_of(flat, req_key(pos, "batch_key"));
    trace.push_back(std::move(spec));
  }
  return trace;
}

}  // namespace hprs::serve
