#include "serve/tenant.hpp"

#include <cstdio>
#include <deque>
#include <string>

#include "common/error.hpp"

namespace hprs::serve {

std::vector<sched::JobSpec> apply_rate_limits(
    const std::vector<sched::JobSpec>& stream, const TenantQuotas& quotas,
    std::vector<RateRejection>& rejected) {
  rejected.clear();
  std::vector<sched::JobSpec> admitted;
  admitted.reserve(stream.size());
  // Per-tenant arrival times of previously ADMITTED requests still inside
  // the sliding window (rejected requests do not consume budget, matching
  // a token-bucket refused call).
  std::map<std::string, std::deque<double>> windows;
  double last_arrival = -1.0;
  for (std::size_t pos = 0; pos < stream.size(); ++pos) {
    const sched::JobSpec& spec = stream[pos];
    HPRS_REQUIRE(spec.arrival_s >= last_arrival,
                 "apply_rate_limits: stream is not arrival-sorted at "
                 "position " +
                     std::to_string(pos));
    last_arrival = spec.arrival_s;
    const auto quota = quotas.find(spec.tenant);
    if (quota == quotas.end() || quota->second.rate_limit == 0) {
      admitted.push_back(spec);
      continue;
    }
    const std::size_t limit = quota->second.rate_limit;
    const double window_s = quota->second.rate_window_s;
    std::deque<double>& window = windows[spec.tenant];
    while (!window.empty() && window.front() <= spec.arrival_s - window_s) {
      window.pop_front();
    }
    if (window.size() >= limit) {
      char reason[160];
      std::snprintf(reason, sizeof(reason),
                    "quota:rate_limit tenant '%s' limit %zu per %gs",
                    spec.tenant.c_str(), limit, window_s);
      rejected.push_back(RateRejection{pos, reason});
      continue;
    }
    window.push_back(spec.arrival_s);
    admitted.push_back(spec);
  }
  return admitted;
}

std::map<std::string, int> inflight_rank_caps(const TenantQuotas& quotas) {
  std::map<std::string, int> caps;
  for (const auto& [name, quota] : quotas) {
    if (quota.max_inflight_ranks > 0) caps[name] = quota.max_inflight_ranks;
  }
  return caps;
}

}  // namespace hprs::serve
