// Deterministic arrival-trace generators for the scene service.
//
// A trace is a finite stream of sched::JobSpec requests with tenant ids,
// drawn from a seeded generator so the same TraceConfig always produces the
// byte-identical stream (tests/serve_traffic_test.cpp).  Shapes model the
// production traffic families the serving literature benchmarks against
// (Paraskevakos 2019, Al-Saadi 2020): steady Poisson-like load, a diurnal
// day/night cycle, bursty flash crowds over a background trickle, and a
// multi-tenant mix with skewed per-tenant weights.  Traces round-trip
// through the repo's flat-JSON dialect (trace_json / parse_trace_json) so a
// captured trace replays exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sched/job.hpp"

namespace hprs::serve {

/// Arrival-process family of a generated trace.
enum class TrafficShape : std::uint8_t {
  /// Homogeneous load: arrivals are sorted uniform draws over the trace
  /// duration (a Poisson process conditioned on the request count).
  kSteady,
  /// Day/night cycle: rate(t) = 1 + amplitude * cos(2 pi cycles t / T),
  /// sampled by inverting the integrated rate, so arrivals crowd the peaks.
  kDiurnal,
  /// Flash crowds: a burst_fraction share of requests lands in narrow
  /// normal-shaped bursts at seeded centers; the rest is steady background.
  kBursty,
  /// Steady arrivals with a skewed multi-tenant mix (the default tenant
  /// set when the config lists none).
  kTenantMix,
};

[[nodiscard]] const char* to_string(TrafficShape shape);
[[nodiscard]] TrafficShape parse_traffic_shape(std::string_view name);

/// One tenant's request template: every request the tenant submits is
/// stamped from this profile (algorithm cycled, width drawn in range).
struct TenantProfile {
  std::string name = "default";
  /// Relative share of the trace's requests this tenant submits.
  double weight = 1.0;
  /// Algorithms the tenant cycles through (round-robin per tenant).
  std::vector<sched::JobAlgorithm> algorithms = {
      sched::JobAlgorithm::kAtdca};
  /// Requested gang width is drawn uniformly in [min_ranks, max_ranks].
  int min_ranks = 1;
  int max_ranks = 4;
  /// Identity of the scene / endmember library the tenant's requests
  /// reference; requests sharing a scene_uid and parameters are
  /// batchable (serve/batcher.hpp).
  std::uint64_t scene_uid = 0;
  // -- request parameter template (sched::JobSpec fields) -----------------
  std::size_t targets = 8;
  std::size_t classes = 5;
  std::size_t iterations = 2;
  std::size_t kernel_radius = 1;
  std::size_t skewers = 64;
  std::uint64_t seed = 1;
  std::size_t replication = 1;
};

/// Seeded description of one trace.
struct TraceConfig {
  TrafficShape shape = TrafficShape::kSteady;
  std::size_t jobs = 64;
  /// Virtual span arrivals are drawn over, seconds.
  double duration_s = 600.0;
  std::uint64_t seed = 1;
  /// kDiurnal: relative rate swing in [0, 1) and cycles over the span.
  double diurnal_amplitude = 0.8;
  double diurnal_cycles = 2.0;
  /// kBursty: share of requests inside bursts, burst count, and the
  /// normal-spread (seconds) of each burst around its center.
  double burst_fraction = 0.6;
  std::size_t bursts = 3;
  double burst_width_s = 10.0;
  /// Submitting tenants; empty means one "default" tenant (kTenantMix
  /// substitutes default_tenant_mix()).
  std::vector<TenantProfile> tenants;
};

/// The skewed three-tenant mix the serving benchmarks use: a heavy
/// "survey" tenant sharing one scene (batchable), a "tasking" tenant with
/// wide gangs, and a light "adhoc" tail.
[[nodiscard]] std::vector<TenantProfile> default_tenant_mix();

/// Named trace presets for drivers: "steady", "diurnal", "bursty",
/// "tenant-mix" (throws Error on anything else).
[[nodiscard]] TraceConfig preset_trace(std::string_view name);

/// Generates the trace: requests sorted by arrival, ids 1..jobs in arrival
/// order, tenants weighted-drawn, batch keys stamped from each tenant's
/// scene_uid (serve::batch_key).  Pure function of `config`.
[[nodiscard]] std::vector<sched::JobSpec> generate_trace(
    const TraceConfig& config);

/// Serializes a trace in the repo's flat-JSON dialect ("req.NNNNNN.field"
/// keys, %.17g doubles) so replay is byte-exact.
[[nodiscard]] std::string trace_json(
    const std::vector<sched::JobSpec>& trace);

/// Parses trace_json output back into the identical stream (throws
/// Error on malformed documents).
[[nodiscard]] std::vector<sched::JobSpec> parse_trace_json(
    std::string_view text);

}  // namespace hprs::serve
