#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace hprs::serve {

namespace {

const std::string& display_name(const std::string& tenant) {
  static const std::string kDefault = "default";
  return tenant.empty() ? kDefault : tenant;
}

}  // namespace

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(xs.size()))));
  return xs[rank - 1];
}

std::vector<TenantSla> tenant_slas(
    const std::vector<sched::JobRecord>& records) {
  struct Acc {
    TenantSla sla;
    std::vector<double> waits, makespans, slowdowns;
  };
  std::map<std::string, Acc> by_tenant;
  for (const sched::JobRecord& record : records) {
    Acc& acc = by_tenant[display_name(record.tenant)];
    ++acc.sla.requests;
    if (record.state == sched::JobState::kRejected) {
      ++acc.sla.rejected;
      continue;
    }
    if (!record.completed()) continue;
    ++acc.sla.completed;
    if (record.batched_into != 0) ++acc.sla.riders;
    acc.sla.busy_s += record.busy_s;
    const double wait = record.queue_wait_s();
    const double makespan = record.makespan_s();
    acc.waits.push_back(wait);
    acc.makespans.push_back(makespan);
    // Bounded slowdown: response time over pure run time, floored at 1.
    acc.slowdowns.push_back(
        makespan > 0.0 ? (wait + makespan) / makespan : 1.0);
  }
  std::vector<TenantSla> slas;
  slas.reserve(by_tenant.size());
  for (auto& [name, acc] : by_tenant) {
    acc.sla.name = name;
    acc.sla.wait_p50_s = percentile(acc.waits, 0.50);
    acc.sla.wait_p95_s = percentile(acc.waits, 0.95);
    acc.sla.makespan_p50_s = percentile(acc.makespans, 0.50);
    acc.sla.makespan_p95_s = percentile(acc.makespans, 0.95);
    acc.sla.slowdown_p50 = percentile(acc.slowdowns, 0.50);
    acc.sla.slowdown_p95 = percentile(acc.slowdowns, 0.95);
    slas.push_back(std::move(acc.sla));
  }
  return slas;
}

ServiceResult run_service(const simnet::Platform& platform,
                          const hsi::HsiCube& scene,
                          const std::vector<sched::JobSpec>& stream,
                          const ServiceConfig& config, vmpi::Options options) {
  // 1. Rate-limit admission (pure pre-pass over the arrival-sorted stream).
  std::vector<RateRejection> rate_rejected;
  const std::vector<sched::JobSpec> admitted =
      apply_rate_limits(stream, config.quotas, rate_rejected);

  // 2. Schedule the admitted sub-stream with batching and in-flight caps
  //    wired through to the dispatcher.
  sched::SchedulerConfig sched_config;
  sched_config.policy = config.policy;
  sched_config.record_metrics = config.record_metrics;
  sched_config.batch_shared_keys = config.batching;
  sched_config.tenant_rank_caps = inflight_rank_caps(config.quotas);
  sched::ScheduleResult scheduled =
      sched::run_schedule(platform, scene, admitted, sched_config, options);

  // 3. Merge back to full stream order: scheduler records for admitted
  //    requests, synthesized kRejected records for rate-refused ones.
  ServiceResult result;
  result.rate_rejected = rate_rejected.size();
  result.schedule.policy = scheduled.policy;
  result.schedule.report = std::move(scheduled.report);
  result.schedule.makespan_s = scheduled.makespan_s;
  result.schedule.utilization = scheduled.utilization;
  result.schedule.lost_ranks = std::move(scheduled.lost_ranks);
  result.schedule.records.resize(stream.size());
  result.schedule.outputs.resize(stream.size());
  std::size_t next_rejected = 0;
  std::size_t next_admitted = 0;
  for (std::size_t pos = 0; pos < stream.size(); ++pos) {
    if (next_rejected < rate_rejected.size() &&
        rate_rejected[next_rejected].pos == pos) {
      sched::JobRecord& record = result.schedule.records[pos];
      record.id = stream[pos].id;
      record.algorithm = stream[pos].algorithm;
      record.arrival_s = stream[pos].arrival_s;
      record.tenant = stream[pos].tenant;
      record.rejected = true;
      record.error = rate_rejected[next_rejected].reason;
      record.state = sched::JobState::kRejected;
      ++next_rejected;
      continue;
    }
    result.schedule.records[pos] = std::move(scheduled.records[next_admitted]);
    result.schedule.outputs[pos] = std::move(scheduled.outputs[next_admitted]);
    ++next_admitted;
  }
  HPRS_ASSERT(next_admitted == admitted.size() &&
              next_rejected == rate_rejected.size());

  // 4. Service-level accounting.
  result.batches = summarize_batches(result.schedule.records);
  result.tenants = tenant_slas(result.schedule.records);

  if (config.record_metrics) {
    auto& metrics = obs::Metrics::instance();
    metrics.add("serve.requests", stream.size());
    metrics.add("serve.rejected.rate_limit", result.rate_rejected);
    metrics.add("serve.batched.riders", result.batches.riders);
    metrics.add("serve.tenants", result.tenants.size());
  }
  return result;
}

void add_sla_summary(obs::RunSummary& summary, std::string_view prefix,
                     const ServiceResult& result) {
  const std::string p(prefix);
  summary.set_count(p + ".requests", result.schedule.records.size());
  summary.set_count(p + ".completed", result.schedule.completed());
  summary.set_count(p + ".rejected", result.schedule.rejected());
  summary.set_count(p + ".rejected.rate_limit", result.rate_rejected);
  summary.set_number(p + ".makespan_s", result.schedule.makespan_s);
  summary.set_number(p + ".utilization", result.schedule.utilization);
  summary.set_count(p + ".batch.leaders", result.batches.leaders);
  summary.set_count(p + ".batch.riders", result.batches.riders);
  summary.set_number(p + ".batch.saved_est_s", result.batches.saved_est_s);
  for (const TenantSla& sla : result.tenants) {
    const std::string tp = p + ".tenant." + sla.name + ".";
    summary.set_count(tp + "requests", sla.requests);
    summary.set_count(tp + "completed", sla.completed);
    summary.set_count(tp + "rejected", sla.rejected);
    summary.set_count(tp + "riders", sla.riders);
    summary.set_number(tp + "wait_p50_s", sla.wait_p50_s);
    summary.set_number(tp + "wait_p95_s", sla.wait_p95_s);
    summary.set_number(tp + "makespan_p50_s", sla.makespan_p50_s);
    summary.set_number(tp + "makespan_p95_s", sla.makespan_p95_s);
    summary.set_number(tp + "slowdown_p50", sla.slowdown_p50);
    summary.set_number(tp + "slowdown_p95", sla.slowdown_p95);
    summary.set_number(tp + "busy_s", sla.busy_s);
  }
}

std::string sla_table(const ServiceResult& result) {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line), "%-10s %5s %5s %5s %5s %9s %9s %9s %9s\n",
                "tenant", "req", "done", "rej", "ride", "wait_p50", "wait_p95",
                "mk_p50", "slow_p95");
  os << line;
  for (const TenantSla& sla : result.tenants) {
    std::snprintf(line, sizeof(line),
                  "%-10s %5zu %5zu %5zu %5zu %9.2f %9.2f %9.2f %9.2f\n",
                  sla.name.c_str(), sla.requests, sla.completed, sla.rejected,
                  sla.riders, sla.wait_p50_s, sla.wait_p95_s,
                  sla.makespan_p50_s, sla.slowdown_p95);
    os << line;
  }
  return os.str();
}

}  // namespace hprs::serve
