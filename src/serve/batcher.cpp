#include "serve/batcher.hpp"

#include <map>

namespace hprs::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
}

void mix_double(std::uint64_t& h, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  mix(h, bits);
}

}  // namespace

std::uint64_t batch_key(const sched::JobSpec& spec, std::uint64_t scene_uid) {
  // FNV-1a over exactly the fields compute_equivalent compares (plus the
  // scene identity): placement fields stay out so the same question at a
  // different width or arrival time shares the key.
  std::uint64_t h = kFnvOffset;
  mix(h, scene_uid);
  mix(h, static_cast<std::uint64_t>(spec.algorithm));
  mix(h, spec.targets);
  mix(h, spec.classes);
  mix(h, spec.iterations);
  mix(h, spec.kernel_radius);
  mix(h, spec.skewers);
  mix(h, spec.seed);
  mix_double(h, spec.sad_threshold);
  mix(h, spec.replication);
  mix_double(h, spec.memory_fraction);
  mix(h, static_cast<std::uint64_t>(spec.policy));
  mix(h, static_cast<std::uint64_t>(spec.charge_data_staging));
  mix(h, static_cast<std::uint64_t>(spec.tile_stream));
  // Scene overrides contribute presence only -- a pointer value would make
  // keys run-dependent and unserializable.  Distinct overrides colliding is
  // fine: the dispatcher re-checks compute_equivalent (which compares the
  // pointers) before attaching any rider.
  mix(h, static_cast<std::uint64_t>(spec.scene != nullptr));
  return h == 0 ? 1 : h;
}

void stamp_batch_keys(std::vector<sched::JobSpec>& stream,
                      std::uint64_t scene_uid) {
  for (sched::JobSpec& spec : stream) {
    spec.batch_key = batch_key(spec, scene_uid);
  }
}

BatchStats summarize_batches(const std::vector<sched::JobRecord>& records) {
  BatchStats stats;
  for (const sched::JobRecord& record : records) {
    if (record.batch_fanout > 0) ++stats.leaders;
    if (record.batched_into != 0) {
      ++stats.riders;
      stats.saved_est_s += record.est_seconds;
    }
  }
  return stats;
}

}  // namespace hprs::serve
