// Per-tenant quotas and admission control for the scene service.
//
// Two quota families, both deterministic and both rejecting with named
// reasons so clients (and tests) can tell them apart:
//
//  * rate limits -- a sliding-window cap on admitted requests per tenant,
//    enforced as a pure pre-pass over the arrival-sorted stream
//    (apply_rate_limits) before anything reaches the scheduler.  A request
//    over the window's budget is rejected with "quota:rate_limit ...".
//  * in-flight rank caps -- a cap on the summed requested gang widths of a
//    tenant's admitted, unfinished jobs, enforced by the dispatcher at
//    arrival events (SchedulerConfig::tenant_rank_caps) with
//    "quota:inflight_ranks ..." reasons, because in-flight state only
//    exists inside the running schedule.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sched/job.hpp"

namespace hprs::serve {

/// One tenant's admission budget.  Zero / negative fields mean unlimited.
struct TenantQuota {
  /// Cap on the summed requested gang widths of admitted, not-yet-finished
  /// jobs (enforced by the dispatcher).
  int max_inflight_ranks = 0;
  /// Max requests admitted per sliding rate window (pre-pass).
  std::size_t rate_limit = 0;
  /// Width of the sliding rate window, virtual seconds.
  double rate_window_s = 60.0;
};

/// Tenant name -> quota.  Tenants without an entry are unlimited.
using TenantQuotas = std::map<std::string, TenantQuota>;

/// One pre-pass rejection: the stream position that was refused and the
/// named reason ("quota:rate_limit tenant '...' limit N per Ws").
struct RateRejection {
  std::size_t pos = 0;
  std::string reason;
};

/// Sliding-window rate limiting over an arrival-sorted stream: for each
/// tenant with a positive rate_limit, a request is admitted only while
/// fewer than rate_limit of its previously *admitted* requests arrived
/// within the last rate_window_s seconds.  Returns the admitted
/// sub-stream in order; refused positions land in `rejected` (ascending).
/// Pure function: same stream + quotas, same verdicts.
[[nodiscard]] std::vector<sched::JobSpec> apply_rate_limits(
    const std::vector<sched::JobSpec>& stream, const TenantQuotas& quotas,
    std::vector<RateRejection>& rejected);

/// The dispatcher-side cap map for run_schedule: every tenant with a
/// positive max_inflight_ranks.
[[nodiscard]] std::map<std::string, int> inflight_rank_caps(
    const TenantQuotas& quotas);

}  // namespace hprs::serve
