// Request batching for the scene service: compute once, fan out.
//
// Concurrent requests that run the identical computation over the same
// scene (same algorithm, same parameters, same scene/endmember-library
// identity) waste the cluster re-deriving one result.  The batcher gives
// such requests a shared nonzero batch key; under
// SchedulerConfig::batch_shared_keys the dispatcher then attaches key
// peers to the first request's gang as *riders* -- the gang computes once
// and every rider receives a copy of the leader's output
// (JobRecord::batched_into / batch_fanout).  Because a rider's output is
// defined as the leader's, and the leader's run is an unmodified solo run,
// batched outputs stay bit-identical to unbatched solo runs of the same
// spec; per-request records keep the attribution (who computed, who rode).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sched/job.hpp"

namespace hprs::serve {

/// Shared-work key of `spec` against the scene identity `scene_uid`:
/// FNV-1a over the algorithm, every compute parameter, and the uid.  Gang
/// width, arrival time, id, and tenant are placement/attribution concerns
/// and excluded, so the same question asked by two tenants at two widths
/// still shares a key.  Never returns 0 (0 means "unbatchable" to the
/// scheduler); collisions are harmless because the dispatcher re-checks
/// sched::compute_equivalent before attaching a rider.
[[nodiscard]] std::uint64_t batch_key(const sched::JobSpec& spec,
                                      std::uint64_t scene_uid);

/// Stamps batch keys onto a stream in place: each spec gets
/// batch_key(spec, scene_uid).  Convenience for hand-built streams; traces
/// from generate_trace arrive already stamped.
void stamp_batch_keys(std::vector<sched::JobSpec>& stream,
                      std::uint64_t scene_uid);

/// Post-run accounting of what batching did.
struct BatchStats {
  /// Gangs that actually computed for more than themselves.
  std::size_t leaders = 0;
  /// Requests served by another gang's computation.
  std::size_t riders = 0;
  /// Summed cost-model estimate of the rides: virtual compute seconds the
  /// cluster did not spend re-deriving shared results.
  double saved_est_s = 0.0;
};

/// Scans completion records for rider attribution.
[[nodiscard]] BatchStats summarize_batches(
    const std::vector<sched::JobRecord>& records);

}  // namespace hprs::serve
