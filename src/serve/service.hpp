// run_service: the scene service's end-to-end driver.
//
//   trace -> rate-limit admission -> batcher -> scheduler -> SLA reports
//
// One call takes an arrival-sorted request stream (usually from
// serve/traffic.hpp), applies the sliding-window rate limits, hands the
// admitted sub-stream to sched::run_schedule with batching and in-flight
// rank caps wired through, then merges the scheduler's records back into
// full stream order (rate-rejected requests get synthesized kRejected
// records carrying their reasons) and derives per-tenant SLA statistics
// (wait / makespan / slowdown percentiles).  Everything downstream of the
// stream is a pure function of it, so reports are bit-identical across
// runs and both executor modes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "hsi/cube.hpp"
#include "obs/run_summary.hpp"
#include "sched/scheduler.hpp"
#include "serve/batcher.hpp"
#include "serve/tenant.hpp"
#include "simnet/platform.hpp"
#include "vmpi/engine.hpp"

namespace hprs::serve {

struct ServiceConfig {
  sched::Policy policy = sched::Policy::kHeteroBestFit;
  /// Compute-once batching of shared batch keys (serve/batcher.hpp).
  bool batching = false;
  /// Per-tenant admission budgets (serve/tenant.hpp).
  TenantQuotas quotas;
  /// Publish sched.* / serve.* metrics into the obs registry.
  bool record_metrics = true;
};

/// Per-tenant service-level statistics over one run.  Percentiles are
/// nearest-rank over the tenant's completed requests; slowdown is
/// (wait + makespan) / makespan, the bounded-slowdown numerator the
/// scheduling literature reports.
struct TenantSla {
  std::string name;
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  /// Completed requests served as batched riders.
  std::size_t riders = 0;
  double wait_p50_s = 0.0;
  double wait_p95_s = 0.0;
  double makespan_p50_s = 0.0;
  double makespan_p95_s = 0.0;
  double slowdown_p50 = 0.0;
  double slowdown_p95 = 0.0;
  /// Summed busy seconds the tenant's gangs charged the cluster.
  double busy_s = 0.0;
};

struct ServiceResult {
  /// Scheduler outcome re-indexed to the FULL input stream: one record /
  /// output per request, in stream order; rate-rejected requests carry
  /// synthesized kRejected records (error = the named reason) and empty
  /// outputs.
  sched::ScheduleResult schedule;
  /// Requests refused by the rate-limit pre-pass.
  std::size_t rate_rejected = 0;
  BatchStats batches;
  /// Per-tenant SLAs, sorted by tenant name.
  std::vector<TenantSla> tenants;
};

/// Runs the service over `stream` on `platform`.  The stream must be
/// arrival-sorted with unique ids (generate_trace output qualifies).
[[nodiscard]] ServiceResult run_service(const simnet::Platform& platform,
                                        const hsi::HsiCube& scene,
                                        const std::vector<sched::JobSpec>& stream,
                                        const ServiceConfig& config = {},
                                        vmpi::Options options = {});

/// Nearest-rank percentile of an unsorted sample, q in (0, 1].
[[nodiscard]] double percentile(std::vector<double> xs, double q);

/// Per-tenant SLAs over completion records (sorted by tenant name; the
/// empty tenant name reports as "default").
[[nodiscard]] std::vector<TenantSla> tenant_slas(
    const std::vector<sched::JobRecord>& records);

/// Records the result's service-level plane under `prefix.`: stream-wide
/// counts, makespan/utilization, batching stats, and every tenant's SLA
/// under `prefix.tenant.<name>.*`.  All stable keys.
void add_sla_summary(obs::RunSummary& summary, std::string_view prefix,
                     const ServiceResult& result);

/// Human-readable per-tenant SLA table (one header + one row per tenant).
[[nodiscard]] std::string sla_table(const ServiceResult& result);

}  // namespace hprs::serve
