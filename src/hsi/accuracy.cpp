#include "hsi/accuracy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hprs::hsi {

ClassificationScore score_classification(
    std::span<const std::uint16_t> predicted_labels, std::size_t label_count,
    const GroundTruth& truth, std::span<const Material> eval_classes) {
  HPRS_REQUIRE(predicted_labels.size() == truth.labels.size(),
               "label image size does not match ground truth");
  HPRS_REQUIRE(label_count > 0, "label_count must be positive");

  // Overlap counts: overlap[label][class index in eval_classes].
  std::vector<std::vector<std::size_t>> overlap(
      label_count, std::vector<std::size_t>(eval_classes.size(), 0));
  std::vector<std::size_t> class_total(eval_classes.size(), 0);

  const auto eval_index = [&](Material m) -> std::ptrdiff_t {
    const auto it = std::find(eval_classes.begin(), eval_classes.end(), m);
    return it == eval_classes.end() ? -1 : it - eval_classes.begin();
  };

  ClassificationScore score;
  for (std::size_t i = 0; i < predicted_labels.size(); ++i) {
    const auto truth_class = static_cast<Material>(truth.labels[i]);
    const auto k = eval_index(truth_class);
    if (k < 0) continue;
    HPRS_REQUIRE(predicted_labels[i] < label_count,
                 "predicted label out of range");
    ++overlap[predicted_labels[i]][static_cast<std::size_t>(k)];
    ++class_total[static_cast<std::size_t>(k)];
    ++score.evaluated_pixels;
  }

  // Majority mapping: each predicted label adopts the truth class it covers
  // most often on the evaluated pixels.
  score.label_to_class.assign(label_count, 0xFF);
  for (std::size_t l = 0; l < label_count; ++l) {
    const auto& row = overlap[l];
    const auto best = std::max_element(row.begin(), row.end());
    if (best != row.end() && *best > 0) {
      const auto k = static_cast<std::size_t>(best - row.begin());
      score.label_to_class[l] =
          static_cast<std::uint8_t>(eval_classes[k]);
    }
  }

  // Per-class and overall accuracy under the mapping.
  std::vector<std::size_t> correct(eval_classes.size(), 0);
  std::size_t correct_total = 0;
  for (std::size_t i = 0; i < predicted_labels.size(); ++i) {
    const auto truth_class = static_cast<Material>(truth.labels[i]);
    const auto k = eval_index(truth_class);
    if (k < 0) continue;
    if (score.label_to_class[predicted_labels[i]] ==
        static_cast<std::uint8_t>(truth_class)) {
      ++correct[static_cast<std::size_t>(k)];
      ++correct_total;
    }
  }

  score.per_class_pct.resize(eval_classes.size());
  for (std::size_t k = 0; k < eval_classes.size(); ++k) {
    score.per_class_pct[k] =
        class_total[k] == 0
            ? 0.0
            : 100.0 * static_cast<double>(correct[k]) /
                  static_cast<double>(class_total[k]);
  }
  score.overall_pct =
      score.evaluated_pixels == 0
          ? 0.0
          : 100.0 * static_cast<double>(correct_total) /
                static_cast<double>(score.evaluated_pixels);
  return score;
}

}  // namespace hprs::hsi
