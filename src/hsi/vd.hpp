// Virtual dimensionality (intrinsic dimensionality) estimation.
//
// The paper sets the number of targets t = 18 "after calculating the
// intrinsic dimensionality of the data".  The standard estimator for that
// quantity in the hyperspectral literature is the Harsanyi-Farrand-Chang
// (HFC) method: compare the eigenvalues of the sample correlation matrix
// R against those of the sample covariance matrix K; bands where the
// correlation eigenvalue significantly exceeds the covariance eigenvalue
// indicate a signal source.  A Neyman-Pearson test at false-alarm
// probability P_f decides "significantly".
#pragma once

#include <cstddef>

#include "hsi/cube.hpp"

namespace hprs::hsi {

struct VdResult {
  /// Estimated number of spectrally distinct signal sources.
  std::size_t dimensionality = 0;
  /// Number of eigenvalue pairs tested (== band count).
  std::size_t bands = 0;
};

/// HFC virtual-dimensionality estimate of the cube at false-alarm
/// probability `pf` (typical values 1e-3..1e-5).
[[nodiscard]] VdResult estimate_vd(const HsiCube& cube, double pf = 1e-4);

}  // namespace hprs::hsi
