// Synthetic spectral library for the WTC scene surrogate.
//
// The paper's experiments use an AVIRIS scene (224 bands, 0.4-2.5 um) of
// lower Manhattan together with USGS-measured spectra of the dust/debris
// deposits (two concretes, one cement, three dusts, gypsum wall board) and
// thermal hot spots at 700-1300 F.  The real scene is not redistributable,
// so this library synthesizes physically-motivated surrogates:
//
//  * reflectance spectra are sums of broad Gaussian features on a sloped
//    continuum, with the gypsum-bearing materials carrying the
//    characteristic 1.45/1.94/2.21 um hydration features and the concretes
//    a 2.33 um carbonate feature;
//  * fire pixels add Planck blackbody emission at the hot-spot temperature,
//    which for 640-980 K concentrates in the SWIR -- exactly why AVIRIS
//    could see the WTC fires.
//
// What matters for reproducing the paper is *not* the absolute spectra but
// their geometry: debris classes are mutually distinguishable but
// correlated, hot spots are spectrally extreme in norm, and hotter fires
// are more extreme.  DESIGN.md discusses this substitution.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hprs::hsi {

/// Materials present in the synthetic WTC scene.  The seven debris classes
/// match the rows of the paper's Table 4.
enum class Material : std::uint8_t {
  kWater = 0,
  kVegetation,
  kSmoke,
  kConcrete37B,   // "Concrete (WTC01-37B)"
  kConcrete37Am,  // "Concrete (WTC01-37Am)"
  kCement37A,     // "Cement (WTC01-37A)"
  kDust15,        // "Dust (WTC01-15)"
  kDust28,        // "Dust (WTC01-28)"
  kDust36,        // "Dust (WTC01-36)"
  kGypsum,        // "Gypsum wall board"
};

inline constexpr std::size_t kMaterialCount = 10;

/// USGS-style display name ("Concrete (WTC01-37B)", ...).
[[nodiscard]] const char* to_string(Material m);

/// The seven dust/debris classes of Table 4, in row order.
[[nodiscard]] std::span<const Material> debris_materials();

/// Band-center wavelengths in micrometers, linearly spaced over the AVIRIS
/// range 0.4-2.5 um.
[[nodiscard]] std::vector<double> wavelengths_um(std::size_t bands);

/// Deterministic reflectance spectrum of a material on the given band
/// centers, in [0, 1].
[[nodiscard]] std::vector<double> reflectance(Material m,
                                              std::span<const double> wl_um);

/// Planck spectral radiance B(lambda, T) evaluated on the band centers and
/// normalized so that its peak over the 0.4-2.5 um window at 1300 F equals
/// 1.  Using a common normalization across temperatures preserves the
/// physical ordering (hotter => brighter and blue-shifted).
[[nodiscard]] std::vector<double> blackbody_radiance(
    double temp_kelvin, std::span<const double> wl_um);

[[nodiscard]] constexpr double fahrenheit_to_kelvin(double f) {
  return (f - 32.0) * 5.0 / 9.0 + 273.15;
}

}  // namespace hprs::hsi
