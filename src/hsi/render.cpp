#include "hsi/render.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace hprs::hsi {

namespace {

void check_geometry(std::size_t count, std::size_t rows, std::size_t cols) {
  HPRS_REQUIRE(rows > 0 && cols > 0, "image dimensions must be positive");
  HPRS_REQUIRE(count == rows * cols,
               "pixel buffer does not match the requested geometry");
}

}  // namespace

void write_pgm(const std::string& path, std::span<const float> values,
               std::size_t rows, std::size_t cols) {
  check_geometry(values.size(), rows, cols);
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  const float lo = *lo_it;
  const float hi = *hi_it;
  const float span = hi - lo;

  std::ofstream out(path, std::ios::binary);
  HPRS_REQUIRE(out.good(), "cannot open for writing: " + path);
  out << "P5\n" << cols << ' ' << rows << "\n255\n";
  std::vector<std::uint8_t> row(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const float v = values[r * cols + c];
      row[c] = span > 0.0f
                   ? static_cast<std::uint8_t>(255.0f * (v - lo) / span)
                   : std::uint8_t{128};
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  HPRS_REQUIRE(out.good(), "failed writing " + path);
}

Rgb label_color(std::size_t label) {
  // Golden-angle hue walk in a simple HSV->RGB conversion: adjacent label
  // ids land on well-separated hues, deterministically.
  const double hue = std::fmod(static_cast<double>(label) * 137.50776, 360.0);
  const double s = 0.65;
  const double v = 0.95;
  const double c = v * s;
  const double x = c * (1.0 - std::abs(std::fmod(hue / 60.0, 2.0) - 1.0));
  const double m = v - c;
  double rp = 0;
  double gp = 0;
  double bp = 0;
  switch (static_cast<int>(hue / 60.0) % 6) {
    case 0: rp = c; gp = x; break;
    case 1: rp = x; gp = c; break;
    case 2: gp = c; bp = x; break;
    case 3: gp = x; bp = c; break;
    case 4: rp = x; bp = c; break;
    default: rp = c; bp = x; break;
  }
  return Rgb{static_cast<std::uint8_t>(255.0 * (rp + m)),
             static_cast<std::uint8_t>(255.0 * (gp + m)),
             static_cast<std::uint8_t>(255.0 * (bp + m))};
}

void write_label_ppm(const std::string& path,
                     std::span<const std::uint16_t> labels, std::size_t rows,
                     std::size_t cols) {
  check_geometry(labels.size(), rows, cols);
  std::ofstream out(path, std::ios::binary);
  HPRS_REQUIRE(out.good(), "cannot open for writing: " + path);
  out << "P6\n" << cols << ' ' << rows << "\n255\n";
  std::vector<std::uint8_t> row(cols * 3);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const Rgb rgb = label_color(labels[r * cols + c]);
      row[3 * c] = rgb.r;
      row[3 * c + 1] = rgb.g;
      row[3 * c + 2] = rgb.b;
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  HPRS_REQUIRE(out.good(), "failed writing " + path);
}

}  // namespace hprs::hsi
