#include "hsi/spectra.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"

namespace hprs::hsi {

namespace {

/// Gaussian spectral feature: amplitude (negative = absorption) centered at
/// `center_um` with standard deviation `width_um`.
struct Feature {
  double center_um;
  double width_um;
  double amplitude;
};

double apply_features(double wl, double continuum, double slope,
                      std::span<const Feature> features) {
  double v = continuum + slope * (wl - 0.4);
  for (const auto& f : features) {
    const double d = (wl - f.center_um) / f.width_um;
    v += f.amplitude * std::exp(-0.5 * d * d);
  }
  return std::max(0.0, std::min(1.0, v));
}

}  // namespace

const char* to_string(Material m) {
  switch (m) {
    case Material::kWater: return "Water";
    case Material::kVegetation: return "Vegetation";
    case Material::kSmoke: return "Smoke plume";
    case Material::kConcrete37B: return "Concrete (WTC01-37B)";
    case Material::kConcrete37Am: return "Concrete (WTC01-37Am)";
    case Material::kCement37A: return "Cement (WTC01-37A)";
    case Material::kDust15: return "Dust (WTC01-15)";
    case Material::kDust28: return "Dust (WTC01-28)";
    case Material::kDust36: return "Dust (WTC01-36)";
    case Material::kGypsum: return "Gypsum wall board";
  }
  return "?";
}

std::span<const Material> debris_materials() {
  static constexpr std::array<Material, 7> kDebris = {
      Material::kConcrete37B, Material::kConcrete37Am, Material::kCement37A,
      Material::kDust15,      Material::kDust28,       Material::kDust36,
      Material::kGypsum,
  };
  return kDebris;
}

std::vector<double> wavelengths_um(std::size_t bands) {
  HPRS_REQUIRE(bands >= 2, "need at least two bands");
  std::vector<double> wl(bands);
  const double lo = 0.4;
  const double hi = 2.5;
  for (std::size_t b = 0; b < bands; ++b) {
    wl[b] = lo + (hi - lo) * static_cast<double>(b) /
                     static_cast<double>(bands - 1);
  }
  return wl;
}

std::vector<double> reflectance(Material m, std::span<const double> wl_um) {
  // Continuum level, slope, and characteristic features per material.  The
  // gypsum hydration triplet (1.45 / 1.94 / 2.21 um) appears with varying
  // depth in the gypsum-bearing dusts; carbonate (2.33 um) marks the
  // concretes; vegetation carries the chlorophyll well, red edge, and leaf
  // water absorptions.
  double continuum = 0.0;
  double slope = 0.0;
  std::vector<Feature> features;
  switch (m) {
    case Material::kWater:
      // Turbid harbor water: dark but with a sediment/glint floor, so the
      // SWIR tail stays above the noise and the class keeps a coherent
      // spectral angle.
      continuum = 0.11;
      slope = -0.025;
      features = {{0.45, 0.08, 0.04}, {0.55, 0.10, 0.03}};
      break;
    case Material::kVegetation:
      continuum = 0.05;
      slope = 0.0;
      features = {{0.55, 0.04, 0.06},   // green peak
                  {0.85, 0.18, 0.45},   // NIR plateau
                  {1.25, 0.12, 0.25},
                  {1.65, 0.10, 0.18},
                  {2.2, 0.12, 0.10},
                  {1.45, 0.03, -0.12},  // leaf water
                  {1.94, 0.04, -0.10}};
      break;
    case Material::kSmoke:
      continuum = 0.45;
      slope = -0.12;
      features = {{0.5, 0.15, 0.1}};
      break;
    case Material::kConcrete37B:
      continuum = 0.30;
      slope = 0.10;
      features = {{2.33, 0.04, -0.16},   // strong carbonate
                  {0.87, 0.10, 0.10},    // iron-oxide shoulder
                  {1.45, 0.03, -0.04}};
      break;
    case Material::kConcrete37Am:
      continuum = 0.26;
      slope = -0.02;                     // flat gray
      features = {{2.33, 0.04, -0.20},
                  {0.70, 0.18, 0.16},    // reddish tint
                  {1.94, 0.04, -0.08}};
      break;
    case Material::kCement37A:
      continuum = 0.36;
      slope = 0.02;
      features = {{2.21, 0.04, -0.16},   // clay/portlandite
                  {1.94, 0.05, -0.12},
                  {0.45, 0.06, 0.10}};   // bluish rise
      break;
    case Material::kDust15:
      continuum = 0.26;
      slope = 0.16;                      // strongly red-sloped
      features = {{1.45, 0.03, -0.10},
                  {1.94, 0.04, -0.12}};
      break;
    case Material::kDust28:
      continuum = 0.22;
      slope = 0.04;
      features = {{2.21, 0.04, -0.28},
                  {2.33, 0.03, -0.14},
                  {0.55, 0.07, 0.22},    // strong greenish cast
                  {1.10, 0.12, 0.14},
                  {1.45, 0.03, 0.06}};
      break;
    case Material::kDust36:
      continuum = 0.42;
      slope = -0.07;                     // bright, blue-sloped
      features = {{1.45, 0.04, -0.16},
                  {1.94, 0.05, -0.18},
                  {1.20, 0.10, 0.10}};
      break;
    case Material::kGypsum:
      continuum = 0.55;
      slope = 0.02;
      features = {{1.45, 0.035, -0.25},  // strong hydration triplet
                  {1.94, 0.045, -0.35},
                  {2.21, 0.035, -0.12},
                  {1.75, 0.03, -0.08}};
      break;
  }

  std::vector<double> out(wl_um.size());
  for (std::size_t b = 0; b < wl_um.size(); ++b) {
    out[b] = apply_features(wl_um[b], continuum, slope, features);
  }
  return out;
}

std::vector<double> blackbody_radiance(double temp_kelvin,
                                       std::span<const double> wl_um) {
  HPRS_REQUIRE(temp_kelvin > 0.0, "temperature must be positive kelvin");
  // Planck's law in wavelength form; constants folded since we normalize.
  //   B(l, T) ~ 1 / (l^5 (exp(c2 / (l T)) - 1)),  c2 = h c / k_B
  constexpr double kC2UmK = 14387.77;  // micrometer * kelvin
  const auto planck = [&](double wl, double t) {
    return 1.0 / (std::pow(wl, 5.0) * (std::exp(kC2UmK / (wl * t)) - 1.0));
  };

  // Normalize against the 1300 F peak over the sensor window so relative
  // brightness across hot-spot temperatures is preserved.
  const double t_ref = fahrenheit_to_kelvin(1300.0);
  double peak_ref = 0.0;
  for (const double wl : wl_um) {
    peak_ref = std::max(peak_ref, planck(wl, t_ref));
  }
  HPRS_ASSERT(peak_ref > 0.0);

  std::vector<double> out(wl_um.size());
  for (std::size_t b = 0; b < wl_um.size(); ++b) {
    out[b] = planck(wl_um[b], temp_kelvin) / peak_ref;
  }
  return out;
}

}  // namespace hprs::hsi
