// Map rendering: grayscale (PGM) and color (PPM) export of the products the
// algorithms produce -- abundance planes, RMSE maps, classification label
// images.  Plain NetPBM because it needs no dependencies and every image
// tool reads it.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace hprs::hsi {

/// Writes `values` (row-major, rows x cols) as an 8-bit PGM, linearly
/// rescaled from [min, max] of the data (a constant image renders mid-gray).
void write_pgm(const std::string& path, std::span<const float> values,
               std::size_t rows, std::size_t cols);

/// Writes a label image as an 8-bit PPM using a deterministic categorical
/// palette (labels with the same id always get the same color).
void write_label_ppm(const std::string& path,
                     std::span<const std::uint16_t> labels, std::size_t rows,
                     std::size_t cols);

/// The palette color assigned to a label (r, g, b), exposed for legends.
struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
};
[[nodiscard]] Rgb label_color(std::size_t label);

}  // namespace hprs::hsi
