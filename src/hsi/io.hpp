// ENVI-style cube I/O.
//
// Writes a pair of files: `<path>.hdr` (a text header with the standard
// ENVI keys: samples, lines, bands, interleave, data type, byte order) and
// `<path>.raw` (the samples in the requested interleave, little-endian
// 32-bit IEEE floats -- ENVI data type 4).  This is the interchange format
// AVIRIS products ship in, so real scenes drop into the examples unchanged.
#pragma once

#include <string>

#include "hsi/cube.hpp"

namespace hprs::hsi {

/// Writes `<path>.hdr` + `<path>.raw`.  Throws hprs::Error on I/O failure.
void write_envi(const HsiCube& cube, const std::string& path_stem,
                Interleave il = Interleave::kBip);

/// Reads a cube written by write_envi (or any ENVI float32 cube).
[[nodiscard]] HsiCube read_envi(const std::string& path_stem);

}  // namespace hprs::hsi
