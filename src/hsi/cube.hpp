// Hyperspectral image cube container.
//
// A cube is `rows x cols` pixels with a full spectrum of `bands` samples per
// pixel.  In-memory storage is always BIP (band-interleaved-by-pixel,
// i.e. pixel-major): every algorithm in this library operates on whole
// spectral signatures of spatially adjacent pixels, which is exactly the
// hybrid partitioning argument of the paper (Sec. 2.1) -- spatial blocks
// that retain full spectral content.  BSQ and BIL orderings are supported at
// the I/O boundary (hsi/io.hpp) for interoperability with ENVI-style files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace hprs::hsi {

/// File/interchange band orderings (the in-memory layout is always BIP).
enum class Interleave : std::uint8_t {
  kBip,  ///< band-interleaved by pixel: [row][col][band]
  kBil,  ///< band-interleaved by line:  [row][band][col]
  kBsq,  ///< band-sequential:           [band][row][col]
};

[[nodiscard]] const char* to_string(Interleave il);

class HsiCube {
 public:
  HsiCube() = default;

  /// Zero-filled cube.
  HsiCube(std::size_t rows, std::size_t cols, std::size_t bands);

  /// Adopts pixel-major (BIP) sample data; size must be rows*cols*bands.
  HsiCube(std::size_t rows, std::size_t cols, std::size_t bands,
          std::vector<float> bip_samples);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t bands() const { return bands_; }
  [[nodiscard]] std::size_t pixel_count() const { return rows_ * cols_; }
  [[nodiscard]] std::size_t sample_count() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Bytes of one full-spectrum pixel vector (the unit the WEA partitioner
  /// reasons about).
  [[nodiscard]] std::size_t bytes_per_pixel() const {
    return bands_ * sizeof(float);
  }

  /// Full spectrum of the pixel at (row, col).
  [[nodiscard]] std::span<float> pixel(std::size_t row, std::size_t col) {
    HPRS_ASSERT(row < rows_ && col < cols_);
    return {data_.data() + (row * cols_ + col) * bands_, bands_};
  }
  [[nodiscard]] std::span<const float> pixel(std::size_t row,
                                             std::size_t col) const {
    HPRS_ASSERT(row < rows_ && col < cols_);
    return {data_.data() + (row * cols_ + col) * bands_, bands_};
  }

  /// Spectrum of the i-th pixel in row-major pixel order.
  [[nodiscard]] std::span<const float> pixel(std::size_t index) const {
    HPRS_ASSERT(index < pixel_count());
    return {data_.data() + index * bands_, bands_};
  }
  [[nodiscard]] std::span<float> pixel(std::size_t index) {
    HPRS_ASSERT(index < pixel_count());
    return {data_.data() + index * bands_, bands_};
  }

  /// Contiguous samples of a block of whole image rows [row_begin,
  /// row_end): the natural message payload for spatial-domain partitions.
  [[nodiscard]] std::span<const float> row_block(std::size_t row_begin,
                                                 std::size_t row_end) const;

  /// Copies out a block of whole rows as a standalone cube (used for
  /// overlap-border partitions, which must not alias the parent).
  [[nodiscard]] HsiCube copy_rows(std::size_t row_begin,
                                  std::size_t row_end) const;

  [[nodiscard]] std::span<const float> samples() const { return data_; }
  [[nodiscard]] std::span<float> samples() { return data_; }

  /// Reorders the BIP samples into the requested interleave (for I/O).
  [[nodiscard]] std::vector<float> to_interleave(Interleave il) const;

  /// Builds a cube from samples stored in the given interleave.
  static HsiCube from_interleave(std::size_t rows, std::size_t cols,
                                 std::size_t bands, Interleave il,
                                 std::span<const float> samples);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t bands_ = 0;
  std::vector<float> data_;  // BIP
};

}  // namespace hprs::hsi
