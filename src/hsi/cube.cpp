#include "hsi/cube.hpp"

#include <algorithm>

namespace hprs::hsi {

const char* to_string(Interleave il) {
  switch (il) {
    case Interleave::kBip: return "bip";
    case Interleave::kBil: return "bil";
    case Interleave::kBsq: return "bsq";
  }
  return "?";
}

HsiCube::HsiCube(std::size_t rows, std::size_t cols, std::size_t bands)
    : rows_(rows), cols_(cols), bands_(bands), data_(rows * cols * bands) {
  HPRS_REQUIRE(rows > 0 && cols > 0 && bands > 0,
               "cube dimensions must be positive");
}

HsiCube::HsiCube(std::size_t rows, std::size_t cols, std::size_t bands,
                 std::vector<float> bip_samples)
    : rows_(rows), cols_(cols), bands_(bands), data_(std::move(bip_samples)) {
  HPRS_REQUIRE(rows > 0 && cols > 0 && bands > 0,
               "cube dimensions must be positive");
  HPRS_REQUIRE(data_.size() == rows * cols * bands,
               "sample buffer does not match cube dimensions");
}

std::span<const float> HsiCube::row_block(std::size_t row_begin,
                                          std::size_t row_end) const {
  HPRS_REQUIRE(row_begin <= row_end && row_end <= rows_,
               "row block out of range");
  return {data_.data() + row_begin * cols_ * bands_,
          (row_end - row_begin) * cols_ * bands_};
}

HsiCube HsiCube::copy_rows(std::size_t row_begin, std::size_t row_end) const {
  const auto block = row_block(row_begin, row_end);
  return HsiCube(row_end - row_begin, cols_, bands_,
                 std::vector<float>(block.begin(), block.end()));
}

std::vector<float> HsiCube::to_interleave(Interleave il) const {
  if (il == Interleave::kBip) return {data_.begin(), data_.end()};
  std::vector<float> out(data_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const auto px = pixel(r, c);
      for (std::size_t b = 0; b < bands_; ++b) {
        const std::size_t idx =
            il == Interleave::kBil
                ? (r * bands_ + b) * cols_ + c
                : (b * rows_ + r) * cols_ + c;  // BSQ
        out[idx] = px[b];
      }
    }
  }
  return out;
}

HsiCube HsiCube::from_interleave(std::size_t rows, std::size_t cols,
                                 std::size_t bands, Interleave il,
                                 std::span<const float> samples) {
  HPRS_REQUIRE(samples.size() == rows * cols * bands,
               "sample buffer does not match cube dimensions");
  if (il == Interleave::kBip) {
    return HsiCube(rows, cols, bands,
                   std::vector<float>(samples.begin(), samples.end()));
  }
  HsiCube cube(rows, cols, bands);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const auto px = cube.pixel(r, c);
      for (std::size_t b = 0; b < bands; ++b) {
        const std::size_t idx = il == Interleave::kBil
                                    ? (r * bands + b) * cols + c
                                    : (b * rows + r) * cols + c;  // BSQ
        px[b] = samples[idx];
      }
    }
  }
  return cube;
}

}  // namespace hprs::hsi
