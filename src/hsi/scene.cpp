#include "hsi/scene.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hprs::hsi {

namespace {

constexpr std::array<char, 7> kHotSpotLabels = {'A', 'B', 'C', 'D',
                                                'E', 'F', 'G'};
/// Temperatures per label.  The paper pins 'F' = 700 F (coolest) and
/// 'G' = 1300 F (hottest); intermediate assignments are ours.
constexpr std::array<double, 7> kHotSpotTempsF = {1000.0, 1100.0, 900.0,
                                                  1200.0, 800.0,  700.0,
                                                  1300.0};

/// Relative positions of the hot spots inside the plume ellipse, as
/// fractions of the plume radii.
constexpr std::array<std::pair<double, double>, 7> kHotSpotOffsets = {{
    {-0.55, -0.30},
    {-0.25, 0.45},
    {0.05, -0.55},
    {0.30, 0.25},
    {0.55, -0.15},
    {-0.05, 0.05},
    {0.40, 0.60},
}};

struct Layout {
  std::size_t rows;
  std::size_t cols;
  std::size_t water_cols;       // west edge
  std::size_t park_row_end;     // vegetation block extents
  std::size_t park_col_begin;
  double plume_r_center, plume_c_center, plume_r_radius, plume_c_radius;

  explicit Layout(const SceneConfig& cfg)
      : rows(cfg.rows),
        cols(cfg.cols),
        water_cols(std::max<std::size_t>(1, cfg.cols / 8)),
        park_row_end(std::max<std::size_t>(2, cfg.rows / 6)),
        park_col_begin(cfg.cols - std::max<std::size_t>(2, cfg.cols / 5)),
        plume_r_center(0.45 * static_cast<double>(cfg.rows)),
        plume_c_center(0.55 * static_cast<double>(cfg.cols)),
        plume_r_radius(0.22 * static_cast<double>(cfg.rows)),
        plume_c_radius(0.20 * static_cast<double>(cfg.cols)) {}

  [[nodiscard]] bool in_plume(std::size_t r, std::size_t c) const {
    const double dr = (static_cast<double>(r) - plume_r_center) / plume_r_radius;
    const double dc = (static_cast<double>(c) - plume_c_center) / plume_c_radius;
    return dr * dr + dc * dc <= 1.0;
  }
};

/// Assigns the base class map: water strip, park block, and a grid of city
/// blocks carrying the seven debris classes; blocks inside the plume use a
/// finer tiling restricted to dusts and gypsum.
std::vector<std::uint8_t> build_class_map(const SceneConfig& cfg,
                                          const Layout& lay,
                                          Xoshiro256& rng) {
  const auto debris = debris_materials();
  const std::size_t block =
      std::max<std::size_t>(4, std::min(cfg.rows, cfg.cols) / 12);
  const std::size_t fine_block = std::max<std::size_t>(2, block / 2);

  // Pre-draw a class per (coarse) city block and per fine plume tile so the
  // map is deterministic in the seed and independent of traversal order.
  const std::size_t coarse_r = (cfg.rows + block - 1) / block;
  const std::size_t coarse_c = (cfg.cols + block - 1) / block;
  std::vector<Material> block_class(coarse_r * coarse_c);
  for (std::size_t i = 0; i < block_class.size(); ++i) {
    // Weighted toward concretes/cement outside the plume (street debris).
    static constexpr std::array<int, 7> kWeights = {4, 3, 3, 2, 2, 2, 1};
    int total = 0;
    for (int w : kWeights) total += w;
    auto pick = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(total)));
    std::size_t cls = 0;
    for (; cls < kWeights.size(); ++cls) {
      pick -= kWeights[cls];
      if (pick < 0) break;
    }
    block_class[i] = debris[std::min(cls, debris.size() - 1)];
  }

  const std::size_t fine_r = (cfg.rows + fine_block - 1) / fine_block;
  const std::size_t fine_c = (cfg.cols + fine_block - 1) / fine_block;
  std::vector<Material> fine_class(fine_r * fine_c);
  static constexpr std::array<Material, 4> kPlumeClasses = {
      Material::kDust15, Material::kDust28, Material::kDust36,
      Material::kGypsum};
  for (auto& m : fine_class) {
    m = kPlumeClasses[rng.uniform_int(kPlumeClasses.size())];
  }

  std::vector<std::uint8_t> labels(cfg.rows * cfg.cols);
  for (std::size_t r = 0; r < cfg.rows; ++r) {
    for (std::size_t c = 0; c < cfg.cols; ++c) {
      Material m;
      if (c < lay.water_cols) {
        m = Material::kWater;
      } else if (r < lay.park_row_end && c >= lay.park_col_begin) {
        m = Material::kVegetation;
      } else if (lay.in_plume(r, c)) {
        m = fine_class[(r / fine_block) * fine_c + (c / fine_block)];
      } else {
        m = block_class[(r / block) * coarse_c + (c / block)];
      }
      labels[r * cfg.cols + c] = static_cast<std::uint8_t>(m);
    }
  }
  return labels;
}

/// Fractional smoke opacity at (r, c): a streak from the plume center
/// toward the southwest corner (Battery Park direction), with Gaussian
/// cross-section.
double smoke_alpha(const Layout& lay, std::size_t r, std::size_t c) {
  const double x0 = lay.plume_c_center;
  const double y0 = lay.plume_r_center;
  // Drift ends at the Battery Park shoreline, staying over land so the
  // river does not acquire a smoke gradient.
  const double x1 = 0.20 * static_cast<double>(lay.cols);
  const double y1 = 0.95 * static_cast<double>(lay.rows);
  const double px = static_cast<double>(c) - x0;
  const double py = static_cast<double>(r) - y0;
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  const double len_sq = dx * dx + dy * dy;
  const double t = std::clamp((px * dx + py * dy) / len_sq, 0.0, 1.0);
  const double ex = px - t * dx;
  const double ey = py - t * dy;
  const double dist = std::sqrt(ex * ex + ey * ey);
  const double width = 0.06 * static_cast<double>(std::min(lay.rows, lay.cols));
  // The column rises over ground zero before fanning out, so opacity ramps
  // up over the first quarter of the streak (keeping the debris deposits
  // around the towers observable, as in the USGS mapping), then decays both
  // along the streak and across it.
  const double rise = std::min(t / 0.25, 1.0);
  return 0.3 * rise * (1.0 - 0.6 * t) *
         std::exp(-0.5 * (dist / width) * (dist / width));
}

}  // namespace

Scene generate_wtc_scene(const SceneConfig& cfg) {
  HPRS_REQUIRE(cfg.rows >= 16 && cfg.cols >= 16,
               "scene must be at least 16x16 pixels");
  HPRS_REQUIRE(cfg.bands >= 8, "scene needs at least 8 bands");
  HPRS_REQUIRE(cfg.snr > 0.0, "snr must be positive");

  const Layout lay(cfg);
  Xoshiro256 rng(cfg.seed);

  // Precompute the spectral library on this band grid.
  const auto wl = wavelengths_um(cfg.bands);
  std::array<std::vector<double>, kMaterialCount> lib;
  for (std::size_t m = 0; m < kMaterialCount; ++m) {
    lib[m] = reflectance(static_cast<Material>(m), wl);
  }

  Scene scene;
  scene.truth.rows = cfg.rows;
  scene.truth.cols = cfg.cols;
  scene.truth.labels = build_class_map(cfg, lay, rng);
  scene.cube = HsiCube(cfg.rows, cfg.cols, cfg.bands);

  // Hot spots: place inside the plume, clamped to the scene.
  for (std::size_t h = 0; h < kHotSpotLabels.size(); ++h) {
    const auto [fr, fc] = kHotSpotOffsets[h];
    auto r = static_cast<std::size_t>(std::clamp(
        lay.plume_r_center + fr * lay.plume_r_radius, 1.0,
        static_cast<double>(cfg.rows - 2)));
    auto c = static_cast<std::size_t>(std::clamp(
        lay.plume_c_center + fc * lay.plume_c_radius, 1.0,
        static_cast<double>(cfg.cols - 2)));
    scene.truth.hot_spots.push_back(
        HotSpot{kHotSpotLabels[h], r, c, kHotSpotTempsF[h]});
  }

  // Render every pixel: base class + boundary mixing + contamination +
  // smoke, then fires, then noise.
  std::vector<double> spectrum(cfg.bands);
  double signal_accum = 0.0;
  for (std::size_t r = 0; r < cfg.rows; ++r) {
    for (std::size_t c = 0; c < cfg.cols; ++c) {
      const auto base = scene.truth.label_at(r, c);

      // Abundance vector over all materials.
      std::array<double, kMaterialCount> abundance{};
      abundance[static_cast<std::size_t>(base)] = 1.0;

      // Boundary mixing: blend with a differing 4-neighbor class.
      static constexpr std::array<std::pair<int, int>, 4> kNeighbors = {
          {{-1, 0}, {1, 0}, {0, -1}, {0, 1}}};
      for (const auto& [dr, dc] : kNeighbors) {
        const auto nr = static_cast<std::ptrdiff_t>(r) + dr;
        const auto nc = static_cast<std::ptrdiff_t>(c) + dc;
        if (nr < 0 || nc < 0 || nr >= static_cast<std::ptrdiff_t>(cfg.rows) ||
            nc >= static_cast<std::ptrdiff_t>(cfg.cols)) {
          continue;
        }
        const auto neigh = scene.truth.label_at(static_cast<std::size_t>(nr),
                                                static_cast<std::size_t>(nc));
        if (neigh != base) {
          const double w = 0.20 + 0.10 * rng.uniform();
          abundance[static_cast<std::size_t>(base)] -= w / 4.0;
          abundance[static_cast<std::size_t>(neigh)] += w / 4.0;
        }
      }

      // Per-pixel contamination by one random other material.
      const double eps = cfg.mixing_fraction * rng.uniform();
      const auto other = rng.uniform_int(kMaterialCount);
      abundance[static_cast<std::size_t>(base)] -= eps;
      abundance[other] += eps;

      // Smoke overlay (keeps the truth label of the surface underneath).
      if (cfg.smoke_plume) {
        const double alpha = smoke_alpha(lay, r, c);
        if (alpha > 1e-3) {
          for (auto& a : abundance) a *= (1.0 - alpha);
          abundance[static_cast<std::size_t>(Material::kSmoke)] += alpha;
        }
      }

      // Mix.
      std::fill(spectrum.begin(), spectrum.end(), 0.0);
      for (std::size_t m = 0; m < kMaterialCount; ++m) {
        if (abundance[m] == 0.0) continue;
        for (std::size_t b = 0; b < cfg.bands; ++b) {
          spectrum[b] += abundance[m] * lib[m][b];
        }
      }

      // Per-pixel brightness jitter (illumination / view geometry).  The
      // spread matters for the detector comparison: the sum-to-one
      // constraint makes FCLS pay quadratically for brightness outliers of
      // already-known materials, while the OSP projector is invariant to
      // them -- which is how the paper's UFCLS comes to miss weak thermal
      // targets that ATDCA catches.
      const double gain = 1.0 + 0.10 * rng.normal();
      const auto px = scene.cube.pixel(r, c);
      for (std::size_t b = 0; b < cfg.bands; ++b) {
        px[b] = static_cast<float>(std::max(0.0, gain * spectrum[b]));
        signal_accum += px[b];
      }
    }
  }

  // Fires: add blackbody emission at the hot-spot pixel and half-amplitude
  // halos at the 4-neighbors (real fires are not single-pixel).  Each fire
  // also carries a few narrow emission features of its own -- the WTC hot
  // spots burned different material mixes, so their spectra are not pure
  // scaled Planck curves, and this per-fire structure is what lets an
  // orthogonal-projection detector separate fires at neighbouring
  // temperatures.
  for (const auto& hs : scene.truth.hot_spots) {
    const double t_k = fahrenheit_to_kelvin(hs.temp_f);
    // blackbody_radiance is normalized against the 1300 F peak, so bb
    // already carries the relative brightness of cooler fires.
    auto bb = blackbody_radiance(t_k, wl);
    double bb_peak = 0.0;
    for (double v : bb) bb_peak = std::max(bb_peak, v);
    Xoshiro256 fire_rng(cfg.seed ^ (0x9e3779b97f4a7c15ULL *
                                    static_cast<std::uint64_t>(hs.label)));
    for (int feature = 0; feature < 3; ++feature) {
      const double center = fire_rng.uniform(1.4, 2.5);
      const double width = fire_rng.uniform(0.04, 0.12);
      const double amp = bb_peak * fire_rng.uniform(0.4, 0.9);
      for (std::size_t b = 0; b < cfg.bands; ++b) {
        const double dx = (wl[b] - center) / width;
        bb[b] += amp * std::exp(-0.5 * dx * dx);
      }
    }
    const auto add_fire = [&](std::size_t r, std::size_t c, double scale) {
      const auto px = scene.cube.pixel(r, c);
      for (std::size_t b = 0; b < cfg.bands; ++b) {
        px[b] += static_cast<float>(scale * cfg.fire_amplitude * bb[b]);
      }
    };
    add_fire(hs.row, hs.col, 1.0);
    add_fire(hs.row - 1, hs.col, 0.35);
    add_fire(hs.row + 1, hs.col, 0.35);
    add_fire(hs.row, hs.col - 1, 0.35);
    add_fire(hs.row, hs.col + 1, 0.35);
  }

  // Additive Gaussian noise at the configured SNR, relative to the mean
  // signal level.
  const double mean_signal =
      signal_accum / static_cast<double>(scene.cube.sample_count());
  const double sigma = mean_signal / cfg.snr;
  for (float& s : scene.cube.samples()) {
    s = static_cast<float>(
        std::max(0.0, static_cast<double>(s) + sigma * rng.normal()));
  }

  return scene;
}

std::span<const float> hot_spot_pixel(const Scene& scene, char label) {
  for (const auto& hs : scene.truth.hot_spots) {
    if (hs.label == label) {
      return scene.cube.pixel(hs.row, hs.col);
    }
  }
  throw Error(std::string("no hot spot labeled '") + label + "'");
}

}  // namespace hprs::hsi
