#include "hsi/io.hpp"

#include <bit>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace hprs::hsi {

namespace {

static_assert(std::endian::native == std::endian::little,
              "hsi::io assumes a little-endian host; add byte swapping "
              "before porting to a big-endian target");

Interleave parse_interleave(const std::string& s) {
  if (s == "bip") return Interleave::kBip;
  if (s == "bil") return Interleave::kBil;
  if (s == "bsq") return Interleave::kBsq;
  throw Error("unknown interleave '" + s + "' in ENVI header");
}

/// Strict positive-integer parse for a header dimension.  std::stoull would
/// accept signs, leading junk, and silently wrap on overflow -- and throws
/// bare std::invalid_argument on garbage; this names the offending key
/// instead.
std::size_t parse_dimension(const std::string& key, const std::string& value) {
  HPRS_REQUIRE(!value.empty() &&
                   value.find_first_not_of("0123456789") == std::string::npos,
               "ENVI header key '" + key + "' is not a non-negative integer: '" +
                   value + "'");
  std::size_t out = 0;
  for (const char c : value) {
    const auto digit = static_cast<std::size_t>(c - '0');
    HPRS_REQUIRE(out <= (std::numeric_limits<std::size_t>::max() - digit) / 10,
                 "ENVI header key '" + key + "' overflows: '" + value + "'");
    out = out * 10 + digit;
  }
  HPRS_REQUIRE(out > 0, "ENVI header key '" + key + "' must be positive");
  return out;
}

/// Checked a*b for sizing the sample buffer.
std::size_t checked_mul(std::size_t a, std::size_t b) {
  HPRS_REQUIRE(b == 0 || a <= std::numeric_limits<std::size_t>::max() / b,
               "ENVI cube dimensions overflow the sample count");
  return a * b;
}

}  // namespace

void write_envi(const HsiCube& cube, const std::string& path_stem,
                Interleave il) {
  HPRS_REQUIRE(!cube.empty(), "refusing to write an empty cube");
  {
    std::ofstream hdr(path_stem + ".hdr");
    HPRS_REQUIRE(hdr.good(), "cannot open header for writing: " + path_stem);
    hdr << "ENVI\n"
        << "description = {hprs synthetic hyperspectral cube}\n"
        << "samples = " << cube.cols() << "\n"
        << "lines = " << cube.rows() << "\n"
        << "bands = " << cube.bands() << "\n"
        << "header offset = 0\n"
        << "data type = 4\n"
        << "interleave = " << to_string(il) << "\n"
        << "byte order = 0\n";
    HPRS_REQUIRE(hdr.good(), "failed writing header: " + path_stem);
  }
  {
    std::ofstream raw(path_stem + ".raw", std::ios::binary);
    HPRS_REQUIRE(raw.good(), "cannot open raw file for writing: " + path_stem);
    const auto samples = cube.to_interleave(il);
    raw.write(reinterpret_cast<const char*>(samples.data()),
              static_cast<std::streamsize>(samples.size() * sizeof(float)));
    HPRS_REQUIRE(raw.good(), "failed writing raw samples: " + path_stem);
  }
}

HsiCube read_envi(const std::string& path_stem) {
  std::ifstream hdr(path_stem + ".hdr");
  HPRS_REQUIRE(hdr.good(), "cannot open header: " + path_stem + ".hdr");

  // The format's magic: the first line must read "ENVI".
  std::string line;
  HPRS_REQUIRE(std::getline(hdr, line) &&
                   line.substr(0, line.find_last_not_of(" \t\r") + 1) == "ENVI",
               "not an ENVI header (missing ENVI magic): " + path_stem +
                   ".hdr");

  std::map<std::string, std::string> keys;
  while (std::getline(hdr, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t\r");
      const auto e = s.find_last_not_of(" \t\r");
      return b == std::string::npos ? std::string{} : s.substr(b, e - b + 1);
    };
    keys[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
  }

  const auto need = [&](const std::string& k) {
    const auto it = keys.find(k);
    HPRS_REQUIRE(it != keys.end(), "ENVI header missing key '" + k + "'");
    return it->second;
  };
  const std::size_t rows = parse_dimension("lines", need("lines"));
  const std::size_t cols = parse_dimension("samples", need("samples"));
  const std::size_t bands = parse_dimension("bands", need("bands"));
  const std::size_t count = checked_mul(checked_mul(rows, cols), bands);
  HPRS_REQUIRE(count <= std::numeric_limits<std::size_t>::max() /
                            sizeof(float),
               "ENVI cube dimensions overflow the byte count");
  HPRS_REQUIRE(need("data type") == "4",
               "only float32 (ENVI data type 4) cubes are supported");
  HPRS_REQUIRE(keys.count("byte order") == 0 || keys["byte order"] == "0",
               "only little-endian (byte order 0) cubes are supported");
  HPRS_REQUIRE(keys.count("header offset") == 0 ||
                   keys["header offset"] == "0",
               "embedded headers (header offset != 0) are not supported");
  const Interleave il = parse_interleave(need("interleave"));

  std::ifstream raw(path_stem + ".raw", std::ios::binary);
  HPRS_REQUIRE(raw.good(), "cannot open raw file: " + path_stem + ".raw");
  std::vector<float> samples(count);
  raw.read(reinterpret_cast<char*>(samples.data()),
           static_cast<std::streamsize>(samples.size() * sizeof(float)));
  HPRS_REQUIRE(raw.gcount() ==
                   static_cast<std::streamsize>(samples.size() * sizeof(float)),
               "raw file truncated: " + path_stem + ".raw");

  return HsiCube::from_interleave(rows, cols, bands, il, samples);
}

}  // namespace hprs::hsi
