#include "hsi/io.hpp"

#include <bit>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace hprs::hsi {

namespace {

static_assert(std::endian::native == std::endian::little,
              "hsi::io assumes a little-endian host; add byte swapping "
              "before porting to a big-endian target");

Interleave parse_interleave(const std::string& s) {
  if (s == "bip") return Interleave::kBip;
  if (s == "bil") return Interleave::kBil;
  if (s == "bsq") return Interleave::kBsq;
  throw Error("unknown interleave '" + s + "' in ENVI header");
}

}  // namespace

void write_envi(const HsiCube& cube, const std::string& path_stem,
                Interleave il) {
  HPRS_REQUIRE(!cube.empty(), "refusing to write an empty cube");
  {
    std::ofstream hdr(path_stem + ".hdr");
    HPRS_REQUIRE(hdr.good(), "cannot open header for writing: " + path_stem);
    hdr << "ENVI\n"
        << "description = {hprs synthetic hyperspectral cube}\n"
        << "samples = " << cube.cols() << "\n"
        << "lines = " << cube.rows() << "\n"
        << "bands = " << cube.bands() << "\n"
        << "header offset = 0\n"
        << "data type = 4\n"
        << "interleave = " << to_string(il) << "\n"
        << "byte order = 0\n";
    HPRS_REQUIRE(hdr.good(), "failed writing header: " + path_stem);
  }
  {
    std::ofstream raw(path_stem + ".raw", std::ios::binary);
    HPRS_REQUIRE(raw.good(), "cannot open raw file for writing: " + path_stem);
    const auto samples = cube.to_interleave(il);
    raw.write(reinterpret_cast<const char*>(samples.data()),
              static_cast<std::streamsize>(samples.size() * sizeof(float)));
    HPRS_REQUIRE(raw.good(), "failed writing raw samples: " + path_stem);
  }
}

HsiCube read_envi(const std::string& path_stem) {
  std::ifstream hdr(path_stem + ".hdr");
  HPRS_REQUIRE(hdr.good(), "cannot open header: " + path_stem + ".hdr");

  std::map<std::string, std::string> keys;
  std::string line;
  while (std::getline(hdr, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t\r");
      const auto e = s.find_last_not_of(" \t\r");
      return b == std::string::npos ? std::string{} : s.substr(b, e - b + 1);
    };
    keys[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
  }

  const auto need = [&](const std::string& k) {
    const auto it = keys.find(k);
    HPRS_REQUIRE(it != keys.end(), "ENVI header missing key '" + k + "'");
    return it->second;
  };
  const auto rows = static_cast<std::size_t>(std::stoull(need("lines")));
  const auto cols = static_cast<std::size_t>(std::stoull(need("samples")));
  const auto bands = static_cast<std::size_t>(std::stoull(need("bands")));
  HPRS_REQUIRE(need("data type") == "4",
               "only float32 (ENVI data type 4) cubes are supported");
  HPRS_REQUIRE(keys.count("byte order") == 0 || keys["byte order"] == "0",
               "only little-endian (byte order 0) cubes are supported");
  const Interleave il = parse_interleave(need("interleave"));

  std::ifstream raw(path_stem + ".raw", std::ios::binary);
  HPRS_REQUIRE(raw.good(), "cannot open raw file: " + path_stem + ".raw");
  std::vector<float> samples(rows * cols * bands);
  raw.read(reinterpret_cast<char*>(samples.data()),
           static_cast<std::streamsize>(samples.size() * sizeof(float)));
  HPRS_REQUIRE(raw.gcount() ==
                   static_cast<std::streamsize>(samples.size() * sizeof(float)),
               "raw file truncated: " + path_stem + ".raw");

  return HsiCube::from_interleave(rows, cols, bands, il, samples);
}

}  // namespace hprs::hsi
