// Accuracy scoring for unsupervised classification against ground truth.
//
// The classifiers (Hetero-PCT, Hetero-MORPH) produce arbitrary cluster ids;
// following standard practice for unsupervised accuracy we first map each
// predicted label to the ground-truth class it most overlaps with (majority
// assignment; several labels may map to the same class) and then compute
// per-class and overall percentage accuracy over the evaluated classes --
// the seven USGS dust/debris classes for the paper's Table 4.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hsi/scene.hpp"

namespace hprs::hsi {

struct ClassificationScore {
  /// Per evaluated class (same order as the `eval_classes` argument):
  /// percentage of that class's truth pixels carrying a label mapped to it.
  std::vector<double> per_class_pct;
  /// Overall percentage over all evaluated pixels.
  double overall_pct = 0.0;
  /// For each predicted label id, the Material it was mapped to (or 0xFF if
  /// the label never appears on an evaluated pixel).
  std::vector<std::uint8_t> label_to_class;
  /// Number of pixels participating in the evaluation.
  std::size_t evaluated_pixels = 0;
};

/// Scores a predicted label image (row-major, values in [0, label_count))
/// against ground truth, restricted to pixels whose true class is in
/// `eval_classes`.
[[nodiscard]] ClassificationScore score_classification(
    std::span<const std::uint16_t> predicted_labels,
    std::size_t label_count, const GroundTruth& truth,
    std::span<const Material> eval_classes);

}  // namespace hprs::hsi
