// Synthetic WTC scene generator.
//
// Stands in for the AVIRIS scene of lower Manhattan (2001-09-16) used in
// the paper, which is ~1 GB and not redistributable.  The generator lays
// out a plausible surrogate geography -- the Hudson on the west edge, a
// vegetated park block, a grid of debris-covered city blocks, an elliptical
// "ground zero" dust plume, a smoke streak toward Battery Park -- and
// renders every pixel through a linear mixing model over the synthetic
// spectral library, with boundary mixing, per-pixel contamination, additive
// Gaussian noise, and seven thermal hot spots labeled 'A'..'G' whose
// temperatures span 700-1300 F exactly as in the paper's ground truth
// ('F' is the coolest at 700 F, 'G' the hottest at 1300 F).
//
// The generator also returns exact ground truth (per-pixel class map and
// hot-spot coordinates), which the accuracy benches score against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hsi/cube.hpp"
#include "hsi/spectra.hpp"

namespace hprs::hsi {

/// One thermal hot spot in the ground truth.
struct HotSpot {
  char label;        ///< 'A'..'G', matching the paper's Fig. 1 annotations
  std::size_t row;
  std::size_t col;
  double temp_f;     ///< temperature in Fahrenheit (700..1300)
};

/// Exact per-pixel truth for accuracy scoring.
struct GroundTruth {
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// Material enum value per pixel, row-major.
  std::vector<std::uint8_t> labels;
  std::vector<HotSpot> hot_spots;

  [[nodiscard]] Material label_at(std::size_t r, std::size_t c) const {
    return static_cast<Material>(labels[r * cols + c]);
  }
};

struct SceneConfig {
  std::size_t rows = 128;
  std::size_t cols = 128;
  std::size_t bands = 224;
  std::uint64_t seed = 20010916;  ///< default: the collection date
  /// Linear signal-to-noise ratio of the additive Gaussian noise
  /// (AVIRIS-era instruments reach several hundred to one).
  double snr = 300.0;
  /// Strength of per-pixel contamination by other materials, drawn
  /// uniformly from [0, mixing_fraction] per pixel.  This is what separates
  /// the purely spectral classifier (PCT) from the spatial/spectral one
  /// (MORPH) in Table 4.
  double mixing_fraction = 0.10;
  /// Peak additive radiance of the hottest (1300 F) fire relative to unit
  /// reflectance scale.  Cooler fires scale down by the Planck peak ratio.
  double fire_amplitude = 1.5;
  bool smoke_plume = true;
};

struct Scene {
  HsiCube cube;
  GroundTruth truth;
};

/// Generates the deterministic synthetic WTC scene for a given config.
[[nodiscard]] Scene generate_wtc_scene(const SceneConfig& config);

/// The true (noise-free would be ideal, but observed is what the paper
/// compares against) spectrum at a hot spot's location.
[[nodiscard]] std::span<const float> hot_spot_pixel(const Scene& scene,
                                                    char label);

}  // namespace hprs::hsi
