#include "hsi/vd.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"

namespace hprs::hsi {

namespace {

/// Inverse standard normal CDF (Acklam's rational approximation; relative
/// error < 1.15e-9 over the open unit interval) -- enough precision for a
/// detection threshold.
double inverse_normal_cdf(double p) {
  HPRS_REQUIRE(p > 0.0 && p < 1.0, "probability out of (0,1)");
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

VdResult estimate_vd(const HsiCube& cube, double pf) {
  HPRS_REQUIRE(!cube.empty(), "cannot estimate VD of an empty cube");
  const std::size_t n = cube.bands();
  const auto pixels = static_cast<double>(cube.pixel_count());

  // Band means, then sample correlation (second moment) and covariance.
  std::vector<double> mean(n, 0.0);
  for (std::size_t p = 0; p < cube.pixel_count(); ++p) {
    const auto px = cube.pixel(p);
    for (std::size_t b = 0; b < n; ++b) mean[b] += px[b];
  }
  for (auto& m : mean) m /= pixels;

  linalg::Matrix corr(n, n);
  for (std::size_t p = 0; p < cube.pixel_count(); ++p) {
    const auto px = cube.pixel(p);
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = px[i];
      for (std::size_t j = i; j < n; ++j) {
        corr(i, j) += xi * static_cast<double>(px[j]);
      }
    }
  }
  linalg::Matrix cov(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      corr(i, j) /= pixels;
      cov(i, j) = corr(i, j) - mean[i] * mean[j];
      corr(j, i) = corr(i, j);
      cov(j, i) = cov(i, j);
    }
  }

  const auto eig_r = linalg::jacobi_eigen(corr);
  const auto eig_k = linalg::jacobi_eigen(cov);

  // Neyman-Pearson test per eigenvalue pair.  Under the noise-only
  // hypothesis the two eigenvalues coincide; the test statistic variance is
  // approximated (as in the HFC derivation) by 2 (l_r^2 + l_k^2) / N.
  const double z = -inverse_normal_cdf(pf);  // threshold multiplier > 0
  VdResult out;
  out.bands = n;
  for (std::size_t i = 0; i < n; ++i) {
    const double lr = eig_r.values[i];
    const double lk = eig_k.values[i];
    const double sigma =
        std::sqrt(2.0 * (lr * lr + lk * lk) / pixels);
    if (lr - lk > z * sigma) {
      ++out.dimensionality;
    }
  }
  return out;
}

}  // namespace hprs::hsi
