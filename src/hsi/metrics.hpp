// Spectral similarity metrics.
//
// SAD (the paper calls it both SAD and SAM) is the workhorse: the angle
// between two spectra, invariant to per-pixel illumination scaling.  SID is
// provided as a stricter information-theoretic alternative used by the
// extension benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "linalg/flops.hpp"
#include "linalg/vec.hpp"

namespace hprs::hsi {

/// Spectral angle distance (radians, in [0, pi]).  Equation (1) of the
/// paper.  Degenerate (zero) spectra map to angle 0 against themselves and
/// pi/2 against anything else, which keeps downstream argmin/argmax total.
template <typename T, typename U>
[[nodiscard]] double sad(std::span<const T> a, std::span<const U> b) {
  const double na = linalg::norm(a);
  const double nb = linalg::norm(b);
  if (na == 0.0 || nb == 0.0) {
    return (na == 0.0 && nb == 0.0) ? 0.0 : std::acos(0.0);
  }
  const double c = linalg::dot(a, b) / (na * nb);
  return std::acos(std::clamp(c, -1.0, 1.0));
}

/// sad() with the operand norms precomputed by the caller.  The hot sweeps
/// (MORPH's windowed eccentricity passes, nearest-representative labeling)
/// evaluate SAD against the same spectra many times; hoisting the two norm
/// reductions out of the pair loop removes two of the three dot products per
/// evaluation.  `na`/`nb` must equal linalg::norm of the operands, which
/// makes the result bit-identical to sad().
template <typename T, typename U>
[[nodiscard]] double sad_with_norms(std::span<const T> a, std::span<const U> b,
                                    double na, double nb) {
  if (na == 0.0 || nb == 0.0) {
    return (na == 0.0 && nb == 0.0) ? 0.0 : std::acos(0.0);
  }
  const double c = linalg::dot(a, b) / (na * nb);
  return std::acos(std::clamp(c, -1.0, 1.0));
}

/// Squared Euclidean distance between spectra.
template <typename T>
[[nodiscard]] double euclidean_sq(std::span<const T> a, std::span<const T> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

/// Spectral information divergence (symmetrised KL divergence between the
/// band-probability profiles).  Requires non-negative spectra; zero bands
/// are floored to keep the logs finite.
template <typename T>
[[nodiscard]] double sid(std::span<const T> a, std::span<const T> b) {
  constexpr double kFloor = 1e-12;
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum_a += std::max(static_cast<double>(a[i]), kFloor);
    sum_b += std::max(static_cast<double>(b[i]), kFloor);
  }
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double p = std::max(static_cast<double>(a[i]), kFloor) / sum_a;
    const double q = std::max(static_cast<double>(b[i]), kFloor) / sum_b;
    d += (p - q) * std::log(p / q);
  }
  return d;
}

namespace flops {
/// Flop count of one sad() evaluation on n-band spectra.
constexpr linalg::flops::Count sad(linalg::flops::Count n) {
  return linalg::flops::sad(n);
}
/// Flop count of one sid() evaluation (two logs per band ~ 6n).
constexpr linalg::flops::Count sid(linalg::flops::Count n) { return 6 * n; }
}  // namespace flops

}  // namespace hprs::hsi
