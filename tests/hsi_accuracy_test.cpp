#include "hsi/accuracy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hprs::hsi {
namespace {

/// A 4x4 truth map: two debris classes plus water.
GroundTruth tiny_truth() {
  GroundTruth t;
  t.rows = 4;
  t.cols = 4;
  t.labels.assign(16, static_cast<std::uint8_t>(Material::kWater));
  for (std::size_t i = 0; i < 8; ++i) {
    t.labels[i] = static_cast<std::uint8_t>(Material::kGypsum);
  }
  for (std::size_t i = 8; i < 12; ++i) {
    t.labels[i] = static_cast<std::uint8_t>(Material::kDust15);
  }
  return t;
}

constexpr Material kEval[] = {Material::kGypsum, Material::kDust15};

TEST(AccuracyTest, PerfectLabelingScoresHundred) {
  const GroundTruth t = tiny_truth();
  std::vector<std::uint16_t> pred(16, 0);
  for (std::size_t i = 0; i < 8; ++i) pred[i] = 1;
  for (std::size_t i = 8; i < 12; ++i) pred[i] = 2;
  const auto s = score_classification(pred, 3, t, kEval);
  EXPECT_DOUBLE_EQ(s.overall_pct, 100.0);
  EXPECT_DOUBLE_EQ(s.per_class_pct[0], 100.0);
  EXPECT_DOUBLE_EQ(s.per_class_pct[1], 100.0);
  EXPECT_EQ(s.evaluated_pixels, 12u);
}

TEST(AccuracyTest, LabelPermutationIsIrrelevant) {
  // Unsupervised labels are arbitrary ids; any bijective relabeling scores
  // the same.
  const GroundTruth t = tiny_truth();
  std::vector<std::uint16_t> pred(16, 7);
  for (std::size_t i = 0; i < 8; ++i) pred[i] = 3;
  for (std::size_t i = 8; i < 12; ++i) pred[i] = 5;
  const auto s = score_classification(pred, 8, t, kEval);
  EXPECT_DOUBLE_EQ(s.overall_pct, 100.0);
}

TEST(AccuracyTest, SplitClassStillScoresFullViaManyToOneMapping) {
  // Two distinct predicted labels covering one truth class both map to it.
  const GroundTruth t = tiny_truth();
  std::vector<std::uint16_t> pred(16, 0);
  for (std::size_t i = 0; i < 4; ++i) pred[i] = 1;
  for (std::size_t i = 4; i < 8; ++i) pred[i] = 2;  // gypsum split in two
  for (std::size_t i = 8; i < 12; ++i) pred[i] = 3;
  const auto s = score_classification(pred, 4, t, kEval);
  EXPECT_DOUBLE_EQ(s.overall_pct, 100.0);
}

TEST(AccuracyTest, MergedClassesLoseTheMinorityClass) {
  // One predicted label covering both classes maps to the majority.
  const GroundTruth t = tiny_truth();
  std::vector<std::uint16_t> pred(16, 0);  // everything one label
  const auto s = score_classification(pred, 1, t, kEval);
  // Gypsum (8 pixels) wins the mapping; dust15 (4 pixels) scores zero.
  EXPECT_DOUBLE_EQ(s.per_class_pct[0], 100.0);
  EXPECT_DOUBLE_EQ(s.per_class_pct[1], 0.0);
  EXPECT_NEAR(s.overall_pct, 100.0 * 8 / 12, 1e-9);
}

TEST(AccuracyTest, NonEvaluatedPixelsAreIgnored) {
  const GroundTruth t = tiny_truth();
  std::vector<std::uint16_t> pred(16, 0);
  for (std::size_t i = 0; i < 8; ++i) pred[i] = 1;
  for (std::size_t i = 8; i < 12; ++i) pred[i] = 2;
  // Water pixels (not evaluated) carry a junk label; irrelevant.
  for (std::size_t i = 12; i < 16; ++i) pred[i] = 1;
  const auto s = score_classification(pred, 3, t, kEval);
  EXPECT_DOUBLE_EQ(s.overall_pct, 100.0);
}

TEST(AccuracyTest, LabelToClassMapIsExposed) {
  const GroundTruth t = tiny_truth();
  std::vector<std::uint16_t> pred(16, 0);
  for (std::size_t i = 0; i < 8; ++i) pred[i] = 1;
  const auto s = score_classification(pred, 2, t, kEval);
  EXPECT_EQ(s.label_to_class[1], static_cast<std::uint8_t>(Material::kGypsum));
  EXPECT_EQ(s.label_to_class[0], static_cast<std::uint8_t>(Material::kDust15));
}

TEST(AccuracyTest, UnusedLabelMapsToSentinel) {
  const GroundTruth t = tiny_truth();
  const std::vector<std::uint16_t> pred(16, 0);
  const auto s = score_classification(pred, 5, t, kEval);
  EXPECT_EQ(s.label_to_class[4], 0xFF);
}

TEST(AccuracyTest, RejectsSizeMismatch) {
  const GroundTruth t = tiny_truth();
  const std::vector<std::uint16_t> pred(15, 0);
  EXPECT_THROW((void)score_classification(pred, 1, t, kEval), Error);
}

TEST(AccuracyTest, RejectsOutOfRangeLabels) {
  const GroundTruth t = tiny_truth();
  const std::vector<std::uint16_t> pred(16, 9);
  EXPECT_THROW((void)score_classification(pred, 3, t, kEval), Error);
}

TEST(AccuracyTest, EmptyEvaluationSetYieldsZero) {
  const GroundTruth t = tiny_truth();
  const std::vector<std::uint16_t> pred(16, 0);
  const auto s = score_classification(
      pred, 1, t, std::vector<Material>{Material::kSmoke});
  EXPECT_EQ(s.evaluated_pixels, 0u);
  EXPECT_DOUBLE_EQ(s.overall_pct, 0.0);
}

}  // namespace
}  // namespace hprs::hsi
