#include "core/pct.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "simnet/platform.hpp"
#include "test_scenes.hpp"

namespace hprs::core {
namespace {

/// Fraction of pixels whose label matches the majority label of their
/// stripe (unsupervised accuracy for the striped test cube).
double stripe_accuracy(const ClassificationResult& result, std::size_t rows,
                       std::size_t cols, std::size_t classes) {
  std::size_t correct = 0;
  for (std::size_t cls = 0; cls < classes; ++cls) {
    const std::size_t r_begin = cls * rows / classes;
    const std::size_t r_end = (cls + 1) * rows / classes;
    std::map<std::uint16_t, std::size_t> votes;
    for (std::size_t r = r_begin; r < r_end; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        ++votes[result.labels[r * cols + c]];
      }
    }
    std::size_t best = 0;
    for (const auto& [label, n] : votes) best = std::max(best, n);
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(rows * cols);
}

TEST(PctTest, SeparatesWellSeparatedStripes) {
  const auto cube = testing::striped_cube(48, 32, 32, 3);
  PctConfig cfg;
  cfg.classes = 3;
  const auto result = run_pct(simnet::fully_heterogeneous(), cube, cfg);
  ASSERT_EQ(result.labels.size(), cube.pixel_count());
  EXPECT_GE(result.label_count, 2u);
  EXPECT_GT(stripe_accuracy(result, 48, 32, 3), 0.9);
}

TEST(PctTest, LabelsStayBelowLabelCount) {
  const auto cube = testing::striped_cube(32, 24, 24, 4);
  PctConfig cfg;
  cfg.classes = 4;
  const auto result = run_pct(simnet::thunderhead(4), cube, cfg);
  for (const auto label : result.labels) {
    ASSERT_LT(label, result.label_count);
  }
}

TEST(PctTest, UniformImageCollapsesToOneClass) {
  hsi::HsiCube cube(24, 24, 16);
  for (auto& v : cube.samples()) v = 0.5f;
  PctConfig cfg;
  cfg.classes = 5;
  const auto result = run_pct(simnet::thunderhead(2), cube, cfg);
  EXPECT_EQ(result.label_count, 1u);
  const std::set<std::uint16_t> labels(result.labels.begin(),
                                       result.labels.end());
  EXPECT_EQ(labels.size(), 1u);
}

TEST(PctTest, AccuracyHoldsAcrossProcessorCounts) {
  const auto cube = testing::striped_cube(64, 24, 24, 3);
  PctConfig cfg;
  cfg.classes = 3;
  for (const std::size_t p : {1u, 4u, 16u}) {
    const auto result = run_pct(simnet::thunderhead(p), cube, cfg);
    EXPECT_GT(stripe_accuracy(result, 64, 24, 3), 0.9) << "P=" << p;
  }
}

TEST(PctTest, SequentialEigenStepShowsUpAsSeqTime) {
  const auto cube = testing::striped_cube(48, 24, 32, 3);
  PctConfig cfg;
  cfg.classes = 3;
  const auto result = run_pct(simnet::fully_heterogeneous(), cube, cfg);
  EXPECT_GT(result.report.seq(), 0.0);
}

TEST(PctTest, HeteroBeatsHomoOnHeterogeneousPlatform) {
  const auto cube = testing::striped_cube(64, 32, 32, 3);
  PctConfig het;
  het.classes = 3;
  het.replication = 64;
  PctConfig homo = het;
  homo.policy = PartitionPolicy::kHomogeneous;
  const auto platform = simnet::fully_heterogeneous();
  EXPECT_LT(run_pct(platform, cube, het).report.total_time,
            run_pct(platform, cube, homo).report.total_time * 0.7);
}

TEST(PctTest, ValidatesInputs) {
  const auto cube = testing::striped_cube(32, 16, 16, 2);
  PctConfig cfg;
  cfg.classes = 0;
  EXPECT_THROW((void)run_pct(simnet::thunderhead(2), cube, cfg), Error);
  cfg.classes = 64;  // more components than the 16 bands
  EXPECT_THROW((void)run_pct(simnet::thunderhead(2), cube, cfg), Error);
  cfg.classes = 2;
  EXPECT_THROW((void)run_pct(simnet::thunderhead(2), hsi::HsiCube(), cfg),
               Error);
}

class PctClassSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PctClassSweep, RecoversTheStripes) {
  const std::size_t classes = GetParam();
  const auto cube = testing::striped_cube(60, 20, 40, classes);
  PctConfig cfg;
  cfg.classes = classes;
  const auto result = run_pct(simnet::thunderhead(4), cube, cfg);
  EXPECT_GT(stripe_accuracy(result, 60, 20, classes), 0.85)
      << classes << " stripes";
}

INSTANTIATE_TEST_SUITE_P(StripeCounts, PctClassSweep,
                         ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace hprs::core
