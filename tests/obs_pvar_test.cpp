// Pvar / snapshot counter-plane unit suite: PvarSet ordering and classes,
// metrics-registry export, cadence determinism, timeline sequencing and
// canonical order, the JSON/CSV export goldens, the flat-JSON round trip,
// and the property the timeline gate exists for -- a counter that drifts
// mid-run and recovers by the end is caught and localized by
// diff_timelines even though the end-of-run states compare equal.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "obs/pvar.hpp"
#include "obs/report_diff.hpp"
#include "obs/run_summary.hpp"
#include "obs/snapshot.hpp"

namespace hprs::obs {
namespace {

TEST(PvarSetTest, SortsByNameRegardlessOfInsertionOrder) {
  PvarSet a;
  a.counter("zeta", 3);
  a.level("alpha", 1.5);
  a.timer("mid", 0.25, 4);

  PvarSet b;
  b.timer("mid", 0.25, 4);
  b.counter("zeta", 3);
  b.level("alpha", 1.5);

  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.sorted()[0].name, "alpha");
  EXPECT_EQ(a.sorted()[1].name, "mid");
  EXPECT_EQ(a.sorted()[2].name, "zeta");
  EXPECT_EQ(a, b);
}

TEST(PvarSetTest, ClassesAndDomains) {
  PvarSet set;
  set.counter("c", 42);
  set.counter("c.host", 7, Domain::kHost);
  set.level("q", 3.0);
  set.timer("t", 1.25, 9);

  const auto& vars = set.sorted();
  ASSERT_EQ(vars.size(), 4u);
  EXPECT_EQ(vars[0].cls, PvarClass::kCounter);
  EXPECT_EQ(vars[0].domain, Domain::kStable);
  EXPECT_EQ(vars[0].count, 42u);
  EXPECT_EQ(vars[1].domain, Domain::kHost);
  EXPECT_EQ(vars[2].cls, PvarClass::kLevel);
  EXPECT_EQ(vars[2].value, 3.0);
  // Timers always describe host time.
  EXPECT_EQ(vars[3].cls, PvarClass::kTimer);
  EXPECT_EQ(vars[3].domain, Domain::kHost);
  EXPECT_EQ(vars[3].count, 9u);
  EXPECT_EQ(vars[3].value, 1.25);

  EXPECT_STREQ(to_string(PvarClass::kCounter), "counter");
  EXPECT_STREQ(to_string(PvarClass::kLevel), "level");
  EXPECT_STREQ(to_string(PvarClass::kTimer), "timer");
}

Metrics::Snapshot fake_registry() {
  Metrics::Snapshot snap;
  MetricValue counter;
  counter.kind = MetricKind::kCounter;
  counter.count = 11;
  snap.emplace_back("engine.flops", counter);
  MetricValue gauge;
  gauge.kind = MetricKind::kGauge;
  gauge.value = 4.0;
  snap.emplace_back("arena.high_water", gauge);
  MetricValue wakeups;
  wakeups.kind = MetricKind::kCounter;
  wakeups.domain = Domain::kHost;
  wakeups.count = 99;
  snap.emplace_back("executor.wakeups", wakeups);
  MetricValue timer;
  timer.kind = MetricKind::kTimer;
  timer.domain = Domain::kHost;
  timer.count = 3;
  timer.value = 0.5;
  snap.emplace_back("host.solve_s", timer);
  return snap;
}

TEST(PvarsFromMetricsTest, StableSubsetByDefault) {
  const PvarSet set = pvars_from_metrics(fake_registry());
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.sorted()[0].name, "arena.high_water");
  EXPECT_EQ(set.sorted()[0].cls, PvarClass::kLevel);
  EXPECT_EQ(set.sorted()[1].name, "engine.flops");
  EXPECT_EQ(set.sorted()[1].count, 11u);
}

TEST(PvarsFromMetricsTest, HostNamesRoutedIntoThresholdRule) {
  const PvarSet set = pvars_from_metrics(fake_registry(), true);
  ASSERT_EQ(set.size(), 4u);
  // "executor.wakeups" lacks the substring "host", so the export renames
  // it; "host.solve_s" already matches the report_diff threshold rule.
  EXPECT_EQ(set.sorted()[2].name, "executor.wakeups.host");
  EXPECT_EQ(set.sorted()[2].domain, Domain::kHost);
  EXPECT_EQ(set.sorted()[3].name, "host.solve_s");
  EXPECT_EQ(set.sorted()[3].cls, PvarClass::kTimer);
}

TEST(SnapshotCadenceTest, DeterministicPerSeedAndScope) {
  SnapshotCadence a(0.05, kDefaultSnapshotSeed, 17);
  SnapshotCadence b(0.05, kDefaultSnapshotSeed, 17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.due_s(), b.due_s()) << "step " << i;
    const double now = a.due_s();
    a.advance_past(now);
    b.advance_past(now);
  }
}

TEST(SnapshotCadenceTest, JitteredGapsStayWithinBand) {
  SnapshotCadence cadence(0.05, kDefaultSnapshotSeed, 3);
  double prev = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double due = cadence.due_s();
    const double gap = due - prev;
    EXPECT_GE(gap, 0.05 * 0.75 - 1e-12);
    EXPECT_LT(gap, 0.05 * 1.25 + 1e-12);
    prev = due;
    cadence.advance_past(due);
  }
}

TEST(SnapshotCadenceTest, ScopesDecorrelate) {
  SnapshotCadence a(0.05, kDefaultSnapshotSeed, 1);
  SnapshotCadence b(0.05, kDefaultSnapshotSeed, 2);
  EXPECT_NE(a.due_s(), b.due_s());
}

TEST(SnapshotCadenceTest, LongGapSkipsInsteadOfBursting) {
  SnapshotCadence cadence(0.05, kDefaultSnapshotSeed, 5);
  cadence.advance_past(10.0);
  EXPECT_GT(cadence.due_s(), 10.0);
  EXPECT_LT(cadence.due_s(), 10.0 + 0.05 * 1.25);
}

PvarSet one_counter(std::uint64_t n) {
  PvarSet set;
  set.counter("c", n);
  return set;
}

TEST(SnapshotTimelineTest, PerScopeSequencingAndFinalizeOrder) {
  SnapshotTimeline timeline;
  EXPECT_EQ(timeline.append("a", 0.5, one_counter(1)), 0);
  EXPECT_EQ(timeline.append("b", 0.25, one_counter(2)), 0);
  EXPECT_EQ(timeline.append("a", 0.5, one_counter(3)), 1);
  timeline.finalize();

  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline.samples()[0].scope, "b");
  EXPECT_EQ(timeline.samples()[1].scope, "a");
  EXPECT_EQ(timeline.samples()[1].seq, 0);
  EXPECT_EQ(timeline.samples()[2].scope, "a");
  EXPECT_EQ(timeline.samples()[2].seq, 1);
}

TEST(SnapshotTimelineTest, ScopeLabelsAreSanitized) {
  SnapshotTimeline timeline;
  timeline.append("job |1,\"x\"", 0.0, one_counter(1));
  EXPECT_EQ(timeline.samples()[0].scope, "job__1__x_");
}

SnapshotTimeline golden_timeline() {
  SnapshotTimeline timeline;
  PvarSet a;
  a.counter("c", 7);
  a.level("q", 2.0);
  a.timer("t", 0.25, 3);
  timeline.append("a", 0.5, a);
  timeline.append("b", 0.25, one_counter(1));
  timeline.finalize();
  return timeline;
}

TEST(SnapshotTimelineTest, JsonExportMatchesGolden) {
  // Character-exact: this string is the committed contract the bench-smoke
  // counter-plane gate relies on (counters are bare integers, levels carry
  // a decimal marker, host timers get the ".host" routing suffix).
  const std::string expected =
      "{\n"
      "  \"_timeline.samples\": 2,\n"
      "  \"_timeline.scopes\": 2,\n"
      "  \"a|000000|c\": 7,\n"
      "  \"a|000000|q\": 2.0,\n"
      "  \"a|000000|t.host\": 0.25,\n"
      "  \"a|000000|t_s\": 0.5,\n"
      "  \"b|000000|c\": 1,\n"
      "  \"b|000000|t_s\": 0.25\n"
      "}\n";
  EXPECT_EQ(snapshot_timeline_json(golden_timeline()), expected);
}

TEST(SnapshotTimelineTest, CsvExportMatchesGolden) {
  const std::string expected =
      "scope,seq,t_s,name,class,domain,count,value\n"
      "b,0,0.25,c,counter,stable,1,0.0\n"
      "a,0,0.5,c,counter,stable,7,0.0\n"
      "a,0,0.5,q,level,stable,0,2.0\n"
      "a,0,0.5,t.host,timer,host,3,0.25\n";
  EXPECT_EQ(snapshot_timeline_csv(golden_timeline()), expected);
}

TEST(SnapshotTimelineTest, FlatJsonRoundTripsThroughParser) {
  const SnapshotTimeline original = golden_timeline();
  std::map<std::string, std::string> parsed;
  std::string error;
  ASSERT_TRUE(parse_flat_json(snapshot_timeline_json(original), parsed, error))
      << error;

  SnapshotTimeline rebuilt;
  ASSERT_TRUE(timeline_from_flat(parsed, rebuilt, error)) << error;
  ASSERT_EQ(rebuilt.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(rebuilt.samples()[i].scope, original.samples()[i].scope);
    EXPECT_EQ(rebuilt.samples()[i].seq, original.samples()[i].seq);
    EXPECT_EQ(rebuilt.samples()[i].t_s, original.samples()[i].t_s);
    // Token-shape class recovery: the counter comes back as a counter.
    const auto& vars = rebuilt.samples()[i].pvars.sorted();
    for (const auto& var : vars) {
      if (var.name == "c") {
        EXPECT_EQ(var.cls, PvarClass::kCounter);
        EXPECT_EQ(var.count, original.samples()[i].pvars.sorted()[0].count);
      }
    }
  }
}

TEST(TimelineDiffTest, RejectsNonTimelineKeys) {
  std::map<std::string, std::string> flat{{"engine.flops", "11"}};
  SnapshotTimeline timeline;
  std::string error;
  EXPECT_FALSE(timeline_from_flat(flat, timeline, error));
  EXPECT_NE(error.find("engine.flops"), std::string::npos);
}

/// Three samples of one monotonically growing counter.  The drifted twin
/// disagrees only at the middle sample -- by the last sample both runs
/// have counted 10, which is exactly the drift an end-of-run comparison
/// cannot see.
std::map<std::string, std::string> series(std::uint64_t mid) {
  SnapshotTimeline timeline;
  timeline.append("job", 0.1, one_counter(3));
  timeline.append("job", 0.2, one_counter(mid));
  timeline.append("job", 0.3, one_counter(10));
  timeline.finalize();
  return snapshot_timeline_flat(timeline);
}

TEST(TimelineDiffTest, CatchesMidRunDriftThatEndStateComparisonMisses) {
  const auto golden = series(5);
  const auto drifted = series(6);

  // End-of-run comparison: the final samples agree, so a gate that only
  // checks end state passes the drifted run.
  EXPECT_EQ(golden.at("job|000002|c"), drifted.at("job|000002|c"));

  const auto result = diff_timelines(golden, drifted);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.diff.mismatches.size(), 1u);
  EXPECT_EQ(result.diff.mismatches[0].key, "job|000001|c");
  // The divergence is localized in virtual time and scope.
  EXPECT_NE(result.first_divergence.find("t=0.2"), std::string::npos)
      << result.first_divergence;
  EXPECT_NE(result.first_divergence.find("\"job\""), std::string::npos);
  EXPECT_NE(result.first_divergence.find("sample 1"), std::string::npos);
  EXPECT_NE(result.first_divergence.find("golden 5"), std::string::npos);
  EXPECT_NE(result.first_divergence.find("actual 6"), std::string::npos);
}

TEST(TimelineDiffTest, IdenticalTimelinesCompareOk) {
  const auto result = diff_timelines(series(5), series(5));
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.first_divergence.empty());
}

TEST(TimelineDiffTest, HostSeriesComparedByThreshold) {
  SnapshotTimeline a;
  SnapshotTimeline b;
  PvarSet pa;
  pa.timer("solve", 1.00, 3);
  PvarSet pb;
  pb.timer("solve", 1.05, 3);
  a.append("job", 0.1, pa);
  b.append("job", 0.1, pb);
  a.finalize();
  b.finalize();
  // 5% wall-clock wobble on a host timer is within DiffOptions' default
  // host tolerance; the same wobble on a stable level would fail.
  EXPECT_TRUE(
      diff_timelines(snapshot_timeline_flat(a), snapshot_timeline_flat(b))
          .ok());
}

}  // namespace
}  // namespace hprs::obs
