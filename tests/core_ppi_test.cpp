#include "core/ppi.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "simnet/platform.hpp"
#include "test_scenes.hpp"

namespace hprs::core {
namespace {

bool found(const PpiResult& result, const testing::Plant& plant) {
  return std::any_of(result.targets.begin(), result.targets.end(),
                     [&](const PixelLocation& t) {
                       return t.row == plant.row && t.col == plant.col;
                     });
}

PpiConfig small_config() {
  PpiConfig cfg;
  cfg.targets = 6;
  cfg.skewers = 128;
  return cfg;
}

TEST(PpiTest, FindsPlantedExtremes) {
  auto cube = testing::striped_cube(48, 32, 32, 3);
  const auto plants = testing::plant_targets(cube, 3);
  const auto result =
      run_ppi(simnet::fully_heterogeneous(), cube, small_config());
  for (const auto& plant : plants) {
    EXPECT_TRUE(found(result, plant))
        << "missed extreme at " << plant.row << "," << plant.col;
  }
}

TEST(PpiTest, ScoresAreSortedDescending) {
  const auto cube = testing::striped_cube(48, 32, 32, 3);
  const auto result = run_ppi(simnet::thunderhead(4), cube, small_config());
  ASSERT_FALSE(result.scores.empty());
  for (std::size_t i = 1; i < result.scores.size(); ++i) {
    EXPECT_GE(result.scores[i - 1], result.scores[i]);
  }
  EXPECT_EQ(result.scores.size(), result.targets.size());
}

TEST(PpiTest, ResultIsIndependentOfProcessorCount) {
  const auto cube = testing::striped_cube(64, 24, 24, 3);
  const auto cfg = small_config();
  const auto r1 = run_ppi(simnet::thunderhead(1), cube, cfg);
  const auto r8 = run_ppi(simnet::thunderhead(8), cube, cfg);
  EXPECT_EQ(r1.targets, r8.targets);
  EXPECT_EQ(r1.scores, r8.scores);
}

TEST(PpiTest, IsDeterministicInTheSeed) {
  const auto cube = testing::striped_cube(48, 24, 24, 3);
  const auto a = run_ppi(simnet::thunderhead(4), cube, small_config());
  const auto b = run_ppi(simnet::thunderhead(4), cube, small_config());
  EXPECT_EQ(a.targets, b.targets);
  PpiConfig other = small_config();
  other.seed = 999;
  const auto c = run_ppi(simnet::thunderhead(4), cube, other);
  // A different skewer draw may change candidate order; only the top pixel
  // (a planted global extreme, if any) is expected to be stable -- here we
  // just require the runs to be valid.
  EXPECT_EQ(c.targets.size(), a.targets.size());
}

TEST(PpiTest, MoreSkewersCostMoreVirtualTime) {
  const auto cube = testing::striped_cube(48, 24, 24, 3);
  PpiConfig few = small_config();
  few.skewers = 32;
  PpiConfig many = small_config();
  many.skewers = 256;
  const auto platform = simnet::thunderhead(4);
  EXPECT_LT(run_ppi(platform, cube, few).report.total_time,
            run_ppi(platform, cube, many).report.total_time);
}

TEST(PpiTest, HeteroBeatsHomoOnHeterogeneousPlatform) {
  const auto cube = testing::striped_cube(64, 32, 32, 3);
  PpiConfig het = small_config();
  het.replication = 64;
  PpiConfig homo = het;
  homo.policy = PartitionPolicy::kHomogeneous;
  const auto platform = simnet::fully_heterogeneous();
  EXPECT_LT(run_ppi(platform, cube, het).report.total_time,
            run_ppi(platform, cube, homo).report.total_time * 0.6);
}

TEST(PpiTest, ValidatesInputs) {
  const auto cube = testing::striped_cube(32, 16, 16, 2);
  PpiConfig cfg = small_config();
  cfg.targets = 0;
  EXPECT_THROW((void)run_ppi(simnet::thunderhead(2), cube, cfg), Error);
  cfg = small_config();
  cfg.skewers = 0;
  EXPECT_THROW((void)run_ppi(simnet::thunderhead(2), cube, cfg), Error);
  cfg = small_config();
  EXPECT_THROW((void)run_ppi(simnet::thunderhead(2), hsi::HsiCube(), cfg),
               Error);
}

}  // namespace
}  // namespace hprs::core
