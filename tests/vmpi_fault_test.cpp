// Determinism and diagnostics of the deterministic fault layer
// (vmpi/fault.hpp): a fixed FaultPlan must produce bit-identical
// RunReports -- including the fault-event log and the recovery-overhead
// decomposition -- across repeated runs, engine reuse, and both host
// execution modes; an empty plan must leave try_send/try_recv programs
// bit-identical to their plain send/recv twins; crashes poison full-world
// collectives promptly; invalid plans and options fail at Engine
// construction; and deadlock diagnostics name the blocked ranks.
//
// HPRS_STRESS_RANKS overrides the rank count (ThreadSanitizer runs use a
// smaller world so 2x-instrumented thread-per-rank mode stays fast).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/error.hpp"
#include "simnet/platform.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/engine.hpp"

namespace hprs::vmpi {
namespace {

std::size_t stress_ranks() {
  return static_cast<std::size_t>(
      env_int_or("HPRS_STRESS_RANKS", 192, 2, 4096));
}

/// Mildly heterogeneous single-segment platform (cycle times vary by rank).
simnet::Platform fault_platform(std::size_t n) {
  std::vector<simnet::ProcessorSpec> procs;
  procs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 0.001 + 0.0001 * static_cast<double>(i % 7);
    procs.push_back(simnet::ProcessorSpec{"p" + std::to_string(i), "fault", w,
                                          1024, 512, 0});
  }
  return simnet::Platform("fault", std::move(procs), {{10.0}});
}

Options fault_options(ExecMode mode) {
  Options o;
  o.deadlock_timeout_s = 60.0;
  o.exec_mode = mode;
  return o;
}

/// A plan that exercises every fault type against the master/worker
/// program below: one rank dies immediately, two die mid-run, the only
/// segment degrades for a window, and p2p messages drop transiently.
FaultPlan mixed_plan(std::size_t n) {
  FaultPlan plan;
  plan.crashes.push_back({7 % static_cast<int>(n), 0.0});
  plan.crashes.push_back({static_cast<int>(n / 2), 0.02});
  plan.crashes.push_back({static_cast<int>(n - 1), 0.06});
  plan.degradations.push_back({0, 0, 3.0, 0.01, 0.05});
  plan.loss.probability = 0.02;
  plan.loss.seed = 42;
  return plan;
}

/// A miniature fault-tolerant master/worker protocol: three rounds of
/// command/reply driven by the root over try_send/try_recv, then a stop
/// message.  Workers use plain operations toward the immortal root.  This
/// is the communication shape of core/ft.hpp without the numerics.
void master_worker_program(Comm& comm) {
  constexpr int kCmdTag = 1;
  constexpr int kResTag = 2;
  constexpr int kStop = -1;
  const int p = comm.size();
  const int root = comm.root();

  if (comm.rank() == root) {
    std::vector<bool> alive(static_cast<std::size_t>(p), true);
    for (int round = 0; round < 3; ++round) {
      std::vector<int> commanded;
      for (int r = 0; r < p; ++r) {
        if (r == root || !alive[static_cast<std::size_t>(r)]) continue;
        if (!comm.try_send(r, round, 64, kCmdTag)) {
          alive[static_cast<std::size_t>(r)] = false;
          continue;
        }
        commanded.push_back(r);
      }
      for (const int r : commanded) {
        const auto res = comm.try_recv<std::uint64_t>(r, kResTag);
        if (!res.has_value()) {
          alive[static_cast<std::size_t>(r)] = false;
          continue;
        }
        comm.compute(*res % 50 + 1, Phase::kSequential);
      }
    }
    for (int r = 0; r < p; ++r) {
      if (r == root || !alive[static_cast<std::size_t>(r)]) continue;
      (void)comm.try_send(r, kStop, 8, kCmdTag);
    }
  } else {
    while (true) {
      const int cmd = comm.recv<int>(root, kCmdTag);
      if (cmd == kStop) return;
      comm.compute(2000 + 13ull * static_cast<std::uint64_t>(comm.rank()));
      const auto result =
          static_cast<std::uint64_t>(cmd) * 1000 +
          static_cast<std::uint64_t>(comm.rank());
      comm.send(root, result, 32, kResTag);
    }
  }
}

/// Like master_worker_program with an empty plan, but using the plain
/// blocking operations: with no faults the try variants must be
/// indistinguishable from these on the wire.
void master_worker_plain(Comm& comm) {
  constexpr int kCmdTag = 1;
  constexpr int kResTag = 2;
  constexpr int kStop = -1;
  const int p = comm.size();
  const int root = comm.root();

  if (comm.rank() == root) {
    for (int round = 0; round < 3; ++round) {
      for (int r = 0; r < p; ++r) {
        if (r == root) continue;
        comm.send(r, round, 64, kCmdTag);
      }
      for (int r = 0; r < p; ++r) {
        if (r == root) continue;
        const auto res = comm.recv<std::uint64_t>(r, kResTag);
        comm.compute(res % 50 + 1, Phase::kSequential);
      }
    }
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      comm.send(r, kStop, 8, kCmdTag);
    }
  } else {
    while (true) {
      const int cmd = comm.recv<int>(root, kCmdTag);
      if (cmd == kStop) return;
      comm.compute(2000 + 13ull * static_cast<std::uint64_t>(comm.rank()));
      const auto result =
          static_cast<std::uint64_t>(cmd) * 1000 +
          static_cast<std::uint64_t>(comm.rank());
      comm.send(root, result, 32, kResTag);
    }
  }
}

void expect_reports_bit_identical(const RunReport& a, const RunReport& b,
                                  const char* label) {
  EXPECT_EQ(a.total_time, b.total_time) << label;
  ASSERT_EQ(a.ranks.size(), b.ranks.size()) << label;
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const auto& x = a.ranks[r];
    const auto& y = b.ranks[r];
    EXPECT_EQ(x.clock, y.clock) << label << " rank " << r;
    EXPECT_EQ(x.compute_par, y.compute_par) << label << " rank " << r;
    EXPECT_EQ(x.compute_seq, y.compute_seq) << label << " rank " << r;
    EXPECT_EQ(x.comm, y.comm) << label << " rank " << r;
    EXPECT_EQ(x.wait, y.wait) << label << " rank " << r;
    EXPECT_EQ(x.flops, y.flops) << label << " rank " << r;
    EXPECT_EQ(x.bytes_sent, y.bytes_sent) << label << " rank " << r;
    EXPECT_EQ(x.bytes_received, y.bytes_received) << label << " rank " << r;
    if (::testing::Test::HasFailure()) break;
  }
  ASSERT_EQ(a.fault_events.size(), b.fault_events.size()) << label;
  for (std::size_t i = 0; i < a.fault_events.size(); ++i) {
    const auto& x = a.fault_events[i];
    const auto& y = b.fault_events[i];
    EXPECT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind))
        << label << " event " << i;
    EXPECT_EQ(x.rank, y.rank) << label << " event " << i;
    EXPECT_EQ(x.peer, y.peer) << label << " event " << i;
    EXPECT_EQ(x.time_s, y.time_s) << label << " event " << i;
    EXPECT_EQ(x.attempt, y.attempt) << label << " event " << i;
    if (::testing::Test::HasFailure()) break;
  }
  EXPECT_EQ(a.recovery.detection_s, b.recovery.detection_s) << label;
  EXPECT_EQ(a.recovery.redistribution_s, b.recovery.redistribution_s) << label;
  EXPECT_EQ(a.recovery.recomputed_s, b.recovery.recomputed_s) << label;
  EXPECT_EQ(a.recovery.recomputed_flops, b.recovery.recomputed_flops) << label;
  EXPECT_EQ(a.recovery.crashes, b.recovery.crashes) << label;
  EXPECT_EQ(a.recovery.detections, b.recovery.detections) << label;
  EXPECT_EQ(a.recovery.messages_lost, b.recovery.messages_lost) << label;
}

TEST(VmpiFaultTest, TryOpsWithEmptyPlanMatchPlainOps) {
  const std::size_t n = stress_ranks();
  Engine a(fault_platform(n), fault_options(ExecMode::kBoundedExecutor));
  Engine b(fault_platform(n), fault_options(ExecMode::kBoundedExecutor));
  const auto tried = a.run(master_worker_program);
  const auto plain = b.run(master_worker_plain);
  EXPECT_TRUE(tried.fault_events.empty());
  EXPECT_EQ(tried.recovery.total_overhead_s(), 0.0);
  expect_reports_bit_identical(tried, plain, "try-vs-plain");
}

TEST(VmpiFaultTest, FaultedReportsBitIdenticalAcrossRunsReuseAndModes) {
  const std::size_t n = stress_ranks();
  Options opts = fault_options(ExecMode::kBoundedExecutor);
  opts.fault_plan = mixed_plan(n);

  Engine engine(fault_platform(n), opts);
  const auto first = engine.run(master_worker_program);
  EXPECT_EQ(first.recovery.crashes, 3);
  EXPECT_GE(first.recovery.detections, 3);
  EXPECT_GT(first.recovery.detection_s, 0.0);
  EXPECT_FALSE(first.fault_events.empty());

  // Same engine again: recycled scratch, same faults.
  expect_reports_bit_identical(first, engine.run(master_worker_program),
                               "engine-reuse");

  // Fresh engine, same plan.
  Engine fresh(fault_platform(n), opts);
  expect_reports_bit_identical(first, fresh.run(master_worker_program),
                               "fresh-engine");

  // Thread-per-rank mode: host scheduling differs wildly, reports must not.
  Options tpr = opts;
  tpr.exec_mode = ExecMode::kThreadPerRank;
  Engine threads(fault_platform(n), tpr);
  expect_reports_bit_identical(first, threads.run(master_worker_program),
                               "executor-vs-threads");
}

TEST(VmpiFaultTest, MessageLossEventsAreLoggedAndDeterministic) {
  const std::size_t n = 16;
  Options opts = fault_options(ExecMode::kBoundedExecutor);
  opts.fault_plan.loss.probability = 0.5;
  opts.fault_plan.loss.seed = 7;

  Engine a(fault_platform(n), opts);
  const auto first = a.run(master_worker_program);
  EXPECT_GT(first.recovery.messages_lost, 0u);
  bool saw_loss_event = false;
  for (const auto& e : first.fault_events) {
    if (e.kind == FaultEventKind::kMessageLoss) saw_loss_event = true;
  }
  EXPECT_TRUE(saw_loss_event);

  Options tpr = opts;
  tpr.exec_mode = ExecMode::kThreadPerRank;
  Engine b(fault_platform(n), tpr);
  expect_reports_bit_identical(first, b.run(master_worker_program),
                               "loss-across-modes");
}

TEST(VmpiFaultTest, CrashPoisonsFullWorldCollectives) {
  Options opts = fault_options(ExecMode::kBoundedExecutor);
  opts.fault_plan.crashes.push_back({1, 0.0});
  Engine engine(fault_platform(8), opts);
  try {
    (void)engine.run([](Comm& comm) {
      comm.compute(1000);
      comm.barrier();
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("crash"), std::string::npos)
        << e.what();
  }
}

TEST(VmpiFaultTest, InvalidPlansFailAtEngineConstruction) {
  const auto platform = fault_platform(4);
  {
    Options o;
    o.fault_plan.crashes.push_back({9, 0.0});  // rank out of range
    EXPECT_THROW(Engine(platform, o), Error);
  }
  {
    Options o;
    o.fault_plan.crashes.push_back({1, -1.0});  // negative crash time
    EXPECT_THROW(Engine(platform, o), Error);
  }
  {
    Options o;
    o.fault_plan.degradations.push_back({0, 5, 2.0, 0.0, 1.0});  // bad segment
    EXPECT_THROW(Engine(platform, o), Error);
  }
  {
    Options o;
    o.fault_plan.degradations.push_back({0, 0, 2.0, 1.0, 0.5});  // end < begin
    EXPECT_THROW(Engine(platform, o), Error);
  }
  {
    Options o;
    o.fault_plan.loss.probability = 1.5;  // not a probability
    EXPECT_THROW(Engine(platform, o), Error);
  }
  {
    Options o;
    o.fault_detection_s = -0.1;  // negative heartbeat
    EXPECT_THROW(Engine(platform, o), Error);
  }
  {
    Options o;
    o.deadlock_timeout_s = 0.0;  // must be positive
    EXPECT_THROW(Engine(platform, o), Error);
  }
}

TEST(VmpiFaultTest, DeadlockDiagnosticsNameTheBlockedRanks) {
  Options opts = fault_options(ExecMode::kBoundedExecutor);
  opts.deadlock_timeout_s = 0.2;
  Engine engine(fault_platform(2), opts);
  try {
    // Circular wait: both ranks receive a message nobody ever sends.
    (void)engine.run([](Comm& comm) {
      const int peer = 1 - comm.rank();
      (void)comm.recv<int>(peer, /*tag=*/5);
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("blocked ranks:"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace hprs::vmpi
