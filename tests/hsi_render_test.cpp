#include "hsi/render.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace hprs::hsi {
namespace {

class RenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hprs_render_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::string read_all(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  std::filesystem::path dir_;
};

TEST_F(RenderTest, PgmHasCorrectHeaderAndSize) {
  const std::vector<float> values = {0.0f, 0.5f, 1.0f, 0.25f, 0.75f, 0.1f};
  write_pgm(path("map.pgm"), values, 2, 3);
  const std::string data = read_all(path("map.pgm"));
  EXPECT_EQ(data.rfind("P5\n3 2\n255\n", 0), 0u);
  EXPECT_EQ(data.size(), std::string("P5\n3 2\n255\n").size() + 6);
}

TEST_F(RenderTest, PgmRescalesToFullRange) {
  const std::vector<float> values = {10.0f, 20.0f};
  write_pgm(path("scale.pgm"), values, 1, 2);
  const std::string data = read_all(path("scale.pgm"));
  const auto px = data.substr(data.size() - 2);
  EXPECT_EQ(static_cast<unsigned char>(px[0]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(px[1]), 255u);
}

TEST_F(RenderTest, ConstantImageRendersMidGray) {
  const std::vector<float> values(4, 3.14f);
  write_pgm(path("flat.pgm"), values, 2, 2);
  const std::string data = read_all(path("flat.pgm"));
  for (std::size_t i = data.size() - 4; i < data.size(); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(data[i]), 128u);
  }
}

TEST_F(RenderTest, PpmCarriesThreeBytesPerPixel) {
  const std::vector<std::uint16_t> labels = {0, 1, 2, 3};
  write_label_ppm(path("labels.ppm"), labels, 2, 2);
  const std::string data = read_all(path("labels.ppm"));
  EXPECT_EQ(data.rfind("P6\n2 2\n255\n", 0), 0u);
  EXPECT_EQ(data.size(), std::string("P6\n2 2\n255\n").size() + 12);
}

TEST_F(RenderTest, SameLabelSameColor) {
  const Rgb a = label_color(5);
  const Rgb b = label_color(5);
  EXPECT_EQ(a.r, b.r);
  EXPECT_EQ(a.g, b.g);
  EXPECT_EQ(a.b, b.b);
}

TEST_F(RenderTest, NearbyLabelsGetDistinctColors) {
  std::set<std::tuple<int, int, int>> seen;
  for (std::size_t l = 0; l < 16; ++l) {
    const Rgb c = label_color(l);
    seen.insert({c.r, c.g, c.b});
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST_F(RenderTest, RejectsGeometryMismatch) {
  const std::vector<float> values(5, 0.0f);
  EXPECT_THROW(write_pgm(path("bad.pgm"), values, 2, 3), Error);
  const std::vector<std::uint16_t> labels(5, 0);
  EXPECT_THROW(write_label_ppm(path("bad.ppm"), labels, 2, 3), Error);
  EXPECT_THROW(write_pgm(path("bad.pgm"), values, 0, 5), Error);
}

TEST_F(RenderTest, RejectsUnwritablePath) {
  const std::vector<float> values(4, 0.0f);
  EXPECT_THROW(write_pgm("/nonexistent-dir/x.pgm", values, 2, 2), Error);
}

}  // namespace
}  // namespace hprs::hsi
