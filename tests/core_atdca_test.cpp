#include "core/atdca.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "simnet/platform.hpp"
#include "test_scenes.hpp"

namespace hprs::core {
namespace {

bool found(const TargetDetectionResult& result, const testing::Plant& plant) {
  return std::any_of(result.targets.begin(), result.targets.end(),
                     [&](const PixelLocation& t) {
                       return t.row == plant.row && t.col == plant.col;
                     });
}

TEST(AtdcaTest, FindsAllPlantedAnomalies) {
  auto cube = testing::striped_cube(48, 32, 32, 3);
  const auto plants = testing::plant_targets(cube, 4);
  AtdcaConfig cfg;
  cfg.targets = 8;
  const auto result = run_atdca(simnet::fully_heterogeneous(), cube, cfg);
  ASSERT_EQ(result.targets.size(), 8u);
  for (const auto& plant : plants) {
    EXPECT_TRUE(found(result, plant))
        << "missed anomaly at " << plant.row << "," << plant.col;
  }
}

TEST(AtdcaTest, FirstTargetIsTheBrightestPixel) {
  auto cube = testing::striped_cube(32, 32, 16, 2);
  // Make one pixel overwhelmingly bright.
  const auto px = cube.pixel(11, 13);
  for (auto& v : px) v = 50.0f;
  AtdcaConfig cfg;
  cfg.targets = 2;
  const auto result = run_atdca(simnet::thunderhead(4), cube, cfg);
  ASSERT_GE(result.targets.size(), 1u);
  EXPECT_EQ(result.targets[0].row, 11u);
  EXPECT_EQ(result.targets[0].col, 13u);
}

TEST(AtdcaTest, TargetsAreDistinctPixels) {
  auto cube = testing::striped_cube(40, 24, 24, 4);
  AtdcaConfig cfg;
  cfg.targets = 6;
  const auto result = run_atdca(simnet::fully_homogeneous(), cube, cfg);
  for (std::size_t i = 0; i < result.targets.size(); ++i) {
    for (std::size_t j = i + 1; j < result.targets.size(); ++j) {
      EXPECT_FALSE(result.targets[i] == result.targets[j])
          << "duplicate target " << i << " and " << j;
    }
  }
}

TEST(AtdcaTest, ResultIsIndependentOfProcessorCount) {
  auto cube = testing::striped_cube(64, 24, 24, 3);
  const auto plants = testing::plant_targets(cube, 3);
  (void)plants;
  AtdcaConfig cfg;
  cfg.targets = 5;
  const auto r1 = run_atdca(simnet::thunderhead(1), cube, cfg);
  const auto r4 = run_atdca(simnet::thunderhead(4), cube, cfg);
  const auto r16 = run_atdca(simnet::thunderhead(16), cube, cfg);
  EXPECT_EQ(r1.targets, r4.targets);
  EXPECT_EQ(r1.targets, r16.targets);
}

TEST(AtdcaTest, PolicyDoesNotChangeTheAnswer) {
  auto cube = testing::striped_cube(64, 24, 24, 3);
  AtdcaConfig het;
  het.targets = 5;
  het.policy = PartitionPolicy::kHeterogeneous;
  AtdcaConfig homo = het;
  homo.policy = PartitionPolicy::kHomogeneous;
  const auto platform = simnet::fully_heterogeneous();
  EXPECT_EQ(run_atdca(platform, cube, het).targets,
            run_atdca(platform, cube, homo).targets);
}

TEST(AtdcaTest, HeteroBeatsHomoOnHeterogeneousPlatform) {
  auto cube = testing::striped_cube(64, 32, 32, 3);
  AtdcaConfig het;
  het.targets = 6;
  het.replication = 64;
  AtdcaConfig homo = het;
  homo.policy = PartitionPolicy::kHomogeneous;
  const auto platform = simnet::fully_heterogeneous();
  const auto t_het = run_atdca(platform, cube, het).report.total_time;
  const auto t_homo = run_atdca(platform, cube, homo).report.total_time;
  EXPECT_LT(t_het, t_homo * 0.6);
}

TEST(AtdcaTest, ReportAccountsTheRun) {
  auto cube = testing::striped_cube(48, 24, 24, 3);
  AtdcaConfig cfg;
  cfg.targets = 4;
  const auto result = run_atdca(simnet::fully_heterogeneous(), cube, cfg);
  EXPECT_GT(result.report.total_time, 0.0);
  EXPECT_EQ(result.report.ranks.size(), 16u);
  EXPECT_GT(result.report.total_flops(), 0u);
  EXPECT_GT(result.report.com(), 0.0);
  EXPECT_GE(result.report.imbalance_all(), 1.0);
}

TEST(AtdcaTest, ReplicationScalesComputeLinearly) {
  auto cube = testing::striped_cube(48, 24, 24, 3);
  AtdcaConfig cfg;
  cfg.targets = 4;
  const auto base = run_atdca(simnet::thunderhead(1), cube, cfg);
  cfg.replication = 10;
  const auto scaled = run_atdca(simnet::thunderhead(1), cube, cfg);
  EXPECT_NEAR(scaled.report.total_time / base.report.total_time, 10.0, 0.5);
}

TEST(AtdcaTest, SingleTargetRequestsJustTheBrightest) {
  auto cube = testing::striped_cube(32, 16, 16, 2);
  AtdcaConfig cfg;
  cfg.targets = 1;
  const auto result = run_atdca(simnet::thunderhead(2), cube, cfg);
  EXPECT_EQ(result.targets.size(), 1u);
}

TEST(AtdcaTest, ValidatesInputs) {
  auto cube = testing::striped_cube(32, 16, 16, 2);
  AtdcaConfig cfg;
  cfg.targets = 0;
  EXPECT_THROW((void)run_atdca(simnet::thunderhead(2), cube, cfg), Error);
  cfg.targets = 2;
  EXPECT_THROW((void)run_atdca(simnet::thunderhead(2), hsi::HsiCube(), cfg),
               Error);
}

TEST(AtdcaTest, WorkloadModelGrowsWithTargets) {
  const auto small = atdca_workload(224, 2);
  const auto large = atdca_workload(224, 18);
  EXPECT_LT(small.flops_per_pixel, large.flops_per_pixel);
  EXPECT_EQ(small.bytes_per_pixel, 224u * sizeof(float));
}

}  // namespace
}  // namespace hprs::core
