#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hprs {
namespace {

CliArgs parse(std::vector<const char*> argv,
              const std::vector<std::string>& allowed) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()), argv.data(), allowed);
}

TEST(CliArgsTest, ParsesSpaceSeparatedValues) {
  const auto args = parse({"--rows", "128"}, {"rows"});
  EXPECT_TRUE(args.has("rows"));
  EXPECT_EQ(args.get_int("rows", 0), 128);
}

TEST(CliArgsTest, ParsesEqualsSeparatedValues) {
  const auto args = parse({"--rows=64"}, {"rows"});
  EXPECT_EQ(args.get_int("rows", 0), 64);
}

TEST(CliArgsTest, ReturnsFallbackWhenAbsent) {
  const auto args = parse({}, {"rows"});
  EXPECT_FALSE(args.has("rows"));
  EXPECT_EQ(args.get_int("rows", 77), 77);
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_TRUE(args.get_bool("flag", true));
}

TEST(CliArgsTest, RejectsUnknownOption) {
  EXPECT_THROW(parse({"--bogus", "1"}, {"rows"}), Error);
}

TEST(CliArgsTest, RejectsNonNumericInteger) {
  const auto args = parse({"--rows", "abc"}, {"rows"});
  EXPECT_THROW((void)args.get_int("rows", 0), Error);
}

TEST(CliArgsTest, ParsesDoubles) {
  const auto args = parse({"--snr=12.5"}, {"snr"});
  EXPECT_DOUBLE_EQ(args.get_double("snr", 0.0), 12.5);
}

TEST(CliArgsTest, BareFlagIsTrue) {
  const auto args = parse({"--verbose"}, {"verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliArgsTest, ParsesBooleanSpellings) {
  for (const char* yes : {"true", "1", "yes", "on"}) {
    EXPECT_TRUE(parse({"--f", yes}, {"f"}).get_bool("f", false)) << yes;
  }
  for (const char* no : {"false", "0", "no", "off"}) {
    EXPECT_FALSE(parse({"--f", no}, {"f"}).get_bool("f", true)) << no;
  }
  EXPECT_THROW((void)parse({"--f", "maybe"}, {"f"}).get_bool("f", true),
               Error);
}

TEST(CliArgsTest, CollectsPositionalArguments) {
  const auto args = parse({"input.raw", "--rows", "4", "output.raw"},
                          {"rows"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.raw");
  EXPECT_EQ(args.positional()[1], "output.raw");
}

TEST(CliArgsTest, LaterValueWins) {
  const auto args = parse({"--rows", "1", "--rows", "2"}, {"rows"});
  EXPECT_EQ(args.get_int("rows", 0), 2);
}

}  // namespace
}  // namespace hprs
