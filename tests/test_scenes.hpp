// Small deterministic cubes shared by the algorithm tests.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "hsi/cube.hpp"

namespace hprs::testing {

/// A blocky cube: `classes` horizontal stripes of distinct smooth spectra
/// plus mild noise.  Stripe k occupies rows [k*rows/classes, ...).
inline hsi::HsiCube striped_cube(std::size_t rows, std::size_t cols,
                                 std::size_t bands, std::size_t classes,
                                 double noise = 0.002,
                                 std::uint64_t seed = 7) {
  Xoshiro256 rng(seed);
  hsi::HsiCube cube(rows, cols, bands);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t cls = std::min(classes - 1, r * classes / rows);
    for (std::size_t c = 0; c < cols; ++c) {
      const auto px = cube.pixel(r, c);
      for (std::size_t b = 0; b < bands; ++b) {
        const double x = static_cast<double>(b) / static_cast<double>(bands);
        // Distinct bump per class: shifted raised cosine.
        const double center =
            (static_cast<double>(cls) + 0.5) / static_cast<double>(classes);
        const double bump = 0.5 + 0.45 * std::cos(3.0 * (x - center));
        px[b] = static_cast<float>(bump + noise * rng.normal());
      }
    }
  }
  return cube;
}

/// Location of a planted anomaly.
struct Plant {
  std::size_t row;
  std::size_t col;
};

/// Injects spectrally unique, bright anomalies into a cube (each anomaly
/// gets its own narrow spike band plus a brightness boost, so an OSP or
/// error-ranking detector must find all of them).
inline std::vector<Plant> plant_targets(hsi::HsiCube& cube,
                                        std::size_t count) {
  std::vector<Plant> plants;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t r = (k * 2 + 1) * cube.rows() / (2 * count);
    const std::size_t c = (k * 2 + 1) * cube.cols() / (2 * count);
    const auto px = cube.pixel(r, c);
    const std::size_t spike = (k + 1) * cube.bands() / (count + 2);
    for (std::size_t b = 0; b < cube.bands(); ++b) {
      px[b] = static_cast<float>(px[b] * 1.5);
    }
    px[spike] += 3.0f;
    plants.push_back({r, c});
  }
  return plants;
}

}  // namespace hprs::testing
