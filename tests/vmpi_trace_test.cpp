#include "vmpi/trace.hpp"

#include <gtest/gtest.h>

#include "vmpi/comm.hpp"
#include "vmpi/engine.hpp"

namespace hprs::vmpi {
namespace {

simnet::Platform tiny_platform(std::size_t n) {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(
        simnet::ProcessorSpec{"p" + std::to_string(i), "t", 0.001, 64, 64, 0});
  }
  return simnet::Platform("tiny", std::move(procs), {{10.0}});
}

Options traced() {
  Options o;
  o.per_message_latency_s = 0.0;
  o.enable_trace = true;
  return o;
}

TEST(TraceTest, DisabledByDefault) {
  Engine engine(tiny_platform(2));
  const auto report =
      engine.run([](Comm& comm) { comm.compute(1'000'000); });
  EXPECT_TRUE(report.trace.empty());
}

TEST(TraceTest, RecordsComputeIntervals) {
  Engine engine(tiny_platform(1), traced());
  const auto report = engine.run([](Comm& comm) {
    comm.compute(1'000'000);
    comm.compute(2'000'000);
  });
  ASSERT_EQ(report.trace.size(), 2u);
  EXPECT_EQ(report.trace[0].kind, TraceKind::kCompute);
  EXPECT_DOUBLE_EQ(report.trace[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(report.trace[0].end, 0.001);
  EXPECT_EQ(report.trace[0].amount, 1'000'000u);
  EXPECT_DOUBLE_EQ(report.trace[1].begin, 0.001);
  EXPECT_DOUBLE_EQ(report.trace[1].end, 0.003);
}

TEST(TraceTest, RecordsTransfersAndIdle) {
  Engine engine(tiny_platform(3), traced());
  const auto report = engine.run([](Comm& comm) {
    (void)comm.gather(0, comm.rank(), 125'000);  // 1 megabit each
  });
  bool saw_transmit = false;
  bool saw_receive = false;
  for (const auto& e : report.trace) {
    if (e.kind == TraceKind::kTransmit) {
      saw_transmit = true;
      EXPECT_NE(e.rank, 0);
      EXPECT_EQ(e.amount, 125'000u);
      EXPECT_NEAR(e.end - e.begin, 0.010, 1e-12);
    }
    if (e.kind == TraceKind::kReceive) {
      saw_receive = true;
      EXPECT_EQ(e.rank, 0);
    }
  }
  EXPECT_TRUE(saw_transmit);
  EXPECT_TRUE(saw_receive);
}

TEST(TraceTest, RecordsBarrierIdle) {
  Engine engine(tiny_platform(2), traced());
  const auto report = engine.run([](Comm& comm) {
    if (comm.rank() == 1) comm.compute(5'000'000);
    comm.barrier();
  });
  bool rank0_idled = false;
  for (const auto& e : report.trace) {
    if (e.rank == 0 && e.kind == TraceKind::kIdle) {
      rank0_idled = true;
      EXPECT_NEAR(e.end - e.begin, 0.005, 1e-12);
    }
  }
  EXPECT_TRUE(rank0_idled);
}

TEST(TraceTest, EventsAreChronological) {
  Engine engine(tiny_platform(4), traced());
  const auto report = engine.run([](Comm& comm) {
    comm.compute(static_cast<std::uint64_t>(comm.rank() + 1) * 500'000);
    (void)comm.gather(0, comm.rank(), 4'000);
    (void)comm.bcast(0, comm.rank(), 4'000);
  });
  for (std::size_t i = 1; i < report.trace.size(); ++i) {
    EXPECT_LE(report.trace[i - 1].begin, report.trace[i].begin);
  }
  for (const auto& e : report.trace) {
    EXPECT_LE(e.begin, e.end);
    EXPECT_GE(e.begin, 0.0);
  }
}

TEST(TraceTest, CsvHasHeaderAndOneLinePerEvent) {
  Engine engine(tiny_platform(2), traced());
  const auto report = engine.run([](Comm& comm) { comm.compute(1'000'000); });
  const std::string csv = trace_csv(report);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            report.trace.size() + 1);
  EXPECT_EQ(csv.rfind("rank,kind,begin,end,amount\n", 0), 0u);
  EXPECT_NE(csv.find("compute"), std::string::npos);
}

TEST(TraceTest, GanttRendersOneRowPerRank) {
  Engine engine(tiny_platform(3), traced());
  const auto report = engine.run([](Comm& comm) {
    comm.compute(1'000'000);
    comm.barrier();
  });
  const std::string gantt = render_gantt(report, 40);
  EXPECT_NE(gantt.find("root r00"), std::string::npos);
  EXPECT_NE(gantt.find("r01"), std::string::npos);
  EXPECT_NE(gantt.find("r02"), std::string::npos);
  EXPECT_NE(gantt.find('c'), std::string::npos);
}

TEST(TraceTest, GanttHandlesEmptyRuns) {
  Engine engine(tiny_platform(2), traced());
  const auto report = engine.run([](Comm&) {});
  const std::string gantt = render_gantt(report);
  EXPECT_NE(gantt.find("virtual timeline"), std::string::npos);
}

// A hand-built report exercising every TraceKind, for byte-exact golden
// checks of both renderers (their output feeds external tooling and the
// obs/chrome_trace agreement test, so the format is a contract).
RunReport golden_report() {
  RunReport report;
  report.total_time = 0.02;
  report.root = 0;
  report.ranks.resize(2);
  report.trace = {
      {0, TraceKind::kCompute, 0.0, 0.001, 1'000'000},
      {1, TraceKind::kTransmit, 0.001, 0.011, 125'000},
      {0, TraceKind::kReceive, 0.001, 0.011, 125'000},
      {1, TraceKind::kIdle, 0.011, 0.02, 0},
  };
  return report;
}

TEST(TraceTest, CsvGoldenOutput) {
  EXPECT_EQ(trace_csv(golden_report()),
            "rank,kind,begin,end,amount\n"
            "0,compute,0,0.001,1000000\n"
            "1,transmit,0.001,0.011,125000\n"
            "0,receive,0.001,0.011,125000\n"
            "1,idle,0.011,0.02,0\n");
}

TEST(TraceTest, GanttGoldenOutput) {
  // Width 8 over [0, 0.02]: compute paints over the receive on rank 0's
  // first column; the idle tail shares its first column with the transmit.
  EXPECT_EQ(render_gantt(golden_report(), 8),
            "virtual timeline, 0 .. 0.02 s "
            "(c=compute s=send r=receive d=stage .=idle)\n"
            "root r00 |crrrr   |\n"
            "     r01 |sssss...|\n");
}

TEST(TraceTest, KindNamesAreStable) {
  EXPECT_STREQ(to_string(TraceKind::kCompute), "compute");
  EXPECT_STREQ(to_string(TraceKind::kTransmit), "transmit");
  EXPECT_STREQ(to_string(TraceKind::kReceive), "receive");
  EXPECT_STREQ(to_string(TraceKind::kIdle), "idle");
  EXPECT_STREQ(to_string(TraceKind::kStage), "stage");
}

}  // namespace
}  // namespace hprs::vmpi
