// The metrics registry contract (obs/metrics.hpp):
//
//  * mechanics -- counters aggregate (with optional per-rank breakdowns),
//    gauges keep high-water marks, timers accumulate seconds, reset drops
//    everything, and a disabled registry ignores every mutation;
//  * determinism -- the Domain::kStable subset published by an engine run
//    is bit-identical across repeated runs and across both host execution
//    modes (the property that makes stable metrics golden-comparable);
//  * coverage -- an engine run publishes the expected vmpi.* keys.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "vmpi/comm.hpp"
#include "vmpi/engine.hpp"

namespace hprs::obs {
namespace {

const MetricValue* find(const Metrics::Snapshot& snap,
                        const std::string& name) {
  for (const auto& [key, value] : snap) {
    if (key == name) return &value;
  }
  return nullptr;
}

TEST(MetricsTest, DisabledRegistryIgnoresMutations) {
  auto& m = Metrics::instance();
  m.reset();
  m.set_enabled(false);
  m.add("c", 3);
  m.gauge_max("g", 7.0);
  m.time_add("t", 0.5);
  EXPECT_TRUE(m.snapshot().empty());
}

TEST(MetricsTest, CountersAggregateAndKeepPerRankBreakdowns) {
  const ScopedMetrics scoped;
  auto& m = Metrics::instance();
  m.add("plain", 2);
  m.add("plain", 3);
  m.add("ranked", 10, Domain::kStable, 0);
  m.add("ranked", 20, Domain::kStable, 2);
  m.add("ranked", 5, Domain::kStable, 2);

  const auto snap = m.snapshot();
  const auto* plain = find(snap, "plain");
  ASSERT_NE(plain, nullptr);
  EXPECT_EQ(plain->kind, MetricKind::kCounter);
  EXPECT_EQ(plain->count, 5u);
  EXPECT_TRUE(plain->per_rank.empty());

  const auto* ranked = find(snap, "ranked");
  ASSERT_NE(ranked, nullptr);
  EXPECT_EQ(ranked->count, 35u);
  ASSERT_EQ(ranked->per_rank.size(), 3u);
  EXPECT_EQ(ranked->per_rank[0], 10u);
  EXPECT_EQ(ranked->per_rank[1], 0u);
  EXPECT_EQ(ranked->per_rank[2], 25u);
}

TEST(MetricsTest, GaugesKeepHighWaterAndTimersAccumulate) {
  const ScopedMetrics scoped;
  auto& m = Metrics::instance();
  m.gauge_max("g", 4.0);
  m.gauge_max("g", 9.0);
  m.gauge_max("g", 2.0);
  m.time_add("t", 0.25);
  m.time_add("t", 0.5);

  const auto snap = m.snapshot();
  const auto* g = find(snap, "g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(g->value, 9.0);

  const auto* t = find(snap, "t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->kind, MetricKind::kTimer);
  EXPECT_EQ(t->domain, Domain::kHost);  // timers are host-domain by fiat
  EXPECT_EQ(t->count, 2u);
  EXPECT_DOUBLE_EQ(t->value, 0.75);
}

TEST(MetricsTest, SnapshotIsNameSortedAndResetDropsAll) {
  const ScopedMetrics scoped;
  auto& m = Metrics::instance();
  m.add("zeta", 1);
  m.add("alpha", 1);
  m.add("mid", 1);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "alpha");
  EXPECT_EQ(snap[1].first, "mid");
  EXPECT_EQ(snap[2].first, "zeta");
  m.reset();
  EXPECT_TRUE(m.snapshot().empty());
}

TEST(MetricsTest, StableSubsetFiltersHostDomain) {
  const ScopedMetrics scoped;
  auto& m = Metrics::instance();
  m.add("stable.count", 1);
  m.add("host.count", 1, Domain::kHost);
  m.time_add("host.timer", 0.1);
  const auto stable = Metrics::stable_subset(m.snapshot());
  ASSERT_EQ(stable.size(), 1u);
  EXPECT_EQ(stable[0].first, "stable.count");
}

// --- Engine-published metrics --------------------------------------------

simnet::Platform tiny_platform(std::size_t n) {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(
        simnet::ProcessorSpec{"p" + std::to_string(i), "t", 0.001, 64, 64, 0});
  }
  return simnet::Platform("tiny", std::move(procs), {{10.0}});
}

void mixed_workload(vmpi::Comm& comm) {
  comm.compute(static_cast<std::uint64_t>(comm.rank() + 1) * 250'000);
  (void)comm.gather(0, comm.rank(), 4'000);
  (void)comm.bcast(0, comm.rank(), 8'000);
  if (comm.rank() == 1) comm.send(2, 42, 1'000);
  if (comm.rank() == 2) (void)comm.recv<int>(1);
  comm.barrier();
}

Metrics::Snapshot run_and_snapshot(vmpi::ExecMode mode) {
  const ScopedMetrics scoped;
  vmpi::Options options;
  options.exec_mode = mode;
  vmpi::Engine engine(tiny_platform(4), options);
  (void)engine.run(mixed_workload);
  return Metrics::instance().snapshot();
}

TEST(MetricsEngineTest, EnginePublishesExpectedKeys) {
  const auto snap = run_and_snapshot(vmpi::ExecMode::kBoundedExecutor);
  for (const char* key :
       {"vmpi.collectives.gather", "vmpi.collectives.bcast",
        "vmpi.collectives.barrier", "vmpi.collective_wire_bytes.gather",
        "vmpi.p2p.messages", "vmpi.p2p.wire_bytes", "vmpi.bytes_sent",
        "vmpi.bytes_received", "vmpi.flops"}) {
    EXPECT_NE(find(snap, key), nullptr) << key;
  }
  const auto* gathers = find(snap, "vmpi.collectives.gather");
  ASSERT_NE(gathers, nullptr);
  EXPECT_EQ(gathers->count, 1u);
  const auto* p2p = find(snap, "vmpi.p2p.messages");
  ASSERT_NE(p2p, nullptr);
  EXPECT_EQ(p2p->count, 1u);
  const auto* sent = find(snap, "vmpi.bytes_sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_EQ(sent->per_rank.size(), 4u);
}

TEST(MetricsEngineTest, StableMetricsBitIdenticalAcrossRunsAndModes) {
  const auto first = run_and_snapshot(vmpi::ExecMode::kBoundedExecutor);
  const auto repeat = run_and_snapshot(vmpi::ExecMode::kBoundedExecutor);
  const auto threads = run_and_snapshot(vmpi::ExecMode::kThreadPerRank);

  const auto stable_first = Metrics::stable_subset(first);
  EXPECT_FALSE(stable_first.empty());
  // MetricValue's defaulted operator== compares counts, values, and the
  // per-rank breakdowns bit for bit.
  EXPECT_EQ(stable_first, Metrics::stable_subset(repeat));
  EXPECT_EQ(stable_first, Metrics::stable_subset(threads));
}

TEST(MetricsEngineTest, HostMetricsStayOutOfTheStableSubset) {
  const auto snap = run_and_snapshot(vmpi::ExecMode::kBoundedExecutor);
  bool saw_host = false;
  for (const auto& [name, value] : snap) {
    if (value.domain != Domain::kHost) continue;
    saw_host = true;
    // Summaries rely on the "host" naming convention for thresholding.
    // Timers are exempt: add_metrics appends ".host_s" to their keys.
    if (value.kind != MetricKind::kTimer) {
      EXPECT_NE(name.find("host"), std::string::npos) << name;
    }
  }
  EXPECT_TRUE(saw_host);  // wakeups / executor counters must be published
}

}  // namespace
}  // namespace hprs::obs
