#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/vec.hpp"

namespace hprs::linalg {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(m(r, c), 0.0);
    }
  }
}

TEST(MatrixTest, InitializerDataIsRowMajor) {
  const Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(0, 1), 2);
  EXPECT_EQ(m(1, 0), 3);
  EXPECT_EQ(m(1, 1), 4);
}

TEST(MatrixTest, InitializerSizeMismatchThrows) {
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), Error);
}

TEST(MatrixTest, IdentityHasUnitDiagonal) {
  const Matrix i = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, TransposeSwapsIndices) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(m(r, c), t(c, r));
    }
  }
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.multiply(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_EQ(c(0, 0), 58);
  EXPECT_EQ(c(0, 1), 64);
  EXPECT_EQ(c(1, 0), 139);
  EXPECT_EQ(c(1, 1), 154);
}

TEST(MatrixTest, MultiplyDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW((void)a.multiply(b), Error);
}

TEST(MatrixTest, IdentityIsMultiplicativeNeutral) {
  Xoshiro256 rng(5);
  Matrix m(4, 4);
  for (auto& v : m.data()) v = rng.uniform(-1, 1);
  const Matrix i = Matrix::identity(4);
  EXPECT_LE(m.multiply(i).max_abs_diff(m), 1e-15);
  EXPECT_LE(i.multiply(m).max_abs_diff(m), 1e-15);
}

TEST(MatrixTest, MatvecMatchesHandComputation) {
  const Matrix a(2, 3, {1, 0, 2, -1, 3, 1});
  const std::vector<double> x = {3, -2, 1};
  const auto y = a.multiply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_EQ(y[0], 5);
  EXPECT_EQ(y[1], -8);
}

TEST(MatrixTest, GramIsSymmetricPositiveSemiDefinite) {
  Xoshiro256 rng(9);
  Matrix m(5, 3);
  for (auto& v : m.data()) v = rng.uniform(-2, 2);
  const Matrix g = m.gram();
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.cols(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(g(i, i), 0.0);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
  }
  // Cross-check against A^T * A.
  const Matrix ref = m.transposed().multiply(m);
  EXPECT_LE(g.max_abs_diff(ref), 1e-12);
}

TEST(MatrixTest, AppendRowGrowsMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  const std::vector<double> r0 = {1, 2, 3};
  const std::vector<double> r1 = {4, 5, 6};
  m.append_row(r0);
  m.append_row(r1);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 6);
}

TEST(MatrixTest, AppendRowRejectsWrongLength) {
  Matrix m;
  const std::vector<double> r0 = {1, 2, 3};
  m.append_row(r0);
  const std::vector<double> bad = {1, 2};
  EXPECT_THROW(m.append_row(bad), Error);
}

TEST(MatrixTest, RowSpanAliasesStorage) {
  Matrix m(2, 2, {1, 2, 3, 4});
  m.row(1)[0] = 99;
  EXPECT_EQ(m(1, 0), 99);
}

TEST(MatrixTest, MaxAbsDiffDetectsChanges) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b = a;
  EXPECT_EQ(a.max_abs_diff(b), 0.0);
  b(1, 1) = 4.5;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.5);
  EXPECT_THROW((void)a.max_abs_diff(Matrix(2, 3)), Error);
}

class MatrixSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatrixSizeSweep, TransposeIsInvolution) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(n);
  Matrix m(n, n + 1);
  for (auto& v : m.data()) v = rng.uniform(-1, 1);
  EXPECT_LE(m.transposed().transposed().max_abs_diff(m), 0.0);
}

TEST_P(MatrixSizeSweep, MultiplicationIsAssociative) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(n * 31 + 1);
  Matrix a(n, n);
  Matrix b(n, n);
  Matrix c(n, n);
  for (auto& v : a.data()) v = rng.uniform(-1, 1);
  for (auto& v : b.data()) v = rng.uniform(-1, 1);
  for (auto& v : c.data()) v = rng.uniform(-1, 1);
  const Matrix left = a.multiply(b).multiply(c);
  const Matrix right = a.multiply(b.multiply(c));
  EXPECT_LE(left.max_abs_diff(right), 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

}  // namespace
}  // namespace hprs::linalg
