// End-to-end scheduler properties: bit-identical schedules, records, and
// stable metrics across repeated runs and both executor modes; per-job
// numeric outputs bit-identical to a solo run of the same algorithm on the
// same rank subset; FIFO ordering; record consistency; conservative
// backfill never starving the queue head; admission rejections that do not
// block the rest of the stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/atdca.hpp"
#include "core/morph.hpp"
#include "core/pct.hpp"
#include "core/ppi.hpp"
#include "core/ufcls.hpp"
#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "test_scenes.hpp"
#include "vmpi/comm.hpp"

namespace hprs::sched {
namespace {

simnet::Platform cluster(std::size_t n) {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(simnet::ProcessorSpec{
        "p" + std::to_string(i), "t",
        0.001 * static_cast<double>(1 + i % 3), 1024, 512, 0});
  }
  return simnet::Platform("sched-now", std::move(procs), {{10.0}});
}

vmpi::Options fast_options(
    vmpi::ExecMode mode = vmpi::ExecMode::kBoundedExecutor) {
  vmpi::Options o;
  o.per_message_latency_s = 0.0;
  o.deadlock_timeout_s = 120.0;
  o.exec_mode = mode;
  return o;
}

/// A mixed five-algorithm stream with staggered arrivals.
std::vector<JobSpec> mixed_stream() {
  std::vector<JobSpec> stream;
  JobSpec a;
  a.id = 1;
  a.algorithm = JobAlgorithm::kAtdca;
  a.arrival_s = 0.0;
  a.ranks = 3;
  a.targets = 4;
  stream.push_back(a);
  JobSpec b;
  b.id = 2;
  b.algorithm = JobAlgorithm::kPct;
  b.arrival_s = 0.0;
  b.ranks = 2;
  b.classes = 3;
  stream.push_back(b);
  JobSpec c;
  c.id = 3;
  c.algorithm = JobAlgorithm::kPpi;
  c.arrival_s = 0.002;
  c.ranks = 2;
  c.targets = 4;
  c.skewers = 32;
  stream.push_back(c);
  JobSpec d;
  d.id = 4;
  d.algorithm = JobAlgorithm::kMorph;
  d.arrival_s = 0.004;
  d.ranks = 2;
  d.classes = 3;
  d.iterations = 2;
  d.kernel_radius = 1;
  stream.push_back(d);
  JobSpec e;
  e.id = 5;
  e.algorithm = JobAlgorithm::kUfcls;
  e.arrival_s = 0.004;
  e.ranks = 3;
  e.targets = 3;
  stream.push_back(e);
  return stream;
}

void expect_records_equal(const std::vector<JobRecord>& a,
                          const std::vector<JobRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "job " << i;
    EXPECT_EQ(a[i].dispatch_s, b[i].dispatch_s) << "job " << i;
    EXPECT_EQ(a[i].finish_s, b[i].finish_s) << "job " << i;
    EXPECT_EQ(a[i].est_seconds, b[i].est_seconds) << "job " << i;
    EXPECT_EQ(a[i].members, b[i].members) << "job " << i;
    EXPECT_EQ(a[i].busy_s, b[i].busy_s) << "job " << i;
    EXPECT_EQ(a[i].rejected, b[i].rejected) << "job " << i;
  }
}

void expect_outputs_equal(const std::vector<JobOutput>& a,
                          const std::vector<JobOutput>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].targets, b[i].targets) << "job " << i;
    EXPECT_EQ(a[i].scores, b[i].scores) << "job " << i;
    EXPECT_EQ(a[i].labels, b[i].labels) << "job " << i;
    EXPECT_EQ(a[i].label_count, b[i].label_count) << "job " << i;
  }
}

TEST(SchedSchedulerTest, BitIdenticalAcrossRunsAndExecutorModes) {
  const simnet::Platform platform = cluster(7);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  const std::vector<JobSpec> stream = mixed_stream();

  obs::Metrics::Snapshot stable_a;
  ScheduleResult first;
  {
    obs::ScopedMetrics scoped;
    first = run_schedule(platform, scene, stream, {}, fast_options());
    stable_a = obs::Metrics::stable_subset(obs::Metrics::instance().snapshot());
  }
  EXPECT_EQ(first.completed(), stream.size());

  obs::Metrics::Snapshot stable_b;
  ScheduleResult second;
  {
    obs::ScopedMetrics scoped;
    second = run_schedule(platform, scene, stream, {}, fast_options());
    stable_b = obs::Metrics::stable_subset(obs::Metrics::instance().snapshot());
  }
  obs::Metrics::Snapshot stable_c;
  ScheduleResult threads;
  {
    obs::ScopedMetrics scoped;
    threads = run_schedule(platform, scene, stream, {},
                           fast_options(vmpi::ExecMode::kThreadPerRank));
    stable_c = obs::Metrics::stable_subset(obs::Metrics::instance().snapshot());
  }

  expect_records_equal(first.records, second.records);
  expect_records_equal(first.records, threads.records);
  expect_outputs_equal(first.outputs, second.outputs);
  expect_outputs_equal(first.outputs, threads.outputs);
  EXPECT_EQ(first.makespan_s, second.makespan_s);
  EXPECT_EQ(first.makespan_s, threads.makespan_s);
  EXPECT_EQ(first.utilization, threads.utilization);
  EXPECT_EQ(stable_a, stable_b);
  EXPECT_EQ(stable_a, stable_c);

  // Per-job stable metrics are published under the job id.
  bool saw_job_metric = false;
  for (const auto& [name, value] : stable_a) {
    if (name == "sched.job.1.makespan_s") saw_job_metric = true;
  }
  EXPECT_TRUE(saw_job_metric);
}

// Multi-segment regression: on a segmented platform, concurrent gangs'
// cross-segment transfers must not share host-order-dependent backbone
// state (the engine scopes xlink reservations per communicator).  A
// single-segment cluster cannot catch this, so this variant runs the
// stream on the paper's 4-segment fully heterogeneous NOW.
TEST(SchedSchedulerTest, BitIdenticalAcrossModesOnMultiSegmentPlatform) {
  const simnet::Platform platform = simnet::fully_heterogeneous();
  ASSERT_GT(platform.segment_count(), 1u);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  const std::vector<JobSpec> stream = mixed_stream();

  const ScheduleResult bounded =
      run_schedule(platform, scene, stream, {}, fast_options());
  const ScheduleResult bounded2 =
      run_schedule(platform, scene, stream, {}, fast_options());
  const ScheduleResult threads = run_schedule(
      platform, scene, stream, {},
      fast_options(vmpi::ExecMode::kThreadPerRank));

  EXPECT_EQ(bounded.completed(), stream.size());
  expect_records_equal(bounded.records, bounded2.records);
  expect_records_equal(bounded.records, threads.records);
  expect_outputs_equal(bounded.outputs, threads.outputs);
  EXPECT_EQ(bounded.makespan_s, threads.makespan_s);
  EXPECT_EQ(bounded.utilization, threads.utilization);
}

/// Runs one job's SPMD body solo on the exact rank subset the scheduler
/// used: the output must match the scheduled run bit for bit.
JobOutput run_solo(const simnet::Platform& platform, const hsi::HsiCube& scene,
                   const JobSpec& spec, const std::vector<int>& members) {
  JobOutput out;
  vmpi::Engine engine(platform, fast_options());
  engine.run([&](vmpi::Comm& world) {
    if (std::find(members.begin(), members.end(), world.rank()) ==
        members.end()) {
      return;
    }
    vmpi::Comm sub = world.subset(members, spec.id);
    switch (spec.algorithm) {
      case JobAlgorithm::kAtdca: {
        core::AtdcaConfig config;
        config.targets = spec.targets;
        core::TargetDetectionResult result;
        core::atdca_body(sub, scene, config, result);
        if (sub.is_root()) out.targets = std::move(result.targets);
        break;
      }
      case JobAlgorithm::kUfcls: {
        core::UfclsConfig config;
        config.targets = spec.targets;
        core::TargetDetectionResult result;
        core::ufcls_body(sub, scene, config, result);
        if (sub.is_root()) out.targets = std::move(result.targets);
        break;
      }
      case JobAlgorithm::kPct: {
        core::PctConfig config;
        config.classes = spec.classes;
        core::ClassificationResult result;
        core::pct_body(sub, scene, config, result);
        if (sub.is_root()) {
          out.labels = std::move(result.labels);
          out.label_count = result.label_count;
        }
        break;
      }
      case JobAlgorithm::kMorph: {
        core::MorphConfig config;
        config.classes = spec.classes;
        config.iterations = spec.iterations;
        config.kernel_radius = spec.kernel_radius;
        core::ClassificationResult result;
        core::morph_body(sub, scene, config, result);
        if (sub.is_root()) {
          out.labels = std::move(result.labels);
          out.label_count = result.label_count;
        }
        break;
      }
      case JobAlgorithm::kPpi: {
        core::PpiConfig config;
        config.targets = spec.targets;
        config.skewers = spec.skewers;
        config.seed = spec.seed;
        core::PpiResult result;
        core::ppi_body(sub, scene, config, result);
        if (sub.is_root()) {
          out.targets = std::move(result.targets);
          out.scores = std::move(result.scores);
        }
        break;
      }
    }
  });
  return out;
}

TEST(SchedSchedulerTest, JobOutputsMatchSoloRunsOnSameSubset) {
  const simnet::Platform platform = cluster(7);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  const std::vector<JobSpec> stream = mixed_stream();
  const ScheduleResult result =
      run_schedule(platform, scene, stream, {}, fast_options());
  ASSERT_EQ(result.completed(), stream.size());

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const JobRecord& record = result.records[i];
    ASSERT_TRUE(record.completed()) << "job " << record.id;
    const JobOutput solo =
        run_solo(platform, scene, stream[i], record.members);
    EXPECT_EQ(result.outputs[i].targets, solo.targets) << "job " << record.id;
    EXPECT_EQ(result.outputs[i].scores, solo.scores) << "job " << record.id;
    EXPECT_EQ(result.outputs[i].labels, solo.labels) << "job " << record.id;
    EXPECT_EQ(result.outputs[i].label_count, solo.label_count)
        << "job " << record.id;
  }
}

TEST(SchedSchedulerTest, RecordsAreConsistent) {
  const simnet::Platform platform = cluster(7);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  const ScheduleResult result =
      run_schedule(platform, scene, mixed_stream(), {}, fast_options());
  EXPECT_GT(result.makespan_s, 0.0);
  EXPECT_GT(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0);
  for (const JobRecord& record : result.records) {
    ASSERT_TRUE(record.completed()) << "job " << record.id;
    EXPECT_GE(record.dispatch_s, record.arrival_s) << "job " << record.id;
    EXPECT_GT(record.finish_s, record.dispatch_s) << "job " << record.id;
    EXPECT_GE(record.queue_wait_s(), 0.0) << "job " << record.id;
    EXPECT_GT(record.utilization(), 0.0) << "job " << record.id;
    EXPECT_LE(record.utilization(), 1.0) << "job " << record.id;
    EXPECT_GT(record.est_seconds, 0.0) << "job " << record.id;
    EXPECT_FALSE(record.members.empty()) << "job " << record.id;
  }
}

TEST(SchedSchedulerTest, FifoDispatchesInArrivalOrder) {
  const simnet::Platform platform = cluster(7);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  SchedulerConfig config;
  config.policy = Policy::kFifo;
  const ScheduleResult result =
      run_schedule(platform, scene, mixed_stream(), config, fast_options());
  ASSERT_EQ(result.completed(), 5u);
  // Arrival order is id order in mixed_stream(); FIFO must dispatch
  // monotonically in that order.
  for (std::size_t i = 1; i < result.records.size(); ++i) {
    EXPECT_GE(result.records[i].dispatch_s, result.records[i - 1].dispatch_s)
        << "job " << result.records[i].id;
  }
}

TEST(SchedSchedulerTest, BackfillRunsSmallJobsWithoutStarvingTheHead) {
  const simnet::Platform platform = cluster(5);  // dispatcher + 4 workers
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  std::vector<JobSpec> stream;
  JobSpec big;  // long 2-rank job holds half the pool
  big.id = 1;
  big.algorithm = JobAlgorithm::kAtdca;
  big.arrival_s = 0.0;
  big.ranks = 2;
  big.targets = 4;
  big.replication = 50;
  stream.push_back(big);
  JobSpec head;  // full-width job must queue behind `big`
  head.id = 2;
  head.algorithm = JobAlgorithm::kPct;
  head.arrival_s = 0.001;
  head.ranks = 4;
  head.classes = 3;
  stream.push_back(head);
  for (std::uint64_t k = 0; k < 3; ++k) {  // short narrow jobs backfill
    JobSpec small;
    small.id = 3 + k;
    small.algorithm = JobAlgorithm::kPpi;
    small.arrival_s = 0.002;
    small.ranks = 1;
    small.targets = 3;
    small.skewers = 16;
    stream.push_back(small);
  }

  const ScheduleResult result =
      run_schedule(platform, scene, stream, {}, fast_options());
  ASSERT_EQ(result.completed(), stream.size());
  const JobRecord& head_record = result.records[1];
  // The head was dispatched (no starvation) after the big job drained...
  EXPECT_GE(head_record.dispatch_s, result.records[0].finish_s);
  // ...while at least one later-arriving small job backfilled ahead of it.
  bool backfilled = false;
  for (std::size_t i = 2; i < stream.size(); ++i) {
    if (result.records[i].dispatch_s < head_record.dispatch_s) {
      backfilled = true;
    }
  }
  EXPECT_TRUE(backfilled);
}

TEST(SchedSchedulerTest, TrackGroupsCoverEveryCompletedJob) {
  const simnet::Platform platform = cluster(7);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  vmpi::Options options = fast_options();
  options.enable_trace = true;
  const ScheduleResult result =
      run_schedule(platform, scene, mixed_stream(), {}, options);
  const auto groups = job_track_groups(result);
  ASSERT_EQ(groups.size(), result.completed());
  EXPECT_EQ(groups[0].label, "job:1/ATDCA");
  EXPECT_EQ(groups[1].label, "job:2/PCT");
  for (std::size_t i = 0; i < groups.size(); ++i) {
    EXPECT_EQ(groups[i].members, result.records[i].members);
    EXPECT_EQ(groups[i].begin_s, result.records[i].dispatch_s);
    EXPECT_EQ(groups[i].end_s, result.records[i].finish_s);
  }
  // The traced schedule renders with one named process per job.
  const std::string json = obs::chrome_trace_json(result.report, groups, {});
  for (const auto& group : groups) {
    EXPECT_NE(json.find("\"name\":\"" + group.label + "\""),
              std::string::npos);
  }
}

TEST(SchedSchedulerTest, RejectedJobDoesNotBlockTheStream) {
  const simnet::Platform platform = cluster(5);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  std::vector<JobSpec> stream = mixed_stream();
  stream.resize(2);
  JobSpec wide;
  wide.id = 99;
  wide.algorithm = JobAlgorithm::kUfcls;
  wide.arrival_s = 0.0;
  wide.ranks = 10;  // pool has 4 workers
  stream.push_back(wide);

  const ScheduleResult result =
      run_schedule(platform, scene, stream, {}, fast_options());
  EXPECT_EQ(result.completed(), 2u);
  EXPECT_EQ(result.rejected(), 1u);
  const JobRecord& rejected = result.records[2];
  EXPECT_TRUE(rejected.rejected);
  EXPECT_FALSE(rejected.completed());
  EXPECT_NE(rejected.error.find("job 99"), std::string::npos)
      << rejected.error;
  EXPECT_NE(rejected.error.find("worker pool"), std::string::npos)
      << rejected.error;
}

}  // namespace
}  // namespace hprs::sched
