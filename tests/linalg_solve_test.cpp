#include "linalg/solve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace hprs::linalg {
namespace {

/// Random SPD matrix A = B^T B + n*I.
Matrix random_spd(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Matrix b(n, n);
  for (auto& v : b.data()) v = rng.uniform(-1, 1);
  Matrix a = b.transposed().multiply(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-3, 3);
  return v;
}

double residual_norm(const Matrix& a, std::span<const double> x,
                     std::span<const double> b) {
  const auto ax = a.multiply(x);
  double s = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    s += (ax[i] - b[i]) * (ax[i] - b[i]);
  }
  return std::sqrt(s);
}

TEST(CholeskyTest, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
  const Matrix a(2, 2, {4, 2, 2, 3});
  const Cholesky chol(a);
  const auto x = chol.solve(std::vector<double>{10, 9});
  EXPECT_NEAR(x[0], 1.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_THROW(Cholesky{Matrix(2, 3)}, Error);
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  const Matrix a(2, 2, {1, 2, 2, 1});  // eigenvalues 3 and -1
  EXPECT_THROW(Cholesky{a}, Error);
}

TEST(CholeskyTest, RejectsRhsOfWrongSize) {
  const Cholesky chol(Matrix::identity(3));
  EXPECT_THROW((void)chol.solve(std::vector<double>{1, 2}), Error);
}

TEST(CholeskyTest, LogDetOfIdentityIsZero) {
  const Cholesky chol(Matrix::identity(5));
  EXPECT_NEAR(chol.log_det(), 0.0, 1e-14);
}

TEST(CholeskyTest, LogDetMatchesKnownDeterminant) {
  const Matrix a(2, 2, {4, 0, 0, 9});  // det = 36
  EXPECT_NEAR(Cholesky(a).log_det(), std::log(36.0), 1e-12);
}

TEST(GaussJordanTest, InverseOfIdentityIsIdentity) {
  const Matrix inv = gauss_jordan_inverse(Matrix::identity(4));
  EXPECT_LE(inv.max_abs_diff(Matrix::identity(4)), 1e-14);
}

TEST(GaussJordanTest, InverseOfKnownMatrix) {
  const Matrix a(2, 2, {4, 7, 2, 6});  // det 10
  const Matrix inv = gauss_jordan_inverse(a);
  EXPECT_NEAR(inv(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(inv(0, 1), -0.7, 1e-12);
  EXPECT_NEAR(inv(1, 0), -0.2, 1e-12);
  EXPECT_NEAR(inv(1, 1), 0.4, 1e-12);
}

TEST(GaussJordanTest, SingularMatrixThrows) {
  const Matrix a(2, 2, {1, 2, 2, 4});
  EXPECT_THROW((void)gauss_jordan_inverse(a), Error);
}

TEST(GaussJordanTest, PivotingHandlesZeroLeadingEntry) {
  const Matrix a(2, 2, {0, 1, 1, 0});
  const Matrix inv = gauss_jordan_inverse(a);
  EXPECT_LE(inv.max_abs_diff(a), 1e-14);  // permutation is its own inverse
}

TEST(SolveLinearTest, MatchesKnownSolution) {
  const Matrix a(3, 3, {2, 1, -1, -3, -1, 2, -2, 1, 2});
  const auto x = solve_linear(a, std::vector<double>{8, -11, -3});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(SolveLinearTest, SingularThrows) {
  const Matrix a(2, 2, {1, 1, 1, 1});
  EXPECT_THROW((void)solve_linear(a, std::vector<double>{1, 2}), Error);
}

TEST(SolveLinearTest, RequiresSquareAndMatchingRhs) {
  EXPECT_THROW((void)solve_linear(Matrix(2, 3), std::vector<double>{1, 2}),
               Error);
  EXPECT_THROW(
      (void)solve_linear(Matrix::identity(3), std::vector<double>{1, 2}),
      Error);
}

class SolverSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolverSizeSweep, CholeskySolveHasSmallResidual) {
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, n * 7 + 1);
  const auto b = random_vector(n, n * 13 + 5);
  const auto x = Cholesky(a).solve(b);
  EXPECT_LE(residual_norm(a, x, b), 1e-9 * static_cast<double>(n));
}

TEST_P(SolverSizeSweep, GaussJordanInverseRoundTrips) {
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, n * 3 + 11);
  const Matrix prod = a.multiply(gauss_jordan_inverse(a));
  EXPECT_LE(prod.max_abs_diff(Matrix::identity(n)),
            1e-10 * static_cast<double>(n));
}

TEST_P(SolverSizeSweep, CholeskyAndGaussianEliminationAgree) {
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, n + 23);
  const auto b = random_vector(n, n + 29);
  const auto x1 = Cholesky(a).solve(b);
  const auto x2 = solve_linear(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x1[i], x2[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolverSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace hprs::linalg
