#include "simnet/equivalence.hpp"

#include <gtest/gtest.h>

namespace hprs::simnet {
namespace {

TEST(EquivalenceTest, PlatformIsEquivalentToItself) {
  const Platform p = fully_heterogeneous();
  const auto rep = check_equivalence(p, p);
  EXPECT_TRUE(rep.equivalent);
  EXPECT_TRUE(rep.same_processor_count);
  EXPECT_DOUBLE_EQ(rep.speed_deviation, 0.0);
  EXPECT_DOUBLE_EQ(rep.link_deviation, 0.0);
}

TEST(EquivalenceTest, DifferentProcessorCountsAreNotEquivalent) {
  const auto rep = check_equivalence(thunderhead(4), thunderhead(8));
  EXPECT_FALSE(rep.same_processor_count);
  EXPECT_FALSE(rep.equivalent);
}

TEST(EquivalenceTest, PaperNetworksAreOnlyApproximatelyEquivalent) {
  // The paper calls its four networks "approximately equivalent"; the
  // Table 1 average speed actually deviates ~35% from the homogeneous
  // w = 0.0131, which the checker quantifies.
  const auto rep =
      check_equivalence(fully_heterogeneous(), fully_homogeneous());
  EXPECT_TRUE(rep.same_processor_count);
  EXPECT_GT(rep.speed_deviation, 0.2);
  EXPECT_LT(rep.speed_deviation, 0.5);
  EXPECT_FALSE(rep.equivalent);  // at the default 5% tolerance
}

TEST(EquivalenceTest, ToleranceControlsTheVerdict) {
  const auto loose =
      check_equivalence(fully_heterogeneous(), fully_homogeneous(), 0.99);
  EXPECT_TRUE(loose.equivalent);
}

TEST(EquivalenceTest, MatchedSpeedMismatchedNetworkDetected) {
  const auto rep =
      check_equivalence(fully_heterogeneous(), partially_heterogeneous());
  EXPECT_DOUBLE_EQ(rep.speed_deviation, 0.0);  // same processors
  EXPECT_GT(rep.link_deviation, 0.1);
}

TEST(EquivalenceTest, ReportRendersReadably) {
  const auto rep =
      check_equivalence(fully_homogeneous(), fully_homogeneous());
  const std::string s = rep.to_string();
  EXPECT_NE(s.find("equivalent=yes"), std::string::npos);
  EXPECT_NE(s.find("speed_dev=0"), std::string::npos);
}

}  // namespace
}  // namespace hprs::simnet
